//! The `metrics` query end to end: spin up `hems-serve` in-process, push
//! a small mixed workload through it (plans, a sweep summary, a cache
//! hit), then ask for `metrics` and walk the returned telemetry snapshot.
//!
//! The snapshot is the `hems_obs` registry rendered as JSON — the global
//! registry (sweep stages, worker pool, solver LUTs) merged with the
//! server's own registry (requests, cache, latency histogram) — and this
//! example doubles as a living check that every instrumented plane
//! actually shows up on the wire: it asserts sweep, pool, cache, and
//! admission series are present before printing a digest.
//!
//! ```text
//! cargo run --example metrics_query
//! ```

use hems_serve::json::Value;
use hems_serve::proto::{QueryKind, Request, ScenarioSpec};
use hems_serve::{serve, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn ask(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    id: i64,
    kind: QueryKind,
    spec: Option<&ScenarioSpec>,
) -> Value {
    let line = Request::render_line(id, kind, spec);
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    hems_serve::json::parse(&response).expect("server speaks JSON")
}

/// A counter's value out of the snapshot's `series` map, if present.
fn counter(series: &Value, name: &str) -> Option<f64> {
    series.get(name)?.get("value")?.as_f64()
}

fn main() {
    let handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind loopback");
    let addr = handle.addr().to_string();
    println!("started in-process hems-serve on {addr}");
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Workload: two distinct plans (cache misses), one repeat (cache
    // hit), and a sweep summary to exercise the sweep engine + pool.
    let spec = ScenarioSpec::baseline(0.5);
    let bright = ScenarioSpec::baseline(1.0);
    ask(&mut stream, &mut reader, 1, QueryKind::Mep, Some(&spec));
    ask(&mut stream, &mut reader, 2, QueryKind::Mep, Some(&bright));
    ask(&mut stream, &mut reader, 3, QueryKind::Mep, Some(&spec));
    ask(
        &mut stream,
        &mut reader,
        4,
        QueryKind::SweepSummary,
        Some(&spec),
    );

    let response = ask(&mut stream, &mut reader, 5, QueryKind::Metrics, None);
    assert_eq!(
        response.get("status").and_then(Value::as_str),
        Some("ok"),
        "metrics query failed: {}",
        response.render()
    );
    let snapshot = response.get("result").expect("ok response carries result");
    let series = snapshot.get("series").expect("snapshot carries series");

    // Every instrumented plane must be on the wire.
    let planes = [
        ("sweep", "sweep.scenarios"),
        ("pool", "pool.jobs"),
        ("cache", "serve.cache.hits"),
        ("admission", "serve.overloaded"),
    ];
    for (plane, name) in planes {
        assert!(
            counter(series, name).is_some(),
            "{plane} series `{name}` missing from snapshot"
        );
    }

    println!("\ntelemetry snapshot digest:");
    for name in [
        "serve.requests",
        "serve.cache.hits",
        "serve.cache.misses",
        "serve.overloaded",
        "sweep.scenarios",
        "pool.jobs",
        "pool.batches",
    ] {
        let value = counter(series, name).unwrap_or(0.0);
        println!("  {name:<24} {value}");
    }
    if let Some(latency) = series.get("serve.latency_ns") {
        let p50 = latency.get("p50").and_then(Value::as_f64).unwrap_or(0.0);
        let p95 = latency.get("p95").and_then(Value::as_f64).unwrap_or(0.0);
        let count = latency.get("count").and_then(Value::as_f64).unwrap_or(0.0);
        println!("  serve.latency_ns         p50 {p50} ns, p95 {p95} ns over {count} requests");
    }

    assert!(
        counter(series, "serve.cache.hits").unwrap_or(0.0) >= 1.0,
        "the repeated plan must land in the cache series"
    );
    assert!(
        counter(series, "sweep.scenarios").unwrap_or(0.0) >= 1.0,
        "the sweep summary must exercise the sweep engine"
    );

    ask(&mut stream, &mut reader, 6, QueryKind::Shutdown, None);
    let mut handle = handle;
    handle.wait();
    println!("\nall planes present; server drained and stopped");
}
