//! Deadline-constrained operation with sprinting and regulator bypass —
//! the paper's Section VI-B / Fig. 11b story as a runnable scenario.
//!
//! A recognition job must finish by a hard deadline just as a shadow falls
//! over the cell. We plan the job analytically (eqs. 8–11), then run three
//! schedules and compare energy intake and completion.
//!
//! ```text
//! cargo run --release --example deadline_sprint
//! ```

use hems_core::deadline::DeadlineSolver;
use hems_core::{HolisticController, Mode, SprintPlan};
use hems_cpu::Microprocessor;
use hems_pv::{Irradiance, SolarCell};
use hems_regulator::ScRegulator;
use hems_sim::{Controller, FixedVoltageController, Job, LightProfile, Simulation, SystemConfig};
use hems_storage::Capacitor;
use hems_units::{Cycles, Seconds, Volts, Watts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cycles = Cycles::new(2.0e6); // two frames of work
    let deadline = Seconds::from_milli(50.0);

    // --- Analytic plan (eqs. 8-11): what completion time is achievable? ---
    let cell = SolarCell::kxob22(Irradiance::HALF_SUN);
    let sc = ScRegulator::paper_65nm();
    let cpu = Microprocessor::paper_65nm();
    let mut cap = Capacitor::paper_board();
    cap.set_voltage(Volts::new(1.2))?;
    let solver = DeadlineSolver::new(&cell, &sc, &cpu, &cap, Volts::new(0.5));
    let plan = solver.solve(cycles)?;
    println!("== analytic deadline plan (eqs. 8-11, half sun) ==");
    println!(
        "fastest achievable: {:.1} ms at {:.3} V / {:.1} MHz",
        plan.completion_time.to_milli(),
        plan.vdd.volts(),
        plan.frequency.to_mega()
    );
    println!(
        "energy at intersection: required {:.1} uJ, available {:.1} uJ",
        plan.e_required.to_micro(),
        plan.e_available.to_micro()
    );

    // --- Sprint analysis (eqs. 12-13) on the dimmed transient. ---
    let dim = SolarCell::kxob22(Irradiance::QUARTER_SUN);
    let sprint = SprintPlan::paper_20_percent(Seconds::from_milli(30.0), Watts::from_milli(6.0))?;
    let cmp = sprint.compare_against_constant(&dim, &cap, Seconds::from_micro(20.0));
    println!("\n== sprint analysis (eqs. 12-13, quarter sun transient) ==");
    println!(
        "solar energy: constant {:.1} uJ vs sprint {:.1} uJ ({:+.1}%)",
        cmp.e_solar_constant.to_micro(),
        cmp.e_solar_sprint.to_micro(),
        cmp.extra_energy_fraction() * 100.0
    );

    // --- End-to-end: run the Fig. 11b scenario under three controllers. ---
    let run = |name: &str, ctl: &mut dyn Controller| -> Result<(), Box<dyn std::error::Error>> {
        let config = SystemConfig::paper_sc_system()?;
        let light = LightProfile::step(
            Irradiance::FULL_SUN,
            Irradiance::HALF_SUN,
            Seconds::from_milli(10.0),
        );
        let mut sim = Simulation::new(config, light, Volts::new(1.2))?;
        sim.enqueue(Job::with_deadline(cycles, deadline));
        let summary = sim.run(ctl, Seconds::from_milli(55.0));
        let met = sim.jobs().missed_deadlines(sim.now()).is_empty() && summary.completed_jobs == 1;
        println!(
            "{name:>26}: {} | harvested {:6.1} uJ | active {:5.1} ms | brownouts {}",
            if met {
                "deadline MET   "
            } else {
                "deadline MISSED"
            },
            summary.ledger.harvested.to_micro(),
            summary.ledger.active_time.to_milli(),
            summary.brownouts
        );
        Ok(())
    };

    println!("\n== end-to-end: 2 Mcycle job, 50 ms deadline, light dims at 10 ms ==");
    let mut naive = FixedVoltageController::new(Volts::new(0.7));
    run("fixed 0.70 V", &mut naive)?;
    let mut steady = FixedVoltageController::new(Volts::new(0.5));
    run("fixed 0.50 V", &mut steady)?;
    let mut holistic = HolisticController::paper_default(Mode::Deadline {
        deadline,
        beta: 0.2,
    });
    run("holistic sprint+bypass", &mut holistic)?;
    Ok(())
}
