//! A battery-less camera station: the motivating IoT scenario.
//!
//! A solar-powered node captures 64×64 frames and runs the paper's
//! pattern-recognition pipeline on each, all day, with no battery. We
//! simulate a compressed "day" (a 20 s diurnal light arc) and compare how
//! many frames three designs get through:
//!
//! * a conventional design pinned at the datasheet operating point;
//! * a conventional design pinned at the *conventional* MEP;
//! * the paper's holistic controller.
//!
//! ```text
//! cargo run --release --example solar_camera_station
//! ```

use hems_core::{HolisticController, Mode};
use hems_imgproc::{Frame, RecognitionPipeline, Shape};
use hems_pv::Irradiance;
use hems_sim::{
    Controller, DutyCycleController, FixedVoltageController, Job, LightProfile, Simulation,
    SystemConfig,
};
use hems_units::{Seconds, Volts};

const DAY: f64 = 20.0; // seconds of simulated (compressed) daylight

fn run_station(
    name: &str,
    controller: &mut dyn Controller,
    pipeline: &RecognitionPipeline,
) -> Result<usize, Box<dyn std::error::Error>> {
    let config = SystemConfig::paper_sc_system()?;
    let light = LightProfile::diurnal(Irradiance::FULL_SUN, Seconds::new(DAY));
    let mut sim = Simulation::new(config, light, Volts::new(0.8))?;

    // Queue a day's worth of capture jobs: each frame costs what the real
    // pipeline would cost on its pixels.
    let mut expected_labels = Vec::new();
    for i in 0..3000 {
        let shape = Shape::ALL[i % Shape::ALL.len()];
        let frame = Frame::synthetic_shape(64, 64, shape, i as u64)?;
        expected_labels.push(shape.label());
        sim.enqueue(Job::new(pipeline.frame_cost(&frame)));
    }

    let summary = sim.run(controller, Seconds::new(DAY));
    // Verify the recognition actually works on the frames that completed.
    let mut correct = 0;
    #[allow(clippy::needless_range_loop)] // index drives both the shape cycle and the label table
    for i in 0..summary.completed_jobs {
        let shape = Shape::ALL[i % Shape::ALL.len()];
        let frame = Frame::synthetic_shape(64, 64, shape, i as u64)?;
        if pipeline.process(&frame).label == expected_labels[i] {
            correct += 1;
        }
    }
    println!(
        "{name:>28}: {:4} frames ({correct} recognized correctly), \
         {:6.2} mJ harvested, {:2} brownouts, duty {:4.1}%",
        summary.completed_jobs,
        summary.ledger.harvested.to_milli(),
        summary.brownouts,
        summary.ledger.duty_cycle() * 100.0
    );
    Ok(summary.completed_jobs)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = RecognitionPipeline::paper_default()?;
    println!(
        "== battery-less camera station: one compressed {DAY} s 'day', \
         64x64 frames through the recognition pipeline =="
    );

    let mut fixed_fast = FixedVoltageController::new(Volts::new(0.7));
    let fast = run_station("fixed 0.70 V (datasheet)", &mut fixed_fast, &pipeline)?;

    let mut fixed_mep = FixedVoltageController::new(Volts::new(0.46));
    let mep = run_station("fixed 0.46 V (conv. MEP)", &mut fixed_mep, &pipeline)?;

    let mut duty = DutyCycleController::paper_default();
    let cycled = run_station("duty cycle 1.1/0.7 V", &mut duty, &pipeline)?;

    let mut holistic = HolisticController::paper_default(Mode::MaxPerformance);
    let smart = run_station("holistic (paper)", &mut holistic, &pipeline)?;

    let best_fixed = fast.max(mep).max(cycled).max(1);
    println!(
        "\nholistic throughput vs best conventional design: {:+.0}%",
        (smart as f64 / best_fixed as f64 - 1.0) * 100.0
    );
    Ok(())
}
