//! MPPT algorithm shoot-out on a cloudy day.
//!
//! Drives the same plant through the same seeded cloud trace under three
//! trackers — perturb & observe (needs a current sensor), fractional-Voc
//! (needs disconnect windows), and the paper's sensorless time-based
//! scheme — and compares harvested energy and executed cycles.
//!
//! ```text
//! cargo run --release --example mppt_shootout
//! ```

use hems_cpu::DvfsLadder;
use hems_mppt::{FractionalVoc, PerturbObserve, TimeBasedTracker};
use hems_pv::Irradiance;
use hems_sim::{
    Controller, LightProfile, MpptDvfsController, OcSampling, Simulation, SystemConfig,
};
use hems_units::{Seconds, Volts};

const RUN: f64 = 5.0; // seconds

fn weather() -> LightProfile {
    LightProfile::clouds(
        Irradiance::QUARTER_SUN,
        Irradiance::FULL_SUN,
        Seconds::from_milli(250.0),
        Seconds::new(RUN),
        42,
    )
}

fn run(name: &str, mut ctl: MpptDvfsController) -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::paper_sc_system()?;
    let mut sim = Simulation::new(config, weather(), Volts::new(1.1))?;
    let summary = sim.run(&mut ctl, Seconds::new(RUN));
    println!(
        "{name:>22}: harvested {:7.2} mJ | {:6.1} Mcycles | duty {:5.1}% | brownouts {}",
        summary.ledger.harvested.to_milli(),
        summary.total_cycles.count() / 1e6,
        summary.ledger.duty_cycle() * 100.0,
        summary.brownouts
    );
    let _ = ctl.name();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== MPPT shoot-out: {RUN} s of seeded clouds (quarter to full sun) ==");
    let ladder = DvfsLadder::paper_65nm();
    let period = Seconds::from_milli(1.0);

    run(
        "perturb & observe",
        MpptDvfsController::new(
            Box::new(PerturbObserve::paper_default()),
            ladder.clone(),
            period,
        )
        .with_power_sensor(),
    )?;

    run(
        "fractional Voc",
        MpptDvfsController::new(
            Box::new(FractionalVoc::paper_default()),
            ladder.clone(),
            period,
        )
        .with_oc_sampling(OcSampling {
            period: Seconds::from_milli(500.0),
            duration: Seconds::from_milli(20.0),
        }),
    )?;

    run(
        "time-based (paper)",
        MpptDvfsController::new(Box::new(TimeBasedTracker::paper_default()), ladder, period),
    )?;

    println!(
        "\nnote: P&O assumes a current sensor and fractional-Voc pays harvest \
         downtime for its sampling windows; the paper's time-based scheme \
         needs only the board comparators."
    );
    Ok(())
}
