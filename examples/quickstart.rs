//! Quickstart: assemble the battery-less energy-harvesting SoC, run it for
//! half a simulated second under the holistic controller, and print what
//! happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hems_core::{HolisticController, Mode};
use hems_pv::Irradiance;
use hems_sim::{LightProfile, Simulation, SystemConfig};
use hems_units::{Seconds, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's hardware: IXYS-like solar cell, 100 uF storage capacitor,
    // 65 nm switched-capacitor regulator, pattern-recognition processor.
    let config = SystemConfig::paper_sc_system()?;

    // Outdoor light that dims to a quarter midway through the run.
    let light = LightProfile::step(
        Irradiance::FULL_SUN,
        Irradiance::QUARTER_SUN,
        Seconds::from_milli(250.0),
    );

    let mut sim = Simulation::new(config, light, Volts::new(1.1))?;
    sim.enable_recorder(200);

    // The paper's contribution: holistic max-performance management with
    // time-based MPP tracking and low-light bypass.
    let mut controller = HolisticController::paper_default(Mode::MaxPerformance);
    let summary = sim.run(&mut controller, Seconds::from_milli(500.0));

    println!("== battery-less SoC, 500 ms under the holistic controller ==");
    println!(
        "harvested        : {:8.1} uJ",
        summary.ledger.harvested.to_micro()
    );
    println!(
        "delivered to CPU : {:8.1} uJ ({:.0}% end-to-end)",
        summary.ledger.delivered_to_cpu.to_micro(),
        summary.ledger.conversion_efficiency() * 100.0
    );
    println!(
        "cycles executed  : {:8.2} Mcycles",
        summary.total_cycles.count() / 1e6
    );
    println!(
        "duty cycle       : {:8.1} %",
        summary.ledger.duty_cycle() * 100.0
    );
    println!("brownouts        : {:8}", summary.brownouts);
    println!(
        "final node       : {:8.3} V (bypassed: {})",
        summary.final_v_solar.volts(),
        controller.is_bypassed()
    );

    println!("\nevents:");
    for event in sim.events().events().iter().take(12) {
        println!("  t={:7.1} ms  {}", event.at.to_milli(), event.kind);
    }

    println!("\nwaveform (decimated):");
    for sample in sim
        .recorder()
        .expect("recorder enabled")
        .samples()
        .iter()
        .step_by(5)
    {
        println!(
            "  t={:6.1} ms  V_solar={:5.3} V  Vdd={:5.3} V  f={:6.1} MHz",
            sample.t.to_milli(),
            sample.v_solar.volts(),
            sample.vdd.volts(),
            sample.frequency.to_mega()
        );
    }
    Ok(())
}
