//! A loopback client for `hems-serve`: spins up the planning service
//! in-process (or connects to `HEMS_SERVE_ADDR` if set), asks one of each
//! plan query against the paper's baseline system at half sun, prints the
//! answers, then checks the cache with a repeat query and shuts the
//! server down gracefully.
//!
//! ```text
//! cargo run --example serve_client
//! HEMS_SERVE_ADDR=127.0.0.1:7878 cargo run --example serve_client   # external server
//! ```

use hems_serve::json::{parse, Value};
use hems_serve::proto::{QueryKind, Request, ScenarioSpec};
use hems_serve::{serve, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn ask(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    id: i64,
    kind: QueryKind,
    spec: Option<&ScenarioSpec>,
) -> Value {
    let line = Request::render_line(id, kind, spec);
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    parse(&response).expect("server speaks JSON")
}

fn show(name: &str, response: &Value) {
    let cached = response
        .get("cached")
        .and_then(Value::as_bool)
        .map_or("", |c| if c { " (cached)" } else { "" });
    match response.get("status").and_then(Value::as_str) {
        Some("ok") => println!(
            "{name:>14}{cached}: {}",
            response
                .get("result")
                .map(Value::render)
                .unwrap_or_default()
        ),
        _ => println!("{name:>14}: {}", response.render()),
    }
}

fn main() {
    // An external server wins when named; otherwise run one in-process on
    // an ephemeral port.
    let external = std::env::var("HEMS_SERVE_ADDR").ok();
    let mut local = None;
    let addr = match &external {
        Some(addr) => addr.clone(),
        None => {
            let handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind loopback");
            let addr = handle.addr().to_string();
            println!("started in-process hems-serve on {addr}");
            local = Some(handle);
            addr
        }
    };
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // The paper's baseline board at half sun, with a 20 ms deadline for
    // the sprint planner.
    let mut spec = ScenarioSpec::baseline(0.5);
    spec.deadline = Some(0.02);
    println!("scenario: baseline system, irradiance 0.5, 20 ms deadline\n");

    let plan_kinds = [
        ("optimal_point", QueryKind::OptimalPoint),
        ("mep", QueryKind::Mep),
        ("bypass", QueryKind::Bypass),
        ("sprint", QueryKind::Sprint),
        ("sweep_summary", QueryKind::SweepSummary),
    ];
    for (i, (name, kind)) in plan_kinds.iter().enumerate() {
        let response = ask(&mut stream, &mut reader, i as i64, *kind, Some(&spec));
        show(name, &response);
    }

    // The repeat must come back from the plan cache.
    let repeat = ask(&mut stream, &mut reader, 100, QueryKind::Mep, Some(&spec));
    assert_eq!(
        repeat.get("cached").and_then(Value::as_bool),
        Some(true),
        "repeated query must hit the cache"
    );
    show("mep (repeat)", &repeat);

    let stats = ask(&mut stream, &mut reader, 101, QueryKind::Stats, None);
    show("stats", &stats);

    let bye = ask(&mut stream, &mut reader, 102, QueryKind::Shutdown, None);
    show("shutdown", &bye);
    if let Some(mut handle) = local {
        handle.wait();
        println!("\nserver drained and stopped");
    }
}
