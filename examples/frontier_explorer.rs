//! Explore the energy-performance frontier and pick an operating point for
//! a target frame rate.
//!
//! The paper gives two recipes — run as fast as the harvest allows
//! (Section IV) or as cheap as physics allows (Section V). A deployment
//! usually has a *requirement* instead: "N detector frames per second".
//! This example prints the sustainable Pareto frontier, then selects the
//! cheapest point meeting a target detector throughput, and verifies the
//! choice in simulation with the heavy sliding-window workload.
//!
//! ```text
//! cargo run --release --example frontier_explorer
//! ```

use hems_core::frontier::{pareto_front, sustainable_frontier};
use hems_cpu::{CpuLut, Microprocessor};
use hems_imgproc::{Frame, Shape, WindowDetector};
use hems_pv::{Irradiance, PvLut, SolarCell};
use hems_regulator::ScRegulator;
use hems_sim::{FixedVoltageController, Job, LightProfile, Simulation, SystemConfig};
use hems_units::{Seconds, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    let sc = ScRegulator::paper_65nm();
    let cpu = Microprocessor::paper_65nm();

    // Build the device-model LUTs once up front; every frontier query below
    // then answers from interpolated tables instead of re-running the
    // implicit diode solve (same ≤0.1% answers, an order of magnitude
    // faster — see BENCH_sweep.json).
    let pv_lut = PvLut::build_default(cell.clone())?;
    let cpu_lut = CpuLut::build_default(cpu.clone());

    // The heavy workload: one sliding-window detector pass per frame.
    let detector = WindowDetector::paper_default()?;
    let frame = Frame::synthetic_shape(64, 64, Shape::Disc, 1)?;
    let cost = detector.detection_cost(&frame);
    println!(
        "detector frame cost: {:.2} Mcycles ({} windows)",
        cost.count() / 1e6,
        detector.window_count(64, 64)
    );

    // The sustainable frontier under full sun through the SC regulator,
    // on the LUT fast path.
    let sweep = sustainable_frontier(&pv_lut, &sc, &cpu_lut, 64)?;
    let front = pareto_front(&sweep);
    println!("\nPareto frontier (full sun, SC regulator):");
    println!("  Vdd (V)   f (MHz)  E/cyc (pJ)  detector fps");
    for p in &front {
        println!(
            "  {:7.3}  {:8.1}  {:10.1}  {:12.1}",
            p.vdd.volts(),
            p.frequency.to_mega(),
            p.energy_per_cycle.value() * 1e12,
            p.frequency.hertz() / cost.count()
        );
    }

    // Requirement: 25 detector frames per second.
    const TARGET_FPS: f64 = 25.0;
    let needed_hz = TARGET_FPS * cost.count();
    let choice = front
        .iter()
        .filter(|p| p.frequency.hertz() >= needed_hz)
        .min_by(|a, b| a.energy_per_cycle.partial_cmp(&b.energy_per_cycle).unwrap());
    let Some(choice) = choice else {
        println!("\nno sustainable point reaches {TARGET_FPS} fps — lower the target");
        return Ok(());
    };
    println!(
        "\ncheapest point meeting {TARGET_FPS} fps: {:.3} V at {:.1} MHz",
        choice.vdd.volts(),
        choice.frequency.to_mega()
    );

    // Verify in simulation: run one second at the chosen point and count
    // completed detector frames.
    let config = SystemConfig::paper_sc_system()?;
    let light = LightProfile::constant(Irradiance::FULL_SUN);
    let mut sim = Simulation::new(config, light, Volts::new(1.1))?;
    for _ in 0..((TARGET_FPS * 2.0) as usize) {
        sim.enqueue(Job::new(cost));
    }
    let mut ctl = FixedVoltageController::with_clock_fraction(choice.vdd, choice.clock_fraction);
    let summary = sim.run(&mut ctl, Seconds::new(1.0));
    println!(
        "simulated 1 s: {} detector frames completed (target {TARGET_FPS}), \
         {} brownouts, final node {:.3} V",
        summary.completed_jobs,
        summary.brownouts,
        summary.final_v_solar.volts()
    );
    Ok(())
}
