//! An intermittently-powered sensor surviving flickering light.
//!
//! The battery-less node loses power whenever a shadow lingers; its
//! recognition loop must make forward progress anyway. This example runs
//! the same flickering-light scenario under four checkpoint policies and
//! two NVM technologies, showing the classic trade-off: fine-grained
//! checkpointing bounds replay but pays commit overhead, coarse
//! checkpointing is cheap until the power fails mid-chain.
//!
//! ```text
//! cargo run --release --example intermittent_sensor
//! ```

use hems_core::{HolisticController, Mode};
use hems_intermittent::{CheckpointPolicy, IntermittentRuntime, NvmModel, Task, TaskChain};
use hems_pv::Irradiance;
use hems_sim::{LightProfile, Simulation, SystemConfig};
use hems_units::{Cycles, Seconds, Volts};

const RUN: f64 = 4.0; // seconds

/// An 8-frame batch job (~8.4 Mcycles per iteration): long enough that a
/// power failure almost always strikes mid-chain.
fn batch_chain() -> TaskChain {
    let mut tasks = Vec::new();
    for i in 0..8 {
        tasks.push(Task::new(
            format!("scan-{i}"),
            Cycles::new(170_000.0),
            2_048,
        ));
        tasks.push(Task::new(
            format!("process-{i}"),
            Cycles::new(875_000.0),
            512,
        ));
    }
    tasks.push(Task::new("report", Cycles::new(10_000.0), 16));
    TaskChain::new(tasks).expect("valid chain")
}

fn flicker() -> LightProfile {
    // Slow clouds swinging between darkness and full sun: long productive
    // stretches punctuated by deaths, so a failure strikes mid-chain after
    // real work has accumulated.
    LightProfile::clouds(
        Irradiance::DARK,
        Irradiance::FULL_SUN,
        Seconds::from_milli(400.0),
        Seconds::new(RUN),
        31,
    )
}

fn run(
    label: &str,
    policy: CheckpointPolicy,
    nvm: NvmModel,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut runtime = IntermittentRuntime::new(batch_chain(), policy, nvm);
    let config = SystemConfig::paper_sc_system()?;
    let mut sim = Simulation::new(config, flicker(), Volts::new(1.0))?;
    let mut ctl = HolisticController::paper_default(Mode::MaxPerformance);
    let report = runtime.run(&mut sim, &mut ctl, Seconds::new(RUN));
    println!(
        "{label:>34}: {:3} batches | goodput {:5.1}% | wasted {:6.2} Mcyc | ckpt {:5.2} Mcyc | {:3} rollbacks",
        report.chain_completions,
        report.goodput() * 100.0,
        report.wasted_cycles.count() / 1e6,
        report.checkpoint_cycles.count() / 1e6,
        report.rollbacks
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "== intermittent 8-frame batch job, {RUN} s of flickering light \
         (dark <-> full sun) =="
    );
    println!("\n-- FRAM-backed checkpoints (4 cyc/word) --");
    run(
        "checkpoint every task",
        CheckpointPolicy::EveryTask,
        NvmModel::fram(),
    )?;
    run(
        "checkpoint every 2 tasks",
        CheckpointPolicy::EveryNTasks(2),
        NvmModel::fram(),
    )?;
    run(
        "checkpoint when node < 0.8 V",
        CheckpointPolicy::OnLowVoltage {
            threshold: Volts::new(0.8),
        },
        NvmModel::fram(),
    )?;
    run(
        "restart whole chain (baseline)",
        CheckpointPolicy::ChainBoundary,
        NvmModel::fram(),
    )?;
    println!("\n-- flash-backed checkpoints (200 cyc/word) --");
    run(
        "checkpoint every task",
        CheckpointPolicy::EveryTask,
        NvmModel::flash(),
    )?;
    run(
        "restart whole chain (baseline)",
        CheckpointPolicy::ChainBoundary,
        NvmModel::flash(),
    )?;
    Ok(())
}
