//! Property-style fuzzing of the full system, folded into the
//! conformance plane: arbitrary (even adversarial) scripted controllers
//! and light conditions must never break the physics, and every fast
//! path must agree with its reference implementation.
//!
//! This is a thin wrapper over `hems_conformance` — the seeded
//! generators, oracles, and the shrinker live there, and the
//! `hems-conformance` binary runs the same oracles at fuzz scale in
//! `scripts/verify.sh`. Here a small fixed budget keeps the properties
//! inside plain `cargo test -q`. A failure names the case seed; replay
//! and minimize it with `hems-conformance --replay <oracle>:0x<seed>:-`.

use hems_conformance::{oracles, CaseInput, OracleCtx, OracleKind};

/// Seeds for this suite come from one fixed campaign seed, decorrelated
/// per oracle exactly like the binary's `--fuzz` mode.
const CAMPAIGN_SEED: u64 = 0x70_4E;

fn run_cases(kind: OracleKind, cases: usize, ctx: &mut OracleCtx) {
    let mut rng = hems_units::XorShiftRng::seed_from_u64(CAMPAIGN_SEED ^ kind.name().len() as u64);
    for _ in 0..cases {
        let seed = rng.next_u64();
        let input = CaseInput::generate(seed);
        let divergence = oracles::run(kind, &input, ctx)
            .unwrap_or_else(|e| panic!("harness failure on {kind} seed 0x{seed:016x}: {e}"));
        assert!(
            divergence.is_none(),
            "{kind} diverged on seed 0x{seed:016x} ({}); replay with \
`hems-conformance --replay {}:0x{seed:016x}:-`",
            divergence.map(|d| d.detail).unwrap_or_default(),
            kind.name(),
        );
    }
}

#[test]
fn arbitrary_controllers_never_break_the_physics() {
    // The physics oracle carries the original property suite's
    // invariants: voltage stays physical, the energy ledger balances,
    // delivered work never exceeds what arrived, and identical runs
    // are bitwise reproducible.
    let mut ctx = OracleCtx::new();
    run_cases(OracleKind::Physics, 24, &mut ctx);
}

#[test]
fn every_fast_path_agrees_with_its_reference() {
    // A small slice of the full differential plane per oracle; the
    // verify.sh fuzz stage runs the same oracles at 500 cases each.
    let mut ctx = OracleCtx::new();
    for kind in OracleKind::all() {
        run_cases(kind, 4, &mut ctx);
    }
}
