// Entire suite gated: requires the `proptest` feature plus re-adding the
// proptest dev-dependency (removed for offline resolution).
#![cfg(feature = "proptest")]

//! Property-based fuzzing of the full system: arbitrary (even adversarial)
//! controllers and light conditions must never break the physics.

use hems_repro::pv::Irradiance;
use hems_repro::sim::{
    ControlDecision, Controller, LightProfile, PowerPath, Simulation, SystemConfig, SystemView,
};
use hems_repro::units::{Seconds, Volts};
use proptest::prelude::*;

/// Replays a scripted decision sequence, cycling when it runs out.
struct ScriptedController {
    script: Vec<ControlDecision>,
    at: usize,
}

impl Controller for ScriptedController {
    fn decide(&mut self, _view: &SystemView<'_>) -> ControlDecision {
        let d = self.script[self.at % self.script.len()];
        self.at += 1;
        d
    }
}

fn decision_strategy() -> impl Strategy<Value = ControlDecision> {
    (0u8..3, 0.01f64..1.6, 0.05f64..=1.0).prop_map(|(kind, vdd, frac)| {
        let path = match kind {
            0 => PowerPath::Regulated {
                vdd: Volts::new(vdd),
            },
            1 => PowerPath::Bypass,
            _ => PowerPath::Sleep,
        };
        ControlDecision {
            path,
            clock_fraction: frac,
        }
    })
}

fn light_strategy() -> impl Strategy<Value = LightProfile> {
    prop_oneof![
        (0.0f64..=1.0).prop_map(|g| LightProfile::constant(Irradiance::new(g).unwrap())),
        (0.0f64..=1.0, 0.0f64..=1.0, 1.0f64..200.0).prop_map(|(a, b, at)| {
            LightProfile::step(
                Irradiance::new(a).unwrap(),
                Irradiance::new(b).unwrap(),
                Seconds::from_milli(at),
            )
        }),
        any::<u64>().prop_map(|seed| {
            LightProfile::clouds(
                Irradiance::DARK,
                Irradiance::FULL_SUN,
                Seconds::from_milli(37.0),
                Seconds::new(1.0),
                seed,
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_controllers_never_break_the_physics(
        script in proptest::collection::vec(decision_strategy(), 1..12),
        light in light_strategy(),
        v0 in 0.0f64..=1.5,
    ) {
        let config = SystemConfig::paper_sc_system().unwrap();
        let rating = config.capacitor.v_rating();
        let capacitance = config.capacitor.capacitance();
        let mut sim = Simulation::new(config, light, Volts::new(v0)).unwrap();
        let mut ctl = ScriptedController { script, at: 0 };
        let summary = sim.run(&mut ctl, Seconds::from_milli(250.0));

        // Node voltage stays physical.
        prop_assert!(summary.final_v_solar >= Volts::ZERO);
        prop_assert!(summary.final_v_solar <= rating);

        // Ledger categories are non-negative and times add up.
        let l = &summary.ledger;
        prop_assert!(l.harvested.joules() >= 0.0);
        prop_assert!(l.delivered_to_cpu.joules() >= 0.0);
        prop_assert!(l.regulator_loss.joules() >= 0.0);
        prop_assert!(l.standby_loss.joules() >= 0.0);
        let time_sum = l.active_time + l.sleep_time + l.brownout_time;
        prop_assert!((time_sum - l.total_time).abs() < Seconds::from_micro(100.0));

        // Energy conservation within integration error.
        let e0 = capacitance.stored_energy(Volts::new(v0));
        let e1 = capacitance.stored_energy(summary.final_v_solar);
        let lhs = l.harvested + (e0 - e1);
        let rhs = l.delivered_to_cpu + l.regulator_loss + l.standby_loss;
        let scale = rhs.joules().abs().max(e0.joules()).max(1e-9);
        prop_assert!(
            (lhs - rhs).abs().joules() / scale < 0.03,
            "imbalance: lhs {} vs rhs {}", lhs.joules(), rhs.joules()
        );

        // The CPU can never consume more than arrived.
        prop_assert!(l.delivered_to_cpu <= l.harvested + e0);
    }

    #[test]
    fn runs_are_reproducible_for_any_script(
        script in proptest::collection::vec(decision_strategy(), 1..6),
        seed in any::<u64>(),
    ) {
        let go = || {
            let config = SystemConfig::paper_sc_system().unwrap();
            let light = LightProfile::clouds(
                Irradiance::QUARTER_SUN,
                Irradiance::FULL_SUN,
                Seconds::from_milli(20.0),
                Seconds::from_milli(200.0),
                seed,
            );
            let mut sim = Simulation::new(config, light, Volts::new(1.0)).unwrap();
            let mut ctl = ScriptedController { script: script.clone(), at: 0 };
            sim.run(&mut ctl, Seconds::from_milli(200.0))
        };
        prop_assert_eq!(go(), go());
    }
}
