//! Integration tests of the full simulated system: controller A/B runs,
//! energy conservation across crates, and determinism.

use hems_repro::core::{HolisticController, Mode};
use hems_repro::imgproc::{Frame, RecognitionPipeline, Shape};
use hems_repro::pv::Irradiance;
use hems_repro::sim::{
    Controller, FixedVoltageController, Job, LightProfile, Simulation, SystemConfig,
};
use hems_repro::units::{Cycles, Seconds, Volts};

fn run_for(
    controller: &mut dyn Controller,
    light: LightProfile,
    v0: f64,
    duration_ms: f64,
) -> hems_repro::sim::SimulationSummary {
    let config = SystemConfig::paper_sc_system().expect("valid config");
    let mut sim = Simulation::new(config, light, Volts::new(v0)).expect("valid sim");
    sim.run(controller, Seconds::from_milli(duration_ms))
}

#[test]
fn holistic_outruns_fixed_voltage_under_steady_sun() {
    let light = || LightProfile::constant(Irradiance::FULL_SUN);
    let mut holistic = HolisticController::paper_default(Mode::MaxPerformance);
    let smart = run_for(&mut holistic, light(), 1.1, 400.0);
    // The conventional designer's "max performance" guess over-draws and
    // duty-cycles through power-on resets.
    let mut naive = FixedVoltageController::new(Volts::new(0.7));
    let fixed = run_for(&mut naive, light(), 1.1, 400.0);
    assert!(
        smart.total_cycles.count() > fixed.total_cycles.count(),
        "holistic {:.1} M <= fixed {:.1} M",
        smart.total_cycles.count() / 1e6,
        fixed.total_cycles.count() / 1e6
    );
    assert!(smart.brownouts <= fixed.brownouts);
}

#[test]
fn full_day_with_recognition_workload_is_productive() {
    // End-to-end: frames through the real recognition pipeline, charged to
    // the CPU model, under a compressed diurnal arc.
    let pipeline = RecognitionPipeline::paper_default().expect("trainable");
    let config = SystemConfig::paper_sc_system().expect("valid config");
    let light = LightProfile::diurnal(Irradiance::FULL_SUN, Seconds::new(4.0));
    let mut sim = Simulation::new(config, light, Volts::new(0.8)).expect("valid sim");
    for i in 0..400u64 {
        let frame = Frame::synthetic_shape(64, 64, Shape::ALL[(i % 4) as usize], i).expect("frame");
        sim.enqueue(Job::new(pipeline.frame_cost(&frame)));
    }
    let mut ctl = HolisticController::paper_default(Mode::MaxPerformance);
    let summary = sim.run(&mut ctl, Seconds::new(4.0));
    assert!(
        summary.completed_jobs > 50,
        "only {} frames in a 4 s day",
        summary.completed_jobs
    );
    // Energy balance: harvested == delivered + losses + storage delta,
    // within integration error.
    let e0 = sim
        .config()
        .capacitor
        .capacitance()
        .stored_energy(Volts::new(0.8));
    let e1 = sim
        .config()
        .capacitor
        .capacitance()
        .stored_energy(summary.final_v_solar);
    let lhs = summary.ledger.harvested + (e0 - e1);
    let rhs = summary.ledger.delivered_to_cpu
        + summary.ledger.regulator_loss
        + summary.ledger.standby_loss;
    let err = (lhs - rhs).abs().joules() / rhs.joules().max(1e-9);
    assert!(err < 0.02, "energy imbalance {:.2}%", err * 100.0);
}

#[test]
fn min_energy_mode_uses_less_power_than_max_performance() {
    let light = || LightProfile::constant(Irradiance::FULL_SUN);
    let mut max_perf = HolisticController::paper_default(Mode::MaxPerformance);
    let fast = run_for(&mut max_perf, light(), 1.1, 300.0);
    let mut min_energy = HolisticController::paper_default(Mode::MinEnergy);
    let frugal = run_for(&mut min_energy, light(), 1.1, 300.0);
    assert!(frugal.ledger.delivered_to_cpu < fast.ledger.delivered_to_cpu);
    // But it still computes (it is not just sleeping).
    assert!(frugal.total_cycles.count() > 1e6);
    // And it is more efficient per cycle.
    let fast_epc = fast.ledger.delivered_to_cpu.joules() / fast.total_cycles.count();
    let frugal_epc = frugal.ledger.delivered_to_cpu.joules() / frugal.total_cycles.count();
    assert!(
        frugal_epc < fast_epc,
        "MinEnergy {frugal_epc:.2e} J/cyc >= MaxPerf {fast_epc:.2e} J/cyc"
    );
}

#[test]
fn deadline_mode_meets_a_feasible_deadline_under_dimming_light() {
    // Feasible deadline under dimming light: holistic meets it.
    let config = SystemConfig::paper_sc_system().expect("valid config");
    let light = LightProfile::step(
        Irradiance::FULL_SUN,
        Irradiance::HALF_SUN,
        Seconds::from_milli(10.0),
    );
    let mut sim = Simulation::new(config, light, Volts::new(1.2)).expect("valid sim");
    let deadline = Seconds::from_milli(50.0);
    sim.enqueue(Job::with_deadline(Cycles::new(2.0e6), deadline));
    let mut ctl = HolisticController::paper_default(Mode::Deadline {
        deadline,
        beta: 0.2,
    });
    let summary = sim.run(&mut ctl, Seconds::from_milli(55.0));
    assert_eq!(summary.completed_jobs, 1);
    assert!(sim.jobs().missed_deadlines(sim.now()).is_empty());
}

#[test]
fn simulations_are_deterministic_across_runs() {
    let go = || {
        let light = LightProfile::clouds(
            Irradiance::QUARTER_SUN,
            Irradiance::FULL_SUN,
            Seconds::from_milli(100.0),
            Seconds::new(2.0),
            777,
        );
        let mut ctl = HolisticController::paper_default(Mode::MaxPerformance);
        run_for(&mut ctl, light, 1.1, 2000.0)
    };
    let a = go();
    let b = go();
    assert_eq!(a, b);
}

#[test]
fn dark_nights_duty_cycle_through_power_on_reset() {
    // Day-night cycling: the node dies at night and resumes cleanly at dawn.
    let config = SystemConfig::paper_sc_system().expect("valid config");
    let light = LightProfile::step(
        Irradiance::DARK,
        Irradiance::FULL_SUN,
        Seconds::from_milli(300.0),
    );
    let mut sim = Simulation::new(config, light, Volts::new(0.9)).expect("valid sim");
    let mut ctl = HolisticController::paper_default(Mode::MaxPerformance);
    let summary = sim.run(&mut ctl, Seconds::from_milli(800.0));
    assert!(summary.brownouts >= 1);
    assert!(summary.ledger.brownout_time.is_positive());
    // After dawn it computes again.
    assert!(summary.total_cycles.count() > 1e6);
    assert!(summary.final_v_solar > Volts::new(0.45));
}
