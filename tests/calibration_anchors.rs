//! Regression pins for every calibration anchor in DESIGN.md.
//!
//! These are deliberately *tight* (unlike the band assertions in the unit
//! tests): if a model refactor moves any anchor the paper quotes, this
//! suite names exactly which one.

use hems_repro::cpu::Microprocessor;
use hems_repro::pv::{Irradiance, SolarCell};
use hems_repro::regulator::{BuckRegulator, Ldo, Regulator, ScRegulator};
use hems_repro::units::{Volts, Watts};

fn eta(r: &dyn Regulator, v_out: f64, p_mw: f64) -> f64 {
    r.efficiency(Volts::new(1.2), Volts::new(v_out), Watts::from_milli(p_mw))
        .expect("anchor operating point is valid")
        .percent()
}

#[test]
fn regulator_anchor_points() {
    // Fig. 3: LDO 45% @ 0.55 V (ours 45.8% = 0.55/1.2).
    assert!((eta(&Ldo::paper_65nm(), 0.55, 10.0) - 45.8).abs() < 0.2);
    // Fig. 4: SC 67% / 64% @ 0.55 V.
    assert!((eta(&ScRegulator::paper_65nm(), 0.55, 10.0) - 67.0).abs() < 0.5);
    assert!((eta(&ScRegulator::paper_65nm(), 0.55, 5.0) - 64.0).abs() < 0.5);
    // Fig. 5: buck 63% / 58% @ 0.55 V.
    assert!((eta(&BuckRegulator::paper_65nm(), 0.55, 10.0) - 63.0).abs() < 0.5);
    assert!((eta(&BuckRegulator::paper_65nm(), 0.55, 5.0) - 58.0).abs() < 0.5);
}

#[test]
fn solar_cell_anchor_points() {
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    assert!((cell.short_circuit_current().to_milli() - 15.0).abs() < 0.05);
    assert!((cell.open_circuit_voltage().volts() - 1.5).abs() < 0.02);
    let mpp = cell.mpp().expect("full sun has an MPP");
    assert!(
        (mpp.voltage.volts() - 1.113).abs() < 0.01,
        "{}",
        mpp.voltage
    );
    assert!(
        (mpp.power.to_milli() - 14.13).abs() < 0.1,
        "{:?}",
        mpp.power
    );
}

#[test]
fn processor_anchor_points() {
    let cpu = Microprocessor::paper_65nm();
    // Fig. 11a: ~1.2 GHz at 1.0 V.
    let f_top = cpu.max_frequency(Volts::new(1.0));
    assert!((f_top.hertz() / 1e9 - 1.2).abs() < 0.005);
    // 66.7 MHz at 0.5 V -> 15 ms per 1.0 Mcycle frame.
    let f_half = cpu.max_frequency(Volts::new(0.5));
    assert!((f_half.to_mega() - 66.667).abs() < 0.05);
    // ~10 mW full load at 0.55 V (10.33 mW = 9.90 dynamic + 0.43 leakage).
    let p = cpu.power_at_max_speed(Volts::new(0.55)).unwrap();
    assert!((p.to_milli() - 10.33).abs() < 0.1, "{:?}", p);
    // Conventional MEP at 0.459 V.
    let mep = cpu.conventional_mep().unwrap();
    assert!((mep.vdd.volts() - 0.459).abs() < 0.005, "{}", mep.vdd);
}

#[test]
fn holistic_anchor_points() {
    use hems_repro::core::{mep, optimal_voltage};
    let cpu = Microprocessor::paper_65nm();
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    let sc = ScRegulator::paper_65nm();
    // Fig. 6b reproduction values (see EXPERIMENTS.md).
    let plan = optimal_voltage::optimal_regulated_plan(&cell, &sc, &cpu).unwrap();
    let baseline = optimal_voltage::unregulated_baseline(&cell, &cpu).unwrap();
    assert!((baseline.vdd.volts() - 0.533).abs() < 0.005);
    assert!((plan.vdd.volts() - 0.548).abs() < 0.005);
    assert!((plan.power_gain_vs(&baseline) - 1.255).abs() < 0.02);
    assert!((plan.speedup_vs(&baseline) - 1.197).abs() < 0.02);
    // Fig. 7b reproduction values.
    let cmp = mep::compare_meps(&cpu, &sc, Volts::new(1.1)).unwrap();
    assert!(
        (cmp.holistic.vdd.volts() - 0.519).abs() < 0.005,
        "{}",
        cmp.holistic.vdd
    );
    assert!(
        (cmp.energy_savings() - 0.258).abs() < 0.02,
        "{}",
        cmp.energy_savings()
    );
}
