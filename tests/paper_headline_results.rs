//! Integration tests asserting the paper's headline numbers end-to-end,
//! through the `hems_repro` facade (which also exercises the re-exports).

use hems_repro::core::{analysis, mep, BypassPolicy, SprintPlan};
use hems_repro::cpu::Microprocessor;
use hems_repro::imgproc::{Frame, RecognitionPipeline, Shape};
use hems_repro::pv::{Irradiance, SolarCell, SolarCellModel};
use hems_repro::regulator::ScRegulator;
use hems_repro::storage::Capacitor;
use hems_repro::units::{Seconds, Volts, Watts};

#[test]
fn headline_sc_gains_match_fig6() {
    // Paper Fig. 6b: "31% more power ... 18% speedup" with the SC regulator
    // under outdoor strong light.
    let cpu = Microprocessor::paper_65nm();
    let h = analysis::headline_numbers(&cpu).expect("full sun analysis");
    assert!(
        (0.15..0.45).contains(&h.sc_power_gain),
        "SC power gain {:.1}% (paper ~31%)",
        h.sc_power_gain * 100.0
    );
    assert!(
        (0.05..0.35).contains(&h.sc_speedup),
        "SC speedup {:.1}% (paper ~18%)",
        h.sc_speedup * 100.0
    );
}

#[test]
fn headline_mep_savings_match_fig7b() {
    // Paper Section V: MEP shifts up by "up to 0.1V" for "up to 31% energy
    // reduction compared with using conventional MEP".
    let cpu = Microprocessor::paper_65nm();
    let h = analysis::headline_numbers(&cpu).expect("full sun analysis");
    assert!(
        (0.15..0.40).contains(&h.mep_savings),
        "MEP savings {:.1}% (paper: up to 31%)",
        h.mep_savings * 100.0
    );
    assert!(
        (0.03..0.12).contains(&h.mep_shift_volts),
        "MEP shift {:.0} mV (paper: up to 100 mV)",
        h.mep_shift_volts * 1e3
    );
}

#[test]
fn ldo_never_beats_the_raw_cell() {
    // Paper Section IV-A: the LDO's linear efficiency cancels the MPP gain.
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    let cpu = Microprocessor::paper_65nm();
    let a = analysis::fig6(&cell, &cpu).expect("feasible");
    let ldo = a
        .plan(hems_repro::regulator::RegulatorKind::Ldo)
        .expect("LDO plan");
    assert!(ldo.power_gain_vs(&a.unregulated) < 1.0);
}

#[test]
fn bypass_crossover_sits_near_quarter_sun() {
    // Paper Fig. 7a: regulation wins at 100%/50% light, bypass below ~25%.
    let policy = BypassPolicy::calibrate(
        &SolarCellModel::kxob22(),
        &ScRegulator::paper_65nm(),
        &Microprocessor::paper_65nm(),
        Irradiance::new(0.05).unwrap(),
        Irradiance::FULL_SUN,
    )
    .expect("crossover exists");
    let g = policy.crossover().fraction();
    assert!(
        (0.2..0.6).contains(&g),
        "crossover at {:.0}% sun",
        g * 100.0
    );
    assert!(policy.should_bypass(Irradiance::QUARTER_SUN));
    assert!(!policy.should_bypass(Irradiance::FULL_SUN));
}

#[test]
fn a_frame_takes_about_15ms_at_half_volt() {
    // Paper Section VII: "For a low resolution image with 64×64 pixels, it
    // takes about 15ms to process at 0.5V." — checked through the *real*
    // pipeline's cycle count and the CPU model together.
    let pipeline = RecognitionPipeline::paper_default().expect("trainable");
    let frame = Frame::synthetic_shape(64, 64, Shape::Cross, 123).expect("valid frame");
    let result = pipeline.process(&frame);
    let cpu = Microprocessor::paper_65nm();
    let op = cpu.max_speed_point(Volts::new(0.5)).expect("in window");
    let t = cpu.execution_time(result.cycles, op);
    assert!(
        (t.to_milli() - 15.0).abs() < 1.5,
        "frame took {:.2} ms at 0.5 V (paper: ~15 ms)",
        t.to_milli()
    );
}

#[test]
fn sprinting_gains_solar_energy_at_20_percent() {
    // Paper Fig. 11b: "10% more energy was absorbed from solar cell by
    // sprinting operation at 20% rate".
    let dim = SolarCell::kxob22(Irradiance::QUARTER_SUN);
    let mut cap = Capacitor::paper_board();
    cap.set_voltage(Volts::new(1.2)).unwrap();
    let plan = SprintPlan::paper_20_percent(Seconds::from_milli(30.0), Watts::from_milli(6.0))
        .expect("valid plan");
    let cmp = plan.compare_against_constant(&dim, &cap, Seconds::from_micro(20.0));
    let gain = cmp.extra_energy_fraction();
    assert!(
        (0.02..0.30).contains(&gain),
        "sprint gain {:.1}% (paper ~10%)",
        gain * 100.0
    );
}

#[test]
fn holistic_mep_is_cheaper_than_conventional_through_every_regulator() {
    let cpu = Microprocessor::paper_65nm();
    let v_in = Volts::new(1.1);
    for (kind, cmp) in analysis::fig7b(&cpu, v_in) {
        assert!(
            cmp.energy_savings() >= -1e-9,
            "{kind}: negative savings {:.2}%",
            cmp.energy_savings() * 100.0
        );
    }
    // And the system energy really is what the components say it is.
    let sc = ScRegulator::paper_65nm();
    let at = mep::system_energy_per_cycle(&cpu, &sc, v_in, Volts::new(0.55)).unwrap();
    let breakdown = cpu.energy_breakdown(Volts::new(0.55)).unwrap();
    assert!(at > breakdown.total());
}
