//! Regression pins on the holistic controller's closed-loop quality:
//! it must stay within a few percent of a light-omniscient oracle.
//!
//! These guards exist because controller regressions are silent — every
//! behavioural test can pass while the loop quietly limit-cycles away 25 %
//! of the throughput (which is exactly what happened during development;
//! see DESIGN.md section 7).

use hems_repro::core::{optimal_voltage, HolisticController, Mode};
use hems_repro::cpu::Microprocessor;
use hems_repro::pv::{Irradiance, SolarCell};
use hems_repro::regulator::ScRegulator;
use hems_repro::sim::{Controller, FixedVoltageController, LightProfile, Simulation, SystemConfig};
use hems_repro::units::{Seconds, Volts};

/// Runs a controller for 2 s of constant light; returns executed megacycles.
fn run(g: Irradiance, ctl: &mut dyn Controller) -> f64 {
    let mut config = SystemConfig::paper_sc_system().expect("valid config");
    config.cell = SolarCell::kxob22(g);
    let mut sim =
        Simulation::new(config, LightProfile::constant(g), Volts::new(1.1)).expect("valid sim");
    sim.run(ctl, Seconds::new(2.0)).total_cycles.count() / 1e6
}

fn oracle_fraction(g: Irradiance) -> f64 {
    let cell = SolarCell::kxob22(g);
    let cpu = Microprocessor::paper_65nm();
    let sc = ScRegulator::paper_65nm();
    let plan = optimal_voltage::optimal_regulated_plan(&cell, &sc, &cpu).expect("feasible");
    let mut oracle = FixedVoltageController::with_clock_fraction(
        plan.vdd,
        (plan.clock_fraction * 0.99).clamp(1e-3, 1.0),
    );
    let oracle_cycles = run(g, &mut oracle);
    let mut holistic = HolisticController::paper_default(Mode::MaxPerformance);
    let holistic_cycles = run(g, &mut holistic);
    holistic_cycles / oracle_cycles
}

#[test]
fn holistic_is_near_oracle_at_full_sun() {
    let fraction = oracle_fraction(Irradiance::FULL_SUN);
    assert!(
        fraction > 0.93,
        "holistic achieved only {:.1}% of the full-sun oracle",
        fraction * 100.0
    );
}

#[test]
fn holistic_is_near_oracle_at_half_sun() {
    // This case crosses the SC ratio cliff; it pins the ratio-aware
    // target floor and the recalibration machinery.
    let fraction = oracle_fraction(Irradiance::HALF_SUN);
    assert!(
        fraction > 0.90,
        "holistic achieved only {:.1}% of the half-sun oracle",
        fraction * 100.0
    );
}
