//! `hems` — command-line front end for the SOCC 2018 reproduction.
//!
//! ```text
//! hems iv --light 0.5                    # I-V / P-V table at a light level
//! hems plan --light 1.0 --regulator sc   # eqs. 1-4 optimal operating plan
//! hems mep --regulator buck              # conventional vs holistic MEP
//! hems simulate --mode maxperf --duration 0.5 --csv trace.csv
//! ```
//!
//! Argument parsing is deliberately dependency-free (no clap): flags are
//! `--name value` pairs after a subcommand.

use hems_repro::core::{analysis, mep, optimal_voltage, HolisticController, Mode};
use hems_repro::cpu::Microprocessor;
use hems_repro::pv::{Irradiance, SolarCell};
use hems_repro::regulator::{AnyRegulator, BuckRegulator, Ldo, Regulator, ScRegulator};
use hems_repro::sim::{LightProfile, Simulation, SystemConfig};
use hems_repro::units::{Seconds, Volts};
use std::collections::BTreeMap;
use std::process::ExitCode;

type Flags = BTreeMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, got '{key}'"));
        };
        let Some(value) = it.next() else {
            return Err(format!("flag --{name} needs a value"));
        };
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn light_from(flags: &Flags) -> Result<Irradiance, String> {
    let raw = flags.get("light").map(String::as_str).unwrap_or("1.0");
    let fraction: f64 = raw
        .parse()
        .map_err(|_| format!("--light expects a number in [0, 2], got '{raw}'"))?;
    Irradiance::new(fraction).map_err(|e| e.to_string())
}

fn regulator_from(flags: &Flags) -> Result<AnyRegulator, String> {
    match flags.get("regulator").map(String::as_str).unwrap_or("sc") {
        "sc" => Ok(AnyRegulator::from(ScRegulator::paper_65nm())),
        "buck" => Ok(AnyRegulator::from(BuckRegulator::paper_65nm())),
        "ldo" => Ok(AnyRegulator::from(Ldo::paper_65nm())),
        other => Err(format!(
            "--regulator must be one of sc|buck|ldo, got '{other}'"
        )),
    }
}

fn cmd_iv(flags: &Flags) -> Result<(), String> {
    let cell = SolarCell::kxob22(light_from(flags)?);
    let curve = cell.iv_curve(25);
    println!("V (V)    I (mA)   P (mW)");
    for p in curve.points() {
        println!(
            "{:6.3}  {:7.3}  {:7.3}",
            p.voltage.volts(),
            p.current.to_milli(),
            p.power().to_milli()
        );
    }
    match cell.mpp() {
        Ok(mpp) => println!("\n{mpp}"),
        Err(_) => println!("\nno MPP (dark)"),
    }
    Ok(())
}

fn cmd_plan(flags: &Flags) -> Result<(), String> {
    let cell = SolarCell::kxob22(light_from(flags)?);
    let regulator = regulator_from(flags)?;
    let cpu = Microprocessor::paper_65nm();
    let baseline = optimal_voltage::unregulated_baseline(&cell, &cpu)
        .map_err(|e| format!("unregulated baseline: {e}"))?;
    println!(
        "unregulated : {:.3} V, {:7.1} MHz, {:6.2} mW",
        baseline.vdd.volts(),
        baseline.frequency.to_mega(),
        baseline.power.to_milli()
    );
    match optimal_voltage::optimal_regulated_plan(&cell, &regulator, &cpu) {
        Ok(plan) => {
            println!(
                "{:>11} : {:.3} V, {:7.1} MHz, {:6.2} mW into the core \
                 (clock fraction {:.2}, eta {:.1}%)",
                regulator.kind().to_string(),
                plan.vdd.volts(),
                plan.frequency.to_mega(),
                plan.p_cpu.to_milli(),
                plan.clock_fraction,
                plan.efficiency.percent()
            );
            println!(
                "vs unregulated: {:+.1}% power, {:+.1}% speed",
                (plan.power_gain_vs(&baseline) - 1.0) * 100.0,
                (plan.speedup_vs(&baseline) - 1.0) * 100.0
            );
        }
        Err(e) => println!("{:>11} : infeasible ({e})", regulator.kind().to_string()),
    }
    Ok(())
}

fn cmd_mep(flags: &Flags) -> Result<(), String> {
    let regulator = regulator_from(flags)?;
    let cpu = Microprocessor::paper_65nm();
    let v_in = Volts::new(1.1);
    let cmp = mep::compare_meps(&cpu, &regulator, v_in).map_err(|e| e.to_string())?;
    println!(
        "conventional MEP : {:.3} V ({:.1} pJ/cycle at the core)",
        cmp.conventional.vdd.volts(),
        cmp.conventional.energy_per_cycle.value() * 1e12
    );
    println!(
        "holistic MEP     : {:.3} V ({:.1} pJ/cycle at the source)",
        cmp.holistic.vdd.volts(),
        cmp.holistic.energy_per_cycle.value() * 1e12
    );
    println!(
        "shift {:+.0} mV, savings {:.1}% vs running the regulated system at the conventional point",
        cmp.voltage_shift().to_milli(),
        cmp.energy_savings() * 100.0
    );
    Ok(())
}

fn cmd_headline() -> Result<(), String> {
    let cpu = Microprocessor::paper_65nm();
    let h = analysis::headline_numbers(&cpu).map_err(|e| e.to_string())?;
    println!(
        "SC power gain vs unregulated : {:+.1}% (paper ~ +31%)",
        h.sc_power_gain * 100.0
    );
    println!(
        "SC speedup vs unregulated    : {:+.1}% (paper ~ +18%)",
        h.sc_speedup * 100.0
    );
    println!(
        "MEP savings (holistic)       : {:.1}%  (paper: up to 31%)",
        h.mep_savings * 100.0
    );
    println!(
        "MEP voltage shift            : {:+.0} mV (paper: up to +100 mV)",
        h.mep_shift_volts * 1e3
    );
    Ok(())
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let mode = match flags.get("mode").map(String::as_str).unwrap_or("maxperf") {
        "maxperf" => Mode::MaxPerformance,
        "minenergy" => Mode::MinEnergy,
        other => return Err(format!("--mode must be maxperf|minenergy, got '{other}'")),
    };
    let duration: f64 = flags
        .get("duration")
        .map(String::as_str)
        .unwrap_or("0.5")
        .parse()
        .map_err(|_| "--duration expects seconds".to_string())?;
    if !(duration > 0.0 && duration <= 3600.0) {
        return Err("--duration must be in (0, 3600] seconds".into());
    }
    let config = SystemConfig::paper_sc_system().map_err(|e| e.to_string())?;
    let light = LightProfile::constant(light_from(flags)?);
    let mut sim = Simulation::new(config, light, Volts::new(1.0)).map_err(|e| e.to_string())?;
    if flags.contains_key("csv") {
        sim.enable_recorder(20);
    }
    let mut ctl = HolisticController::paper_default(mode);
    let summary = sim.run(&mut ctl, Seconds::new(duration));
    println!(
        "harvested    : {:10.1} uJ",
        summary.ledger.harvested.to_micro()
    );
    println!(
        "delivered    : {:10.1} uJ",
        summary.ledger.delivered_to_cpu.to_micro()
    );
    println!(
        "cycles       : {:10.2} M",
        summary.total_cycles.count() / 1e6
    );
    println!(
        "duty cycle   : {:10.1} %",
        summary.ledger.duty_cycle() * 100.0
    );
    println!("brownouts    : {:10}", summary.brownouts);
    println!("final node   : {:10.3} V", summary.final_v_solar.volts());
    if let Some(path) = flags.get("csv") {
        let recorder = sim.recorder().expect("recorder enabled");
        let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        recorder
            .write_csv(std::io::BufWriter::new(file))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace        : {path} ({} samples)", recorder.len());
    }
    Ok(())
}

fn cmd_classify(flags: &Flags) -> Result<(), String> {
    use hems_repro::imgproc::{read_pgm, Frame, RecognitionPipeline, Shape};
    let pipeline = RecognitionPipeline::paper_default().map_err(|e| e.to_string())?;
    let frame = if let Some(path) = flags.get("pgm") {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        read_pgm(std::io::BufReader::new(file)).map_err(|e| e.to_string())?
    } else if let Some(shape) = flags.get("shape") {
        let shape = match shape.as_str() {
            "rectangle" => Shape::Rectangle,
            "cross" => Shape::Cross,
            "disc" => Shape::Disc,
            "stripes" => Shape::Stripes,
            other => {
                return Err(format!(
                    "--shape must be rectangle|cross|disc|stripes, got '{other}'"
                ))
            }
        };
        let seed = flags
            .get("seed")
            .map(|s| s.parse::<u64>().map_err(|_| "--seed expects an integer"))
            .transpose()?
            .unwrap_or(0);
        Frame::synthetic_shape(64, 64, shape, seed).map_err(|e| e.to_string())?
    } else {
        return Err("classify needs --pgm <path> or --shape <name>".into());
    };
    let result = pipeline
        .try_process(&frame)
        .map_err(|e| format!("pipeline rejected the frame: {e}"))?;
    let label_name = ["rectangle", "cross", "disc", "stripes"]
        .get(result.label)
        .copied()
        .unwrap_or("unknown");
    println!(
        "label {} ({label_name}), distance {:.3}, {:.2} Mcycles",
        result.label,
        result.distance,
        result.cycles.count() / 1e6
    );
    let cpu = Microprocessor::paper_65nm();
    let op = cpu
        .max_speed_point(Volts::new(0.5))
        .map_err(|e| e.to_string())?;
    println!(
        "at 0.5 V this frame takes {:.2} ms (the paper's ~15 ms operating point)",
        cpu.execution_time(result.cycles, op).to_milli()
    );
    Ok(())
}

fn usage() -> String {
    "usage: hems <command> [--flag value ...]\n\
     commands:\n\
     \x20 iv        --light <0..2>                     print the I-V / P-V table\n\
     \x20 plan      --light <0..2> --regulator sc|buck|ldo   eqs. 1-4 optimal plan\n\
     \x20 mep       --regulator sc|buck|ldo            conventional vs holistic MEP\n\
     \x20 headline                                     the paper's headline numbers\n\
     \x20 simulate  --mode maxperf|minenergy --light <0..2> --duration <s> [--csv <path>]\n\
     \x20 classify  --pgm <file> | --shape rectangle|cross|disc|stripes [--seed n]"
        .to_string()
}

fn run(args: Vec<String>) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "iv" => cmd_iv(&flags),
        "plan" => cmd_plan(&flags),
        "mep" => cmd_mep(&flags),
        "headline" => cmd_headline(),
        "simulate" => cmd_simulate(&flags),
        "classify" => cmd_classify(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let flags = parse_flags(&strs(&["--light", "0.5", "--regulator", "sc"])).unwrap();
        assert_eq!(flags["light"], "0.5");
        assert_eq!(flags["regulator"], "sc");
        assert!(parse_flags(&strs(&["light"])).is_err());
        assert!(parse_flags(&strs(&["--light"])).is_err());
    }

    #[test]
    fn light_and_regulator_parsing() {
        let flags = parse_flags(&strs(&["--light", "0.25"])).unwrap();
        assert_eq!(light_from(&flags).unwrap(), Irradiance::QUARTER_SUN);
        let flags = parse_flags(&strs(&["--light", "nope"])).unwrap();
        assert!(light_from(&flags).is_err());
        let flags = parse_flags(&strs(&["--regulator", "buck"])).unwrap();
        assert!(matches!(
            regulator_from(&flags).unwrap(),
            AnyRegulator::Buck(_)
        ));
        let flags = parse_flags(&strs(&["--regulator", "boost"])).unwrap();
        assert!(regulator_from(&flags).is_err());
    }

    #[test]
    fn commands_run_end_to_end() {
        assert!(run(strs(&["iv", "--light", "1.0"])).is_ok());
        assert!(run(strs(&["plan", "--light", "1.0", "--regulator", "sc"])).is_ok());
        assert!(run(strs(&["mep", "--regulator", "buck"])).is_ok());
        assert!(run(strs(&["headline"])).is_ok());
        assert!(run(strs(&["simulate", "--duration", "0.05"])).is_ok());
        assert!(run(strs(&["classify", "--shape", "disc", "--seed", "3"])).is_ok());
        assert!(run(strs(&["classify"])).is_err());
        assert!(run(strs(&["classify", "--shape", "hexagon"])).is_err());
        assert!(run(strs(&["help"])).is_ok());
    }

    #[test]
    fn bad_commands_error() {
        assert!(run(vec![]).is_err());
        assert!(run(strs(&["frobnicate"])).is_err());
        assert!(run(strs(&["simulate", "--mode", "warp"])).is_err());
        assert!(run(strs(&["simulate", "--duration", "-1"])).is_err());
    }
}
