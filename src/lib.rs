//! Workspace façade for the SOCC 2018 HEMS reproduction.
//!
//! Re-exports every crate in the workspace under one roof so examples and
//! integration tests can `use hems_repro::...`. See the individual crates
//! for detailed documentation; start with [`hems_core`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hems_core as core;
pub use hems_cpu as cpu;
pub use hems_imgproc as imgproc;
pub use hems_intermittent as intermittent;
pub use hems_mppt as mppt;
pub use hems_pv as pv;
pub use hems_regulator as regulator;
pub use hems_sim as sim;
pub use hems_storage as storage;
pub use hems_units as units;
