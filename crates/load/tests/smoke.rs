//! End-to-end load-generator smoke: a paced open-loop run against an
//! in-process router-fronted tier, and the digest transparency check.

use hems_load::{run, RunConfig, WorkloadConfig};
use hems_router::{route, RouterConfig, RouterHandle};
use hems_serve::{serve, ServeConfig, ServerHandle};
use std::time::Duration;

fn tier(shards: usize) -> (Vec<ServerHandle>, RouterHandle) {
    let backends: Vec<ServerHandle> = (0..shards)
        .map(|shard| {
            serve(
                "127.0.0.1:0",
                ServeConfig {
                    threads: Some(1),
                    cache_capacity: 64,
                    shard_id: Some(shard as u64),
                    ..ServeConfig::default()
                },
            )
            .expect("bind backend")
        })
        .collect();
    let router = route(
        "127.0.0.1:0",
        RouterConfig {
            backends: backends.iter().map(ServerHandle::addr).collect(),
            ..RouterConfig::default()
        },
    )
    .expect("bind router");
    (backends, router)
}

#[test]
fn paced_run_answers_every_request_with_sane_stats() {
    let (_backends, router) = tier(2);
    let load = WorkloadConfig {
        keyspace: 16,
        base_rate_hz: 150.0,
        wave_amplitude: 0.5,
        duration: Duration::from_millis(400),
        seed: 5,
        ..WorkloadConfig::default()
    };
    let arrivals = load.arrivals();
    assert!(!arrivals.is_empty());
    let report = run(&RunConfig::paced(router.addr()), &arrivals).expect("run");
    assert_eq!(report.sent, arrivals.len() as u64);
    assert_eq!(report.errors, 0, "no errors against a healthy tier");
    assert_eq!(report.ok, report.sent);
    assert!(report.goodput_hz > 0.0);
    assert!(report.p50_ms >= 0.0 && report.p99_ms >= report.p50_ms);
    // 16 keys over a 64-entry cache: the stream re-hits keys quickly.
    assert!(report.cached > 0, "repeat keys must hit the plan cache");
}

#[test]
fn router_is_digest_transparent_over_a_serial_stream() {
    let direct = serve(
        "127.0.0.1:0",
        ServeConfig {
            threads: Some(1),
            cache_capacity: 64,
            ..ServeConfig::default()
        },
    )
    .expect("bind direct");
    let (_backends, router) = tier(1);
    let load = WorkloadConfig {
        keyspace: 12,
        base_rate_hz: 1e6,
        duration: Duration::from_micros(60),
        seed: 13,
        ..WorkloadConfig::default()
    };
    let arrivals = load.arrivals();
    assert!(!arrivals.is_empty());
    let a = run(&RunConfig::saturate(direct.addr(), 1), &arrivals).expect("direct");
    let b = run(&RunConfig::saturate(router.addr(), 1), &arrivals).expect("routed");
    assert_eq!(a.errors, 0);
    assert_eq!(b.errors, 0);
    assert_eq!(a.digest, b.digest, "routed responses diverged from direct");
}
