//! The open-loop replay engine: send a schedule at its scheduled times,
//! measure latency from the *scheduled* start, and aggregate.
//!
//! ## Why open-loop
//!
//! A closed-loop generator (send, wait, send) slows down exactly when
//! the server does, so a saturated server sees a polite client and the
//! measured latencies miss the queueing delay real independent clients
//! would have suffered — the classic *coordinated omission* trap. Here
//! each worker sends at the schedule regardless of response progress on
//! its own connection, and every latency sample is
//! `response_received − scheduled_send`, so server-side stalls show up
//! in p99 instead of vanishing into a slower offered rate.
//!
//! [`RunConfig::pace`] = `false` disables the schedule (saturate mode):
//! workers send back-to-back to measure peak throughput, and latency is
//! measured from the actual send.
//!
//! ## Digest
//!
//! Each worker folds an order-independent digest over its raw response
//! lines (wrapping sum of per-line FNV-1a hashes). Two runs that
//! produced the same response *multiset* — e.g. the same stream sent
//! directly and through a router that relays verbatim — have equal
//! digests regardless of connection interleaving.

use crate::workload::Arrival;
use hems_bench::harness::percentile;
use hems_obs::clock::monotonic_ns;
use hems_serve::json::{self, Value};
use hems_serve::wire::{read_line_bounded, send_line};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How a schedule is replayed against one target address.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Address of the serve/router tier under load.
    pub target: SocketAddr,
    /// Concurrent connections (schedule is dealt round-robin).
    pub connections: usize,
    /// `true` = honor the schedule (open-loop); `false` = saturate.
    pub pace: bool,
    /// Per-response read deadline.
    pub request_timeout: Duration,
    /// Longest accepted response line.
    pub max_line_bytes: usize,
}

impl RunConfig {
    /// A paced open-loop run against `target` with 4 connections.
    pub fn paced(target: SocketAddr) -> RunConfig {
        RunConfig {
            target,
            connections: 4,
            pace: true,
            request_timeout: Duration::from_secs(10),
            max_line_bytes: 256 * 1024,
        }
    }

    /// A saturate-mode run against `target` with `connections` workers.
    pub fn saturate(target: SocketAddr, connections: usize) -> RunConfig {
        RunConfig {
            connections: connections.max(1),
            pace: false,
            ..RunConfig::paced(target)
        }
    }
}

/// Aggregated outcome of one replay.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Requests sent.
    pub sent: u64,
    /// `status:"ok"` responses.
    pub ok: u64,
    /// `ok` responses answered from a plan cache (`cached:true`).
    pub cached: u64,
    /// `status:"error"` responses plus transport failures.
    pub errors: u64,
    /// `status:"overloaded"` responses (admission-control refusals).
    pub overloaded: u64,
    /// Wall time from the shared start to the last response.
    pub elapsed_ns: u64,
    /// Offered rate, Hz. Paced runs divide by the *schedule* horizon —
    /// a target that falls behind cannot shrink the offer it was given
    /// — saturate runs divide by elapsed wall time.
    pub offered_hz: f64,
    /// `ok / elapsed` — successfully answered rate, Hz.
    pub goodput_hz: f64,
    /// Median latency, milliseconds (from scheduled start when paced).
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Order-independent digest over all raw response lines.
    pub digest: u64,
}

impl RunReport {
    /// Errors as a fraction of requests sent.
    pub fn error_rate(&self) -> f64 {
        ratio(self.errors, self.sent)
    }

    /// Overload refusals as a fraction of requests sent.
    pub fn overload_rate(&self) -> f64 {
        ratio(self.overloaded, self.sent)
    }

    /// Cache hits as a fraction of `ok` responses.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.cached, self.ok)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// FNV-1a over a line's bytes (the digest primitive).
pub fn fnv_line(line: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in line.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What one worker thread brings home.
#[derive(Debug, Default)]
struct WorkerReport {
    sent: u64,
    ok: u64,
    cached: u64,
    errors: u64,
    overloaded: u64,
    digest: u64,
    latencies_ns: Vec<f64>,
    end_ns: u64,
}

/// Replays `arrivals` against `config.target` and aggregates.
///
/// # Errors
///
/// Connection-setup failures (the target is down before the run even
/// starts) and worker-thread panics surface as `io::Error`; transport
/// errors *during* the run are counted in [`RunReport::errors`]
/// instead, because a load test that dies at the first reset measures
/// nothing.
pub fn run(config: &RunConfig, arrivals: &[Arrival]) -> io::Result<RunReport> {
    let workers = config.connections.max(1);
    // Connect every worker before starting the clock so dial time is
    // not billed to the first requests.
    let mut conns = Vec::with_capacity(workers);
    for _ in 0..workers {
        conns.push(dial(config)?);
    }
    let start_ns = monotonic_ns();
    let mut handles = Vec::with_capacity(workers);
    for (w, conn) in conns.into_iter().enumerate() {
        let lane: Vec<Arrival> = arrivals.iter().skip(w).step_by(workers).cloned().collect();
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            worker(&config, conn, &lane, start_ns)
        }));
    }
    let mut total = WorkerReport::default();
    for handle in handles {
        let report = handle
            .join()
            .map_err(|_| io::Error::other("load worker thread panicked"))?;
        total.sent += report.sent;
        total.ok += report.ok;
        total.cached += report.cached;
        total.errors += report.errors;
        total.overloaded += report.overloaded;
        total.digest = total.digest.wrapping_add(report.digest);
        total.latencies_ns.extend(report.latencies_ns);
        total.end_ns = total.end_ns.max(report.end_ns);
    }
    let elapsed_ns = total.end_ns.saturating_sub(start_ns).max(1);
    let elapsed_s = elapsed_ns as f64 / 1e9;
    let horizon_ns = arrivals.iter().map(|a| a.at_ns).max().unwrap_or(0).max(1);
    let offered_hz = if config.pace {
        total.sent as f64 / (horizon_ns as f64 / 1e9)
    } else {
        total.sent as f64 / elapsed_s
    };
    total
        .latencies_ns
        .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let (p50, p95, p99) = if total.latencies_ns.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        (
            percentile(&total.latencies_ns, 50.0),
            percentile(&total.latencies_ns, 95.0),
            percentile(&total.latencies_ns, 99.0),
        )
    };
    Ok(RunReport {
        sent: total.sent,
        ok: total.ok,
        cached: total.cached,
        errors: total.errors,
        overloaded: total.overloaded,
        elapsed_ns,
        offered_hz,
        goodput_hz: total.ok as f64 / elapsed_s,
        p50_ms: p50 / 1e6,
        p95_ms: p95 / 1e6,
        p99_ms: p99 / 1e6,
        digest: total.digest,
    })
}

fn dial(config: &RunConfig) -> io::Result<BufReader<TcpStream>> {
    let stream = TcpStream::connect_timeout(&config.target, Duration::from_secs(2))?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.request_timeout))?;
    stream.set_write_timeout(Some(config.request_timeout))?;
    Ok(BufReader::new(stream))
}

fn worker(
    config: &RunConfig,
    mut conn: BufReader<TcpStream>,
    lane: &[Arrival],
    start_ns: u64,
) -> WorkerReport {
    let mut report = WorkerReport {
        latencies_ns: Vec::with_capacity(lane.len()),
        ..WorkerReport::default()
    };
    for arrival in lane {
        let scheduled_ns = start_ns.saturating_add(arrival.at_ns);
        if config.pace {
            let now = monotonic_ns();
            if now < scheduled_ns {
                std::thread::sleep(Duration::from_nanos(scheduled_ns - now));
            }
        }
        let sent_at = if config.pace {
            scheduled_ns
        } else {
            monotonic_ns()
        };
        report.sent += 1;
        match exchange(&mut conn, &arrival.line, config.max_line_bytes) {
            Ok(response) => {
                let now = monotonic_ns();
                report.end_ns = now;
                report.latencies_ns.push(now.saturating_sub(sent_at) as f64);
                report.digest = report.digest.wrapping_add(fnv_line(&response));
                tally(&mut report, &response);
            }
            Err(_) => {
                report.errors += 1;
                report.end_ns = monotonic_ns();
                // The connection is suspect after any IO error; redial
                // once and carry on, or bleed the rest of the lane into
                // the error count if the target is really gone.
                match dial(config) {
                    Ok(fresh) => conn = fresh,
                    Err(_) => {
                        report.errors += (lane.len() as u64).saturating_sub(report.sent);
                        report.sent = lane.len() as u64;
                        break;
                    }
                }
            }
        }
    }
    report
}

fn exchange(
    conn: &mut BufReader<TcpStream>,
    line: &str,
    max_line_bytes: usize,
) -> io::Result<String> {
    send_line(conn.get_mut(), line)?;
    match read_line_bounded(conn, max_line_bytes)? {
        Some(response) => Ok(response),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "target closed the connection mid-request",
        )),
    }
}

fn tally(report: &mut WorkerReport, response: &str) {
    let status = json::parse(response)
        .ok()
        .and_then(|v| v.get("status").and_then(Value::as_str).map(String::from));
    match status.as_deref() {
        Some("ok") => {
            report.ok += 1;
            let cached = json::parse(response)
                .ok()
                .and_then(|v| v.get("cached").and_then(Value::as_bool));
            if cached == Some(true) {
                report.cached += 1;
            }
        }
        Some("overloaded") => report.overloaded += 1,
        _ => report.errors += 1,
    }
}

/// One step of an offered-rate ramp.
#[derive(Debug, Clone)]
pub struct RampPoint {
    /// Offered (scheduled) rate, Hz.
    pub offered_hz: f64,
    /// Measured goodput at that offer, Hz.
    pub goodput_hz: f64,
    /// p99 latency at that offer, milliseconds.
    pub p99_ms: f64,
    /// Overload-refusal fraction at that offer.
    pub overload_rate: f64,
}

/// The saturation knee of a ramp: the highest offered rate whose
/// goodput kept up with at least `tolerance` (e.g. `0.95`) of the
/// offer. `None` if no step kept up.
pub fn knee_of(points: &[RampPoint], tolerance: f64) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.offered_hz > 0.0 && p.goodput_hz >= tolerance * p.offered_hz)
        .map(|p| p.offered_hz)
        .fold(None, |best, hz| match best {
            Some(b) if b >= hz => Some(b),
            _ => Some(hz),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_independent() {
        let a = fnv_line("alpha").wrapping_add(fnv_line("beta"));
        let b = fnv_line("beta").wrapping_add(fnv_line("alpha"));
        assert_eq!(a, b);
        assert_ne!(fnv_line("alpha"), fnv_line("beta"));
    }

    #[test]
    fn knee_picks_the_highest_keeping_rate() {
        let points = vec![
            RampPoint {
                offered_hz: 100.0,
                goodput_hz: 100.0,
                p99_ms: 1.0,
                overload_rate: 0.0,
            },
            RampPoint {
                offered_hz: 200.0,
                goodput_hz: 197.0,
                p99_ms: 2.0,
                overload_rate: 0.0,
            },
            RampPoint {
                offered_hz: 400.0,
                goodput_hz: 250.0,
                p99_ms: 90.0,
                overload_rate: 0.3,
            },
        ];
        assert_eq!(knee_of(&points, 0.95), Some(200.0));
        assert_eq!(knee_of(&points[2..], 0.95), None);
        assert_eq!(knee_of(&[], 0.95), None);
    }
}
