//! `hems-load`: the serving-tier load benchmark. Spawns in-process
//! `hems-serve` shards fronted by `hems-router`, replays seeded
//! workloads against them, and writes `BENCH_load.json`:
//!
//! 1. **digest** — the same serial request stream sent to a bare
//!    backend and through a 1-backend router must produce an identical
//!    response multiset (the router's verbatim-relay contract, checked
//!    over a whole load stream rather than single exchanges).
//! 2. **scaling** — warm saturate throughput of a 1-backend tier vs a
//!    3-backend tier over a keyspace 3x one shard's plan cache: one
//!    shard thrashes, three shards each hold their key range, so the
//!    consistent-hash tier multiplies cache capacity as well as
//!    compute (acceptance: ≥2x aggregate).
//! 3. **knee** — an offered-rate ramp against the 3-backend tier;
//!    the knee is the highest offer whose goodput kept up.
//! 4. **diurnal** — a Zipf-skewed, sine-modulated open-loop run
//!    reporting p50/p95/p99 (coordinated-omission-free), goodput, and
//!    error/overload rates.
//!
//! `--smoke` (or `HEMS_BENCH_SMOKE=1`) shrinks every experiment to a
//! seconds-scale CI pass. `--out PATH` overrides the output path.

use hems_bench::harness::Json;
use hems_load::run as load_run;
use hems_load::{knee_of, RampPoint, RunConfig, RunReport, WorkloadConfig};
use hems_router::{route, RouterConfig, RouterHandle};
use hems_serve::{serve, QueryKind, ServeConfig, ServerHandle};
use std::io;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    out: String,
    smoke: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_load.json".to_string(),
        smoke: std::env::var("HEMS_BENCH_SMOKE").ok().as_deref() == Some("1"),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                if let Some(path) = iter.next() {
                    args.out = path;
                }
            }
            _ => {}
        }
    }
    args
}

/// One serving tier: N in-process shards behind a router.
struct Tier {
    /// Held for their lifetime: dropping a handle stops its shard.
    _backends: Vec<ServerHandle>,
    router: RouterHandle,
}

fn tier(shards: usize, cache_capacity: usize) -> io::Result<Tier> {
    let mut backends = Vec::with_capacity(shards);
    for shard in 0..shards {
        backends.push(serve(
            "127.0.0.1:0",
            ServeConfig {
                threads: Some(1),
                cache_capacity,
                shard_id: Some(shard as u64),
                ..ServeConfig::default()
            },
        )?);
    }
    let router = route(
        "127.0.0.1:0",
        RouterConfig {
            backends: backends.iter().map(ServerHandle::addr).collect(),
            ..RouterConfig::default()
        },
    )?;
    Ok(Tier {
        _backends: backends,
        router,
    })
}

fn report_json(report: &RunReport) -> Json {
    Json::Obj(vec![
        ("sent".into(), Json::Int(report.sent as i64)),
        ("ok".into(), Json::Int(report.ok as i64)),
        ("offered_hz".into(), Json::Num(report.offered_hz)),
        ("goodput_hz".into(), Json::Num(report.goodput_hz)),
        ("p50_ms".into(), Json::Num(report.p50_ms)),
        ("p95_ms".into(), Json::Num(report.p95_ms)),
        ("p99_ms".into(), Json::Num(report.p99_ms)),
        ("error_rate".into(), Json::Num(report.error_rate())),
        ("overload_rate".into(), Json::Num(report.overload_rate())),
        ("hit_rate".into(), Json::Num(report.hit_rate())),
    ])
}

fn main() -> ExitCode {
    match bench(parse_args()) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("hems-load: {e}");
            ExitCode::FAILURE
        }
    }
}

fn bench(args: Args) -> io::Result<ExitCode> {
    let cache_capacity = if args.smoke { 32 } else { 64 };
    let keyspace = 3 * cache_capacity;
    let connections = 6usize;

    // ---- 1. Router transparency digest over a whole load stream ----
    let digest_load = WorkloadConfig {
        keyspace: 24,
        base_rate_hz: 1e6, // saturate mode ignores pacing anyway
        duration: Duration::from_micros(if args.smoke { 120 } else { 400 }),
        seed: 11,
        ..WorkloadConfig::default()
    };
    let digest_arrivals = digest_load.arrivals();
    let direct = serve(
        "127.0.0.1:0",
        ServeConfig {
            threads: Some(1),
            cache_capacity,
            ..ServeConfig::default()
        },
    )?;
    let fronted = tier(1, cache_capacity)?;
    let serial_direct = RunConfig::saturate(direct.addr(), 1);
    let serial_routed = RunConfig::saturate(fronted.router.addr(), 1);
    let direct_report = load_run(&serial_direct, &digest_arrivals)?;
    let routed_report = load_run(&serial_routed, &digest_arrivals)?;
    let digest_match = direct_report.digest == routed_report.digest
        && direct_report.errors == 0
        && routed_report.errors == 0;
    println!(
        "digest: {} requests, direct {:#018x} vs routed {:#018x} -> {}",
        digest_arrivals.len(),
        direct_report.digest,
        routed_report.digest,
        if digest_match { "match" } else { "MISMATCH" }
    );
    drop(fronted);
    drop(direct);

    // ---- 2. 1-backend vs 3-backend warm saturate throughput ----
    // Sized so the experiment isolates *cache capacity*: the keyspace
    // is 2.25x one shard's plan cache, so a single backend thrashes
    // (~44% hits) while each of three shards' ring ranges fits its
    // cache whole (~100% warm hits). `sprint` is the most expensive
    // cacheable solver query (~15x a cache hit on this box), so the
    // hit-rate gap, not raw parallelism, carries the speedup — which
    // is the point: consistent hashing multiplies cache capacity even
    // when compute does not scale (this runner may be single-core).
    let scale_keyspace = cache_capacity * 9 / 4;
    let scale_load = WorkloadConfig {
        keyspace: scale_keyspace,
        zipf_exponent: 0.0, // flat: the honest cache-thrash case
        base_rate_hz: 1e6,
        duration: Duration::from_micros(if args.smoke { 400 } else { 1200 }),
        seed: 22,
        kind_override: Some(QueryKind::Sprint),
        ..WorkloadConfig::default()
    };
    let scale_arrivals = scale_load.arrivals();
    let mut scaling = Vec::new();
    for shards in [1usize, 3] {
        let t = tier(shards, cache_capacity)?;
        let config = RunConfig::saturate(t.router.addr(), connections);
        load_run(&config, &scale_arrivals)?; // warm pass
        let warm = load_run(&config, &scale_arrivals)?;
        println!(
            "scaling: {shards} backend(s): {:.0} req/s warm ({:.0}% hits, {} errors)",
            warm.goodput_hz,
            warm.hit_rate() * 100.0,
            warm.errors
        );
        scaling.push((shards, warm));
    }
    let one_hz = scaling
        .iter()
        .find(|(s, _)| *s == 1)
        .map(|(_, r)| r.goodput_hz)
        .unwrap_or(0.0);
    let three_hz = scaling
        .iter()
        .find(|(s, _)| *s == 3)
        .map(|(_, r)| r.goodput_hz)
        .unwrap_or(0.0);
    let speedup = if one_hz > 0.0 { three_hz / one_hz } else { 0.0 };
    println!("scaling: 3-backend speedup {speedup:.2}x");

    // ---- 3. Offered-rate ramp to the saturation knee (3 backends) ----
    let knee_tier = tier(3, cache_capacity)?;
    let knee_target = knee_tier.router.addr();
    let step_s = if args.smoke { 0.4 } else { 1.2 };
    let mut points: Vec<RampPoint> = Vec::new();
    for fraction in [0.4, 0.8, 1.2, 1.8, 2.6] {
        let offered = (three_hz * fraction).max(10.0);
        let load = WorkloadConfig {
            keyspace,
            zipf_exponent: 1.0,
            base_rate_hz: offered,
            duration: Duration::from_secs_f64(step_s),
            seed: 33,
            ..WorkloadConfig::default()
        };
        let report = load_run(&RunConfig::paced(knee_target), &load.arrivals())?;
        println!(
            "knee: offered {:.0} req/s -> goodput {:.0} req/s, p99 {:.2} ms",
            report.offered_hz, report.goodput_hz, report.p99_ms
        );
        points.push(RampPoint {
            offered_hz: report.offered_hz,
            goodput_hz: report.goodput_hz,
            p99_ms: report.p99_ms,
            overload_rate: report.overload_rate(),
        });
    }
    let knee_tolerance = 0.9;
    let knee_hz = knee_of(&points, knee_tolerance);
    println!(
        "knee: {} (tolerance {knee_tolerance})",
        knee_hz.map_or("none held".to_string(), |hz| format!("{hz:.0} req/s"))
    );

    // ---- 4. The headline diurnal open-loop run ----
    let diurnal_rate = knee_hz.unwrap_or(three_hz * 0.5).max(20.0) * 0.5;
    let diurnal_load = WorkloadConfig {
        keyspace,
        zipf_exponent: 1.0,
        base_rate_hz: diurnal_rate,
        wave_amplitude: 0.7,
        waves: 2.0,
        duration: Duration::from_secs_f64(if args.smoke { 0.8 } else { 3.0 }),
        seed: 44,
        ..WorkloadConfig::default()
    };
    let diurnal = load_run(&RunConfig::paced(knee_target), &diurnal_load.arrivals())?;
    println!(
        "diurnal: {} requests, goodput {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms",
        diurnal.sent, diurnal.goodput_hz, diurnal.p50_ms, diurnal.p99_ms
    );
    drop(knee_tier);

    let bench = Json::Obj(vec![
        (
            "meta".into(),
            Json::Obj(vec![
                ("smoke".into(), Json::Bool(args.smoke)),
                ("cache_capacity".into(), Json::Int(cache_capacity as i64)),
                ("keyspace".into(), Json::Int(keyspace as i64)),
                ("scale_keyspace".into(), Json::Int(scale_keyspace as i64)),
                ("connections".into(), Json::Int(connections as i64)),
            ]),
        ),
        (
            "digest".into(),
            Json::Obj(vec![
                ("requests".into(), Json::Int(digest_arrivals.len() as i64)),
                (
                    "direct".into(),
                    Json::Str(format!("{:016x}", direct_report.digest)),
                ),
                (
                    "routed".into(),
                    Json::Str(format!("{:016x}", routed_report.digest)),
                ),
                ("match".into(), Json::Bool(digest_match)),
            ]),
        ),
        (
            "scaling".into(),
            Json::Obj(vec![
                ("one_backend_hz".into(), Json::Num(one_hz)),
                ("three_backend_hz".into(), Json::Num(three_hz)),
                ("speedup".into(), Json::Num(speedup)),
                (
                    "runs".into(),
                    Json::Arr(
                        scaling
                            .iter()
                            .map(|(shards, r)| {
                                Json::Obj(vec![
                                    ("backends".into(), Json::Int(*shards as i64)),
                                    ("report".into(), report_json(r)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "knee".into(),
            Json::Obj(vec![
                ("tolerance".into(), Json::Num(knee_tolerance)),
                // A NaN renders as JSON null: "no step held".
                ("knee_hz".into(), Json::Num(knee_hz.unwrap_or(f64::NAN))),
                (
                    "points".into(),
                    Json::Arr(
                        points
                            .iter()
                            .map(|p| {
                                Json::Obj(vec![
                                    ("offered_hz".into(), Json::Num(p.offered_hz)),
                                    ("goodput_hz".into(), Json::Num(p.goodput_hz)),
                                    ("p99_ms".into(), Json::Num(p.p99_ms)),
                                    ("overload_rate".into(), Json::Num(p.overload_rate)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("diurnal".into(), report_json(&diurnal)),
    ]);
    std::fs::write(&args.out, format!("{}\n", bench.render()))?;
    println!("wrote {}", args.out);

    if !digest_match {
        eprintln!("hems-load: router-vs-direct digest mismatch");
        return Ok(ExitCode::FAILURE);
    }
    if !args.smoke && speedup < 2.0 {
        eprintln!("hems-load: 3-backend speedup {speedup:.2}x below the 2x acceptance bar");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
