//! Seeded Zipf key sampler.
//!
//! Key `k` (0-based rank) is drawn with probability proportional to
//! `1 / (k + 1)^s`. The CDF is precomputed once; each sample is a
//! uniform draw plus a binary search, so sampling is O(log n) and
//! allocation-free. `s = 0` is exactly uniform; `s ≈ 1` is the classic
//! web-request skew where a handful of head keys dominate.

use hems_units::XorShiftRng;

/// A precomputed Zipf(s) distribution over `n` ranked keys.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `keys` ranks with exponent `s`.
    /// Degenerate inputs are clamped: zero keys becomes one key, a
    /// non-finite or negative exponent becomes uniform.
    pub fn new(keys: usize, s: f64) -> Zipf {
        let n = keys.max(1);
        let s = if s.is_finite() && s > 0.0 { s } else { 0.0 };
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        if total > 0.0 {
            for c in &mut cdf {
                *c /= total;
            }
        }
        Zipf { cdf }
    }

    /// Number of ranked keys.
    pub fn keys(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one key rank in `0..keys()`.
    pub fn sample(&self, rng: &mut XorShiftRng) -> usize {
        let u = rng.next_f64();
        let i = self.cdf.partition_point(|c| *c <= u);
        i.min(self.cdf.len().saturating_sub(1))
    }

    /// The modeled probability of rank `k` (0 outside the support).
    pub fn mass(&self, k: usize) -> f64 {
        let hi = match self.cdf.get(k) {
            Some(hi) => *hi,
            None => return 0.0,
        };
        let lo = if k == 0 {
            0.0
        } else {
            self.cdf.get(k - 1).copied().unwrap_or(0.0)
        };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(zipf: &Zipf, seed: u64, draws: usize) -> Vec<usize> {
        let mut rng = XorShiftRng::seed_from_u64(seed);
        let mut counts = vec![0usize; zipf.keys()];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let zipf = Zipf::new(64, 1.0);
        assert_eq!(
            frequencies(&zipf, 9, 500),
            frequencies(&zipf, 9, 500),
            "same seed, same stream"
        );
        assert_ne!(frequencies(&zipf, 9, 500), frequencies(&zipf, 10, 500));
    }

    #[test]
    fn empirical_frequencies_track_the_zipf_masses() {
        // 20k draws over 32 keys: each key's empirical frequency must
        // sit within a loose multiplicative band of its modeled mass.
        let zipf = Zipf::new(32, 1.0);
        let draws = 20_000usize;
        let counts = frequencies(&zipf, 42, draws);
        for (k, count) in counts.iter().enumerate() {
            let expect = zipf.mass(k) * draws as f64;
            let got = *count as f64;
            assert!(
                got > expect * 0.6 && got < expect * 1.5,
                "rank {k}: got {got}, modeled {expect:.1}"
            );
        }
        // Head dominance: rank 0 beats rank 16 by roughly its 17x mass
        // ratio (at least 8x after sampling noise).
        assert!(counts[0] > counts[16] * 8);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let zipf = Zipf::new(16, 0.0);
        let draws = 16_000usize;
        for (k, count) in frequencies(&zipf, 7, draws).iter().enumerate() {
            assert!(
                *count > 700 && *count < 1300,
                "rank {k} drew {count} times from a uniform sampler"
            );
        }
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let zipf = Zipf::new(0, f64::NAN);
        assert_eq!(zipf.keys(), 1);
        let mut rng = XorShiftRng::seed_from_u64(1);
        assert_eq!(zipf.sample(&mut rng), 0);
        assert!((zipf.mass(0) - 1.0).abs() < 1e-12);
        assert_eq!(zipf.mass(5), 0.0);
    }
}
