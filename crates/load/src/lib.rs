//! `hems-load`: a seeded, open-loop load-generation harness for the
//! NDJSON serving tier (`hems-serve` directly, or `hems-router` in
//! front of a shard set).
//!
//! Three pieces:
//!
//! 1. [`zipf`] — a seeded Zipf(s) key sampler (s = 0 degenerates to
//!    uniform), so workloads can dial key skew from flat cache-thrash
//!    streams to hot-key-dominated ones.
//! 2. [`workload`] — turns a [`workload::WorkloadConfig`] into a
//!    deterministic arrival schedule: a non-homogeneous Poisson process
//!    whose rate follows a diurnal sine wave, each arrival carrying a
//!    fully rendered request line for its sampled key.
//! 3. [`run`] — replays a schedule **open-loop** against a live
//!    address: arrivals are sent at their scheduled times whether or
//!    not earlier responses have come back, and latency is measured
//!    from the *scheduled* start, so a slow server cannot hide queueing
//!    delay by slowing the generator down (no coordinated omission).
//!    A saturate mode drops the pacing to measure peak throughput.
//!
//! Everything is a pure function of `(config, seed)` up to wall-clock
//! jitter: the same seed replays byte-identical request streams, which
//! is what makes the router-vs-direct digest check in the bench binary
//! meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod run;
pub mod workload;
pub mod zipf;

pub use run::{knee_of, run, RampPoint, RunConfig, RunReport};
pub use workload::{spec_for_key, Arrival, WorkloadConfig};
pub use zipf::Zipf;
