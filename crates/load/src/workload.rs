//! Deterministic workload synthesis: keys → scenarios, and a diurnal
//! non-homogeneous Poisson arrival schedule.
//!
//! The instantaneous request rate follows a sine wave
//! `r(t) = base · (1 + A·sin(2π·waves·t/T))` — the diurnal shape a
//! battery-less fleet presents to its planning tier (PAPER.md: harvest
//! tracks the sun; nodes that harvest more plan more). Arrivals are
//! drawn from that rate by thinning a homogeneous Poisson process at
//! the peak rate, so the schedule is an exact sample of the wave and a
//! pure function of the seed.
//!
//! Each arrival carries a pre-rendered NDJSON request line for a key
//! drawn from a [`Zipf`] sampler, so replaying the same config against
//! two different targets sends byte-identical streams.

use crate::zipf::Zipf;
use hems_serve::{QueryKind, Request, ScenarioSpec};
use hems_units::XorShiftRng;
use std::time::Duration;

/// One scheduled request: a send offset from the run start and the raw
/// line to send.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Scheduled send time, nanoseconds from the start of the run.
    pub at_ns: u64,
    /// Sampled key rank (0 = hottest under Zipf skew).
    pub key: usize,
    /// Fully rendered NDJSON request line.
    pub line: String,
}

/// Everything that determines a workload, and therefore (given a
/// target) a whole load-test: the schedule is a pure function of this
/// struct.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Distinct plan-cache keys the stream draws from.
    pub keyspace: usize,
    /// Zipf skew exponent (0 = uniform, ~1 = classic hot-key skew).
    pub zipf_exponent: f64,
    /// Mean request rate over the whole run, Hz.
    pub base_rate_hz: f64,
    /// Diurnal modulation depth in `[0, 1]`: 0 = flat, 1 = the trough
    /// touches zero.
    pub wave_amplitude: f64,
    /// Full sine cycles across the run.
    pub waves: f64,
    /// Scheduled length of the run.
    pub duration: Duration,
    /// Seed for both the arrival process and the key sampler.
    pub seed: u64,
    /// Force every request to one query kind (e.g. the expensive
    /// `sweep_summary` for cache-thrash experiments); `None` alternates
    /// by key rank via [`kind_for_key`].
    pub kind_override: Option<QueryKind>,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            keyspace: 192,
            zipf_exponent: 0.0,
            base_rate_hz: 200.0,
            wave_amplitude: 0.0,
            waves: 1.0,
            duration: Duration::from_secs(2),
            seed: 1,
            kind_override: None,
        }
    }
}

/// The scenario a key rank maps to. Ranks spread over the full valid
/// irradiance band `[0.2, 1.8]` (fractions of full sun), so every key
/// is a distinct, buildable plan-cache entry.
pub fn spec_for_key(key: usize, keyspace: usize) -> ScenarioSpec {
    let span = keyspace.max(2) - 1;
    let frac = key.min(span) as f64 / span as f64;
    ScenarioSpec::baseline(0.2 + 1.6 * frac)
}

/// The query kind a key rank maps to: even ranks ask for the optimal
/// operating point, odd ranks for the minimum-energy point, so both hot
/// solver paths stay exercised.
pub fn kind_for_key(key: usize) -> QueryKind {
    if key.is_multiple_of(2) {
        QueryKind::OptimalPoint
    } else {
        QueryKind::Mep
    }
}

impl WorkloadConfig {
    /// Instantaneous request rate at `t_s` seconds into the run, Hz.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        let duration_s = self.duration.as_secs_f64().max(1e-9);
        let amplitude = self.wave_amplitude.clamp(0.0, 1.0);
        let phase = std::f64::consts::TAU * self.waves * t_s / duration_s;
        (self.base_rate_hz * (1.0 + amplitude * phase.sin())).max(0.0)
    }

    /// Generates the full arrival schedule: thinning at the peak rate,
    /// key per arrival from the Zipf sampler, request line rendered
    /// with the arrival's ordinal as its id.
    pub fn arrivals(&self) -> Vec<Arrival> {
        let amplitude = self.wave_amplitude.clamp(0.0, 1.0);
        let peak = (self.base_rate_hz * (1.0 + amplitude)).max(1e-9);
        let horizon_s = self.duration.as_secs_f64();
        let zipf = Zipf::new(self.keyspace, self.zipf_exponent);
        let mut rng = XorShiftRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let mut id = 0i64;
        loop {
            let u = rng.next_f64().max(1e-12);
            t += -u.ln() / peak;
            if t >= horizon_s {
                break;
            }
            // Thin: keep this candidate with probability r(t)/peak.
            if rng.next_f64() * peak > self.rate_at(t) {
                continue;
            }
            let key = zipf.sample(&mut rng);
            out.push(Arrival {
                at_ns: (t * 1e9) as u64,
                key,
                line: self.line_for(id, key),
            });
            id += 1;
        }
        out
    }

    /// The request line sent for `key` with request id `id`.
    pub fn line_for(&self, id: i64, key: usize) -> String {
        let spec = spec_for_key(key, self.keyspace);
        let kind = self.kind_override.unwrap_or_else(|| kind_for_key(key));
        Request::render_line(id, kind, Some(&spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seed_deterministic() {
        let config = WorkloadConfig {
            base_rate_hz: 300.0,
            wave_amplitude: 0.5,
            duration: Duration::from_millis(500),
            zipf_exponent: 1.0,
            ..WorkloadConfig::default()
        };
        let a = config.arrivals();
        let b = config.arrivals();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_ns, y.at_ns);
            assert_eq!(x.line, y.line);
        }
        let c = WorkloadConfig {
            seed: 2,
            ..config.clone()
        }
        .arrivals();
        assert_ne!(
            a.iter().map(|x| x.at_ns).collect::<Vec<_>>(),
            c.iter().map(|x| x.at_ns).collect::<Vec<_>>()
        );
    }

    #[test]
    fn arrival_count_tracks_the_mean_rate() {
        let config = WorkloadConfig {
            base_rate_hz: 500.0,
            wave_amplitude: 0.8,
            waves: 2.0,
            duration: Duration::from_secs(2),
            ..WorkloadConfig::default()
        };
        let n = config.arrivals().len() as f64;
        // A full number of sine cycles leaves the mean at base_rate:
        // expect ~1000 arrivals, Poisson noise is ~±3%.
        assert!((800.0..1200.0).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn diurnal_wave_modulates_arrival_density() {
        let config = WorkloadConfig {
            base_rate_hz: 800.0,
            wave_amplitude: 0.9,
            waves: 1.0,
            duration: Duration::from_secs(2),
            ..WorkloadConfig::default()
        };
        let arrivals = config.arrivals();
        let quarter = config.duration.as_nanos() as u64 / 4;
        // One full cycle: the first quarter rides the crest, the third
        // rides the trough.
        let crest = arrivals.iter().filter(|a| a.at_ns < quarter).count();
        let trough = arrivals
            .iter()
            .filter(|a| a.at_ns >= 2 * quarter && a.at_ns < 3 * quarter)
            .count();
        assert!(
            crest > trough * 3,
            "crest {crest} vs trough {trough} under 0.9 modulation"
        );
    }

    #[test]
    fn keys_map_to_distinct_buildable_scenarios() {
        let keyspace = 24;
        let mut seen = std::collections::HashSet::new();
        for key in 0..keyspace {
            let spec = spec_for_key(key, keyspace);
            let built = spec.build().expect("buildable scenario");
            let cache_key = spec.cache_key(kind_for_key(key), &built.0, &built.1);
            assert!(seen.insert(cache_key), "key {key} collides");
        }
    }
}
