//! Validated piecewise-linear lookup tables.
//!
//! The paper's proposed MPP-tracking scheme (Section VI-A) maps a measured
//! input power to a maximum-power-point voltage through "a look-up table".
//! [`LinearTable`] is that table: strictly-increasing knots validated at
//! construction, linear interpolation between knots, clamped evaluation
//! outside the knot range.

use crate::UnitsError;

/// A piecewise-linear function defined by `(x, y)` knots with strictly
/// increasing `x`.
///
/// ```
/// use hems_units::LinearTable;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = LinearTable::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0])?;
/// assert_eq!(t.eval(0.5), 5.0);
/// assert_eq!(t.eval(1.5), 25.0);
/// assert_eq!(t.eval(-3.0), 0.0); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearTable {
    /// Builds a table from parallel knot vectors.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::BadTable`] when the vectors differ in length,
    /// hold fewer than two knots, contain non-finite values, or when `xs` is
    /// not strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, UnitsError> {
        if xs.len() != ys.len() {
            return Err(UnitsError::BadTable {
                reason: "x and y knot vectors differ in length",
            });
        }
        if xs.len() < 2 {
            return Err(UnitsError::BadTable {
                reason: "at least two knots are required",
            });
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(UnitsError::BadTable {
                reason: "knots must be finite",
            });
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(UnitsError::BadTable {
                reason: "x knots must be strictly increasing",
            });
        }
        Ok(LinearTable { xs, ys })
    }

    /// Builds a table by sampling `f` at `n` evenly spaced points on
    /// `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::BadTable`] when `n < 2`, the interval is
    /// degenerate, or `f` returns a non-finite value.
    pub fn from_fn(
        lo: f64,
        hi: f64,
        n: usize,
        mut f: impl FnMut(f64) -> f64,
    ) -> Result<Self, UnitsError> {
        if n < 2 || !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(UnitsError::BadTable {
                reason: "sampling requires n >= 2 and a finite lo < hi",
            });
        }
        let step = (hi - lo) / (n - 1) as f64;
        let xs: Vec<f64> = (0..n).map(|i| lo + step * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        Self::new(xs, ys)
    }

    /// Evaluates the table at `x`, clamping to the first/last knot outside
    /// the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // partition_point returns the index of the first knot > x.
        let hi = self.xs.partition_point(|&k| k <= x);
        let lo = hi - 1;
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] + t * (self.ys[hi] - self.ys[lo])
    }

    /// The inclusive domain covered by the knots.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("validated non-empty"))
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Always `false`: a validated table holds at least two knots.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over `(x, y)` knot pairs.
    pub fn knots(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }

    /// Returns the knot x at which the tabulated y is largest.
    ///
    /// Ties resolve to the smallest such x.
    pub fn argmax(&self) -> (f64, f64) {
        let mut best = 0;
        for i in 1..self.ys.len() {
            if self.ys[i] > self.ys[best] {
                best = i;
            }
        }
        (self.xs[best], self.ys[best])
    }

    /// Builds the inverse table `y -> x`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::BadTable`] unless `y` is strictly monotonic
    /// (either direction) over the knots.
    pub fn inverse(&self) -> Result<LinearTable, UnitsError> {
        let increasing = self.ys.windows(2).all(|w| w[0] < w[1]);
        let decreasing = self.ys.windows(2).all(|w| w[0] > w[1]);
        if increasing {
            LinearTable::new(self.ys.clone(), self.xs.clone())
        } else if decreasing {
            let mut ys = self.ys.clone();
            let mut xs = self.xs.clone();
            ys.reverse();
            xs.reverse();
            LinearTable::new(ys, xs)
        } else {
            Err(UnitsError::BadTable {
                reason: "table is not strictly monotonic; cannot invert",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ramp() -> LinearTable {
        LinearTable::new(vec![0.0, 1.0, 3.0], vec![2.0, 4.0, 0.0]).unwrap()
    }

    #[test]
    fn validates_construction() {
        assert!(LinearTable::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearTable::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(LinearTable::new(vec![1.0, 1.0], vec![0.0, 1.0]).is_err());
        assert!(LinearTable::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(LinearTable::new(vec![0.0, f64::NAN], vec![0.0, 1.0]).is_err());
        assert!(LinearTable::new(vec![0.0, 1.0], vec![0.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn interpolates_between_knots() {
        let t = ramp();
        assert_eq!(t.eval(0.0), 2.0);
        assert_eq!(t.eval(0.5), 3.0);
        assert_eq!(t.eval(1.0), 4.0);
        assert_eq!(t.eval(2.0), 2.0);
        assert_eq!(t.eval(3.0), 0.0);
    }

    #[test]
    fn clamps_outside_domain() {
        let t = ramp();
        assert_eq!(t.eval(-10.0), 2.0);
        assert_eq!(t.eval(10.0), 0.0);
    }

    #[test]
    fn domain_len_knots() {
        let t = ramp();
        assert_eq!(t.domain(), (0.0, 3.0));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let knots: Vec<_> = t.knots().collect();
        assert_eq!(knots, vec![(0.0, 2.0), (1.0, 4.0), (3.0, 0.0)]);
    }

    #[test]
    fn argmax_finds_peak() {
        let t = ramp();
        assert_eq!(t.argmax(), (1.0, 4.0));
    }

    #[test]
    fn from_fn_samples_evenly() {
        let t = LinearTable::from_fn(0.0, 2.0, 5, |x| x * x).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.eval(1.0), 1.0);
        // Between knots the quadratic is approximated linearly.
        let mid = t.eval(0.25);
        assert!((mid - (0.0 + 0.25) / 2.0 * 0.5).abs() < 0.2);
        assert!(LinearTable::from_fn(0.0, 0.0, 5, |x| x).is_err());
        assert!(LinearTable::from_fn(0.0, 1.0, 1, |x| x).is_err());
    }

    #[test]
    fn inverse_of_increasing_table() {
        let t = LinearTable::new(vec![0.0, 1.0, 2.0], vec![10.0, 20.0, 40.0]).unwrap();
        let inv = t.inverse().unwrap();
        assert_eq!(inv.eval(20.0), 1.0);
        assert_eq!(inv.eval(30.0), 1.5);
    }

    #[test]
    fn inverse_of_decreasing_table() {
        let t = LinearTable::new(vec![0.0, 1.0, 2.0], vec![40.0, 20.0, 10.0]).unwrap();
        let inv = t.inverse().unwrap();
        assert_eq!(inv.eval(20.0), 1.0);
        assert_eq!(inv.eval(15.0), 1.5);
    }

    #[test]
    fn inverse_rejects_non_monotonic() {
        assert!(ramp().inverse().is_err());
    }

    proptest! {
        #[test]
        fn eval_is_within_y_hull(x in -5.0f64..8.0) {
            let t = ramp();
            let y = t.eval(x);
            prop_assert!((0.0..=4.0).contains(&y));
        }

        #[test]
        fn eval_matches_knots_exactly(
            knots in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..20)
        ) {
            let mut xs: Vec<f64> = knots.iter().map(|k| k.0).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs.dedup();
            prop_assume!(xs.len() >= 2);
            let ys: Vec<f64> = knots.iter().take(xs.len()).map(|k| k.1).collect();
            let t = LinearTable::new(xs.clone(), ys.clone()).unwrap();
            for (x, y) in xs.iter().zip(ys.iter()) {
                prop_assert!((t.eval(*x) - y).abs() < 1e-9);
            }
        }

        #[test]
        fn increasing_inverse_round_trips(y0 in 0.0f64..1.0, step in 0.1f64..2.0) {
            let xs = vec![0.0, 1.0, 2.0, 3.0];
            let ys: Vec<f64> = xs.iter().map(|x| y0 + step * x).collect();
            let t = LinearTable::new(xs, ys).unwrap();
            let inv = t.inverse().unwrap();
            for x in [0.0, 0.7, 1.3, 2.9, 3.0] {
                let round = inv.eval(t.eval(x));
                prop_assert!((round - x).abs() < 1e-9);
            }
        }
    }
}
