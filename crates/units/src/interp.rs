//! Validated piecewise-linear lookup tables.
//!
//! The paper's proposed MPP-tracking scheme (Section VI-A) maps a measured
//! input power to a maximum-power-point voltage through "a look-up table".
//! [`LinearTable`] is that table: strictly-increasing knots validated at
//! construction, linear interpolation between knots, clamped evaluation
//! outside the knot range.

use crate::UnitsError;

/// A piecewise-linear function defined by `(x, y)` knots with strictly
/// increasing `x`.
///
/// ```
/// use hems_units::LinearTable;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = LinearTable::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0])?;
/// assert_eq!(t.eval(0.5), 5.0);
/// assert_eq!(t.eval(1.5), 25.0);
/// assert_eq!(t.eval(-3.0), 0.0); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearTable {
    /// Builds a table from parallel knot vectors.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::BadTable`] when the vectors differ in length,
    /// hold fewer than two knots, contain non-finite values, or when `xs` is
    /// not strictly increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, UnitsError> {
        if xs.len() != ys.len() {
            return Err(UnitsError::BadTable {
                reason: "x and y knot vectors differ in length",
            });
        }
        if xs.len() < 2 {
            return Err(UnitsError::BadTable {
                reason: "at least two knots are required",
            });
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(UnitsError::BadTable {
                reason: "knots must be finite",
            });
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(UnitsError::BadTable {
                reason: "x knots must be strictly increasing",
            });
        }
        Ok(LinearTable { xs, ys })
    }

    /// Builds a table by sampling `f` at `n` evenly spaced points on
    /// `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::BadTable`] when `n < 2`, the interval is
    /// degenerate, or `f` returns a non-finite value.
    pub fn from_fn(
        lo: f64,
        hi: f64,
        n: usize,
        mut f: impl FnMut(f64) -> f64,
    ) -> Result<Self, UnitsError> {
        if n < 2 || !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(UnitsError::BadTable {
                reason: "sampling requires n >= 2 and a finite lo < hi",
            });
        }
        let step = (hi - lo) / (n - 1) as f64;
        let xs: Vec<f64> = (0..n).map(|i| lo + step * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        Self::new(xs, ys)
    }

    /// Evaluates the table at `x`, clamping to the first/last knot outside
    /// the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // partition_point returns the index of the first knot > x.
        let hi = self.xs.partition_point(|&k| k <= x);
        let lo = hi - 1;
        let t = (x - self.xs[lo]) / (self.xs[hi] - self.xs[lo]);
        self.ys[lo] + t * (self.ys[hi] - self.ys[lo])
    }

    /// The inclusive domain covered by the knots.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("validated non-empty"))
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Always `false`: a validated table holds at least two knots.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over `(x, y)` knot pairs.
    pub fn knots(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.xs.iter().copied().zip(self.ys.iter().copied())
    }

    /// Returns the knot x at which the tabulated y is largest.
    ///
    /// Ties resolve to the smallest such x.
    pub fn argmax(&self) -> (f64, f64) {
        let mut best = 0;
        for i in 1..self.ys.len() {
            if self.ys[i] > self.ys[best] {
                best = i;
            }
        }
        (self.xs[best], self.ys[best])
    }

    /// Builds the inverse table `y -> x`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::BadTable`] unless `y` is strictly monotonic
    /// (either direction) over the knots.
    pub fn inverse(&self) -> Result<LinearTable, UnitsError> {
        let increasing = self.ys.windows(2).all(|w| w[0] < w[1]);
        let decreasing = self.ys.windows(2).all(|w| w[0] > w[1]);
        if increasing {
            LinearTable::new(self.ys.clone(), self.xs.clone())
        } else if decreasing {
            let mut ys = self.ys.clone();
            let mut xs = self.xs.clone();
            ys.reverse();
            xs.reverse();
            LinearTable::new(ys, xs)
        } else {
            Err(UnitsError::BadTable {
                reason: "table is not strictly monotonic; cannot invert",
            })
        }
    }
}

/// A monotone piecewise-cubic (Fritsch–Carlson / PCHIP) interpolation table.
///
/// Where [`LinearTable`] is exact only at the knots and kinks between them,
/// this table fits a C¹ cubic Hermite spline whose slopes are limited so the
/// interpolant never overshoots the data: on any interval where the samples
/// are monotone, the interpolant is monotone too. That property is what
/// makes it safe to replace a *physically monotone* model (a solar cell's
/// I-V curve, a frequency law) with its sampled table — the lookup can
/// never invent a spurious local extremum for a bisection to fall into.
///
/// Accuracy is much better than linear interpolation for smooth monotone
/// data — roughly O(h³) vs O(h²) between knots (the limiter costs an order
/// near interior extrema of the data) — which is why the device-model LUTs
/// built on this table meet their ≤0.1 % parity budgets with a few hundred
/// knots.
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Hermite tangent at each knot.
    slopes: Vec<f64>,
    /// `(x0, 1/step)` when the knots are evenly spaced: interval location
    /// becomes one multiply instead of a binary search. The device LUTs
    /// sample uniformly, so their millions of solver-side lookups all take
    /// this path.
    uniform: Option<(f64, f64)>,
}

impl MonotoneTable {
    /// Builds a table from parallel knot vectors.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::BadTable`] under the same conditions as
    /// [`LinearTable::new`].
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, UnitsError> {
        // Reuse LinearTable's validation, then compute tangents.
        let validated = LinearTable::new(xs, ys)?;
        let (xs, ys) = (validated.xs, validated.ys);
        let n = xs.len();
        // Secant slopes per interval.
        let d: Vec<f64> = (0..n - 1)
            .map(|i| (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]))
            .collect();
        let mut slopes = vec![0.0; n];
        // Second-order one-sided (three-point) endpoint tangents, with the
        // usual PCHIP limiting to keep boundary intervals monotone.
        let endpoint = |h0: f64, h1: f64, d0: f64, d1: f64| -> f64 {
            let m = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
            if m * d0 <= 0.0 {
                0.0
            } else if d0 * d1 < 0.0 && m.abs() > 3.0 * d0.abs() {
                3.0 * d0
            } else {
                m
            }
        };
        if n == 2 {
            slopes[0] = d[0];
            slopes[1] = d[0];
        } else {
            let h0 = xs[1] - xs[0];
            let h1 = xs[2] - xs[1];
            slopes[0] = endpoint(h0, h1, d[0], d[1]);
            let hn1 = xs[n - 1] - xs[n - 2];
            let hn2 = xs[n - 2] - xs[n - 3];
            slopes[n - 1] = endpoint(hn1, hn2, d[n - 2], d[n - 3]);
        }
        for i in 1..n - 1 {
            if d[i - 1] * d[i] <= 0.0 {
                // Local extremum in the data: flat tangent.
                slopes[i] = 0.0;
            } else {
                // Weighted harmonic mean of the adjacent secants
                // (Fritsch–Butland form) — guarantees monotonicity without
                // the separate limiter pass.
                let h0 = xs[i] - xs[i - 1];
                let h1 = xs[i + 1] - xs[i];
                let w0 = 2.0 * h1 + h0;
                let w1 = h1 + 2.0 * h0;
                slopes[i] = (w0 + w1) / (w0 / d[i - 1] + w1 / d[i]);
            }
        }
        let step = (xs[n - 1] - xs[0]) / (n - 1) as f64;
        let uniform = xs
            .iter()
            .enumerate()
            .all(|(i, &x)| (x - (xs[0] + step * i as f64)).abs() <= step * 1e-9)
            .then(|| (xs[0], 1.0 / step));
        Ok(MonotoneTable {
            xs,
            ys,
            slopes,
            uniform,
        })
    }

    /// Builds a table by sampling `f` at `n` evenly spaced points on
    /// `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::BadTable`] under the same conditions as
    /// [`LinearTable::from_fn`].
    pub fn from_fn(
        lo: f64,
        hi: f64,
        n: usize,
        mut f: impl FnMut(f64) -> f64,
    ) -> Result<Self, UnitsError> {
        if n < 2 || !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(UnitsError::BadTable {
                reason: "sampling requires n >= 2 and a finite lo < hi",
            });
        }
        let step = (hi - lo) / (n - 1) as f64;
        let xs: Vec<f64> = (0..n).map(|i| lo + step * i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        Self::new(xs, ys)
    }

    /// Evaluates the spline at `x`, clamping to the first/last knot value
    /// outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let lo = match self.uniform {
            Some((x0, inv_step)) => {
                // Direct interval index, with a one-knot nudge to absorb
                // the floating-point error the uniformity test admits.
                let mut lo = (((x - x0) * inv_step) as usize).min(n - 2);
                if x < self.xs[lo] {
                    lo -= 1;
                } else if x >= self.xs[lo + 1] {
                    lo += 1;
                }
                lo
            }
            None => self.xs.partition_point(|&k| k <= x) - 1,
        };
        self.hermite(lo, x)
    }

    /// Cubic Hermite evaluation on the interval `[xs[lo], xs[lo+1]]`.
    ///
    /// Both the scalar and the batch entry points funnel through this one
    /// body, so an interior point evaluates to the bit-identical result no
    /// matter how its interval was located.
    #[inline]
    fn hermite(&self, lo: usize, x: f64) -> f64 {
        let hi = lo + 1;
        let h = self.xs[hi] - self.xs[lo];
        let t = (x - self.xs[lo]) / h;
        // Cubic Hermite basis.
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[lo]
            + h10 * h * self.slopes[lo]
            + h01 * self.ys[hi]
            + h11 * h * self.slopes[hi]
    }

    /// Evaluates the spline over a whole slab of query points, writing one
    /// output per input.
    ///
    /// When the queries are ascending (the solver grids and SoA sweep slabs
    /// all are), interval location degenerates to a monotone forward cursor:
    /// the batch walks the knot array once instead of doing a per-point
    /// search, so the whole slab is gather-free. Unsorted queries fall back
    /// to the scalar locate per point. Either way every output is
    /// bit-identical to `eval` on the same input.
    ///
    /// # Panics
    ///
    /// Panics when `xs.len() != out.len()`.
    pub fn eval_many(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(
            xs.len(),
            out.len(),
            "eval_many requires equally sized input and output slabs"
        );
        let n = self.xs.len();
        // NaN compares false, sending any NaN-bearing slab down the scalar
        // path where `eval`'s clamp logic handles it point by point.
        let ascending = xs.windows(2).all(|w| w[0] <= w[1]);
        if !ascending {
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = self.eval(x);
            }
            return;
        }
        let mut lo = 0usize;
        for (o, &x) in out.iter_mut().zip(xs) {
            if x <= self.xs[0] {
                *o = self.ys[0];
                continue;
            }
            if x >= self.xs[n - 1] {
                *o = self.ys[n - 1];
                continue;
            }
            // Advance to the canonical interval: the last knot <= x. The
            // cursor never rewinds because the queries are ascending.
            while lo + 2 < n && x >= self.xs[lo + 1] {
                lo += 1;
            }
            *o = self.hermite(lo, x);
        }
    }

    /// The inclusive domain covered by the knots.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().expect("validated non-empty"))
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Always `false`: a validated table holds at least two knots.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The knot x at which the tabulated y is largest (ties to smallest x).
    pub fn argmax_knot(&self) -> (f64, f64) {
        let mut best = 0;
        for i in 1..self.ys.len() {
            if self.ys[i] > self.ys[best] {
                best = i;
            }
        }
        (self.xs[best], self.ys[best])
    }

    /// Locates the maximum of the *interpolant* by golden-section search in
    /// the neighbourhood of the best knot. For unimodal data this refines
    /// the discrete [`MonotoneTable::argmax_knot`] to sub-knot resolution.
    pub fn argmax_refined(&self) -> (f64, f64) {
        let n = self.xs.len();
        let mut best = 0;
        for i in 1..n {
            if self.ys[i] > self.ys[best] {
                best = i;
            }
        }
        let lo = self.xs[best.saturating_sub(1)];
        let hi = self.xs[(best + 1).min(n - 1)];
        if !(lo < hi) {
            return (self.xs[best], self.ys[best]);
        }
        // Golden-section maximize on [lo, hi].
        const INV_PHI: f64 = 0.618_033_988_749_894_9;
        let (mut a, mut b) = (lo, hi);
        let mut c = b - INV_PHI * (b - a);
        let mut d = a + INV_PHI * (b - a);
        let (mut fc, mut fd) = (self.eval(c), self.eval(d));
        for _ in 0..80 {
            if fc >= fd {
                b = d;
                d = c;
                fd = fc;
                c = b - INV_PHI * (b - a);
                fc = self.eval(c);
            } else {
                a = c;
                c = d;
                fc = fd;
                d = a + INV_PHI * (b - a);
                fd = self.eval(d);
            }
        }
        let x = 0.5 * (a + b);
        (x, self.eval(x))
    }
}

#[cfg(test)]
mod monotone_tests {
    use super::*;

    #[test]
    fn matches_knots_exactly() {
        let t = MonotoneTable::new(vec![0.0, 1.0, 2.5], vec![1.0, 4.0, 2.0]).unwrap();
        assert!((t.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((t.eval(1.0) - 4.0).abs() < 1e-12);
        assert!((t.eval(2.5) - 2.0).abs() < 1e-12);
        assert_eq!(t.domain(), (0.0, 2.5));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn clamps_outside_domain() {
        let t = MonotoneTable::new(vec![0.0, 1.0], vec![2.0, 5.0]).unwrap();
        assert_eq!(t.eval(-1.0), 2.0);
        assert_eq!(t.eval(9.0), 5.0);
    }

    #[test]
    fn preserves_monotonicity_of_monotone_data() {
        // A hard case for naive cubic splines: abrupt flattening.
        let xs = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = vec![0.0, 0.1, 0.2, 5.0, 9.9, 10.0];
        let t = MonotoneTable::new(xs, ys).unwrap();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=500 {
            let x = 5.0 * i as f64 / 500.0;
            let y = t.eval(x);
            assert!(y >= prev - 1e-12, "non-monotone at {x}: {y} < {prev}");
            prev = y;
        }
        // No overshoot beyond the data hull.
        assert!(prev <= 10.0 + 1e-12);
    }

    #[test]
    fn beats_linear_interp_on_smooth_data() {
        // Monotone stretch of a sine: the regime the device LUTs live in.
        let f = |x: f64| x.sin() + 2.0;
        let lin = LinearTable::from_fn(0.0, 1.5, 17, f).unwrap();
        let mono = MonotoneTable::from_fn(0.0, 1.5, 17, f).unwrap();
        let mut err_lin = 0.0f64;
        let mut err_mono = 0.0f64;
        for i in 0..=300 {
            let x = 1.5 * i as f64 / 300.0;
            err_lin = err_lin.max((lin.eval(x) - f(x)).abs());
            err_mono = err_mono.max((mono.eval(x) - f(x)).abs());
        }
        assert!(
            err_mono < err_lin * 0.5,
            "monotone {err_mono:.2e} vs linear {err_lin:.2e}"
        );
    }

    #[test]
    fn argmax_refined_finds_interior_peak() {
        let f = |x: f64| -(x - 0.7) * (x - 0.7) + 3.0;
        let t = MonotoneTable::from_fn(0.0, 2.0, 41, f).unwrap();
        let (x, y) = t.argmax_refined();
        assert!((x - 0.7).abs() < 1e-3, "peak at {x}");
        assert!((y - 3.0).abs() < 1e-6);
        let (xk, _) = t.argmax_knot();
        assert!((xk - 0.7).abs() <= 0.05 + 1e-12);
    }

    #[test]
    fn argmax_refined_handles_boundary_peak() {
        let t = MonotoneTable::from_fn(0.0, 1.0, 11, |x| x).unwrap();
        let (x, y) = t.argmax_refined();
        assert!((x - 1.0).abs() < 1e-3);
        assert!((y - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rejects_bad_tables() {
        assert!(MonotoneTable::new(vec![0.0], vec![1.0]).is_err());
        assert!(MonotoneTable::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(MonotoneTable::from_fn(0.0, 0.0, 5, |x| x).is_err());
    }

    /// Deterministic xorshift64* stream for seeded differential tests.
    fn seeded_queries(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let u =
                    (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
                lo + u * (hi - lo)
            })
            .collect()
    }

    #[test]
    fn eval_many_is_bit_identical_to_eval_on_sorted_queries() {
        // Uniform knots: the scalar path uses the O(1) locate, the batch
        // path uses the cursor. They must still agree to the bit.
        let t = MonotoneTable::from_fn(0.0, 1.5, 64, |x| x.sin() + 2.0).unwrap();
        let mut xs = seeded_queries(0xDEAD_BEEF, 513, -0.2, 1.7);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut out = vec![0.0; xs.len()];
        t.eval_many(&xs, &mut out);
        for (&x, &y) in xs.iter().zip(&out) {
            assert_eq!(y.to_bits(), t.eval(x).to_bits(), "mismatch at x={x}");
        }
    }

    #[test]
    fn eval_many_is_bit_identical_on_unsorted_and_nonuniform_queries() {
        // Non-uniform knots force the partition_point scalar locate; the
        // unsorted batch falls back to exactly that path.
        let xs_knots = vec![0.0, 0.3, 1.0, 2.2, 5.0];
        let ys_knots = vec![0.0, 0.5, 0.9, 2.0, 2.1];
        let t = MonotoneTable::new(xs_knots, ys_knots).unwrap();
        let xs = seeded_queries(42, 257, -1.0, 6.0);
        let mut out = vec![0.0; xs.len()];
        t.eval_many(&xs, &mut out);
        for (&x, &y) in xs.iter().zip(&out) {
            assert_eq!(y.to_bits(), t.eval(x).to_bits(), "mismatch at x={x}");
        }
    }

    #[test]
    fn eval_many_handles_edge_batches() {
        let t = MonotoneTable::from_fn(0.0, 1.0, 8, |x| x * x).unwrap();
        // Empty slab is a no-op.
        t.eval_many(&[], &mut []);
        // All-clamped slab (everything outside the domain).
        let xs = [-2.0, -1.0, 1.5, 9.0];
        let mut out = [f64::NAN; 4];
        t.eval_many(&xs, &mut out);
        assert_eq!(out, [0.0, 0.0, 1.0, 1.0]);
        // Exact knot hits reproduce knot values.
        let knots = [0.0, 0.5, 1.0];
        let mut out = [f64::NAN; 3];
        t.eval_many(&knots, &mut out);
        for (&x, &y) in knots.iter().zip(&out) {
            assert_eq!(y.to_bits(), t.eval(x).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn eval_many_rejects_mismatched_slabs() {
        let t = MonotoneTable::from_fn(0.0, 1.0, 8, |x| x).unwrap();
        let mut out = [0.0; 2];
        t.eval_many(&[0.1, 0.2, 0.3], &mut out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> LinearTable {
        LinearTable::new(vec![0.0, 1.0, 3.0], vec![2.0, 4.0, 0.0]).unwrap()
    }

    #[test]
    fn validates_construction() {
        assert!(LinearTable::new(vec![0.0], vec![1.0]).is_err());
        assert!(LinearTable::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(LinearTable::new(vec![1.0, 1.0], vec![0.0, 1.0]).is_err());
        assert!(LinearTable::new(vec![1.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(LinearTable::new(vec![0.0, f64::NAN], vec![0.0, 1.0]).is_err());
        assert!(LinearTable::new(vec![0.0, 1.0], vec![0.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn interpolates_between_knots() {
        let t = ramp();
        assert_eq!(t.eval(0.0), 2.0);
        assert_eq!(t.eval(0.5), 3.0);
        assert_eq!(t.eval(1.0), 4.0);
        assert_eq!(t.eval(2.0), 2.0);
        assert_eq!(t.eval(3.0), 0.0);
    }

    #[test]
    fn clamps_outside_domain() {
        let t = ramp();
        assert_eq!(t.eval(-10.0), 2.0);
        assert_eq!(t.eval(10.0), 0.0);
    }

    #[test]
    fn domain_len_knots() {
        let t = ramp();
        assert_eq!(t.domain(), (0.0, 3.0));
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let knots: Vec<_> = t.knots().collect();
        assert_eq!(knots, vec![(0.0, 2.0), (1.0, 4.0), (3.0, 0.0)]);
    }

    #[test]
    fn argmax_finds_peak() {
        let t = ramp();
        assert_eq!(t.argmax(), (1.0, 4.0));
    }

    #[test]
    fn from_fn_samples_evenly() {
        let t = LinearTable::from_fn(0.0, 2.0, 5, |x| x * x).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.eval(1.0), 1.0);
        // Between knots the quadratic is approximated linearly.
        let mid = t.eval(0.25);
        assert!((mid - (0.0 + 0.25) / 2.0 * 0.5).abs() < 0.2);
        assert!(LinearTable::from_fn(0.0, 0.0, 5, |x| x).is_err());
        assert!(LinearTable::from_fn(0.0, 1.0, 1, |x| x).is_err());
    }

    #[test]
    fn inverse_of_increasing_table() {
        let t = LinearTable::new(vec![0.0, 1.0, 2.0], vec![10.0, 20.0, 40.0]).unwrap();
        let inv = t.inverse().unwrap();
        assert_eq!(inv.eval(20.0), 1.0);
        assert_eq!(inv.eval(30.0), 1.5);
    }

    #[test]
    fn inverse_of_decreasing_table() {
        let t = LinearTable::new(vec![0.0, 1.0, 2.0], vec![40.0, 20.0, 10.0]).unwrap();
        let inv = t.inverse().unwrap();
        assert_eq!(inv.eval(20.0), 1.0);
        assert_eq!(inv.eval(15.0), 1.5);
    }

    #[test]
    fn inverse_rejects_non_monotonic() {
        assert!(ramp().inverse().is_err());
    }

    // Gated: requires the `proptest` feature plus re-adding the
    // proptest dev-dependency (removed for offline resolution).
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn eval_is_within_y_hull(x in -5.0f64..8.0) {
            let t = ramp();
            let y = t.eval(x);
            prop_assert!((0.0..=4.0).contains(&y));
        }

        #[test]
        fn eval_matches_knots_exactly(
            knots in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..20)
        ) {
            let mut xs: Vec<f64> = knots.iter().map(|k| k.0).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs.dedup();
            prop_assume!(xs.len() >= 2);
            let ys: Vec<f64> = knots.iter().take(xs.len()).map(|k| k.1).collect();
            let t = LinearTable::new(xs.clone(), ys.clone()).unwrap();
            for (x, y) in xs.iter().zip(ys.iter()) {
                prop_assert!((t.eval(*x) - y).abs() < 1e-9);
            }
        }

        #[test]
        fn increasing_inverse_round_trips(y0 in 0.0f64..1.0, step in 0.1f64..2.0) {
            let xs = vec![0.0, 1.0, 2.0, 3.0];
            let ys: Vec<f64> = xs.iter().map(|x| y0 + step * x).collect();
            let t = LinearTable::new(xs, ys).unwrap();
            let inv = t.inverse().unwrap();
            for x in [0.0, 0.7, 1.3, 2.9, 3.0] {
                let round = inv.eval(t.eval(x));
                prop_assert!((round - x).abs() < 1e-9);
            }
        }
    }
}
