//! Typed physical quantities and small numeric solvers.
//!
//! Every other crate in this workspace expresses its public API in terms of
//! the newtypes defined here ([`Volts`], [`Amps`], [`Watts`], [`Joules`],
//! [`Hertz`], [`Seconds`], [`Farads`], …) so that dimensional mistakes are
//! compile errors rather than silent bugs. Arithmetic between quantities is
//! implemented only where it is dimensionally sound:
//!
//! ```
//! use hems_units::{Volts, Amps, Watts, Seconds};
//!
//! let p: Watts = Volts::new(0.55) * Amps::new(0.010);
//! let e = p * Seconds::new(0.015);
//! assert!((e.joules() - 0.55 * 0.010 * 0.015).abs() < 1e-12);
//! ```
//!
//! The [`solve`] module provides the bracketed root finder and 1-D minimizers
//! used throughout the workspace (photovoltaic operating-point solution,
//! minimum-energy-point search, deadline feasibility), and [`interp`] provides
//! the validated piecewise-linear tables used for lookup-table based MPP
//! tracking.

// `!(a < b)` is used deliberately throughout this workspace: unlike
// `a >= b` it is `true` when either operand is NaN, which is exactly the
// reject-by-default behaviour the validation paths want.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod interp;
mod quantity;
mod ratio;
mod rng;
pub mod solve;

pub use error::{SolveError, UnitsError};
pub use interp::{LinearTable, MonotoneTable};
pub use quantity::{Amps, Coulombs, Cycles, Farads, Hertz, Joules, Ohms, Seconds, Volts, Watts};
pub use ratio::Efficiency;
pub use rng::XorShiftRng;
