//! A small vendored pseudo-random number generator.
//!
//! The workspace builds with no network access, so it cannot depend on the
//! `rand` crate. The stochastic pieces of the reproduction (seeded cloud
//! cover, synthetic camera frames) only need a deterministic, seedable,
//! statistically reasonable generator — not a cryptographic one — which a
//! 16-byte xorshift variant provides. The implementation is
//! `xorshift64*` (Marsaglia 2003; Vigna 2016): a 64-bit xorshift step
//! followed by a multiplicative scramble of the output.
//!
//! Determinism is part of the contract: the same seed always yields the
//! same sequence, on every platform, forever. Simulation fixtures and the
//! parallel sweep engine rely on this to make runs reproducible.

/// A seedable `xorshift64*` pseudo-random number generator.
///
/// ```
/// use hems_units::XorShiftRng;
///
/// let mut a = XorShiftRng::seed_from_u64(42);
/// let mut b = XorShiftRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range_f64(0.25, 0.75);
/// assert!((0.25..0.75).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Builds a generator from a 64-bit seed.
    ///
    /// Any seed is accepted; zero (a fixed point of the raw xorshift step)
    /// is remapped to a non-zero constant, and every seed is pre-mixed with
    /// a SplitMix64 step so that consecutive small seeds produce unrelated
    /// streams.
    pub fn seed_from_u64(seed: u64) -> XorShiftRng {
        // One round of SplitMix64 decorrelates adjacent seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        XorShiftRng {
            state: if z == 0 { 0x853C_49E6_748F_EA9B } else { z },
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits; the scrambled high bits are the best ones.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[0, n)` via rejection-free multiply-shift
    /// (Lemire's method without the correction, which is fine at the
    /// statistical quality this workspace needs).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below_u32(&mut self, n: u32) -> u32 {
        assert!(n > 0, "below_u32 needs n > 0");
        (((self.next_u64() >> 32) * n as u64) >> 32) as u32
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "bad range [{lo}, {hi})");
        lo + self.below_u32(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShiftRng::seed_from_u64(7);
        let mut b = XorShiftRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShiftRng::seed_from_u64(1);
        let mut b = XorShiftRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShiftRng::seed_from_u64(0);
        let first = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval_and_covers_it() {
        let mut r = XorShiftRng::seed_from_u64(1234);
        let mut lo_seen = false;
        let mut hi_seen = false;
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
            lo_seen |= x < 0.1;
            hi_seen |= x > 0.9;
            sum += x;
        }
        assert!(lo_seen && hi_seen);
        // Mean of U[0,1) over 10k draws is 0.5 within ~1.5%.
        assert!((sum / N as f64 - 0.5).abs() < 0.015);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = XorShiftRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = r.range_u32(5, 12);
            assert!((5..12).contains(&n));
        }
        // Every value of a small integer range appears.
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[(r.range_u32(5, 12) - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_float_range_panics() {
        let _ = XorShiftRng::seed_from_u64(0).range_f64(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zero_width_integer_range_panics() {
        let _ = XorShiftRng::seed_from_u64(0).below_u32(0);
    }
}
