use crate::{UnitsError, Watts};
use std::fmt;

/// A power-conversion efficiency in `[0, 1]`.
///
/// The constructor validates the range, so every `Efficiency` in the
/// workspace is known-good by construction. Regulator models return one of
/// these and schedulers combine them without re-checking.
///
/// ```
/// use hems_units::{Efficiency, Watts};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let eta = Efficiency::new(0.67)?;
/// let delivered = eta.apply(Watts::from_milli(10.0));
/// assert!((delivered.to_milli() - 6.7).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Efficiency(f64);

impl Efficiency {
    /// A perfect (lossless) conversion.
    pub const UNITY: Efficiency = Efficiency(1.0);

    /// Creates an efficiency, validating that it lies in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`UnitsError::OutOfRange`] when `value` is outside `[0, 1]`
    /// and [`UnitsError::NotFinite`] when it is NaN or infinite.
    pub fn new(value: f64) -> Result<Self, UnitsError> {
        if !value.is_finite() {
            return Err(UnitsError::NotFinite {
                what: "efficiency",
                value,
            });
        }
        if !(0.0..=1.0).contains(&value) {
            return Err(UnitsError::OutOfRange {
                what: "efficiency",
                value,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(Efficiency(value))
    }

    /// Creates an efficiency, clamping out-of-range finite values into `[0, 1]`.
    ///
    /// Useful inside loss models whose intermediate algebra can slightly
    /// overshoot the physical range.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn saturating(value: f64) -> Self {
        assert!(!value.is_nan(), "efficiency must not be NaN");
        Efficiency(value.clamp(0.0, 1.0))
    }

    /// The raw ratio in `[0, 1]`.
    #[inline]
    pub const fn ratio(self) -> f64 {
        self.0
    }

    /// The ratio expressed in percent.
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Output power for a given input power: `P_out = eta * P_in`.
    #[inline]
    pub fn apply(self, input: Watts) -> Watts {
        input * self.0
    }

    /// Input power required to deliver `output`: `P_in = P_out / eta`.
    ///
    /// Returns an infinite power when the efficiency is zero and the output
    /// demand is positive — callers treat that as "cannot be served".
    #[inline]
    pub fn input_for_output(self, output: Watts) -> Watts {
        output / self.0
    }

    /// Composes two conversion stages in series.
    #[inline]
    pub fn compose(self, other: Efficiency) -> Efficiency {
        Efficiency(self.0 * other.0)
    }
}

impl fmt::Display for Efficiency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*}%", precision, self.percent())
        } else {
            write!(f, "{:.1}%", self.percent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn constructor_validates_range() {
        assert!(Efficiency::new(0.0).is_ok());
        assert!(Efficiency::new(1.0).is_ok());
        assert!(Efficiency::new(-0.01).is_err());
        assert!(Efficiency::new(1.01).is_err());
        assert!(Efficiency::new(f64::NAN).is_err());
        assert!(Efficiency::new(f64::INFINITY).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Efficiency::saturating(1.7).ratio(), 1.0);
        assert_eq!(Efficiency::saturating(-0.2).ratio(), 0.0);
        assert_eq!(Efficiency::saturating(0.5).ratio(), 0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn saturating_rejects_nan() {
        let _ = Efficiency::saturating(f64::NAN);
    }

    #[test]
    fn apply_and_invert() {
        let eta = Efficiency::new(0.5).unwrap();
        let out = eta.apply(Watts::new(10.0));
        assert_eq!(out.watts(), 5.0);
        let input = eta.input_for_output(Watts::new(5.0));
        assert_eq!(input.watts(), 10.0);
    }

    #[test]
    fn zero_efficiency_demands_infinite_input() {
        let eta = Efficiency::new(0.0).unwrap();
        assert!(eta.input_for_output(Watts::new(1.0)).watts().is_infinite());
    }

    #[test]
    fn composition_multiplies() {
        let a = Efficiency::new(0.8).unwrap();
        let b = Efficiency::new(0.5).unwrap();
        assert!((a.compose(b).ratio() - 0.4).abs() < 1e-15);
    }

    #[test]
    fn display_shows_percent() {
        let eta = Efficiency::new(0.675).unwrap();
        assert_eq!(format!("{eta}"), "67.5%");
        assert_eq!(format!("{eta:.0}"), "68%");
    }

    // Gated: requires the `proptest` feature plus re-adding the
    // proptest dev-dependency (removed for offline resolution).
    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn apply_then_invert_round_trips(
            eta in 0.01f64..1.0,
            p in 1e-9f64..100.0,
        ) {
            let e = Efficiency::new(eta).unwrap();
            let back = e.input_for_output(e.apply(Watts::new(p)));
            prop_assert!((back.watts() - p).abs() <= 1e-9 * p);
        }

        #[test]
        fn compose_never_exceeds_either_stage(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let c = Efficiency::new(a).unwrap().compose(Efficiency::new(b).unwrap());
            prop_assert!(c.ratio() <= a + 1e-15);
            prop_assert!(c.ratio() <= b + 1e-15);
        }
    }
}
