use std::error::Error;
use std::fmt;

/// Error raised when constructing or combining quantities with invalid values.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitsError {
    /// A value expected to be finite was NaN or infinite.
    NotFinite {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A value fell outside its permitted range.
    OutOfRange {
        /// Human-readable name of the offending parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// A lookup table was constructed from malformed data.
    BadTable {
        /// Explanation of the defect.
        reason: &'static str,
    },
}

impl fmt::Display for UnitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitsError::NotFinite { what, value } => {
                write!(f, "{what} must be finite, got {value}")
            }
            UnitsError::OutOfRange {
                what,
                value,
                min,
                max,
            } => write!(f, "{what} must be in [{min}, {max}], got {value}"),
            UnitsError::BadTable { reason } => write!(f, "malformed table: {reason}"),
        }
    }
}

impl Error for UnitsError {}

/// Error raised by the numeric solvers in [`crate::solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The supplied bracket does not contain a sign change.
    NoSignChange {
        /// Function value at the lower bracket end.
        f_lo: f64,
        /// Function value at the upper bracket end.
        f_hi: f64,
    },
    /// The bracket is degenerate (`lo >= hi`) or non-finite.
    BadBracket {
        /// Lower bracket end.
        lo: f64,
        /// Upper bracket end.
        hi: f64,
    },
    /// The iteration limit was reached before convergence.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Best estimate when iteration stopped.
        best: f64,
    },
    /// The objective returned a non-finite value during iteration.
    NonFiniteObjective {
        /// Argument at which the objective misbehaved.
        at: f64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoSignChange { f_lo, f_hi } => write!(
                f,
                "bracket does not straddle a root: f(lo)={f_lo}, f(hi)={f_hi}"
            ),
            SolveError::BadBracket { lo, hi } => {
                write!(f, "invalid bracket [{lo}, {hi}]")
            }
            SolveError::NoConvergence { iterations, best } => write!(
                f,
                "no convergence after {iterations} iterations (best estimate {best})"
            ),
            SolveError::NonFiniteObjective { at } => {
                write!(f, "objective returned a non-finite value at {at}")
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_error_display_is_lowercase_and_informative() {
        let e = UnitsError::NotFinite {
            what: "capacitance",
            value: f64::NAN,
        };
        let s = e.to_string();
        assert!(s.contains("capacitance"));
        assert!(s.contains("finite"));
    }

    #[test]
    fn out_of_range_display_mentions_bounds() {
        let e = UnitsError::OutOfRange {
            what: "efficiency",
            value: 1.5,
            min: 0.0,
            max: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains("efficiency"));
        assert!(s.contains("1.5"));
    }

    #[test]
    fn solve_error_display() {
        let e = SolveError::NoSignChange {
            f_lo: 1.0,
            f_hi: 2.0,
        };
        assert!(e.to_string().contains("straddle"));
        let e = SolveError::NoConvergence {
            iterations: 7,
            best: 0.5,
        };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UnitsError>();
        assert_send_sync::<SolveError>();
    }
}
