//! Newtype quantities over `f64`.
//!
//! Each quantity is a transparent wrapper around a single `f64` with the
//! arithmetic a physical dimension admits: same-dimension addition and
//! subtraction, scaling by a dimensionless `f64`, and a dimensionless ratio
//! from dividing two values of the same quantity. Cross-dimension products
//! and quotients (`Volts * Amps = Watts`, `Watts * Seconds = Joules`, …) are
//! implemented individually below the macro.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $accessor:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Creates a new quantity from a raw value in base units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// Returns the raw value in base units.
            ///
            /// The named accessor (e.g. [`Volts::volts`]) is usually clearer
            /// at call sites.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            #[doc = concat!("Returns the raw value in ", $unit, ".")]
            #[inline]
            pub const fn $accessor(self) -> f64 {
                self.0
            }

            /// Creates a quantity from a value expressed in thousandths of
            /// the base unit (milli-).
            #[inline]
            pub fn from_milli(value: f64) -> Self {
                $name(value * 1e-3)
            }

            /// Creates a quantity from a value expressed in millionths of
            /// the base unit (micro-).
            #[inline]
            pub fn from_micro(value: f64) -> Self {
                $name(value * 1e-6)
            }

            /// The raw value expressed in thousandths of the base unit.
            #[inline]
            pub fn to_milli(self) -> f64 {
                self.0 * 1e3
            }

            /// The raw value expressed in millionths of the base unit.
            #[inline]
            pub fn to_micro(self) -> f64 {
                self.0 * 1e6
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// The smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// The larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Clamps `self` into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`, mirroring [`f64::clamp`].
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// `true` when the underlying value is neither NaN nor infinite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// `true` when the value is strictly positive and finite.
            #[inline]
            pub fn is_positive(self) -> bool {
                self.0.is_finite() && self.0 > 0.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Dividing two values of the same quantity yields a dimensionless ratio.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts, "V", volts
);
quantity!(
    /// Electric current in amperes.
    Amps, "A", amps
);
quantity!(
    /// Power in watts.
    Watts, "W", watts
);
quantity!(
    /// Energy in joules.
    Joules, "J", joules
);
quantity!(
    /// Frequency in hertz.
    Hertz, "Hz", hertz
);
quantity!(
    /// Time in seconds.
    Seconds, "s", seconds
);
quantity!(
    /// Capacitance in farads.
    Farads, "F", farads
);
quantity!(
    /// Electric charge in coulombs.
    Coulombs, "C", coulombs
);
quantity!(
    /// Resistance in ohms.
    Ohms, "Ohm", ohms
);
quantity!(
    /// A (fractional) count of clock cycles.
    Cycles, "cyc", count
);

// --- Cross-dimension arithmetic -------------------------------------------

impl Mul<Amps> for Volts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.volts() * rhs.amps())
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Div<Volts> for Watts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Volts) -> Amps {
        Amps::new(self.watts() / rhs.volts())
    }
}

impl Div<Amps> for Watts {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: Amps) -> Volts {
        Volts::new(self.watts() / rhs.amps())
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.watts() * rhs.seconds())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts::new(self.joules() / rhs.seconds())
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds::new(self.joules() / rhs.watts())
    }
}

impl Mul<Seconds> for Amps {
    type Output = Coulombs;
    #[inline]
    fn mul(self, rhs: Seconds) -> Coulombs {
        Coulombs::new(self.amps() * rhs.seconds())
    }
}

impl Div<Volts> for Coulombs {
    type Output = Farads;
    #[inline]
    fn div(self, rhs: Volts) -> Farads {
        Farads::new(self.coulombs() / rhs.volts())
    }
}

impl Div<Farads> for Coulombs {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: Farads) -> Volts {
        Volts::new(self.coulombs() / rhs.farads())
    }
}

impl Mul<Volts> for Farads {
    type Output = Coulombs;
    #[inline]
    fn mul(self, rhs: Volts) -> Coulombs {
        Coulombs::new(self.farads() * rhs.volts())
    }
}

impl Div<Amps> for Coulombs {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Amps) -> Seconds {
        Seconds::new(self.coulombs() / rhs.amps())
    }
}

impl Div<Ohms> for Volts {
    type Output = Amps;
    #[inline]
    fn div(self, rhs: Ohms) -> Amps {
        Amps::new(self.volts() / rhs.ohms())
    }
}

impl Div<Amps> for Volts {
    type Output = Ohms;
    #[inline]
    fn div(self, rhs: Amps) -> Ohms {
        Ohms::new(self.volts() / rhs.amps())
    }
}

impl Mul<Ohms> for Amps {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts::new(self.amps() * rhs.ohms())
    }
}

impl Mul<Seconds> for Hertz {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: Seconds) -> Cycles {
        Cycles::new(self.hertz() * rhs.seconds())
    }
}

impl Mul<Hertz> for Seconds {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: Hertz) -> Cycles {
        rhs * self
    }
}

impl Div<Hertz> for Cycles {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Hertz) -> Seconds {
        Seconds::new(self.count() / rhs.hertz())
    }
}

impl Div<Seconds> for Cycles {
    type Output = Hertz;
    #[inline]
    fn div(self, rhs: Seconds) -> Hertz {
        Hertz::new(self.count() / rhs.seconds())
    }
}

impl Hertz {
    /// The clock period corresponding to this frequency.
    ///
    /// Returns an infinite period for a zero frequency.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.hertz())
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mega(mhz: f64) -> Hertz {
        Hertz::new(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_giga(ghz: f64) -> Hertz {
        Hertz::new(ghz * 1e9)
    }

    /// The raw value expressed in megahertz.
    #[inline]
    pub fn to_mega(self) -> f64 {
        self.hertz() * 1e-6
    }
}

impl Seconds {
    /// The frequency whose period is this duration.
    #[inline]
    pub fn recip(self) -> Hertz {
        Hertz::new(1.0 / self.seconds())
    }
}

impl Farads {
    /// The energy stored on this capacitance when charged to `v`:
    /// `E = C * v^2 / 2`.
    #[inline]
    pub fn stored_energy(self, v: Volts) -> Joules {
        Joules::new(0.5 * self.farads() * v.volts() * v.volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn same_dimension_arithmetic() {
        let a = Volts::new(1.0);
        let b = Volts::new(0.25);
        assert_eq!((a + b).volts(), 1.25);
        assert_eq!((a - b).volts(), 0.75);
        assert_eq!((-b).volts(), -0.25);
        assert_eq!((a * 2.0).volts(), 2.0);
        assert_eq!((2.0 * a).volts(), 2.0);
        assert_eq!((a / 4.0).volts(), 0.25);
        assert_eq!(a / b, 4.0);
    }

    #[test]
    fn assign_ops() {
        let mut v = Watts::new(1.0);
        v += Watts::new(2.0);
        v -= Watts::new(0.5);
        v *= 2.0;
        v /= 5.0;
        assert!((v.watts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_energy_chain() {
        let p = Volts::new(0.55) * Amps::from_milli(10.0);
        assert!((p.to_milli() - 5.5).abs() < 1e-9);
        let e = p * Seconds::from_milli(15.0);
        assert!((e.to_micro() - 82.5).abs() < 1e-6);
        let back: Watts = e / Seconds::from_milli(15.0);
        assert!((back.watts() - p.watts()).abs() < 1e-15);
        let t: Seconds = e / p;
        assert!((t.to_milli() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn ohms_law() {
        let i = Volts::new(1.2) / Ohms::new(120.0);
        assert!((i.to_milli() - 10.0).abs() < 1e-9);
        let r = Volts::new(1.2) / Amps::from_milli(10.0);
        assert!((r.ohms() - 120.0).abs() < 1e-9);
        let v = Amps::from_milli(10.0) * Ohms::new(120.0);
        assert!((v.volts() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn charge_and_capacitance() {
        let q = Amps::from_milli(1.0) * Seconds::new(2.0);
        assert!((q.to_milli() - 2.0).abs() < 1e-12);
        let c = q / Volts::new(4.0);
        assert!((c.to_micro() - 500.0).abs() < 1e-6);
        let v = q / Farads::from_micro(500.0);
        assert!((v.volts() - 4.0).abs() < 1e-9);
        let t = q / Amps::from_milli(1.0);
        assert!((t.seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_and_cycles() {
        let f = Hertz::from_mega(100.0);
        assert!((f.period().to_micro() - 0.01).abs() < 1e-15);
        let n = f * Seconds::from_milli(1.0);
        assert!((n.count() - 100_000.0).abs() < 1e-6);
        let t = n / f;
        assert!((t.to_milli() - 1.0).abs() < 1e-12);
        let f2 = n / Seconds::from_milli(1.0);
        assert!((f2.hertz() - f.hertz()).abs() < 1e-3);
        assert!((Hertz::from_giga(1.2).to_mega() - 1200.0).abs() < 1e-9);
        assert!((Seconds::new(0.5).recip().hertz() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capacitor_energy() {
        let e = Farads::from_micro(100.0).stored_energy(Volts::new(1.2));
        assert!((e.to_micro() - 72.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_clamp_abs() {
        let a = Joules::new(-2.0);
        assert_eq!(a.abs().joules(), 2.0);
        assert_eq!(a.max(Joules::ZERO), Joules::ZERO);
        assert_eq!(a.min(Joules::ZERO), a);
        assert_eq!(
            Joules::new(5.0).clamp(Joules::ZERO, Joules::new(1.0)),
            Joules::new(1.0)
        );
    }

    #[test]
    fn display_includes_unit_and_precision() {
        assert_eq!(format!("{:.2}", Volts::new(0.5512)), "0.55 V");
        assert_eq!(format!("{}", Watts::new(2.0)), "2 W");
        assert_eq!(format!("{:.1}", Hertz::new(1.25)), "1.2 Hz");
    }

    #[test]
    fn finiteness_predicates() {
        assert!(Volts::new(1.0).is_finite());
        assert!(!Volts::new(f64::NAN).is_finite());
        assert!(Volts::new(1.0).is_positive());
        assert!(!Volts::ZERO.is_positive());
        assert!(!Volts::new(f64::INFINITY).is_positive());
    }

    #[test]
    fn sum_of_quantities() {
        let total: Joules = (1..=4).map(|i| Joules::new(i as f64)).sum();
        assert_eq!(total.joules(), 10.0);
    }

    #[test]
    fn milli_micro_round_trip() {
        let v = Volts::from_milli(550.0);
        assert!((v.volts() - 0.55).abs() < 1e-12);
        assert!((v.to_milli() - 550.0).abs() < 1e-9);
        let i = Amps::from_micro(15.0);
        assert!((i.to_micro() - 15.0).abs() < 1e-9);
    }

    // Gated: requires the `proptest` feature plus re-adding the
    // proptest dev-dependency (removed for offline resolution).
    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn addition_is_commutative(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let x = Watts::new(a) + Watts::new(b);
            let y = Watts::new(b) + Watts::new(a);
            prop_assert_eq!(x, y);
        }

        #[test]
        fn power_division_inverts_multiplication(
            v in 0.01f64..10.0,
            i in 0.001f64..1.0,
        ) {
            let p = Volts::new(v) * Amps::new(i);
            let i_back = p / Volts::new(v);
            prop_assert!((i_back.amps() - i).abs() <= 1e-12 * i.abs().max(1.0));
        }

        #[test]
        fn energy_time_round_trip(p in 1e-6f64..10.0, t in 1e-6f64..1e3) {
            let e = Watts::new(p) * Seconds::new(t);
            let t_back = e / Watts::new(p);
            prop_assert!((t_back.seconds() - t).abs() <= 1e-9 * t);
        }

        #[test]
        fn clamp_is_idempotent(x in -10.0f64..10.0) {
            let lo = Volts::new(-1.0);
            let hi = Volts::new(1.0);
            let once = Volts::new(x).clamp(lo, hi);
            prop_assert_eq!(once, once.clamp(lo, hi));
            prop_assert!(once >= lo && once <= hi);
        }
    }
}
