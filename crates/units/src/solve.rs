//! Bracketed 1-D root finding and minimization.
//!
//! These are the workhorse solvers behind the photovoltaic implicit diode
//! equation, the holistic optimal-voltage search (paper eqs. 1–4), the
//! minimum-energy-point search (eq. 5), and the deadline-feasibility
//! intersection (Fig. 9a). All solvers are deterministic and allocation-free.

use crate::SolveError;

/// Default x-tolerance used by the convenience wrappers.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Maximum iterations for the iterative solvers.
const MAX_ITER: usize = 200;

/// Golden-ratio constant used by [`golden_min`].
const INV_PHI: f64 = 0.618_033_988_749_894_9;

/// Finds a root of `f` on `[lo, hi]` by bisection.
///
/// # Errors
///
/// - [`SolveError::BadBracket`] when the bracket is degenerate or non-finite.
/// - [`SolveError::NoSignChange`] when `f(lo)` and `f(hi)` share a sign.
/// - [`SolveError::NonFiniteObjective`] when `f` returns NaN/inf.
///
/// ```
/// use hems_units::solve::bisect;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
/// assert!((root - 2f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> Result<f64, SolveError> {
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
        return Err(SolveError::BadBracket { lo, hi });
    }
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if !f_lo.is_finite() {
        return Err(SolveError::NonFiniteObjective { at: lo });
    }
    if !f_hi.is_finite() {
        return Err(SolveError::NonFiniteObjective { at: hi });
    }
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(SolveError::NoSignChange { f_lo, f_hi });
    }
    for _ in 0..MAX_ITER {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if !f_mid.is_finite() {
            return Err(SolveError::NonFiniteObjective { at: mid });
        }
        if f_mid == 0.0 || (hi - lo) < tol {
            return Ok(mid);
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Err(SolveError::NoConvergence {
        iterations: MAX_ITER,
        best: 0.5 * (lo + hi),
    })
}

/// Minimizes a unimodal `f` on `[lo, hi]` by golden-section search.
///
/// Returns the argmin. For a non-unimodal objective use [`minimize`], which
/// grid-scans first.
///
/// # Errors
///
/// - [`SolveError::BadBracket`] for a degenerate or non-finite bracket.
/// - [`SolveError::NonFiniteObjective`] when `f` misbehaves.
pub fn golden_min(
    mut f: impl FnMut(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> Result<f64, SolveError> {
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
        return Err(SolveError::BadBracket { lo, hi });
    }
    let mut a = hi - INV_PHI * (hi - lo);
    let mut b = lo + INV_PHI * (hi - lo);
    let mut fa = f(a);
    let mut fb = f(b);
    for _ in 0..MAX_ITER {
        if !fa.is_finite() {
            return Err(SolveError::NonFiniteObjective { at: a });
        }
        if !fb.is_finite() {
            return Err(SolveError::NonFiniteObjective { at: b });
        }
        if (hi - lo) < tol {
            break;
        }
        if fa < fb {
            hi = b;
            b = a;
            fb = fa;
            a = hi - INV_PHI * (hi - lo);
            fa = f(a);
        } else {
            lo = a;
            a = b;
            fa = fb;
            b = lo + INV_PHI * (hi - lo);
            fb = f(b);
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Minimizes `f` on `[lo, hi]` by an `n`-point grid scan followed by
/// golden-section refinement around the best grid cell.
///
/// Robust to objectives with several local minima as long as the grid is fine
/// enough to land in the global basin. Returns `(argmin, min)`.
///
/// # Errors
///
/// - [`SolveError::BadBracket`] for a degenerate bracket or `n < 2`.
/// - [`SolveError::NonFiniteObjective`] when `f` returns NaN at every grid
///   point; isolated non-finite grid points are skipped so that objectives
///   with restricted domains (e.g. frequency undefined below threshold
///   voltage) can still be minimized.
pub fn minimize(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    n: usize,
) -> Result<(f64, f64), SolveError> {
    if !(lo < hi) || !lo.is_finite() || !hi.is_finite() || n < 2 {
        return Err(SolveError::BadBracket { lo, hi });
    }
    let step = (hi - lo) / (n - 1) as f64;
    let mut best_i: Option<usize> = None;
    let mut best_y = f64::INFINITY;
    for i in 0..n {
        let x = lo + step * i as f64;
        let y = f(x);
        if y.is_finite() && y < best_y {
            best_y = y;
            best_i = Some(i);
        }
    }
    let Some(best_i) = best_i else {
        return Err(SolveError::NonFiniteObjective { at: lo });
    };
    let left = lo + step * best_i.saturating_sub(1) as f64;
    let right = (lo + step * (best_i + 1) as f64).min(hi);
    // Guard against non-finite objective values within the refinement
    // bracket by falling back to the grid optimum.
    let x = match golden_min(&mut f, left, right, DEFAULT_TOL) {
        Ok(x) => x,
        Err(_) => lo + step * best_i as f64,
    };
    let y = f(x);
    if y.is_finite() && y <= best_y {
        Ok((x, y))
    } else {
        Ok((lo + step * best_i as f64, best_y))
    }
}

/// Maximizes `f` on `[lo, hi]`; see [`minimize`] for the method and errors.
///
/// Returns `(argmax, max)`.
///
/// # Errors
///
/// Propagates the same errors as [`minimize`].
pub fn maximize(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    n: usize,
) -> Result<(f64, f64), SolveError> {
    let (x, neg_y) = minimize(|x| -f(x), lo, hi, n)?;
    Ok((x, -neg_y))
}

/// Integrates `f` over `[lo, hi]` with the composite trapezoid rule on `n`
/// panels.
///
/// Used by energy-accounting tests to cross-check the simulator's discrete
/// ledgers against analytic integrals.
///
/// # Panics
///
/// Panics if `n == 0` or the interval is non-finite.
pub fn trapezoid(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, n: usize) -> f64 {
    assert!(n > 0, "trapezoid requires at least one panel");
    assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
    let h = (hi - lo) / n as f64;
    let mut acc = 0.5 * (f(lo) + f(hi));
    for i in 1..n {
        acc += f(lo + h * i as f64);
    }
    acc * h
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn bisect_accepts_root_at_bracket_end() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_bad_input() {
        assert!(matches!(
            bisect(|x| x, 1.0, 0.0, 1e-9),
            Err(SolveError::BadBracket { .. })
        ));
        assert!(matches!(
            bisect(|x| x + 10.0, 0.0, 1.0, 1e-9),
            Err(SolveError::NoSignChange { .. })
        ));
        assert!(matches!(
            bisect(|x| if x == 0.0 { f64::NAN } else { x }, 0.0, 1.0, 1e-9),
            Err(SolveError::NonFiniteObjective { .. })
        ));
    }

    #[test]
    fn golden_min_finds_parabola_vertex() {
        let x = golden_min(|x| (x - 0.3).powi(2), -1.0, 1.0, 1e-10).unwrap();
        assert!((x - 0.3).abs() < 1e-6);
    }

    #[test]
    fn golden_min_rejects_bad_bracket() {
        assert!(golden_min(|x| x, 1.0, 1.0, 1e-9).is_err());
        assert!(golden_min(|x| x, f64::NAN, 1.0, 1e-9).is_err());
    }

    #[test]
    fn minimize_escapes_local_minimum() {
        // Two basins: local min near x=1 (depth 1), global near x=4 (depth 3).
        let f = |x: f64| -((-(x - 1.0).powi(2)).exp() + 3.0 * (-(x - 4.0).powi(2)).exp());
        let (x, _) = minimize(f, -1.0, 6.0, 101).unwrap();
        assert!((x - 4.0).abs() < 1e-3, "got {x}");
    }

    #[test]
    fn minimize_tolerates_restricted_domain() {
        // NaN below 0.4 — like frequency below threshold voltage.
        let f = |x: f64| if x < 0.4 { f64::NAN } else { (x - 0.6).powi(2) };
        let (x, y) = minimize(f, 0.0, 1.0, 51).unwrap();
        assert!((x - 0.6).abs() < 1e-3);
        assert!(y < 1e-6);
    }

    #[test]
    fn minimize_all_nan_errors() {
        assert!(matches!(
            minimize(|_| f64::NAN, 0.0, 1.0, 11),
            Err(SolveError::NonFiniteObjective { .. })
        ));
    }

    #[test]
    fn maximize_finds_peak() {
        let (x, y) = maximize(|x| 5.0 - (x - 2.0).powi(2), 0.0, 4.0, 41).unwrap();
        assert!((x - 2.0).abs() < 1e-5);
        assert!((y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn trapezoid_integrates_linear_exactly() {
        let area = trapezoid(|x| 2.0 * x + 1.0, 0.0, 3.0, 4);
        assert!((area - 12.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_converges_on_quadratic() {
        let area = trapezoid(|x| x * x, 0.0, 1.0, 10_000);
        assert!((area - 1.0 / 3.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "at least one panel")]
    fn trapezoid_rejects_zero_panels() {
        let _ = trapezoid(|x| x, 0.0, 1.0, 0);
    }

    // Gated: requires the `proptest` feature plus re-adding the
    // proptest dev-dependency (removed for offline resolution).
    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn bisect_root_is_accurate_for_linear(a in 0.5f64..10.0, b in -5.0f64..5.0) {
            // f(x) = a*x + b has root -b/a; bracket it generously.
            let root = -b / a;
            let r = bisect(|x| a * x + b, root - 7.0, root + 11.0, 1e-12).unwrap();
            prop_assert!((r - root).abs() < 1e-8);
        }

        #[test]
        fn golden_min_matches_vertex(c in -3.0f64..3.0) {
            let x = golden_min(|x| (x - c).powi(2) + 1.0, -5.0, 5.0, 1e-10).unwrap();
            prop_assert!((x - c).abs() < 1e-5);
        }

        #[test]
        fn maximize_ge_endpoint_values(seed in 0.0f64..1.0) {
            let f = |x: f64| (x * 7.0 + seed).sin() + 0.3 * x;
            let (_, y) = maximize(f, 0.0, 3.0, 301).unwrap();
            prop_assert!(y + 1e-9 >= f(0.0));
            prop_assert!(y + 1e-9 >= f(3.0));
        }
    }
}
