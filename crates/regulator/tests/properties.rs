// Entire suite gated: requires the `proptest` feature plus re-adding the
// proptest dev-dependency (removed for offline resolution).
#![cfg(feature = "proptest")]

//! Property tests over every regulator topology's full operating surface.

use hems_regulator::{AnyRegulator, BuckRegulator, HybridRegulator, Ldo, Regulator, ScRegulator};
use hems_units::{Volts, Watts};
use proptest::prelude::*;

fn lineup() -> Vec<AnyRegulator> {
    vec![
        AnyRegulator::from(Ldo::paper_65nm()),
        AnyRegulator::from(ScRegulator::paper_65nm()),
        AnyRegulator::from(BuckRegulator::paper_65nm()),
    ]
}

proptest! {
    /// Wherever a conversion succeeds, the physics must hold: input power
    /// covers the output, efficiency is in (0, 1], and the reported
    /// efficiency matches `p_out / p_in`.
    #[test]
    fn conversions_are_physical(
        v_in in 0.2f64..1.6,
        v_out in 0.05f64..1.2,
        p_mw in 0.01f64..50.0,
    ) {
        let p_out = Watts::from_milli(p_mw);
        for regulator in lineup() {
            if let Ok(c) = regulator.convert(Volts::new(v_in), Volts::new(v_out), p_out) {
                prop_assert!(
                    c.p_in >= p_out,
                    "{}: p_in {:?} < p_out {:?}",
                    regulator.kind(), c.p_in, p_out
                );
                prop_assert!(c.efficiency.ratio() > 0.0 && c.efficiency.ratio() <= 1.0);
                let implied = p_out / c.p_in;
                prop_assert!(
                    (c.efficiency.ratio() - implied).abs() < 1e-9,
                    "{}: reported {} vs implied {}",
                    regulator.kind(), c.efficiency.ratio(), implied
                );
            }
        }
    }

    /// Input power is monotone in the load at every supported point.
    #[test]
    fn p_in_is_monotone_in_load(
        v_in in 0.6f64..1.5,
        v_out in 0.3f64..0.8,
        p_mw in 0.1f64..20.0,
    ) {
        for regulator in lineup() {
            let a = regulator.convert(
                Volts::new(v_in), Volts::new(v_out), Watts::from_milli(p_mw));
            let b = regulator.convert(
                Volts::new(v_in), Volts::new(v_out), Watts::from_milli(p_mw * 1.3));
            if let (Ok(a), Ok(b)) = (a, b) {
                prop_assert!(b.p_in > a.p_in, "{}", regulator.kind());
            }
        }
    }

    /// The hybrid mux never does worse than any of its candidates, and
    /// succeeds whenever at least one candidate succeeds.
    #[test]
    fn hybrid_dominates_candidates(
        v_in in 0.2f64..1.6,
        v_out in 0.05f64..1.2,
        p_mw in 0.01f64..50.0,
    ) {
        let hybrid = HybridRegulator::paper_65nm();
        let v_in = Volts::new(v_in);
        let v_out = Volts::new(v_out);
        let p_out = Watts::from_milli(p_mw);
        let candidate_best = lineup()
            .iter()
            .filter_map(|r| r.convert(v_in, v_out, p_out).ok())
            .map(|c| c.p_in)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"));
        match (hybrid.convert(v_in, v_out, p_out), candidate_best) {
            (Ok(h), Some(best)) => {
                prop_assert!(h.p_in <= best * (1.0 + 1e-12));
            }
            (Err(_), None) => {} // nobody can serve it — consistent
            (Ok(_), None) => prop_assert!(false, "hybrid succeeded where no candidate could"),
            (Err(e), Some(_)) => prop_assert!(false, "hybrid failed where a candidate could: {e}"),
        }
    }

    /// `deliverable_output` inverts `convert` within solver tolerance.
    #[test]
    fn deliverable_output_inverts_convert(
        v_in in 0.9f64..1.5,
        v_out in 0.35f64..0.75,
        budget_mw in 2.0f64..30.0,
    ) {
        for regulator in lineup() {
            let v_in = Volts::new(v_in);
            let v_out = Volts::new(v_out);
            let budget = Watts::from_milli(budget_mw);
            let Ok(p_out) = regulator.deliverable_output(v_in, v_out, budget) else {
                continue;
            };
            if !p_out.is_positive() {
                continue;
            }
            let round = regulator.convert(v_in, v_out, p_out).expect("was deliverable");
            prop_assert!(
                round.p_in <= budget * (1.0 + 1e-6),
                "{}: round-trip {:?} exceeds budget {:?}",
                regulator.kind(), round.p_in, budget
            );
        }
    }
}
