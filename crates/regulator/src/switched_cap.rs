use crate::{Conversion, Regulator, RegulatorError, RegulatorKind};
use hems_units::{Efficiency, Ohms, UnitsError, Volts, Watts};
use std::fmt;

/// A switched-capacitor conversion ratio `num:den` (step-down by
/// `den/num`, e.g. `2:1` halves the input voltage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScRatio {
    num: u8,
    den: u8,
}

impl ScRatio {
    /// Creates a ratio `num:den` with `num >= den >= 1` (step-down only).
    ///
    /// # Errors
    ///
    /// Returns [`RegulatorError::BadParameter`] when `den == 0` or
    /// `num < den`.
    pub fn new(num: u8, den: u8) -> Result<ScRatio, RegulatorError> {
        if den == 0 || num < den {
            return Err(UnitsError::OutOfRange {
                what: "sc ratio",
                value: num as f64,
                min: den as f64,
                max: 255.0,
            }
            .into());
        }
        Ok(ScRatio { num, den })
    }

    /// The voltage division factor: ideal `V_out = V_in / factor()`.
    pub fn factor(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Ideal (no-load) output voltage from a rail at `v_in`.
    pub fn ideal_output(self, v_in: Volts) -> Volts {
        v_in / self.factor()
    }
}

impl fmt::Display for ScRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.num, self.den)
    }
}

/// Reconfigurable switched-capacitor regulator (paper Fig. 4).
///
/// A flying-capacitor network steps the input down by one of a discrete set
/// of ratios; the output is then modulated slightly below the ideal ratio
/// voltage. Losses:
///
/// * **intrinsic (linear) loss** — charge sharing makes the converter behave
///   like an ideal transformer followed by an LDO from the ratio voltage:
///   `eta_lin = V_out / (V_in / k)`;
/// * **output-impedance droop** — `I_out^2 * R_sc`, with `R_sc ≈ 1/(f_sw C_fly)`;
/// * **proportional switching loss** — bottom-plate parasitics charge on
///   every cycle, costing a fixed fraction `beta` of the through power;
/// * **fixed control power** — clocking and comparators.
///
/// **Calibration** (asserted in tests): with the default ratio set and
/// `V_in = 1.2 V`, `V_out = 0.55 V` (ratio 2:1, `eta_lin = 91.7 %`), the
/// defaults `R_sc = 5 Ω`, `beta = 0.0836`, `P_fixed = 1.527 mW` land on the
/// paper's 67 % at 10 mW (full load) and 64 % at 5 mW (half load).
#[derive(Debug, Clone, PartialEq)]
pub struct ScRegulator {
    ratios: Vec<ScRatio>,
    r_out: Ohms,
    beta: f64,
    p_fixed: Watts,
}

impl ScRegulator {
    /// Builds an SC regulator from its ratio set and loss parameters.
    ///
    /// # Errors
    ///
    /// Returns [`RegulatorError::BadParameter`] when the ratio set is empty,
    /// `r_out` or `p_fixed` are negative/non-finite, or `beta` is outside
    /// `[0, 1)`.
    pub fn new(
        ratios: Vec<ScRatio>,
        r_out: Ohms,
        beta: f64,
        p_fixed: Watts,
    ) -> Result<ScRegulator, RegulatorError> {
        if ratios.is_empty() {
            return Err(UnitsError::BadTable {
                reason: "sc regulator needs at least one ratio",
            }
            .into());
        }
        if !r_out.value().is_finite() || r_out.value() < 0.0 {
            return Err(UnitsError::OutOfRange {
                what: "sc output impedance",
                value: r_out.value(),
                min: 0.0,
                max: f64::INFINITY,
            }
            .into());
        }
        if !(0.0..1.0).contains(&beta) {
            return Err(UnitsError::OutOfRange {
                what: "sc proportional loss",
                value: beta,
                min: 0.0,
                max: 1.0,
            }
            .into());
        }
        if !p_fixed.value().is_finite() || p_fixed.value() < 0.0 {
            return Err(UnitsError::OutOfRange {
                what: "sc fixed loss",
                value: p_fixed.value(),
                min: 0.0,
                max: f64::INFINITY,
            }
            .into());
        }
        Ok(ScRegulator {
            ratios,
            r_out,
            beta,
            p_fixed,
        })
    }

    /// The paper's 65 nm reconfigurable SC converter: ratios
    /// {1:1, 5:4, 4:3, 3:2, 2:1, 3:1}, calibrated losses (see type docs).
    pub fn paper_65nm() -> ScRegulator {
        let ratios: Vec<ScRatio> = [(1, 1), (5, 4), (4, 3), (3, 2), (2, 1), (3, 1)]
            .iter()
            .filter_map(|&(num, den)| ScRatio::new(num, den).ok())
            .collect();
        ScRegulator::new(ratios, Ohms::new(5.0), 0.0836, Watts::from_micro(1527.0))
            // hems-lint: allow(panic_reach, reason = "compile-time reference constants; validated by this module's paper_65nm unit tests")
            .expect("reference parameters are valid")
    }

    /// The configured ratio set.
    pub fn ratios(&self) -> &[ScRatio] {
        &self.ratios
    }

    /// Picks the ratio that can serve `v_out` from `v_in` with the best
    /// intrinsic efficiency (largest factor whose ideal output still covers
    /// `v_out`), or `None` when no ratio reaches that low/high.
    pub fn best_ratio(&self, v_in: Volts, v_out: Volts) -> Option<ScRatio> {
        self.ratios
            .iter()
            .copied()
            .filter(|r| r.ideal_output(v_in) >= v_out)
            .max_by(|a, b| a.factor().total_cmp(&b.factor()))
    }
}

impl Regulator for ScRegulator {
    fn kind(&self) -> RegulatorKind {
        RegulatorKind::SwitchedCapacitor
    }

    fn convert(
        &self,
        v_in: Volts,
        v_out: Volts,
        p_out: Watts,
    ) -> Result<Conversion, RegulatorError> {
        if !p_out.value().is_finite() || p_out.value() < 0.0 {
            return Err(RegulatorError::InvalidLoad {
                p_out: p_out.value(),
            });
        }
        if !v_out.is_positive() || v_out >= v_in {
            return Err(RegulatorError::UnsupportedOperatingPoint {
                kind: "SC",
                v_in: v_in.volts(),
                v_out: v_out.volts(),
                reason: "step-down converter needs 0 < v_out < v_in",
            });
        }
        let Some(ratio) = self.best_ratio(v_in, v_out) else {
            return Err(RegulatorError::UnsupportedOperatingPoint {
                kind: "SC",
                v_in: v_in.volts(),
                v_out: v_out.volts(),
                reason: "no configured ratio reaches the requested output",
            });
        };
        let eta_lin = v_out / ratio.ideal_output(v_in);
        let i_out = p_out / v_out;
        let droop = Watts::new(i_out.amps() * i_out.amps() * self.r_out.ohms());
        let p_in = Watts::new(p_out.watts() / eta_lin) + droop + p_out * self.beta + self.p_fixed;
        let efficiency = if p_in.is_positive() {
            Efficiency::saturating(p_out / p_in)
        } else {
            Efficiency::UNITY
        };
        Ok(Conversion { p_in, efficiency })
    }

    fn output_range(&self, v_in: Volts) -> (Volts, Volts) {
        if !v_in.is_positive() {
            return (Volts::ZERO, Volts::ZERO);
        }
        // Anything below the best ideal output is reachable by modulation.
        let max = self
            .ratios
            .iter()
            .map(|r| r.ideal_output(v_in))
            .fold(Volts::ZERO, Volts::max)
            .min(v_in * 0.999);
        (Volts::from_milli(1.0), max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn ratio_validation_and_math() {
        assert!(ScRatio::new(2, 1).is_ok());
        assert!(ScRatio::new(1, 2).is_err());
        assert!(ScRatio::new(1, 0).is_err());
        let r = ScRatio::new(3, 2).unwrap();
        assert_eq!(r.factor(), 1.5);
        assert!((r.ideal_output(Volts::new(1.2)).volts() - 0.8).abs() < 1e-12);
        assert_eq!(r.to_string(), "3:2");
    }

    #[test]
    fn matches_paper_67_percent_full_load() {
        let sc = ScRegulator::paper_65nm();
        let c = sc
            .convert(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(10.0))
            .unwrap();
        assert!(
            (c.efficiency.percent() - 67.0).abs() < 1.0,
            "full-load eta = {}",
            c.efficiency
        );
    }

    #[test]
    fn matches_paper_64_percent_half_load() {
        let sc = ScRegulator::paper_65nm();
        let c = sc
            .convert(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(5.0))
            .unwrap();
        assert!(
            (c.efficiency.percent() - 64.0).abs() < 1.0,
            "half-load eta = {}",
            c.efficiency
        );
    }

    #[test]
    fn best_ratio_prefers_tightest_step_down() {
        let sc = ScRegulator::paper_65nm();
        // 0.55 V from 1.2 V: the 2:1 ratio (ideal 0.6 V) wins over 3:2 (0.8 V).
        let r = sc.best_ratio(Volts::new(1.2), Volts::new(0.55)).unwrap();
        assert_eq!(r, ScRatio::new(2, 1).unwrap());
        // 0.9 V from 1.2 V: 4:3 (ideal 0.9 V) covers it exactly.
        let r = sc.best_ratio(Volts::new(1.2), Volts::new(0.9)).unwrap();
        assert_eq!(r, ScRatio::new(4, 3).unwrap());
        // 0.3 V from 1.2 V: 3:1 (ideal 0.4 V).
        let r = sc.best_ratio(Volts::new(1.2), Volts::new(0.3)).unwrap();
        assert_eq!(r, ScRatio::new(3, 1).unwrap());
    }

    #[test]
    fn efficiency_saw_tooths_across_ratio_boundaries() {
        let sc = ScRegulator::paper_65nm();
        let eta = |v: f64| {
            sc.efficiency(Volts::new(1.2), Volts::new(v), Watts::from_milli(10.0))
                .unwrap()
                .ratio()
        };
        // Just below the 2:1 ideal (0.6 V) efficiency peaks; just above it
        // the converter falls back to 3:2 and efficiency drops.
        assert!(eta(0.59) > eta(0.62));
        // It recovers approaching the 3:2 ideal (0.8 V).
        assert!(eta(0.78) > eta(0.62));
    }

    #[test]
    fn light_load_efficiency_collapses() {
        // This is the effect that makes bypass win at 25% light (Fig. 7a).
        let sc = ScRegulator::paper_65nm();
        let heavy = sc
            .efficiency(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(10.0))
            .unwrap();
        let light = sc
            .efficiency(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(0.5))
            .unwrap();
        assert!(light.ratio() < 0.35, "light-load eta {light}");
        assert!(heavy.ratio() > 0.6);
    }

    #[test]
    fn rejects_step_up_and_unreachable_points() {
        let sc = ScRegulator::paper_65nm();
        assert!(matches!(
            sc.convert(Volts::new(0.5), Volts::new(0.6), Watts::from_milli(1.0)),
            Err(RegulatorError::UnsupportedOperatingPoint { .. })
        ));
        assert!(matches!(
            sc.convert(Volts::new(1.2), Volts::new(-0.1), Watts::from_milli(1.0)),
            Err(RegulatorError::UnsupportedOperatingPoint { .. })
        ));
    }

    #[test]
    fn constructor_validates() {
        assert!(ScRegulator::new(vec![], Ohms::new(5.0), 0.1, Watts::ZERO).is_err());
        let r = vec![ScRatio::new(2, 1).unwrap()];
        assert!(ScRegulator::new(r.clone(), Ohms::new(-1.0), 0.1, Watts::ZERO).is_err());
        assert!(ScRegulator::new(r.clone(), Ohms::new(5.0), 1.0, Watts::ZERO).is_err());
        assert!(ScRegulator::new(r, Ohms::new(5.0), 0.1, Watts::new(-1.0)).is_err());
    }

    #[test]
    fn output_range_covers_paper_operating_band() {
        let sc = ScRegulator::paper_65nm();
        let (lo, hi) = sc.output_range(Volts::new(1.2));
        assert!(lo.volts() <= 0.3);
        assert!(hi.volts() >= 0.8);
        assert_eq!(sc.output_range(Volts::ZERO), (Volts::ZERO, Volts::ZERO));
    }

    // Gated: requires the `proptest` feature plus re-adding the
    // proptest dev-dependency (removed for offline resolution).
    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn efficiency_bounded_by_intrinsic_ratio(
            v_out in 0.2f64..1.0,
            p_mw in 0.1f64..20.0,
        ) {
            let sc = ScRegulator::paper_65nm();
            let v_in = Volts::new(1.2);
            let Some(ratio) = sc.best_ratio(v_in, Volts::new(v_out)) else {
                return Ok(());
            };
            let eta_lin = v_out / ratio.ideal_output(v_in).volts();
            let eta = sc
                .efficiency(v_in, Volts::new(v_out), Watts::from_milli(p_mw))
                .unwrap();
            prop_assert!(eta.ratio() <= eta_lin + 1e-12);
        }

        #[test]
        fn p_in_strictly_increasing_in_load(p in 0.1f64..10.0) {
            let sc = ScRegulator::paper_65nm();
            let v_in = Volts::new(1.2);
            let v_out = Volts::new(0.55);
            let a = sc.convert(v_in, v_out, Watts::from_milli(p)).unwrap().p_in;
            let b = sc
                .convert(v_in, v_out, Watts::from_milli(p * 1.1))
                .unwrap()
                .p_in;
            prop_assert!(b > a);
        }
    }
}
