//! On-chip voltage regulator models.
//!
//! Section III of the paper characterizes the three fully-integrated 65 nm
//! regulator styles the SoC can deploy between the solar/storage rail and
//! the microprocessor, and the whole holistic argument rests on their
//! *different efficiency profiles*:
//!
//! * **LDO** (Fig. 3): tiny area, efficiency essentially the resistive
//!   division ratio `Vout/Vin` — 45 % at 0.55 V from a 1.2 V rail.
//! * **Switched-capacitor** (Fig. 4): reconfigurable ratios (5:4, 3:2, 2:1,
//!   …); 67 % at 0.55 V full load, 64 % at half load — best at mid/low
//!   power but saw-toothed across its ratio boundaries.
//! * **Buck** (Fig. 5): on-chip inductor; 63 %/58 % at 0.55 V full/half
//!   load — better than SC at high output power, worse at light load.
//! * **Bypass**: the paper's Sections IV-B and VI-B exploit shorting the
//!   regulator out entirely (direct solar→processor connection).
//!
//! Each model here is an analytical loss model *calibrated to the paper's
//! quoted efficiency points*; the calibration constants are documented on
//! each type and asserted by the test suite.
//!
//! ```
//! use hems_regulator::{Regulator, ScRegulator};
//! use hems_units::{Volts, Watts};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sc = ScRegulator::paper_65nm();
//! let c = sc.convert(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(10.0))?;
//! assert!((c.efficiency.percent() - 67.0).abs() < 2.0);
//! # Ok(())
//! # }
//! ```

// `!(a < b)` is used deliberately throughout this workspace: unlike
// `a >= b` it is `true` when either operand is NaN, which is exactly the
// reject-by-default behaviour the validation paths want.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod any;
mod buck;
mod bypass;
mod error;
mod hybrid;
mod ldo;
mod surface;
mod switched_cap;

pub use any::AnyRegulator;
pub use buck::BuckRegulator;
pub use bypass::Bypass;
pub use error::RegulatorError;
pub use hybrid::HybridRegulator;
pub use ldo::Ldo;
pub use surface::{EfficiencyGrid, EfficiencyPoint, EfficiencySweep};
pub use switched_cap::{ScRatio, ScRegulator};

use hems_units::{Efficiency, Volts, Watts};

/// Identifies a regulator topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegulatorKind {
    /// Linear / low-dropout regulator.
    Ldo,
    /// Switched-capacitor converter.
    SwitchedCapacitor,
    /// Inductive buck converter.
    Buck,
    /// Direct connection (regulator shorted out).
    Bypass,
    /// A muxed bank of heterogeneous topologies.
    Hybrid,
}

impl std::fmt::Display for RegulatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RegulatorKind::Ldo => "LDO",
            RegulatorKind::SwitchedCapacitor => "SC",
            RegulatorKind::Buck => "buck",
            RegulatorKind::Bypass => "bypass",
            RegulatorKind::Hybrid => "hybrid",
        };
        f.write_str(s)
    }
}

/// Result of one power-conversion query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conversion {
    /// Power drawn from the input rail to deliver the requested output.
    pub p_in: Watts,
    /// Achieved efficiency `P_out / P_in`.
    pub efficiency: Efficiency,
}

/// A step-down voltage regulator between the harvesting rail and the load.
///
/// Implementations are pure functions of the operating point — all state
/// (capacitor voltage, DVFS setting) lives in the simulator, which makes the
/// same model usable by the analytical optimizers and the transient
/// simulation alike.
pub trait Regulator {
    /// The topology of this regulator.
    fn kind(&self) -> RegulatorKind;

    /// Computes the input power needed to deliver `p_out` at `v_out` from a
    /// rail at `v_in`.
    ///
    /// # Errors
    ///
    /// Returns [`RegulatorError::UnsupportedOperatingPoint`] when the
    /// requested `(v_in, v_out)` pair is outside the topology's capability
    /// (e.g. `v_out >= v_in` for a step-down converter) and
    /// [`RegulatorError::InvalidLoad`] for negative or non-finite loads.
    fn convert(
        &self,
        v_in: Volts,
        v_out: Volts,
        p_out: Watts,
    ) -> Result<Conversion, RegulatorError>;

    /// The output-voltage range this regulator can serve from rail `v_in`,
    /// as an inclusive `(min, max)` pair. Returns `(0, 0)` when the rail is
    /// too low to regulate at all.
    fn output_range(&self, v_in: Volts) -> (Volts, Volts);

    /// Convenience: the efficiency at an operating point.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Regulator::convert`].
    fn efficiency(
        &self,
        v_in: Volts,
        v_out: Volts,
        p_out: Watts,
    ) -> Result<Efficiency, RegulatorError> {
        Ok(self.convert(v_in, v_out, p_out)?.efficiency)
    }

    /// Largest deliverable output power at `(v_in, v_out)` when the input
    /// rail can source at most `p_in_max`.
    ///
    /// Solved by bisection on the monotone map `p_out -> p_in(p_out)`.
    /// Returns zero when even an infinitesimal load cannot be served.
    ///
    /// # Errors
    ///
    /// Propagates operating-point errors from [`Regulator::convert`].
    fn deliverable_output(
        &self,
        v_in: Volts,
        v_out: Volts,
        p_in_max: Watts,
    ) -> Result<Watts, RegulatorError> {
        if !p_in_max.is_positive() {
            return Ok(Watts::ZERO);
        }
        // Validate the operating point once up front.
        let at_zero = self.convert(v_in, v_out, Watts::ZERO)?;
        if at_zero.p_in > p_in_max {
            return Ok(Watts::ZERO);
        }
        // p_in(p_out) is strictly increasing; expand an upper bracket then
        // bisect. Efficiency <= 1 bounds p_out by p_in_max.
        let mut hi = p_in_max.watts();
        let p_in_at = |p: f64| {
            self.convert(v_in, v_out, Watts::new(p))
                .map(|c| c.p_in.watts())
                .unwrap_or(f64::INFINITY)
        };
        if p_in_at(hi) <= p_in_max.watts() {
            return Ok(Watts::new(hi));
        }
        let mut lo = 0.0;
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if p_in_at(mid) <= p_in_max.watts() {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 {
                break;
            }
        }
        Ok(Watts::new(lo))
    }
}
