use crate::{Conversion, Regulator, RegulatorError, RegulatorKind};
use hems_units::{Efficiency, UnitsError, Volts, Watts};

/// Fully-integrated inductive buck regulator (paper Fig. 5).
///
/// Loss model (lumped, per the on-chip buck literature the paper cites):
///
/// * **conduction / ripple loss** — modelled as a constant effective voltage
///   drop `V_drop` in series with the load current, costing
///   `I_out * V_drop = P_out * V_drop / V_out`. This captures why on-chip
///   bucks lose efficiency at low output voltages (Fig. 5's downward slope
///   toward 0.3 V);
/// * **switching loss** — gate-drive and parasitic energy each cycle,
///   `k_sw * V_in^2` at fixed switching frequency;
/// * **fixed control power** — PWM generator and references.
///
/// **Calibration** (asserted in tests): with `V_in = 1.2 V`,
/// `V_out = 0.55 V`, the defaults `V_drop = 247.5 mV`, `k_sw = 0.8125 mW/V²`,
/// `P_ctrl = 0.2 mW` give the paper's 63 % at 10 mW (full load) and 58 % at
/// 5 mW (half load). Because the dominant loss is *linear* in load while the
/// SC converter's droop term is *quadratic*, the buck overtakes the SC at
/// high output power — exactly the qualitative ordering Section III reports.
#[derive(Debug, Clone, PartialEq)]
pub struct BuckRegulator {
    v_drop: Volts,
    k_sw: f64,
    p_ctrl: Watts,
    v_out_min: Volts,
    v_out_max: Volts,
}

impl BuckRegulator {
    /// Builds a buck from its lumped loss parameters and output range.
    ///
    /// # Errors
    ///
    /// Returns [`RegulatorError::BadParameter`] for negative or non-finite
    /// losses or an inverted output range.
    pub fn new(
        v_drop: Volts,
        k_sw: f64,
        p_ctrl: Watts,
        v_out_min: Volts,
        v_out_max: Volts,
    ) -> Result<BuckRegulator, RegulatorError> {
        for (what, v) in [
            ("buck effective drop", v_drop.value()),
            ("buck switching coefficient", k_sw),
            ("buck control power", p_ctrl.value()),
            ("buck minimum output", v_out_min.value()),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(UnitsError::OutOfRange {
                    what,
                    value: v,
                    min: 0.0,
                    max: f64::INFINITY,
                }
                .into());
            }
        }
        if !(v_out_max > v_out_min) {
            return Err(UnitsError::OutOfRange {
                what: "buck output range",
                value: v_out_max.value(),
                min: v_out_min.value(),
                max: f64::INFINITY,
            }
            .into());
        }
        Ok(BuckRegulator {
            v_drop,
            k_sw,
            p_ctrl,
            v_out_min,
            v_out_max,
        })
    }

    /// The paper's 65 nm test-chip buck: operates 0.3–0.8 V out from a
    /// 1.2–1.5 V rail with 40–75 % efficiency across voltage and load
    /// (Section VII), calibrated to Fig. 5's 63 %/58 % points at 0.55 V.
    pub fn paper_65nm() -> BuckRegulator {
        BuckRegulator::new(
            Volts::from_milli(247.5),
            0.8125e-3,
            Watts::from_micro(200.0),
            Volts::new(0.3),
            Volts::new(0.8),
        )
        // hems-lint: allow(panic_reach, reason = "compile-time reference constants; validated by this module's unit tests")
        .expect("reference parameters are valid")
    }

    /// Effective series drop.
    pub fn v_drop(&self) -> Volts {
        self.v_drop
    }
}

impl Regulator for BuckRegulator {
    fn kind(&self) -> RegulatorKind {
        RegulatorKind::Buck
    }

    fn convert(
        &self,
        v_in: Volts,
        v_out: Volts,
        p_out: Watts,
    ) -> Result<Conversion, RegulatorError> {
        if !p_out.value().is_finite() || p_out.value() < 0.0 {
            return Err(RegulatorError::InvalidLoad {
                p_out: p_out.value(),
            });
        }
        if v_out < self.v_out_min || v_out > self.v_out_max || v_out >= v_in {
            return Err(RegulatorError::UnsupportedOperatingPoint {
                kind: "buck",
                v_in: v_in.volts(),
                v_out: v_out.volts(),
                reason: "output outside supported range or not below input",
            });
        }
        let conduction = p_out * (self.v_drop / v_out);
        let switching = Watts::new(self.k_sw * v_in.volts() * v_in.volts());
        let p_in = p_out + conduction + switching + self.p_ctrl;
        let efficiency = if p_in.is_positive() {
            Efficiency::saturating(p_out / p_in)
        } else {
            Efficiency::UNITY
        };
        Ok(Conversion { p_in, efficiency })
    }

    fn output_range(&self, v_in: Volts) -> (Volts, Volts) {
        let hi = self.v_out_max.min(v_in * 0.999);
        if hi <= self.v_out_min {
            (Volts::ZERO, Volts::ZERO)
        } else {
            (self.v_out_min, hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScRegulator;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn matches_paper_63_percent_full_load() {
        let buck = BuckRegulator::paper_65nm();
        let c = buck
            .convert(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(10.0))
            .unwrap();
        assert!(
            (c.efficiency.percent() - 63.0).abs() < 1.0,
            "full-load eta = {}",
            c.efficiency
        );
    }

    #[test]
    fn matches_paper_58_percent_half_load() {
        let buck = BuckRegulator::paper_65nm();
        let c = buck
            .convert(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(5.0))
            .unwrap();
        assert!(
            (c.efficiency.percent() - 58.0).abs() < 1.0,
            "half-load eta = {}",
            c.efficiency
        );
    }

    #[test]
    fn sc_beats_buck_at_mid_load_buck_wins_at_high_load() {
        // Section III: "buck regulator performs better at high output power
        // but shows equal or less efficiency at low output power" vs SC.
        let buck = BuckRegulator::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        let v_in = Volts::new(1.2);
        let v_out = Volts::new(0.55);
        let eta = |r: &dyn Regulator, mw: f64| {
            r.efficiency(v_in, v_out, Watts::from_milli(mw))
                .unwrap()
                .ratio()
        };
        assert!(eta(&sc, 10.0) > eta(&buck, 10.0), "SC should win at 10 mW");
        assert!(eta(&sc, 3.0) > eta(&buck, 3.0), "SC should win at 3 mW");
        assert!(
            eta(&buck, 40.0) > eta(&sc, 40.0),
            "buck should win at 40 mW: buck {} sc {}",
            eta(&buck, 40.0),
            eta(&sc, 40.0)
        );
    }

    #[test]
    fn efficiency_falls_toward_low_output_voltage() {
        let buck = BuckRegulator::paper_65nm();
        let eta = |v: f64| {
            buck.efficiency(Volts::new(1.2), Volts::new(v), Watts::from_milli(10.0))
                .unwrap()
                .ratio()
        };
        assert!(eta(0.3) < eta(0.55));
        assert!(eta(0.55) < eta(0.8));
    }

    #[test]
    fn test_chip_efficiency_band_40_to_75_percent() {
        // Section VII: efficiency 40%~75% across voltage and loading.
        let buck = BuckRegulator::paper_65nm();
        for v_in in [1.2, 1.35, 1.5] {
            for v_out in [0.3, 0.4, 0.55, 0.7, 0.8] {
                for mw in [2.0, 5.0, 10.0, 20.0] {
                    let eta = buck
                        .efficiency(Volts::new(v_in), Volts::new(v_out), Watts::from_milli(mw))
                        .unwrap()
                        .percent();
                    assert!(
                        (25.0..80.0).contains(&eta),
                        "eta {eta}% at vin {v_in} vout {v_out} {mw} mW"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_out_of_range_points() {
        let buck = BuckRegulator::paper_65nm();
        for (v_in, v_out) in [(1.2, 0.2), (1.2, 0.9), (0.5, 0.55)] {
            assert!(matches!(
                buck.convert(Volts::new(v_in), Volts::new(v_out), Watts::from_milli(1.0)),
                Err(RegulatorError::UnsupportedOperatingPoint { .. })
            ));
        }
        assert!(matches!(
            buck.convert(Volts::new(1.2), Volts::new(0.55), Watts::new(f64::NAN)),
            Err(RegulatorError::InvalidLoad { .. })
        ));
    }

    #[test]
    fn constructor_validates() {
        assert!(BuckRegulator::new(
            Volts::new(-0.1),
            1e-3,
            Watts::ZERO,
            Volts::new(0.3),
            Volts::new(0.8)
        )
        .is_err());
        assert!(BuckRegulator::new(
            Volts::new(0.2),
            1e-3,
            Watts::ZERO,
            Volts::new(0.8),
            Volts::new(0.3)
        )
        .is_err());
    }

    #[test]
    fn output_range_clamps_to_rail() {
        let buck = BuckRegulator::paper_65nm();
        let (lo, hi) = buck.output_range(Volts::new(1.2));
        assert_eq!(lo, Volts::new(0.3));
        assert_eq!(hi, Volts::new(0.8));
        let (lo, hi) = buck.output_range(Volts::new(0.6));
        assert_eq!(lo, Volts::new(0.3));
        assert!(hi.volts() < 0.6);
        assert_eq!(
            buck.output_range(Volts::new(0.2)),
            (Volts::ZERO, Volts::ZERO)
        );
    }

    // Gated: requires the `proptest` feature plus re-adding the
    // proptest dev-dependency (removed for offline resolution).
    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn switching_loss_grows_with_rail(v_in in 1.0f64..1.5) {
            let buck = BuckRegulator::paper_65nm();
            let low = buck
                .convert(Volts::new(v_in), Volts::new(0.55), Watts::from_milli(5.0))
                .unwrap();
            let high = buck
                .convert(Volts::new(v_in + 0.2), Volts::new(0.55), Watts::from_milli(5.0))
                .unwrap();
            prop_assert!(high.p_in > low.p_in);
        }

        #[test]
        fn efficiency_monotone_in_load_at_fixed_point(p in 0.5f64..20.0) {
            // With linear + fixed losses, efficiency rises with load.
            let buck = BuckRegulator::paper_65nm();
            let a = buck
                .efficiency(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(p))
                .unwrap();
            let b = buck
                .efficiency(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(p * 1.2))
                .unwrap();
            prop_assert!(b >= a);
        }
    }
}
