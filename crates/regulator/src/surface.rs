use crate::{Regulator, RegulatorError};
use hems_units::{Volts, Watts};

/// One sample of a regulator's efficiency surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyPoint {
    /// Output voltage of the sample.
    pub v_out: Volts,
    /// Load power of the sample.
    pub p_out: Watts,
    /// Efficiency at that point, or `None` where the regulator cannot
    /// operate.
    pub efficiency: Option<f64>,
}

/// Sweeps a regulator's efficiency across output voltage at fixed loads —
/// exactly the curves plotted in the paper's Figs. 3, 4 and 5.
#[derive(Debug, Clone)]
pub struct EfficiencySweep {
    v_in: Volts,
    points: Vec<EfficiencyPoint>,
}

impl EfficiencySweep {
    /// Samples `regulator` at `n` output voltages on `[v_lo, v_hi]` for a
    /// fixed `p_out`, from a rail at `v_in`. Unsupported points are recorded
    /// with `efficiency: None` rather than dropped, so plots show the true
    /// operating range.
    ///
    /// # Errors
    ///
    /// Returns [`RegulatorError::InvalidLoad`] when the load is invalid;
    /// unsupported `(v_in, v_out)` pairs are *not* errors here.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the voltage interval is inverted.
    pub fn sample(
        regulator: &dyn Regulator,
        v_in: Volts,
        v_lo: Volts,
        v_hi: Volts,
        p_out: Watts,
        n: usize,
    ) -> Result<EfficiencySweep, RegulatorError> {
        assert!(n >= 2, "a sweep needs at least two samples");
        assert!(v_lo < v_hi, "voltage interval must be increasing");
        if !p_out.value().is_finite() || p_out.value() < 0.0 {
            return Err(RegulatorError::InvalidLoad {
                p_out: p_out.value(),
            });
        }
        let step = (v_hi - v_lo) / (n - 1) as f64;
        let points = (0..n)
            .map(|i| {
                let v_out = v_lo + step * i as f64;
                let efficiency = regulator
                    .convert(v_in, v_out, p_out)
                    .ok()
                    .map(|c| c.efficiency.ratio());
                EfficiencyPoint {
                    v_out,
                    p_out,
                    efficiency,
                }
            })
            .collect();
        Ok(EfficiencySweep { v_in, points })
    }

    /// The rail voltage of the sweep.
    pub fn v_in(&self) -> Volts {
        self.v_in
    }

    /// The sampled points in increasing output-voltage order.
    pub fn points(&self) -> &[EfficiencyPoint] {
        &self.points
    }

    /// The supported sample with the highest efficiency, if any point was
    /// supported at all.
    pub fn peak(&self) -> Option<EfficiencyPoint> {
        self.points
            .iter()
            .filter(|p| p.efficiency.is_some())
            .max_by(|a, b| {
                a.efficiency
                    .partial_cmp(&b.efficiency)
                    .expect("filtered to Some, finite")
            })
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuckRegulator, Ldo, ScRegulator};

    #[test]
    fn ldo_sweep_is_a_ramp() {
        let sweep = EfficiencySweep::sample(
            &Ldo::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.1),
            Volts::new(1.0),
            Watts::from_milli(10.0),
            10,
        )
        .unwrap();
        assert_eq!(sweep.v_in(), Volts::new(1.2));
        let etas: Vec<f64> = sweep
            .points()
            .iter()
            .filter_map(|p| p.efficiency)
            .collect();
        assert_eq!(etas.len(), 10);
        assert!(etas.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn buck_sweep_marks_unsupported_region() {
        let sweep = EfficiencySweep::sample(
            &BuckRegulator::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.1),
            Volts::new(1.0),
            Watts::from_milli(10.0),
            19,
        )
        .unwrap();
        let supported = sweep.points().iter().filter(|p| p.efficiency.is_some()).count();
        let unsupported = sweep.points().len() - supported;
        assert!(supported > 0 && unsupported > 0);
        // Everything below 0.3 V and above 0.8 V is None.
        for p in sweep.points() {
            let v = p.v_out.volts();
            if !(0.29..=0.81).contains(&v) {
                assert!(p.efficiency.is_none(), "unexpected support at {v}");
            }
        }
    }

    #[test]
    fn sc_peak_sits_near_ratio_voltage() {
        let sweep = EfficiencySweep::sample(
            &ScRegulator::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.2),
            Volts::new(1.0),
            Watts::from_milli(10.0),
            161,
        )
        .unwrap();
        let peak = sweep.peak().unwrap();
        // Best intrinsic efficiency just below an ideal ratio output
        // (0.6, 0.8, 0.9 or 0.96 V from 1.2 V).
        let v = peak.v_out.volts();
        let near_ratio = [0.6, 0.8, 0.9, 0.96]
            .iter()
            .any(|r| v <= *r && *r - v < 0.06);
        assert!(near_ratio, "peak at {v} V");
    }

    #[test]
    fn rejects_invalid_load() {
        assert!(EfficiencySweep::sample(
            &Ldo::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.1),
            Volts::new(1.0),
            Watts::new(-1.0),
            5,
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_single_sample() {
        let _ = EfficiencySweep::sample(
            &Ldo::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.1),
            Volts::new(1.0),
            Watts::from_milli(1.0),
            1,
        );
    }
}
