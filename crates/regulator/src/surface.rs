use crate::{Regulator, RegulatorError};
use hems_units::{MonotoneTable, Volts, Watts};

/// One sample of a regulator's efficiency surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyPoint {
    /// Output voltage of the sample.
    pub v_out: Volts,
    /// Load power of the sample.
    pub p_out: Watts,
    /// Efficiency at that point, or `None` where the regulator cannot
    /// operate.
    pub efficiency: Option<f64>,
}

/// Sweeps a regulator's efficiency across output voltage at fixed loads —
/// exactly the curves plotted in the paper's Figs. 3, 4 and 5.
#[derive(Debug, Clone)]
pub struct EfficiencySweep {
    v_in: Volts,
    points: Vec<EfficiencyPoint>,
}

impl EfficiencySweep {
    /// Samples `regulator` at `n` output voltages on `[v_lo, v_hi]` for a
    /// fixed `p_out`, from a rail at `v_in`. Unsupported points are recorded
    /// with `efficiency: None` rather than dropped, so plots show the true
    /// operating range.
    ///
    /// # Errors
    ///
    /// Returns [`RegulatorError::InvalidLoad`] when the load is invalid;
    /// unsupported `(v_in, v_out)` pairs are *not* errors here.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the voltage interval is inverted.
    pub fn sample(
        regulator: &dyn Regulator,
        v_in: Volts,
        v_lo: Volts,
        v_hi: Volts,
        p_out: Watts,
        n: usize,
    ) -> Result<EfficiencySweep, RegulatorError> {
        assert!(n >= 2, "a sweep needs at least two samples");
        assert!(v_lo < v_hi, "voltage interval must be increasing");
        if !p_out.value().is_finite() || p_out.value() < 0.0 {
            return Err(RegulatorError::InvalidLoad {
                p_out: p_out.value(),
            });
        }
        let step = (v_hi - v_lo) / (n - 1) as f64;
        let points = (0..n)
            .map(|i| {
                let v_out = v_lo + step * i as f64;
                let efficiency = regulator
                    .convert(v_in, v_out, p_out)
                    .ok()
                    .map(|c| c.efficiency.ratio());
                EfficiencyPoint {
                    v_out,
                    p_out,
                    efficiency,
                }
            })
            .collect();
        Ok(EfficiencySweep { v_in, points })
    }

    /// The rail voltage of the sweep.
    pub fn v_in(&self) -> Volts {
        self.v_in
    }

    /// The sampled points in increasing output-voltage order.
    pub fn points(&self) -> &[EfficiencyPoint] {
        &self.points
    }

    /// The supported sample with the highest efficiency, if any point was
    /// supported at all.
    pub fn peak(&self) -> Option<EfficiencyPoint> {
        self.points
            .iter()
            .filter(|p| p.efficiency.is_some())
            .max_by(|a, b| {
                a.efficiency
                    .partial_cmp(&b.efficiency)
                    .expect("filtered to Some, finite")
            })
            .copied()
    }
}

/// One column of an [`EfficiencyGrid`]: the efficiency-vs-load samples at
/// a single output voltage.
#[derive(Debug, Clone)]
struct GridColumn {
    etas: Vec<Option<f64>>,
    /// Monotone-cubic interpolant over `ln(p_out)`, present only when the
    /// whole column is supported (a partially supported column falls back
    /// to nearest-sample lookups so it can never interpolate across an
    /// operating-range edge).
    interp: Option<MonotoneTable>,
}

/// A precomputed efficiency grid over (output voltage × load power) for
/// one regulator at one input rail.
///
/// Sweep and plotting workloads (Figs. 3–5, the scenario-sweep engine's
/// regulator axis) evaluate `convert` at the same `(v_in, v_out, p_out)`
/// lattice over and over. The grid front-loads those calls: it samples the
/// exact regulator once per lattice point at build time and answers
/// queries with lookups.
///
/// # Interpolation semantics — why the two axes differ
///
/// * **Load axis (`p_out`)** — efficiency is smooth in load for every
///   regulator in this workspace, so queries between knots use a
///   monotone-cubic interpolant over `ln(p_out)` (log spacing resolves
///   the quiescent-dominated low-load roll-off). Parity with the exact
///   model is ≤0.1 % of full scale on supported columns.
/// * **Voltage axis (`v_out`)** — a switched-capacitor regulator's
///   efficiency has *cliffs* at ratio boundaries; interpolating across
///   one would invent efficiencies no hardware achieves. Queries
///   therefore snap to the nearest sampled column. Choose `n_v` to match
///   your sweep lattice and the lookup is exact in `v_out`.
///
/// # Build and invalidation semantics
///
/// A grid is valid for one `(regulator, v_in)` pair. Regulator models are
/// immutable, so the only invalidation trigger is a different input rail:
/// build one grid per rail of interest.
#[derive(Debug, Clone)]
pub struct EfficiencyGrid {
    v_in: Volts,
    v_outs: Vec<f64>,
    p_outs: Vec<f64>,
    columns: Vec<GridColumn>,
}

impl EfficiencyGrid {
    /// Samples `regulator` on an `n_v × n_p` lattice: output voltages
    /// evenly spaced on `[v_lo, v_hi]`, loads *log-spaced* on
    /// `[p_lo, p_hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`RegulatorError::InvalidLoad`] when the load bounds are
    /// non-positive, non-finite or inverted. Unsupported lattice points
    /// are recorded as `None`, not errors.
    ///
    /// # Panics
    ///
    /// Panics if `n_v < 2`, `n_p < 2` or the voltage interval is
    /// inverted.
    #[allow(clippy::too_many_arguments)] // a lattice spec is eight scalars
    pub fn build(
        regulator: &dyn Regulator,
        v_in: Volts,
        v_lo: Volts,
        v_hi: Volts,
        p_lo: Watts,
        p_hi: Watts,
        n_v: usize,
        n_p: usize,
    ) -> Result<EfficiencyGrid, RegulatorError> {
        assert!(n_v >= 2 && n_p >= 2, "a grid needs at least 2x2 samples");
        assert!(v_lo < v_hi, "voltage interval must be increasing");
        if !(p_lo.value() > 0.0) || !(p_hi.value() > p_lo.value()) || !p_hi.value().is_finite() {
            return Err(RegulatorError::InvalidLoad {
                p_out: p_lo.value(),
            });
        }
        let v_step = (v_hi - v_lo) / (n_v - 1) as f64;
        let v_outs: Vec<f64> = (0..n_v)
            .map(|i| (v_lo + v_step * i as f64).volts())
            .collect();
        let ln_lo = p_lo.value().ln();
        let ln_step = (p_hi.value().ln() - ln_lo) / (n_p - 1) as f64;
        let p_outs: Vec<f64> = (0..n_p)
            .map(|j| (ln_lo + ln_step * j as f64).exp())
            .collect();
        let columns = v_outs
            .iter()
            .map(|&v_out| {
                let etas: Vec<Option<f64>> = p_outs
                    .iter()
                    .map(|&p| {
                        regulator
                            .convert(v_in, Volts::new(v_out), Watts::new(p))
                            .ok()
                            .map(|c| c.efficiency.ratio())
                    })
                    .collect();
                let ys: Vec<f64> = etas.iter().flatten().copied().collect();
                let interp = if ys.len() == etas.len() {
                    let ln_ps: Vec<f64> = p_outs.iter().map(|p| p.ln()).collect();
                    MonotoneTable::new(ln_ps, ys).ok()
                } else {
                    None
                };
                GridColumn { etas, interp }
            })
            .collect();
        Ok(EfficiencyGrid {
            v_in,
            v_outs,
            p_outs,
            columns,
        })
    }

    /// The input rail this grid is valid for.
    pub fn v_in(&self) -> Volts {
        self.v_in
    }

    /// The sampled output voltages, increasing.
    pub fn v_outs(&self) -> &[f64] {
        &self.v_outs
    }

    /// The sampled (log-spaced) load powers, increasing.
    pub fn p_outs(&self) -> &[f64] {
        &self.p_outs
    }

    /// The exact stored sample at lattice indices `(i_v, j_p)`.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    pub fn sample(&self, i_v: usize, j_p: usize) -> Option<f64> {
        self.columns[i_v].etas[j_p]
    }

    /// Index of the sampled column nearest to `v_out`.
    pub fn nearest_column(&self, v_out: Volts) -> usize {
        let v = v_out.volts();
        let hi = self.v_outs.partition_point(|&k| k < v);
        if hi == 0 {
            return 0;
        }
        if hi == self.v_outs.len() {
            return hi - 1;
        }
        if (v - self.v_outs[hi - 1]).abs() <= (self.v_outs[hi] - v).abs() {
            hi - 1
        } else {
            hi
        }
    }

    /// Efficiency lookup: `v_out` snaps to the nearest column; `p_out`
    /// interpolates along the column (clamped to the load bounds).
    ///
    /// Returns `None` where the regulator cannot operate — on a partially
    /// supported column the nearest load sample decides.
    pub fn efficiency(&self, v_out: Volts, p_out: Watts) -> Option<f64> {
        let col = &self.columns[self.nearest_column(v_out)];
        let p = p_out.value().max(f64::MIN_POSITIVE);
        match &col.interp {
            Some(table) => Some(table.eval(p.ln())),
            None => {
                // Nearest load sample in ln space (the lattice spacing).
                let ln_p = p.ln();
                let j = (0..self.p_outs.len())
                    .min_by(|&a, &b| {
                        let da = (self.p_outs[a].ln() - ln_p).abs();
                        let db = (self.p_outs[b].ln() - ln_p).abs();
                        da.total_cmp(&db)
                    })
                    .unwrap_or(0);
                col.etas[j]
            }
        }
    }

    /// The best supported sample on the grid, as an [`EfficiencyPoint`].
    pub fn peak(&self) -> Option<EfficiencyPoint> {
        let mut best: Option<EfficiencyPoint> = None;
        for (i, col) in self.columns.iter().enumerate() {
            for (j, eta) in col.etas.iter().enumerate() {
                if let Some(e) = *eta {
                    if best.is_none_or(|b| e > b.efficiency.expect("set below")) {
                        best = Some(EfficiencyPoint {
                            v_out: Volts::new(self.v_outs[i]),
                            p_out: Watts::new(self.p_outs[j]),
                            efficiency: Some(e),
                        });
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod grid_tests {
    use super::*;
    use crate::{BuckRegulator, Ldo, ScRegulator};

    #[test]
    fn ldo_grid_matches_exact_model_on_columns() {
        let ldo = Ldo::paper_65nm();
        let grid = EfficiencyGrid::build(
            &ldo,
            Volts::new(1.2),
            Volts::new(0.2),
            Volts::new(1.0),
            Watts::from_micro(10.0),
            Watts::from_milli(20.0),
            33,
            48,
        )
        .unwrap();
        // Dense load sweep at each sampled column: ≤0.1 % parity.
        for (i, &v) in grid.v_outs().iter().enumerate() {
            let _ = i;
            for k in 0..=200 {
                let p = 10.0e-6 * (2000.0f64).powf(k as f64 / 200.0);
                let exact = ldo
                    .convert(Volts::new(1.2), Volts::new(v), Watts::new(p))
                    .unwrap()
                    .efficiency
                    .ratio();
                let fast = grid.efficiency(Volts::new(v), Watts::new(p)).unwrap();
                assert!(
                    (fast - exact).abs() <= 1e-3,
                    "v={v} p={p}: {fast} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn sc_grid_never_bridges_ratio_cliffs() {
        let sc = ScRegulator::paper_65nm();
        let grid = EfficiencyGrid::build(
            &sc,
            Volts::new(1.2),
            Volts::new(0.2),
            Volts::new(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(10.0),
            81,
            16,
        )
        .unwrap();
        // Every lookup at a sampled column equals the exact model there —
        // no smearing across the ratio boundaries.
        for &v in grid.v_outs() {
            let p = Watts::from_milli(5.0);
            let exact = sc
                .convert(Volts::new(1.2), Volts::new(v), p)
                .ok()
                .map(|c| c.efficiency.ratio());
            let fast = grid.efficiency(Volts::new(v), p);
            match (exact, fast) {
                (None, None) => {}
                (Some(e), Some(f)) => assert!((f - e).abs() <= 1e-3, "v={v}"),
                other => panic!("support mismatch at {v}: {other:?}"),
            }
        }
    }

    #[test]
    fn off_column_queries_snap_to_nearest() {
        let ldo = Ldo::paper_65nm();
        let grid = EfficiencyGrid::build(
            &ldo,
            Volts::new(1.2),
            Volts::new(0.2),
            Volts::new(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(10.0),
            5,
            8,
        )
        .unwrap();
        // Columns at 0.2, 0.4, 0.6, 0.8, 1.0.
        assert_eq!(grid.nearest_column(Volts::new(0.29)), 0);
        assert_eq!(grid.nearest_column(Volts::new(0.31)), 1);
        assert_eq!(grid.nearest_column(Volts::new(-1.0)), 0);
        assert_eq!(grid.nearest_column(Volts::new(2.0)), 4);
        let snapped = grid.efficiency(Volts::new(0.61), Watts::from_milli(5.0));
        let on_col = grid.efficiency(Volts::new(0.6), Watts::from_milli(5.0));
        assert_eq!(snapped, on_col);
    }

    #[test]
    fn buck_grid_reports_unsupported_region() {
        let grid = EfficiencyGrid::build(
            &BuckRegulator::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.1),
            Volts::new(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(10.0),
            19,
            8,
        )
        .unwrap();
        assert!(grid
            .efficiency(Volts::new(0.1), Watts::from_milli(5.0))
            .is_none());
        assert!(grid
            .efficiency(Volts::new(0.5), Watts::from_milli(5.0))
            .is_some());
        let peak = grid.peak().unwrap();
        assert!(peak.efficiency.unwrap() > 0.5);
    }

    #[test]
    fn rejects_bad_load_bounds() {
        let ldo = Ldo::paper_65nm();
        for (lo, hi) in [(0.0, 1.0), (1.0, 0.5), (1.0, f64::INFINITY)] {
            assert!(EfficiencyGrid::build(
                &ldo,
                Volts::new(1.2),
                Volts::new(0.2),
                Volts::new(1.0),
                Watts::new(lo),
                Watts::new(hi),
                4,
                4,
            )
            .is_err());
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn rejects_degenerate_lattice() {
        let _ = EfficiencyGrid::build(
            &Ldo::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.2),
            Volts::new(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(10.0),
            1,
            4,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuckRegulator, Ldo, ScRegulator};

    #[test]
    fn ldo_sweep_is_a_ramp() {
        let sweep = EfficiencySweep::sample(
            &Ldo::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.1),
            Volts::new(1.0),
            Watts::from_milli(10.0),
            10,
        )
        .unwrap();
        assert_eq!(sweep.v_in(), Volts::new(1.2));
        let etas: Vec<f64> = sweep.points().iter().filter_map(|p| p.efficiency).collect();
        assert_eq!(etas.len(), 10);
        assert!(etas.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn buck_sweep_marks_unsupported_region() {
        let sweep = EfficiencySweep::sample(
            &BuckRegulator::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.1),
            Volts::new(1.0),
            Watts::from_milli(10.0),
            19,
        )
        .unwrap();
        let supported = sweep
            .points()
            .iter()
            .filter(|p| p.efficiency.is_some())
            .count();
        let unsupported = sweep.points().len() - supported;
        assert!(supported > 0 && unsupported > 0);
        // Everything below 0.3 V and above 0.8 V is None.
        for p in sweep.points() {
            let v = p.v_out.volts();
            if !(0.29..=0.81).contains(&v) {
                assert!(p.efficiency.is_none(), "unexpected support at {v}");
            }
        }
    }

    #[test]
    fn sc_peak_sits_near_ratio_voltage() {
        let sweep = EfficiencySweep::sample(
            &ScRegulator::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.2),
            Volts::new(1.0),
            Watts::from_milli(10.0),
            161,
        )
        .unwrap();
        let peak = sweep.peak().unwrap();
        // Best intrinsic efficiency just below an ideal ratio output
        // (0.6, 0.8, 0.9 or 0.96 V from 1.2 V).
        let v = peak.v_out.volts();
        let near_ratio = [0.6, 0.8, 0.9, 0.96]
            .iter()
            .any(|r| v <= *r && *r - v < 0.06);
        assert!(near_ratio, "peak at {v} V");
    }

    #[test]
    fn rejects_invalid_load() {
        assert!(EfficiencySweep::sample(
            &Ldo::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.1),
            Volts::new(1.0),
            Watts::new(-1.0),
            5,
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_single_sample() {
        let _ = EfficiencySweep::sample(
            &Ldo::paper_65nm(),
            Volts::new(1.2),
            Volts::new(0.1),
            Volts::new(1.0),
            Watts::from_milli(1.0),
            1,
        );
    }
}
