use crate::{
    BuckRegulator, Bypass, Conversion, Ldo, Regulator, RegulatorError, RegulatorKind, ScRegulator,
};
use hems_units::{Volts, Watts};

/// A clonable sum type over every regulator topology.
///
/// The simulator and the holistic controller switch between regulator modes
/// at runtime (regulated vs bypass, Section VI-B); `AnyRegulator` lets them
/// hold and swap models by value without trait objects.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyRegulator {
    /// Linear regulator.
    Ldo(Ldo),
    /// Switched-capacitor converter.
    SwitchedCapacitor(ScRegulator),
    /// Inductive buck converter.
    Buck(BuckRegulator),
    /// Direct connection.
    Bypass(Bypass),
}

impl AnyRegulator {
    /// The paper's three on-chip regulator candidates plus bypass, in the
    /// order Section III presents them.
    pub fn paper_lineup() -> Vec<AnyRegulator> {
        vec![
            AnyRegulator::from(Ldo::paper_65nm()),
            AnyRegulator::from(ScRegulator::paper_65nm()),
            AnyRegulator::from(BuckRegulator::paper_65nm()),
            AnyRegulator::from(Bypass::ideal()),
        ]
    }

    fn inner(&self) -> &dyn Regulator {
        match self {
            AnyRegulator::Ldo(r) => r,
            AnyRegulator::SwitchedCapacitor(r) => r,
            AnyRegulator::Buck(r) => r,
            AnyRegulator::Bypass(r) => r,
        }
    }
}

impl Regulator for AnyRegulator {
    fn kind(&self) -> RegulatorKind {
        self.inner().kind()
    }

    fn convert(
        &self,
        v_in: Volts,
        v_out: Volts,
        p_out: Watts,
    ) -> Result<Conversion, RegulatorError> {
        self.inner().convert(v_in, v_out, p_out)
    }

    fn output_range(&self, v_in: Volts) -> (Volts, Volts) {
        self.inner().output_range(v_in)
    }
}

impl From<Ldo> for AnyRegulator {
    fn from(r: Ldo) -> Self {
        AnyRegulator::Ldo(r)
    }
}

impl From<ScRegulator> for AnyRegulator {
    fn from(r: ScRegulator) -> Self {
        AnyRegulator::SwitchedCapacitor(r)
    }
}

impl From<BuckRegulator> for AnyRegulator {
    fn from(r: BuckRegulator) -> Self {
        AnyRegulator::Buck(r)
    }
}

impl From<Bypass> for AnyRegulator {
    fn from(r: Bypass) -> Self {
        AnyRegulator::Bypass(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_has_all_four_kinds() {
        let kinds: Vec<_> = AnyRegulator::paper_lineup()
            .iter()
            .map(|r| r.kind())
            .collect();
        assert_eq!(
            kinds,
            vec![
                RegulatorKind::Ldo,
                RegulatorKind::SwitchedCapacitor,
                RegulatorKind::Buck,
                RegulatorKind::Bypass
            ]
        );
    }

    #[test]
    fn delegation_matches_concrete_model() {
        let sc = ScRegulator::paper_65nm();
        let any = AnyRegulator::from(sc.clone());
        let v_in = Volts::new(1.2);
        let v_out = Volts::new(0.55);
        let p = Watts::from_milli(10.0);
        assert_eq!(
            any.convert(v_in, v_out, p).unwrap(),
            sc.convert(v_in, v_out, p).unwrap()
        );
        assert_eq!(any.output_range(v_in), sc.output_range(v_in));
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(RegulatorKind::Ldo.to_string(), "LDO");
        assert_eq!(RegulatorKind::SwitchedCapacitor.to_string(), "SC");
        assert_eq!(RegulatorKind::Buck.to_string(), "buck");
        assert_eq!(RegulatorKind::Bypass.to_string(), "bypass");
    }
}
