use crate::{Conversion, Regulator, RegulatorError, RegulatorKind};
use hems_units::{Efficiency, Volts, Watts};

/// Direct connection from the harvesting rail to the load — the regulator
/// shorted out.
///
/// Sections IV-B and VI-B of the paper show two situations where this "null
/// regulator" wins: under low light, where the real converters' light-load
/// inefficiency exceeds the benefit of MPP operation (Fig. 7a), and at the
/// end of a capacitor discharge, where bypassing extends operation by ~20 %
/// (Figs. 9b, 11b). In bypass the load voltage *is* the rail voltage, so
/// `convert` only accepts `v_out ≈ v_in` (within a configurable switch
/// drop).
#[derive(Debug, Clone, PartialEq)]
pub struct Bypass {
    v_switch_drop: Volts,
}

impl Bypass {
    /// A bypass path through a power switch with the given drop.
    pub fn new(v_switch_drop: Volts) -> Bypass {
        Bypass {
            v_switch_drop: v_switch_drop.max(Volts::ZERO),
        }
    }

    /// An ideal bypass with no switch drop.
    pub fn ideal() -> Bypass {
        Bypass::new(Volts::ZERO)
    }

    /// The switch drop.
    pub fn v_switch_drop(&self) -> Volts {
        self.v_switch_drop
    }
}

impl Default for Bypass {
    fn default() -> Self {
        Bypass::ideal()
    }
}

impl Regulator for Bypass {
    fn kind(&self) -> RegulatorKind {
        RegulatorKind::Bypass
    }

    fn convert(
        &self,
        v_in: Volts,
        v_out: Volts,
        p_out: Watts,
    ) -> Result<Conversion, RegulatorError> {
        if !p_out.value().is_finite() || p_out.value() < 0.0 {
            return Err(RegulatorError::InvalidLoad {
                p_out: p_out.value(),
            });
        }
        let expected = v_in - self.v_switch_drop;
        if !v_out.is_positive() || (v_out - expected).abs() > Volts::from_milli(1.0) {
            return Err(RegulatorError::UnsupportedOperatingPoint {
                kind: "bypass",
                v_in: v_in.volts(),
                v_out: v_out.volts(),
                reason: "bypass forces the load voltage to the rail voltage",
            });
        }
        // Only the switch drop is lost: P_in = I * V_in, P_out = I * V_out.
        let efficiency = Efficiency::saturating(expected / v_in);
        Ok(Conversion {
            p_in: efficiency.input_for_output(p_out),
            efficiency,
        })
    }

    fn output_range(&self, v_in: Volts) -> (Volts, Volts) {
        let v = v_in - self.v_switch_drop;
        if v.is_positive() {
            (v, v)
        } else {
            (Volts::ZERO, Volts::ZERO)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_bypass_is_lossless() {
        let b = Bypass::ideal();
        let c = b
            .convert(Volts::new(0.9), Volts::new(0.9), Watts::from_milli(4.0))
            .unwrap();
        assert_eq!(c.efficiency, Efficiency::UNITY);
        assert!((c.p_in.to_milli() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn switch_drop_costs_its_ratio() {
        let b = Bypass::new(Volts::from_milli(50.0));
        let c = b
            .convert(Volts::new(1.0), Volts::new(0.95), Watts::from_milli(9.5))
            .unwrap();
        assert!((c.efficiency.ratio() - 0.95).abs() < 1e-9);
        assert!((c.p_in.to_milli() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_decoupled_output_voltage() {
        let b = Bypass::ideal();
        assert!(matches!(
            b.convert(Volts::new(1.0), Volts::new(0.55), Watts::from_milli(1.0)),
            Err(RegulatorError::UnsupportedOperatingPoint { .. })
        ));
    }

    #[test]
    fn output_range_is_degenerate() {
        let b = Bypass::new(Volts::from_milli(50.0));
        let (lo, hi) = b.output_range(Volts::new(1.0));
        assert_eq!(lo, hi);
        assert!((lo.volts() - 0.95).abs() < 1e-12);
        assert_eq!(b.output_range(Volts::new(0.04)), (Volts::ZERO, Volts::ZERO));
    }

    #[test]
    fn negative_drop_clamps_to_zero() {
        let b = Bypass::new(Volts::new(-0.5));
        assert_eq!(b.v_switch_drop(), Volts::ZERO);
        assert_eq!(Bypass::default(), Bypass::ideal());
    }
}
