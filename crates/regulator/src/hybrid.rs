use crate::{AnyRegulator, Conversion, Regulator, RegulatorError, RegulatorKind};
use hems_units::{UnitsError, Volts, Watts};

/// A bank of heterogeneous regulators with a per-operating-point mux.
///
/// The paper's introduction cites simultaneous scheduling of heterogeneous
/// regulators (LDO + DC-DC, its ref.\[19\]) as the adjacent line of work its
/// fully-integrated setting generalizes; Section III's data makes the case
/// directly — the SC converter wins at mid load, the buck at high load, and
/// the LDO costs least silicon. `HybridRegulator` models an SoC that
/// integrates several topologies and powers whichever one is most efficient
/// at the requested `(v_in, v_out, p_out)`, which is exactly the
/// "holistic optimization opportunity" of having all modules on one die.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridRegulator {
    candidates: Vec<AnyRegulator>,
}

impl HybridRegulator {
    /// Builds a bank from candidate regulators.
    ///
    /// # Errors
    ///
    /// Returns [`RegulatorError::BadParameter`] for an empty bank.
    pub fn new(candidates: Vec<AnyRegulator>) -> Result<HybridRegulator, RegulatorError> {
        if candidates.is_empty() {
            return Err(UnitsError::BadTable {
                reason: "hybrid regulator needs at least one candidate",
            }
            .into());
        }
        Ok(HybridRegulator { candidates })
    }

    /// The paper's on-chip lineup (LDO + SC + buck) as one muxed bank.
    pub fn paper_65nm() -> HybridRegulator {
        HybridRegulator::new(vec![
            AnyRegulator::from(crate::Ldo::paper_65nm()),
            AnyRegulator::from(crate::ScRegulator::paper_65nm()),
            AnyRegulator::from(crate::BuckRegulator::paper_65nm()),
        ])
        .expect("non-empty lineup")
    }

    /// The candidate regulators.
    pub fn candidates(&self) -> &[AnyRegulator] {
        &self.candidates
    }

    /// The candidate that serves `(v_in, v_out, p_out)` with the least
    /// input power, if any can serve it at all.
    pub fn best_candidate(
        &self,
        v_in: Volts,
        v_out: Volts,
        p_out: Watts,
    ) -> Option<(&AnyRegulator, Conversion)> {
        self.candidates
            .iter()
            .filter_map(|r| r.convert(v_in, v_out, p_out).ok().map(|c| (r, c)))
            .min_by(|a, b| a.1.p_in.watts().total_cmp(&b.1.p_in.watts()))
    }
}

impl Regulator for HybridRegulator {
    fn kind(&self) -> RegulatorKind {
        RegulatorKind::Hybrid
    }

    fn convert(
        &self,
        v_in: Volts,
        v_out: Volts,
        p_out: Watts,
    ) -> Result<Conversion, RegulatorError> {
        if !p_out.value().is_finite() || p_out.value() < 0.0 {
            return Err(RegulatorError::InvalidLoad {
                p_out: p_out.value(),
            });
        }
        match self.best_candidate(v_in, v_out, p_out) {
            Some((_, conversion)) => Ok(conversion),
            None => Err(RegulatorError::UnsupportedOperatingPoint {
                kind: "hybrid",
                v_in: v_in.volts(),
                v_out: v_out.volts(),
                reason: "no candidate topology can serve this point",
            }),
        }
    }

    fn output_range(&self, v_in: Volts) -> (Volts, Volts) {
        // The union's hull: min of candidate minima, max of maxima, over
        // candidates that can operate at all.
        let mut lo: Option<Volts> = None;
        let mut hi: Option<Volts> = None;
        for r in &self.candidates {
            let (c_lo, c_hi) = r.output_range(v_in);
            if c_hi <= Volts::ZERO {
                continue;
            }
            lo = Some(lo.map_or(c_lo, |v| v.min(c_lo)));
            hi = Some(hi.map_or(c_hi, |v| v.max(c_hi)));
        }
        match (lo, hi) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => (Volts::ZERO, Volts::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BuckRegulator, ScRegulator};

    #[test]
    fn empty_bank_is_rejected() {
        assert!(HybridRegulator::new(vec![]).is_err());
    }

    #[test]
    fn hybrid_is_at_least_as_good_as_every_candidate() {
        let hybrid = HybridRegulator::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        let buck = BuckRegulator::paper_65nm();
        for p_mw in [1.0, 5.0, 10.0, 20.0, 40.0] {
            let p = Watts::from_milli(p_mw);
            let h = hybrid
                .convert(Volts::new(1.2), Volts::new(0.55), p)
                .unwrap();
            for candidate in [&sc as &dyn Regulator, &buck] {
                if let Ok(c) = candidate.convert(Volts::new(1.2), Volts::new(0.55), p) {
                    assert!(
                        h.p_in <= c.p_in * (1.0 + 1e-12),
                        "hybrid worse than a candidate at {p_mw} mW"
                    );
                }
            }
        }
    }

    #[test]
    fn mux_switches_from_sc_to_buck_with_load() {
        let hybrid = HybridRegulator::paper_65nm();
        let at = |p_mw: f64| {
            hybrid
                .best_candidate(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(p_mw))
                .map(|(r, _)| r.kind())
                .unwrap()
        };
        assert_eq!(at(10.0), RegulatorKind::SwitchedCapacitor);
        assert_eq!(at(40.0), RegulatorKind::Buck);
    }

    #[test]
    fn output_range_is_the_union_hull() {
        let hybrid = HybridRegulator::paper_65nm();
        let (lo, hi) = hybrid.output_range(Volts::new(1.2));
        // LDO reaches up to Vin - dropout (1.15 V), SC down to millivolts.
        assert!(lo.volts() <= 0.01);
        assert!(hi.volts() >= 1.1);
        // A dead rail serves nothing.
        assert_eq!(hybrid.output_range(Volts::ZERO), (Volts::ZERO, Volts::ZERO));
    }

    #[test]
    fn unreachable_point_is_an_error() {
        let hybrid = HybridRegulator::paper_65nm();
        assert!(matches!(
            hybrid.convert(Volts::new(0.4), Volts::new(0.55), Watts::from_milli(1.0)),
            Err(RegulatorError::UnsupportedOperatingPoint { .. })
        ));
        assert!(matches!(
            hybrid.convert(Volts::new(1.2), Volts::new(0.55), Watts::new(-1.0)),
            Err(RegulatorError::InvalidLoad { .. })
        ));
    }

    #[test]
    fn kind_reports_hybrid() {
        assert_eq!(HybridRegulator::paper_65nm().kind(), RegulatorKind::Hybrid);
        assert_eq!(RegulatorKind::Hybrid.to_string(), "hybrid");
    }
}
