use crate::{Conversion, Regulator, RegulatorError, RegulatorKind};
use hems_units::{Amps, Efficiency, UnitsError, Volts, Watts};

/// Linear / low-dropout regulator (paper Fig. 3).
///
/// A pass transistor drops `Vin - Vout` resistively, so the efficiency is
/// essentially the division ratio:
///
/// ```text
/// eta = (I_load * V_out) / ((I_load + I_q) * V_in)
/// ```
///
/// with a small quiescent current `I_q` that dominates at very light loads.
///
/// **Calibration.** With `V_in = 1.2 V`, `V_out = 0.55 V` and the paper's
/// ~10 mW full load, `eta = 0.55/1.2 ≈ 45.8 %` — Fig. 3's "45 % @ 0.55 V".
/// The default quiescent current (20 µA) and dropout (50 mV) are typical of
/// fully-integrated 65 nm LDOs.
#[derive(Debug, Clone, PartialEq)]
pub struct Ldo {
    v_dropout: Volts,
    i_quiescent: Amps,
}

impl Ldo {
    /// Builds an LDO from its dropout voltage and quiescent current.
    ///
    /// # Errors
    ///
    /// Returns [`RegulatorError::BadParameter`] for negative or non-finite
    /// parameters.
    pub fn new(v_dropout: Volts, i_quiescent: Amps) -> Result<Ldo, RegulatorError> {
        for (what, v) in [
            ("ldo dropout voltage", v_dropout.value()),
            ("ldo quiescent current", i_quiescent.value()),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(UnitsError::OutOfRange {
                    what,
                    value: v,
                    min: 0.0,
                    max: f64::INFINITY,
                }
                .into());
            }
        }
        Ok(Ldo {
            v_dropout,
            i_quiescent,
        })
    }

    /// The paper's 65 nm LDO: 50 mV dropout, 20 µA quiescent current.
    pub fn paper_65nm() -> Ldo {
        Ldo::new(Volts::from_milli(50.0), Amps::from_micro(20.0))
            // hems-lint: allow(panic_reach, reason = "compile-time reference constants; validated by this module's unit tests")
            .expect("reference parameters are valid")
    }

    /// Dropout voltage.
    pub fn v_dropout(&self) -> Volts {
        self.v_dropout
    }

    /// Quiescent current.
    pub fn i_quiescent(&self) -> Amps {
        self.i_quiescent
    }
}

impl Regulator for Ldo {
    fn kind(&self) -> RegulatorKind {
        RegulatorKind::Ldo
    }

    fn convert(
        &self,
        v_in: Volts,
        v_out: Volts,
        p_out: Watts,
    ) -> Result<Conversion, RegulatorError> {
        if !p_out.value().is_finite() || p_out.value() < 0.0 {
            return Err(RegulatorError::InvalidLoad {
                p_out: p_out.value(),
            });
        }
        if !v_out.is_positive() || v_out > v_in - self.v_dropout {
            return Err(RegulatorError::UnsupportedOperatingPoint {
                kind: "LDO",
                v_in: v_in.volts(),
                v_out: v_out.volts(),
                reason: "output must be positive and below input minus dropout",
            });
        }
        let i_load = p_out / v_out;
        let p_in = (i_load + self.i_quiescent) * v_in;
        let efficiency = if p_in.is_positive() {
            Efficiency::saturating(p_out / p_in)
        } else {
            Efficiency::UNITY
        };
        Ok(Conversion { p_in, efficiency })
    }

    fn output_range(&self, v_in: Volts) -> (Volts, Volts) {
        let max = v_in - self.v_dropout;
        if max.is_positive() {
            (Volts::from_milli(1.0), max)
        } else {
            (Volts::ZERO, Volts::ZERO)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn matches_paper_45_percent_at_half_volt() {
        let ldo = Ldo::paper_65nm();
        let c = ldo
            .convert(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(10.0))
            .unwrap();
        assert!(
            (c.efficiency.percent() - 45.0).abs() < 1.5,
            "eta = {}",
            c.efficiency
        );
    }

    #[test]
    fn efficiency_scales_linearly_with_vout() {
        let ldo = Ldo::paper_65nm();
        let eta = |v: f64| {
            ldo.efficiency(Volts::new(1.2), Volts::new(v), Watts::from_milli(10.0))
                .unwrap()
                .ratio()
        };
        // eta(v) ~ v / 1.2, so eta(0.8)/eta(0.4) ~ 2.
        let ratio = eta(0.8) / eta(0.4);
        assert!((ratio - 2.0).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn quiescent_current_dominates_at_light_load() {
        let ldo = Ldo::paper_65nm();
        let heavy = ldo
            .efficiency(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(10.0))
            .unwrap();
        let feather = ldo
            .efficiency(Volts::new(1.2), Volts::new(0.55), Watts::from_micro(10.0))
            .unwrap();
        assert!(feather.ratio() < heavy.ratio() * 0.8);
    }

    #[test]
    fn rejects_dropout_violation() {
        let ldo = Ldo::paper_65nm();
        assert!(matches!(
            ldo.convert(Volts::new(0.58), Volts::new(0.55), Watts::from_milli(1.0)),
            Err(RegulatorError::UnsupportedOperatingPoint { .. })
        ));
        assert!(ldo
            .convert(Volts::new(0.61), Volts::new(0.55), Watts::from_milli(1.0))
            .is_ok());
    }

    #[test]
    fn rejects_bad_load_and_bad_params() {
        let ldo = Ldo::paper_65nm();
        assert!(matches!(
            ldo.convert(Volts::new(1.2), Volts::new(0.55), Watts::new(-1.0)),
            Err(RegulatorError::InvalidLoad { .. })
        ));
        assert!(Ldo::new(Volts::new(-0.1), Amps::ZERO).is_err());
        assert!(Ldo::new(Volts::new(0.05), Amps::new(f64::NAN)).is_err());
    }

    #[test]
    fn output_range_respects_rail() {
        let ldo = Ldo::paper_65nm();
        let (lo, hi) = ldo.output_range(Volts::new(1.2));
        assert!(lo.is_positive());
        assert!((hi.volts() - 1.15).abs() < 1e-12);
        let (lo, hi) = ldo.output_range(Volts::new(0.03));
        assert_eq!((lo, hi), (Volts::ZERO, Volts::ZERO));
    }

    #[test]
    fn zero_load_draws_only_quiescent() {
        let ldo = Ldo::paper_65nm();
        let c = ldo
            .convert(Volts::new(1.2), Volts::new(0.55), Watts::ZERO)
            .unwrap();
        assert!((c.p_in.to_micro() - 24.0).abs() < 1e-6); // 20 uA * 1.2 V
        assert_eq!(c.efficiency.ratio(), 0.0);
    }

    #[test]
    fn deliverable_output_inverts_convert() {
        let ldo = Ldo::paper_65nm();
        let budget = Watts::from_milli(5.0);
        let p_out = ldo
            .deliverable_output(Volts::new(1.2), Volts::new(0.55), budget)
            .unwrap();
        let round = ldo
            .convert(Volts::new(1.2), Volts::new(0.55), p_out)
            .unwrap();
        assert!((round.p_in.watts() - budget.watts()).abs() < 1e-9);
    }

    // Gated: requires the `proptest` feature plus re-adding the
    // proptest dev-dependency (removed for offline resolution).
    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn efficiency_never_exceeds_division_ratio(
            v_out in 0.1f64..1.0,
            p_mw in 0.01f64..50.0,
        ) {
            let ldo = Ldo::paper_65nm();
            let v_in = Volts::new(1.2);
            prop_assume!(v_out <= 1.15);
            let eta = ldo
                .efficiency(v_in, Volts::new(v_out), Watts::from_milli(p_mw))
                .unwrap();
            prop_assert!(eta.ratio() <= v_out / 1.2 + 1e-12);
        }

        #[test]
        fn p_in_monotone_in_load(a in 0.1f64..10.0, b in 0.1f64..10.0) {
            let ldo = Ldo::paper_65nm();
            let (small, large) = if a < b { (a, b) } else { (b, a) };
            let pi_small = ldo
                .convert(Volts::new(1.2), Volts::new(0.5), Watts::from_milli(small))
                .unwrap()
                .p_in;
            let pi_large = ldo
                .convert(Volts::new(1.2), Volts::new(0.5), Watts::from_milli(large))
                .unwrap()
                .p_in;
            prop_assert!(pi_small <= pi_large);
        }
    }
}
