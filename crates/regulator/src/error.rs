use hems_units::UnitsError;
use std::error::Error;
use std::fmt;

/// Errors raised by regulator models.
#[derive(Debug, Clone, PartialEq)]
pub enum RegulatorError {
    /// The `(v_in, v_out)` pair cannot be served by this topology.
    UnsupportedOperatingPoint {
        /// Topology name for diagnostics.
        kind: &'static str,
        /// Requested input rail voltage.
        v_in: f64,
        /// Requested output voltage.
        v_out: f64,
        /// Explanation of the violated constraint.
        reason: &'static str,
    },
    /// The requested load power is negative or non-finite.
    InvalidLoad {
        /// The offending load in watts.
        p_out: f64,
    },
    /// A model parameter failed validation at construction.
    BadParameter(UnitsError),
}

impl fmt::Display for RegulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegulatorError::UnsupportedOperatingPoint {
                kind,
                v_in,
                v_out,
                reason,
            } => write!(f, "{kind} cannot convert {v_in} V -> {v_out} V: {reason}"),
            RegulatorError::InvalidLoad { p_out } => {
                write!(
                    f,
                    "load power must be finite and non-negative, got {p_out} W"
                )
            }
            RegulatorError::BadParameter(e) => write!(f, "invalid regulator parameter: {e}"),
        }
    }
}

impl Error for RegulatorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RegulatorError::BadParameter(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnitsError> for RegulatorError {
    fn from(e: UnitsError) -> Self {
        RegulatorError::BadParameter(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RegulatorError::UnsupportedOperatingPoint {
            kind: "LDO",
            v_in: 0.5,
            v_out: 0.6,
            reason: "output exceeds input minus dropout",
        };
        let s = e.to_string();
        assert!(s.contains("LDO") && s.contains("dropout"));
        let e = RegulatorError::InvalidLoad { p_out: -1.0 };
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn bad_parameter_chains_source() {
        let e = RegulatorError::from(UnitsError::BadTable { reason: "x" });
        assert!(e.source().is_some());
    }
}
