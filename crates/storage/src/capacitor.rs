use crate::StorageError;
use hems_units::{Amps, Farads, Joules, Seconds, UnitsError, Volts, Watts};

/// The storage capacitor that replaces the battery (paper Section II).
///
/// State is just the node voltage; the simulator advances it explicitly with
/// [`Capacitor::step`] (net current) or [`Capacitor::step_power`] (net
/// power, the form eq. 6 uses). Voltage clamps at zero (fully drained) and
/// at the rated maximum (the harvesting front-end's clamp).
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    capacitance: Farads,
    v_rating: Volts,
    voltage: Volts,
    leakage_resistance: Option<hems_units::Ohms>,
}

impl Capacitor {
    /// Builds an initially empty capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadParameter`] when the capacitance or the
    /// voltage rating is non-positive.
    pub fn new(capacitance: Farads, v_rating: Volts) -> Result<Capacitor, StorageError> {
        for (what, v) in [
            ("capacitance", capacitance.value()),
            ("voltage rating", v_rating.value()),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(UnitsError::OutOfRange {
                    what,
                    value: v,
                    min: f64::MIN_POSITIVE,
                    max: f64::INFINITY,
                }
                .into());
            }
        }
        Ok(Capacitor {
            capacitance,
            v_rating,
            voltage: Volts::ZERO,
            leakage_resistance: None,
        })
    }

    /// Adds a parallel self-discharge (leakage) resistance.
    ///
    /// Electrolytic and supercap storage leaks; a 100 µF ceramic at ~10 MΩ
    /// loses microwatts — negligible over milliseconds, decisive over
    /// hours of darkness.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadParameter`] for a non-positive
    /// resistance.
    pub fn with_leakage(mut self, resistance: hems_units::Ohms) -> Result<Capacitor, StorageError> {
        if !resistance.is_positive() {
            return Err(UnitsError::OutOfRange {
                what: "leakage resistance",
                value: resistance.value(),
                min: f64::MIN_POSITIVE,
                max: f64::INFINITY,
            }
            .into());
        }
        self.leakage_resistance = Some(resistance);
        Ok(self)
    }

    /// The configured self-discharge resistance, if any.
    pub fn leakage_resistance(&self) -> Option<hems_units::Ohms> {
        self.leakage_resistance
    }

    /// Present self-discharge power at the current voltage (`V²/R`).
    pub fn leakage_power(&self) -> Watts {
        match self.leakage_resistance {
            Some(r) => Watts::new(self.voltage.volts() * self.voltage.volts() / r.ohms()),
            None => Watts::ZERO,
        }
    }

    /// The paper test board's storage capacitor: 100 µF rated 1.6 V,
    /// sized so the RC transients match Fig. 8's millisecond-scale
    /// threshold crossings.
    pub fn paper_board() -> Capacitor {
        Capacitor::new(Farads::from_micro(100.0), Volts::new(1.6))
            // hems-lint: allow(panic_reach, reason = "compile-time reference constants; validated by this module's unit tests")
            .expect("reference parameters are valid")
    }

    /// Capacitance.
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// Voltage rating.
    pub fn v_rating(&self) -> Volts {
        self.v_rating
    }

    /// Present node voltage.
    pub fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Stored energy `½CV²`.
    pub fn energy(&self) -> Joules {
        self.capacitance.stored_energy(self.voltage)
    }

    /// Sets the node voltage directly (initial conditions, test setup).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::OverVoltage`] above the rating and
    /// [`StorageError::BadParameter`] for negative/non-finite values.
    pub fn set_voltage(&mut self, v: Volts) -> Result<(), StorageError> {
        if !v.value().is_finite() || v.value() < 0.0 {
            return Err(UnitsError::OutOfRange {
                what: "capacitor voltage",
                value: v.value(),
                min: 0.0,
                max: self.v_rating.value(),
            }
            .into());
        }
        if v > self.v_rating {
            return Err(StorageError::OverVoltage {
                requested: v.volts(),
                rating: self.v_rating.volts(),
            });
        }
        self.voltage = v;
        Ok(())
    }

    /// Advances the node by `dt` under a constant net current
    /// (`> 0` charging): `V += I·dt / C`, clamped to `[0, rating]`.
    ///
    /// Returns the new voltage.
    pub fn step(&mut self, net_current: Amps, dt: Seconds) -> Volts {
        let dq = net_current * dt;
        let dv = dq / self.capacitance;
        self.voltage = (self.voltage + dv).clamp(Volts::ZERO, self.v_rating);
        self.voltage
    }

    /// Advances the node by `dt` under a constant net *power*
    /// (`> 0` charging), integrating `½C dV²/dt = P` exactly:
    /// `V' = sqrt(V² + 2·P·dt/C)`, clamped to `[0, rating]`.
    ///
    /// This is the integral form behind the paper's eq. 6, and is exact for
    /// constant-power loads where [`Capacitor::step`] would need tiny steps.
    ///
    /// Returns the new voltage.
    pub fn step_power(&mut self, net_power: Watts, dt: Seconds) -> Volts {
        let v2 = self.voltage.volts() * self.voltage.volts()
            + 2.0 * net_power.watts() * dt.seconds() / self.capacitance.farads();
        self.voltage = Volts::new(v2.max(0.0).sqrt()).min(self.v_rating);
        self.voltage
    }

    /// Time for the node to traverse from its present voltage to `v_to`
    /// under constant net power (paper eq. 6 solved for `t`):
    /// `t = C (V_to² - V²) / (2 P)`.
    ///
    /// Returns `None` when the sign of the power cannot produce the
    /// traversal (e.g. discharging toward a higher voltage) or when the
    /// power is zero.
    pub fn traversal_time(&self, v_to: Volts, net_power: Watts) -> Option<Seconds> {
        if net_power.watts() == 0.0 {
            return None;
        }
        let dv2 = v_to.volts() * v_to.volts() - self.voltage.volts() * self.voltage.volts();
        let t = self.capacitance.farads() * dv2 / (2.0 * net_power.watts());
        if t.is_finite() && t > 0.0 {
            Some(Seconds::new(t))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    fn cap_at(v: f64) -> Capacitor {
        let mut c = Capacitor::paper_board();
        c.set_voltage(Volts::new(v)).unwrap();
        c
    }

    #[test]
    fn constructor_and_setters_validate() {
        assert!(Capacitor::new(Farads::ZERO, Volts::new(1.0)).is_err());
        assert!(Capacitor::new(Farads::from_micro(100.0), Volts::ZERO).is_err());
        let mut c = Capacitor::paper_board();
        assert!(matches!(
            c.set_voltage(Volts::new(2.0)),
            Err(StorageError::OverVoltage { .. })
        ));
        assert!(c.set_voltage(Volts::new(-0.1)).is_err());
        assert!(c.set_voltage(Volts::new(f64::NAN)).is_err());
        assert!(c.set_voltage(Volts::new(1.2)).is_ok());
    }

    #[test]
    fn energy_is_half_cv_squared() {
        let c = cap_at(1.2);
        assert!((c.energy().to_micro() - 72.0).abs() < 1e-9);
        assert_eq!(Capacitor::paper_board().energy(), Joules::ZERO);
    }

    #[test]
    fn constant_current_step_is_linear() {
        let mut c = cap_at(1.0);
        c.step(Amps::from_milli(-1.0), Seconds::from_milli(10.0));
        assert!((c.voltage().volts() - 0.9).abs() < 1e-12);
        c.step(Amps::from_milli(2.0), Seconds::from_milli(10.0));
        assert!((c.voltage().volts() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn step_clamps_at_rails() {
        let mut c = cap_at(0.05);
        c.step(Amps::new(-1.0), Seconds::new(1.0));
        assert_eq!(c.voltage(), Volts::ZERO);
        c.step(Amps::new(10.0), Seconds::new(10.0));
        assert_eq!(c.voltage(), Volts::new(1.6));
    }

    #[test]
    fn power_step_conserves_energy_exactly() {
        let mut c = cap_at(1.0);
        let e0 = c.energy();
        c.step_power(Watts::from_milli(-5.0), Seconds::from_milli(4.0));
        let e1 = c.energy();
        // ΔE = P·t = 20 µJ discharge.
        assert!(((e0 - e1).to_micro() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn power_step_clamps_at_zero() {
        let mut c = cap_at(0.1);
        c.step_power(Watts::new(-1.0), Seconds::new(1.0));
        assert_eq!(c.voltage(), Volts::ZERO);
    }

    #[test]
    fn traversal_time_matches_eq6() {
        // Paper eq. 6/7: t = C (V1² - V2²) / (2 P_net_discharge).
        let c = cap_at(1.0);
        let t = c
            .traversal_time(Volts::new(0.9), Watts::from_milli(-5.0))
            .unwrap();
        let expected = 100e-6 * (1.0 - 0.81) / (2.0 * 5e-3);
        assert!((t.seconds() - expected).abs() < 1e-12);
    }

    #[test]
    fn traversal_time_rejects_impossible_directions() {
        let c = cap_at(1.0);
        // Discharging toward a higher voltage: impossible.
        assert!(c
            .traversal_time(Volts::new(1.1), Watts::from_milli(-5.0))
            .is_none());
        // Charging toward a lower voltage: impossible.
        assert!(c
            .traversal_time(Volts::new(0.9), Watts::from_milli(5.0))
            .is_none());
        // Zero power never gets there.
        assert!(c.traversal_time(Volts::new(0.9), Watts::ZERO).is_none());
    }

    #[test]
    fn leakage_is_quadratic_in_voltage() {
        let c = cap_at(1.0)
            .with_leakage(hems_units::Ohms::new(1.0e7))
            .unwrap();
        assert!((c.leakage_power().to_micro() - 0.1).abs() < 1e-12);
        let mut c2 = c.clone();
        c2.set_voltage(Volts::new(0.5)).unwrap();
        assert!((c2.leakage_power().to_micro() - 0.025).abs() < 1e-12);
        assert_eq!(cap_at(1.0).leakage_power(), Watts::ZERO);
        assert!(cap_at(1.0).leakage_resistance().is_none());
        assert!(cap_at(1.0).with_leakage(hems_units::Ohms::ZERO).is_err());
    }

    #[test]
    fn traversal_time_agrees_with_power_stepping() {
        let mut c = cap_at(1.1);
        let t = c
            .traversal_time(Volts::new(0.8), Watts::from_milli(-3.0))
            .unwrap();
        c.step_power(Watts::from_milli(-3.0), t);
        assert!((c.voltage().volts() - 0.8).abs() < 1e-9);
    }

    // Gated: requires the `proptest` feature plus re-adding the
    // proptest dev-dependency (removed for offline resolution).
    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn many_small_steps_match_one_power_step(
            v0 in 0.3f64..1.4,
            p_mw in -8.0f64..8.0,
        ) {
            prop_assume!(p_mw.abs() > 0.01);
            let dt_total = 5e-3;
            let mut fine = cap_at(v0);
            let mut coarse = cap_at(v0);
            coarse.step_power(Watts::from_milli(p_mw), Seconds::new(dt_total));
            let n = 5000;
            for _ in 0..n {
                // Convert the constant power into the instantaneous current
                // at the present voltage, as the simulator does.
                let v = fine.voltage().volts().max(1e-6);
                let i = Amps::new(p_mw * 1e-3 / v);
                fine.step(i, Seconds::new(dt_total / n as f64));
            }
            prop_assert!(
                (fine.voltage().volts() - coarse.voltage().volts()).abs() < 2e-3,
                "fine {} vs coarse {}", fine.voltage(), coarse.voltage()
            );
        }

        #[test]
        fn voltage_always_in_bounds(v0 in 0.0f64..1.6, i_ma in -50.0f64..50.0) {
            let mut c = cap_at(v0);
            for _ in 0..100 {
                c.step(Amps::from_milli(i_ma), Seconds::from_micro(100.0));
                prop_assert!(c.voltage() >= Volts::ZERO);
                prop_assert!(c.voltage() <= c.v_rating());
            }
        }
    }
}
