use hems_units::UnitsError;
use std::error::Error;
use std::fmt;

/// Errors raised by storage and monitoring components.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A parameter failed validation.
    BadParameter(UnitsError),
    /// A voltage assignment exceeded the component's rating.
    OverVoltage {
        /// The requested voltage in volts.
        requested: f64,
        /// The component's maximum rating in volts.
        rating: f64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BadParameter(e) => write!(f, "invalid storage parameter: {e}"),
            StorageError::OverVoltage { requested, rating } => {
                write!(f, "voltage {requested} V exceeds the {rating} V rating")
            }
        }
    }
}

impl Error for StorageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StorageError::BadParameter(e) => Some(e),
            StorageError::OverVoltage { .. } => None,
        }
    }
}

impl From<UnitsError> for StorageError {
    fn from(e: UnitsError) -> Self {
        StorageError::BadParameter(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StorageError::OverVoltage {
            requested: 2.0,
            rating: 1.2,
        };
        assert!(e.to_string().contains("rating"));
        assert!(e.source().is_none());
        let e = StorageError::from(UnitsError::BadTable { reason: "x" });
        assert!(e.source().is_some());
    }
}
