use crate::StorageError;
use hems_units::{Seconds, UnitsError, Volts};
use std::fmt;

/// Direction of a threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// The monitored voltage rose through the threshold.
    Rising,
    /// The monitored voltage fell through the threshold.
    Falling,
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Edge::Rising => "rising",
            Edge::Falling => "falling",
        })
    }
}

/// A detected threshold crossing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// Index of the comparator (within its bank) that fired.
    pub index: usize,
    /// The comparator's threshold voltage.
    pub threshold: Volts,
    /// Crossing direction.
    pub edge: Edge,
    /// Simulation time at which the crossing was observed.
    pub at: Seconds,
}

/// A single voltage comparator with hysteresis.
///
/// Mirrors the sub-0.1 µW board comparators of Section VII: it knows only
/// whether its input is above or below a threshold, and reports edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparator {
    threshold: Volts,
    hysteresis: Volts,
    /// Last known side: `true` when the input was above threshold.
    above: Option<bool>,
}

impl Comparator {
    /// Builds a comparator with the given threshold and hysteresis band.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadParameter`] for non-positive thresholds or
    /// negative hysteresis.
    pub fn new(threshold: Volts, hysteresis: Volts) -> Result<Comparator, StorageError> {
        if !threshold.is_positive() {
            return Err(UnitsError::OutOfRange {
                what: "comparator threshold",
                value: threshold.value(),
                min: f64::MIN_POSITIVE,
                max: f64::INFINITY,
            }
            .into());
        }
        if !hysteresis.value().is_finite() || hysteresis.value() < 0.0 {
            return Err(UnitsError::OutOfRange {
                what: "comparator hysteresis",
                value: hysteresis.value(),
                min: 0.0,
                max: f64::INFINITY,
            }
            .into());
        }
        Ok(Comparator {
            threshold,
            hysteresis,
            above: None,
        })
    }

    /// The threshold voltage.
    pub fn threshold(&self) -> Volts {
        self.threshold
    }

    /// Feeds a new input sample; returns the edge if the sample crossed the
    /// threshold (with hysteresis) since the previous sample.
    ///
    /// The first sample only initializes the state and never reports an
    /// edge.
    pub fn update(&mut self, input: Volts) -> Option<Edge> {
        let half = self.hysteresis * 0.5;
        let new_side = match self.above {
            // Hysteresis: to flip high we must exceed threshold + h/2, to
            // flip low we must fall below threshold - h/2.
            Some(true) => input >= self.threshold - half,
            Some(false) => input > self.threshold + half,
            None => input > self.threshold,
        };
        let edge = match self.above {
            Some(true) if !new_side => Some(Edge::Falling),
            Some(false) if new_side => Some(Edge::Rising),
            _ => None,
        };
        self.above = Some(new_side);
        edge
    }

    /// Resets the comparator to its power-on (unknown) state.
    pub fn reset(&mut self) {
        self.above = None;
    }
}

/// The board's bank of monitoring comparators (paper Fig. 8: thresholds
/// `V0 > V1 > V2` watching the solar node).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparatorBank {
    comparators: Vec<Comparator>,
}

impl ComparatorBank {
    /// Builds a bank from descending threshold voltages, all with the same
    /// hysteresis.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadParameter`] when no threshold is given,
    /// the thresholds are not strictly descending, or any comparator
    /// parameter is invalid.
    pub fn new(thresholds: &[Volts], hysteresis: Volts) -> Result<ComparatorBank, StorageError> {
        if thresholds.is_empty() {
            return Err(UnitsError::BadTable {
                reason: "comparator bank needs at least one threshold",
            }
            .into());
        }
        if thresholds.windows(2).any(|w| w[0] <= w[1]) {
            return Err(UnitsError::BadTable {
                reason: "thresholds must be strictly descending (V0 > V1 > ...)",
            }
            .into());
        }
        let comparators = thresholds
            .iter()
            .map(|t| Comparator::new(*t, hysteresis))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ComparatorBank { comparators })
    }

    /// The paper's Fig. 8 monitor: `V0 = 1.1 V`, `V1 = 1.0 V`, `V2 = 0.9 V`
    /// with 10 mV hysteresis.
    pub fn paper_board() -> ComparatorBank {
        ComparatorBank::new(
            &[Volts::new(1.1), Volts::new(1.0), Volts::new(0.9)],
            Volts::from_milli(10.0),
        )
        .expect("reference thresholds are valid")
    }

    /// The thresholds, descending.
    pub fn thresholds(&self) -> Vec<Volts> {
        self.comparators.iter().map(|c| c.threshold()).collect()
    }

    /// Number of comparators.
    pub fn len(&self) -> usize {
        self.comparators.len()
    }

    /// Always `false`: construction requires at least one comparator.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Feeds a sample taken at time `at` to every comparator; returns every
    /// crossing that fired, lowest index (highest threshold) first.
    pub fn update(&mut self, input: Volts, at: Seconds) -> Vec<Crossing> {
        self.comparators
            .iter_mut()
            .enumerate()
            .filter_map(|(index, c)| {
                c.update(input).map(|edge| Crossing {
                    index,
                    threshold: c.threshold(),
                    edge,
                    at,
                })
            })
            .collect()
    }

    /// Resets every comparator.
    pub fn reset(&mut self) {
        for c in &mut self.comparators {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "proptest")]
    use proptest::prelude::*;

    #[test]
    fn comparator_detects_edges() {
        let mut c = Comparator::new(Volts::new(1.0), Volts::ZERO).unwrap();
        assert_eq!(c.update(Volts::new(1.2)), None); // first sample: init
        assert_eq!(c.update(Volts::new(1.1)), None);
        assert_eq!(c.update(Volts::new(0.9)), Some(Edge::Falling));
        assert_eq!(c.update(Volts::new(0.8)), None);
        assert_eq!(c.update(Volts::new(1.05)), Some(Edge::Rising));
    }

    #[test]
    fn hysteresis_suppresses_chatter() {
        let mut c = Comparator::new(Volts::new(1.0), Volts::from_milli(40.0)).unwrap();
        c.update(Volts::new(1.1));
        // Dithering within the +/-20 mV band never fires.
        for v in [0.995, 1.005, 0.99, 1.01, 0.985] {
            assert_eq!(c.update(Volts::new(v)), None, "fired at {v}");
        }
        // A real excursion does.
        assert_eq!(c.update(Volts::new(0.97)), Some(Edge::Falling));
        assert_eq!(c.update(Volts::new(1.01)), None); // inside band again
        assert_eq!(c.update(Volts::new(1.03)), Some(Edge::Rising));
    }

    #[test]
    fn reset_forgets_state() {
        let mut c = Comparator::new(Volts::new(1.0), Volts::ZERO).unwrap();
        c.update(Volts::new(1.2));
        c.reset();
        // After reset the next sample initializes silently even though it is
        // on the other side.
        assert_eq!(c.update(Volts::new(0.5)), None);
    }

    #[test]
    fn bank_validates_ordering() {
        assert!(ComparatorBank::new(&[], Volts::ZERO).is_err());
        assert!(ComparatorBank::new(&[Volts::new(0.9), Volts::new(1.0)], Volts::ZERO).is_err());
        assert!(ComparatorBank::new(&[Volts::new(1.0), Volts::new(1.0)], Volts::ZERO).is_err());
        assert!(ComparatorBank::new(&[Volts::new(1.0), Volts::new(-0.1)], Volts::ZERO).is_err());
    }

    #[test]
    fn bank_reports_crossings_in_threshold_order() {
        let mut bank = ComparatorBank::paper_board();
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
        bank.update(Volts::new(1.2), Seconds::ZERO);
        // A hard drop through all three thresholds fires all three, highest
        // threshold (index 0) first.
        let crossings = bank.update(Volts::new(0.5), Seconds::from_milli(3.0));
        assert_eq!(crossings.len(), 3);
        assert_eq!(crossings[0].index, 0);
        assert_eq!(crossings[0].threshold, Volts::new(1.1));
        assert_eq!(crossings[2].threshold, Volts::new(0.9));
        assert!(crossings.iter().all(|c| c.edge == Edge::Falling));
        assert!(crossings
            .iter()
            .all(|c| (c.at.to_milli() - 3.0).abs() < 1e-12));
    }

    #[test]
    fn bank_reset_reinitializes() {
        let mut bank = ComparatorBank::paper_board();
        bank.update(Volts::new(1.2), Seconds::ZERO);
        bank.reset();
        let crossings = bank.update(Volts::new(0.5), Seconds::ZERO);
        assert!(crossings.is_empty());
    }

    #[test]
    fn edge_display() {
        assert_eq!(Edge::Rising.to_string(), "rising");
        assert_eq!(Edge::Falling.to_string(), "falling");
    }

    // Gated: requires the `proptest` feature plus re-adding the
    // proptest dev-dependency (removed for offline resolution).
    #[cfg(feature = "proptest")]
    proptest! {
        #[test]
        fn edges_alternate(samples in proptest::collection::vec(0.5f64..1.5, 2..200)) {
            let mut c = Comparator::new(Volts::new(1.0), Volts::from_milli(20.0)).unwrap();
            let mut last: Option<Edge> = None;
            for s in samples {
                if let Some(e) = c.update(Volts::new(s)) {
                    if let Some(prev) = last {
                        prop_assert_ne!(prev, e, "two consecutive {:?} edges", e);
                    }
                    last = Some(e);
                }
            }
        }
    }
}
