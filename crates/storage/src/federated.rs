use crate::{Capacitor, StorageError};
use hems_units::{Joules, Seconds, UnitsError, Volts, Watts};

/// Federated energy storage — the architecture of the paper's ref. \[15\]
/// ("Tragedy of the Coulombs: federating energy storage for tiny,
/// intermittently-powered sensors", the first author's prior system).
///
/// Instead of one monolithic capacitor, the store is a small *operating*
/// capacitor (bank 0) backed by larger *reserve* banks. Harvested charge
/// fills the operating bank first — so the device boots as soon as a tiny
/// bucket is full instead of waiting for a big one — and surplus spills
/// into the reserves in priority order. When the operating bank runs low,
/// a reserve is switched across it; the charge-sharing transfer is modelled
/// physically (charge conserves, energy does not).
///
/// This module is an analysis-level companion to the single-node simulator:
/// it quantifies *why* federation helps (time-to-first-task, burst
/// endurance) without changing the paper's single-capacitor system model.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedStorage {
    banks: Vec<Capacitor>,
}

impl FederatedStorage {
    /// Builds a federation; `banks[0]` is the operating capacitor, the
    /// rest are reserves in fill-priority order.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::BadParameter`] when no bank is given.
    pub fn new(banks: Vec<Capacitor>) -> Result<FederatedStorage, StorageError> {
        if banks.is_empty() {
            return Err(UnitsError::BadTable {
                reason: "a federation needs at least one bank",
            }
            .into());
        }
        Ok(FederatedStorage { banks })
    }

    /// The ref. \[15\]-style split of the paper board's 100 µF: a 10 µF
    /// operating bank plus a 90 µF reserve, both rated 1.6 V.
    pub fn paper_split() -> FederatedStorage {
        let op = Capacitor::new(hems_units::Farads::from_micro(10.0), Volts::new(1.6))
            .expect("valid bank");
        let reserve = Capacitor::new(hems_units::Farads::from_micro(90.0), Volts::new(1.6))
            .expect("valid bank");
        FederatedStorage::new(vec![op, reserve]).expect("non-empty federation")
    }

    /// The banks, operating bank first.
    pub fn banks(&self) -> &[Capacitor] {
        &self.banks
    }

    /// The operating bank's voltage.
    pub fn operating_voltage(&self) -> Volts {
        self.banks[0].voltage()
    }

    /// Total stored energy across all banks.
    pub fn total_energy(&self) -> Joules {
        self.banks.iter().map(|b| b.energy()).sum()
    }

    /// Routes harvested `power` for `dt` into the first bank below
    /// `fill_target`; surplus time is not split across banks within a step
    /// (steps are short relative to fill times).
    pub fn charge(&mut self, power: Watts, dt: Seconds, fill_target: Volts) {
        for bank in &mut self.banks {
            if bank.voltage() < fill_target.min(bank.v_rating()) {
                bank.step_power(power, dt);
                return;
            }
        }
        // Everything full to target: top up the last reserve to rating.
        if let Some(last) = self.banks.last_mut() {
            last.step_power(power, dt);
        }
    }

    /// Draws `power` for `dt` from the operating bank. Returns `false`
    /// (and drains to zero) when the bank cannot supply the full step.
    pub fn draw(&mut self, power: Watts, dt: Seconds) -> bool {
        let needed = power * dt;
        let available = self.banks[0].energy();
        self.banks[0].step_power(-power, dt);
        available >= needed
    }

    /// Switches the fullest reserve across the operating bank: both settle
    /// at the charge-weighted common voltage. Charge is conserved; the
    /// charge-sharing energy loss is returned (dissipated in the switch).
    ///
    /// Returns `None` when there is no reserve with a higher voltage than
    /// the operating bank (switching would drain it backwards).
    pub fn switch_in_reserve(&mut self) -> Option<Joules> {
        let v_op = self.banks[0].voltage();
        let best = self
            .banks
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, b)| b.voltage() > v_op)
            .max_by(|a, b| {
                a.1.voltage()
                    .partial_cmp(&b.1.voltage())
                    .expect("finite voltages")
            })
            .map(|(i, _)| i)?;
        let (c_op, c_res) = (
            self.banks[0].capacitance().farads(),
            self.banks[best].capacitance().farads(),
        );
        let (v1, v2) = (v_op.volts(), self.banks[best].voltage().volts());
        let before = self.banks[0].energy() + self.banks[best].energy();
        let v_common = (c_op * v1 + c_res * v2) / (c_op + c_res);
        self.banks[0]
            .set_voltage(Volts::new(v_common))
            .expect("common voltage is below both ratings");
        self.banks[best]
            .set_voltage(Volts::new(v_common))
            .expect("common voltage is below both ratings");
        let after = self.banks[0].energy() + self.banks[best].energy();
        Some(before - after)
    }

    /// Time for the operating bank to reach `v_boot` under constant
    /// harvest `power`, charging operating-bank-first. Compare against a
    /// monolithic capacitor of the combined size to see the federation's
    /// time-to-first-task advantage.
    pub fn time_to_boot(&self, power: Watts, v_boot: Volts) -> Option<Seconds> {
        let bank = &self.banks[0];
        bank.traversal_time(v_boot, power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_units::Farads;

    #[test]
    fn construction_validates() {
        assert!(FederatedStorage::new(vec![]).is_err());
        let f = FederatedStorage::paper_split();
        assert_eq!(f.banks().len(), 2);
        assert_eq!(f.operating_voltage(), Volts::ZERO);
    }

    #[test]
    fn charging_fills_the_operating_bank_first() {
        let mut f = FederatedStorage::paper_split();
        let target = Volts::new(1.0);
        // 1 mW into an empty 10 uF bank: reaches 1 V after C*V^2/2P = 5 ms.
        for _ in 0..120 {
            f.charge(Watts::from_milli(1.0), Seconds::from_micro(50.0), target);
        }
        assert!(f.operating_voltage() >= Volts::new(0.99));
        // Reserve untouched until the operating bank hit the target.
        let reserve_v = f.banks()[1].voltage();
        assert!(reserve_v < Volts::new(0.2), "reserve at {reserve_v}");
        // Keep charging: now the reserve fills.
        for _ in 0..200 {
            f.charge(Watts::from_milli(1.0), Seconds::from_micro(50.0), target);
        }
        assert!(f.banks()[1].voltage() > reserve_v);
    }

    #[test]
    fn federation_boots_much_faster_than_a_monolith() {
        // The ref. [15] headline: a small operating bucket reaches the boot
        // voltage ~10x sooner than the monolithic capacitor of equal total
        // capacity.
        let f = FederatedStorage::paper_split();
        let t_fed = f
            .time_to_boot(Watts::from_milli(1.0), Volts::new(1.0))
            .unwrap();
        let mono = Capacitor::new(Farads::from_micro(100.0), Volts::new(1.6)).unwrap();
        let t_mono = mono
            .traversal_time(Volts::new(1.0), Watts::from_milli(1.0))
            .unwrap();
        assert!(
            t_mono.seconds() / t_fed.seconds() > 9.0,
            "federated {} vs monolithic {}",
            t_fed.seconds(),
            t_mono.seconds()
        );
    }

    #[test]
    fn switching_conserves_charge_and_loses_energy() {
        let mut f = FederatedStorage::paper_split();
        f.banks[0].set_voltage(Volts::new(0.4)).unwrap();
        f.banks[1].set_voltage(Volts::new(1.2)).unwrap();
        let q_before = 10e-6 * 0.4 + 90e-6 * 1.2;
        let e_before = f.total_energy();
        let loss = f.switch_in_reserve().expect("reserve was fuller");
        // Both banks settle at the charge-weighted voltage.
        let v = f.operating_voltage().volts();
        assert!((v - f.banks()[1].voltage().volts()).abs() < 1e-12);
        assert!((v - q_before / 100e-6).abs() < 1e-9);
        // Charge conserved, energy dissipated in the switch.
        assert!(loss.is_positive());
        assert!(
            ((e_before - f.total_energy()) - loss).abs().joules() < 1e-15,
            "loss accounting broken"
        );
    }

    #[test]
    fn switching_refuses_to_drain_backwards() {
        let mut f = FederatedStorage::paper_split();
        f.banks[0].set_voltage(Volts::new(1.2)).unwrap();
        f.banks[1].set_voltage(Volts::new(0.4)).unwrap();
        assert!(f.switch_in_reserve().is_none());
    }

    #[test]
    fn draw_reports_underflow() {
        let mut f = FederatedStorage::paper_split();
        f.banks[0].set_voltage(Volts::new(1.0)).unwrap();
        // 5 uJ stored; draw 1 mW for 1 ms = 1 uJ: fine.
        assert!(f.draw(Watts::from_milli(1.0), Seconds::from_milli(1.0)));
        // Draw 1 mW for 10 ms = 10 uJ: underflows.
        assert!(!f.draw(Watts::from_milli(1.0), Seconds::from_milli(10.0)));
        assert_eq!(f.operating_voltage(), Volts::ZERO);
    }

    #[test]
    fn burst_endurance_with_reserve_switching() {
        // A bursty load that outruns the operating bank survives by
        // switching reserves in.
        let mut f = FederatedStorage::paper_split();
        f.banks[0].set_voltage(Volts::new(1.2)).unwrap();
        f.banks[1].set_voltage(Volts::new(1.2)).unwrap();
        let burst = Watts::from_milli(10.0);
        let dt = Seconds::from_micro(50.0);
        let mut survived = Seconds::ZERO;
        for _ in 0..2000 {
            if f.operating_voltage() < Volts::new(0.5) && f.switch_in_reserve().is_none() {
                break;
            }
            if !f.draw(burst, dt) {
                break;
            }
            survived += dt;
        }
        // A lone 10 uF bank at 1.2 V holds 7.2 uJ = 0.72 ms at 10 mW; with
        // the 90 uF reserve switched in it lasts over 5 ms.
        assert!(
            survived > Seconds::from_milli(5.0),
            "survived only {survived}"
        );
    }
}
