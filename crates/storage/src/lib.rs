//! Energy storage and monitoring: the capacitor that replaces the battery,
//! and the comparator bank that watches it.
//!
//! The paper's system is battery-less: a small capacitor at the solar-cell
//! output buffers energy (Section II), and "multiple comparators with less
//! than 0.1 µW power … serve as a simplified energy monitor to the solar
//! cells" (Section VII). Two of the paper's key mechanisms live here:
//!
//! * the **capacitor node dynamics** the simulator integrates
//!   (`C dV/dt = I_in - I_out`), with the energy bookkeeping `E = ½CV²`;
//! * the **threshold-crossing timer** of the proposed MPP-tracking scheme
//!   (Section VI-A, eqs. 6–7): measure how long the node takes to fall from
//!   comparator threshold `V1` to `V2` and infer the harvested power without
//!   any current sensor.
//!
//! ```
//! use hems_storage::Capacitor;
//! use hems_units::{Amps, Farads, Seconds, Volts};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cap = Capacitor::new(Farads::from_micro(100.0), Volts::new(1.2))?;
//! cap.set_voltage(Volts::new(1.0))?;
//! // 1 mA net discharge for 10 ms drops V by I*t/C = 0.1 V.
//! cap.step(Amps::from_milli(-1.0), Seconds::from_milli(10.0));
//! assert!((cap.voltage().volts() - 0.9).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacitor;
mod comparator;
mod error;
mod federated;
mod timer;

pub use capacitor::Capacitor;
pub use comparator::{Comparator, ComparatorBank, Crossing, Edge};
pub use error::StorageError;
pub use federated::FederatedStorage;
pub use timer::{DischargeObservation, DischargeTimer};
