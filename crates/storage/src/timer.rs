use crate::{Crossing, Edge};
use hems_units::{Seconds, Volts};

/// A completed threshold-to-threshold traversal measurement.
///
/// This is the raw observable of the paper's proposed MPP-tracking scheme
/// (Section VI-A): "the time that voltage drops across a predefined
/// threshold" — from comparator `V1` down to `V2` in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DischargeObservation {
    /// The higher threshold where timing started.
    pub v_from: Volts,
    /// The lower threshold where timing stopped.
    pub v_to: Volts,
    /// Time taken to traverse between the thresholds.
    pub duration: Seconds,
}

/// Pairs falling-edge crossings of two comparator thresholds into timed
/// discharge observations.
///
/// Feed it every [`Crossing`] a [`crate::ComparatorBank`] reports; it arms
/// on a falling edge through `v_start` and completes on the next falling
/// edge through `v_stop`. A rising edge through `v_start` (the node
/// recovered) disarms it, so partial discharges never produce bogus
/// observations.
#[derive(Debug, Clone, PartialEq)]
pub struct DischargeTimer {
    v_start: Volts,
    v_stop: Volts,
    armed_at: Option<Seconds>,
}

impl DischargeTimer {
    /// Builds a timer between two thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `v_start <= v_stop`; the timer measures *discharge*.
    pub fn new(v_start: Volts, v_stop: Volts) -> DischargeTimer {
        assert!(
            v_start > v_stop,
            "discharge timer needs v_start > v_stop (got {v_start} -> {v_stop})"
        );
        DischargeTimer {
            v_start,
            v_stop,
            armed_at: None,
        }
    }

    /// The arming (higher) threshold.
    pub fn v_start(&self) -> Volts {
        self.v_start
    }

    /// The completing (lower) threshold.
    pub fn v_stop(&self) -> Volts {
        self.v_stop
    }

    /// `true` while a discharge is being timed.
    pub fn is_armed(&self) -> bool {
        self.armed_at.is_some()
    }

    /// Processes one crossing; returns an observation when a full
    /// `v_start -> v_stop` discharge completes.
    pub fn observe(&mut self, crossing: Crossing) -> Option<DischargeObservation> {
        let matches_start = (crossing.threshold - self.v_start).abs() < Volts::from_milli(1.0);
        let matches_stop = (crossing.threshold - self.v_stop).abs() < Volts::from_milli(1.0);
        match (crossing.edge, matches_start, matches_stop) {
            (Edge::Falling, true, _) => {
                self.armed_at = Some(crossing.at);
                None
            }
            (Edge::Rising, true, _) => {
                // Node recovered above the start threshold: disarm.
                self.armed_at = None;
                None
            }
            (Edge::Falling, _, true) => {
                let started = self.armed_at.take()?;
                let duration = crossing.at - started;
                if duration.value() <= 0.0 {
                    return None;
                }
                Some(DischargeObservation {
                    v_from: self.v_start,
                    v_to: self.v_stop,
                    duration,
                })
            }
            _ => None,
        }
    }

    /// Disarms the timer.
    pub fn reset(&mut self) {
        self.armed_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn falling(threshold: f64, at_ms: f64) -> Crossing {
        Crossing {
            index: 0,
            threshold: Volts::new(threshold),
            edge: Edge::Falling,
            at: Seconds::from_milli(at_ms),
        }
    }

    fn rising(threshold: f64, at_ms: f64) -> Crossing {
        Crossing {
            edge: Edge::Rising,
            ..falling(threshold, at_ms)
        }
    }

    #[test]
    fn times_a_complete_discharge() {
        let mut t = DischargeTimer::new(Volts::new(1.0), Volts::new(0.9));
        assert!(t.observe(falling(1.0, 2.0)).is_none());
        assert!(t.is_armed());
        let obs = t.observe(falling(0.9, 5.5)).unwrap();
        assert!((obs.duration.to_milli() - 3.5).abs() < 1e-12);
        assert_eq!(obs.v_from, Volts::new(1.0));
        assert_eq!(obs.v_to, Volts::new(0.9));
        assert!(!t.is_armed());
    }

    #[test]
    fn recovery_disarms() {
        let mut t = DischargeTimer::new(Volts::new(1.0), Volts::new(0.9));
        t.observe(falling(1.0, 2.0));
        t.observe(rising(1.0, 3.0)); // node bounced back up
        assert!(!t.is_armed());
        assert!(t.observe(falling(0.9, 9.0)).is_none());
    }

    #[test]
    fn stop_without_arm_is_ignored() {
        let mut t = DischargeTimer::new(Volts::new(1.0), Volts::new(0.9));
        assert!(t.observe(falling(0.9, 1.0)).is_none());
    }

    #[test]
    fn unrelated_thresholds_are_ignored() {
        let mut t = DischargeTimer::new(Volts::new(1.0), Volts::new(0.9));
        t.observe(falling(1.0, 2.0));
        assert!(t.observe(falling(1.1, 2.5)).is_none());
        assert!(t.is_armed());
        assert!(t.observe(falling(0.9, 4.0)).is_some());
    }

    #[test]
    fn rearming_restarts_the_clock() {
        let mut t = DischargeTimer::new(Volts::new(1.0), Volts::new(0.9));
        t.observe(falling(1.0, 2.0));
        t.observe(falling(1.0, 6.0)); // re-armed later (e.g. after recovery glitch)
        let obs = t.observe(falling(0.9, 7.0)).unwrap();
        assert!((obs.duration.to_milli() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_disarms() {
        let mut t = DischargeTimer::new(Volts::new(1.0), Volts::new(0.9));
        t.observe(falling(1.0, 2.0));
        t.reset();
        assert!(!t.is_armed());
    }

    #[test]
    #[should_panic(expected = "v_start > v_stop")]
    fn rejects_inverted_thresholds() {
        let _ = DischargeTimer::new(Volts::new(0.9), Volts::new(1.0));
    }

    #[test]
    fn end_to_end_with_comparator_bank() {
        use crate::ComparatorBank;
        let mut bank = ComparatorBank::paper_board();
        let mut timer = DischargeTimer::new(Volts::new(1.0), Volts::new(0.9));
        // Simulate a ramp from 1.15 V down to 0.85 V over 6 ms.
        let mut obs = None;
        for i in 0..=60 {
            let at = Seconds::from_micro(i as f64 * 100.0);
            let v = Volts::new(1.15 - 0.3 * i as f64 / 60.0);
            for crossing in bank.update(v, at) {
                if let Some(o) = timer.observe(crossing) {
                    obs = Some(o);
                }
            }
        }
        let obs = obs.expect("a full discharge was observed");
        // The ramp covers 0.1 V (1.0 -> 0.9) in 2 ms (0.05 V/ms).
        assert!(
            (obs.duration.to_milli() - 2.0).abs() < 0.2,
            "duration {} ms",
            obs.duration.to_milli()
        );
    }
}
