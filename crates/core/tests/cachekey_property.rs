//! Property test: cache-key canonicalization is total and stable.
//!
//! Across randomized `SystemConfig`s (vendored xorshift — no new deps):
//!
//! * **total** — every generated configuration produces a key without
//!   panicking;
//! * **stable** — a cloned (equal) configuration produces the same key;
//! * **sensitive** — perturbing a single field produces a different key.

use hems_core::cachekey::{config_key, scenario_key};
use hems_pv::Irradiance;
use hems_regulator::AnyRegulator;
use hems_sim::sweep::SweepPolicy;
use hems_sim::{DvfsTransition, SystemConfig};
use hems_storage::Capacitor;
use hems_units::{Farads, Joules, Seconds, Volts, Watts, XorShiftRng};

fn random_config(rng: &mut XorShiftRng) -> SystemConfig {
    let mut cfg = SystemConfig::paper_sc_system().expect("reference config");
    cfg.cell
        .set_irradiance(Irradiance::new(rng.range_f64(0.01, 1.0)).expect("in range"));
    let c = Farads::from_micro(rng.range_f64(1.0, 500.0));
    cfg.capacitor = Capacitor::new(c, Volts::new(rng.range_f64(2.0, 6.0))).expect("valid cap");
    cfg.regulator = {
        let lineup = AnyRegulator::paper_lineup();
        let pick = rng.below_u32(lineup.len() as u32) as usize;
        lineup.into_iter().nth(pick).expect("in range")
    };
    let n_thresholds = rng.range_u32(1, 4) as usize;
    cfg.comparator_thresholds = (0..n_thresholds)
        .map(|i| Volts::new(1.2 - 0.1 * i as f64 - rng.range_f64(0.0, 0.05)))
        .collect();
    cfg.comparator_hysteresis = Volts::from_milli(rng.range_f64(1.0, 30.0));
    cfg.v_restart = Volts::new(rng.range_f64(0.4, 0.8));
    cfg.p_standby = Watts::from_micro(rng.range_f64(0.1, 2.0));
    cfg.dvfs_transition = if rng.below_u32(2) == 0 {
        None
    } else {
        Some(DvfsTransition {
            latency: Seconds::from_micro(rng.range_f64(1.0, 100.0)),
            energy: Joules::new(rng.range_f64(1e-9, 1e-6)),
        })
    };
    cfg.dt = Seconds::from_micro(rng.range_f64(10.0, 100.0));
    cfg
}

/// Applies one of several single-field perturbations, returning a config
/// that differs from `cfg` in exactly that field.
fn perturb(cfg: &SystemConfig, which: u32, rng: &mut XorShiftRng) -> SystemConfig {
    let mut out = cfg.clone();
    match which {
        0 => {
            let g = cfg.cell.irradiance().fraction();
            let nudged = if g < 0.5 { g + 0.01 } else { g - 0.01 };
            out.cell
                .set_irradiance(Irradiance::new(nudged).expect("in range"));
        }
        1 => {
            let c = Farads::new(cfg.capacitor.capacitance().farads() * 1.5);
            out.capacitor = Capacitor::new(c, cfg.capacitor.v_rating()).expect("valid cap");
        }
        2 => out.v_restart = cfg.v_restart + Volts::from_milli(7.0),
        3 => out.p_standby = cfg.p_standby * 1.25,
        4 => out.dt = cfg.dt * 1.5,
        5 => out.comparator_hysteresis = cfg.comparator_hysteresis + Volts::from_milli(1.0),
        6 => out
            .comparator_thresholds
            .push(Volts::new(rng.range_f64(0.3, 0.4))),
        _ => {
            out.dvfs_transition = match cfg.dvfs_transition {
                None => Some(DvfsTransition::paper_integrated()),
                Some(_) => None,
            };
        }
    }
    out
}

#[test]
fn keys_are_total_stable_and_field_sensitive() {
    let mut rng = XorShiftRng::seed_from_u64(0x5eed_cafe);
    for round in 0..200 {
        let cfg = random_config(&mut rng);
        let key = config_key(&cfg);
        assert_eq!(
            key,
            config_key(&cfg.clone()),
            "round {round}: equal configs must key equal"
        );
        let which = rng.below_u32(8);
        let perturbed = perturb(&cfg, which, &mut rng);
        assert_ne!(
            key,
            config_key(&perturbed),
            "round {round}: perturbing field {which} must change the key"
        );
    }
}

#[test]
fn scenario_keys_separate_policy_and_run_settings() {
    let mut rng = XorShiftRng::seed_from_u64(0xdead_beef);
    for round in 0..100 {
        let cfg = random_config(&mut rng);
        let policy = if rng.below_u32(2) == 0 {
            SweepPolicy::paper_fixed()
        } else {
            SweepPolicy::paper_duty_cycle()
        };
        let v0 = Volts::new(rng.range_f64(0.8, 1.4));
        let t = Seconds::from_milli(rng.range_f64(10.0, 100.0));
        let key = scenario_key(&cfg, &policy, v0, t);
        assert_eq!(
            key,
            scenario_key(&cfg.clone(), &policy.clone(), v0, t),
            "round {round}: stability"
        );
        assert_ne!(
            key,
            scenario_key(&cfg, &policy, v0 + Volts::from_milli(1.0), t),
            "round {round}: v_initial must reach the key"
        );
        assert_ne!(
            key,
            scenario_key(&cfg, &policy, v0, t * 2.0),
            "round {round}: duration must reach the key"
        );
        let other = match &policy {
            SweepPolicy::FixedVoltage { .. } => SweepPolicy::paper_duty_cycle(),
            SweepPolicy::DutyCycle { .. } => SweepPolicy::paper_fixed(),
        };
        assert_ne!(
            key,
            scenario_key(&cfg, &other, v0, t),
            "round {round}: policy must reach the key"
        );
    }
}
