//! Cross-path parity: every solver fed the LUT device models must agree
//! with the same solver fed the exact models to ≤ 0.1 % — the contract
//! that lets the sweep engine and figure benches run on the fast path.
//!
//! The sweeps mirror the paper's figures: Fig. 6 (operating points vs
//! light level), Fig. 7a (regulated-vs-bypass), Fig. 7b (system MEP), and
//! the sustainable frontier used by the frontier explorer.

use hems_core::{frontier, mep, operating_point, optimal_voltage};
use hems_cpu::{CpuLut, Microprocessor};
use hems_pv::{Irradiance, PvLut, SolarCell};
use hems_regulator::{BuckRegulator, Ldo, Regulator, ScRegulator};

const TOL: f64 = 1e-3; // 0.1 % relative

fn close(fast: f64, exact: f64, what: &str) {
    let denom = exact.abs().max(1e-12);
    assert!(
        (fast - exact).abs() / denom <= TOL,
        "{what}: fast {fast:e} vs exact {exact:e} ({:.3e} rel)",
        (fast - exact).abs() / denom
    );
}

fn light_levels() -> Vec<Irradiance> {
    [1.0, 0.75, 0.5, 0.25, 0.1]
        .into_iter()
        .map(|g| Irradiance::new(g).unwrap())
        .collect()
}

fn regulators() -> Vec<Box<dyn Regulator>> {
    vec![
        Box::new(ScRegulator::paper_65nm()),
        Box::new(BuckRegulator::paper_65nm()),
        Box::new(Ldo::paper_65nm()),
    ]
}

#[test]
fn regulated_plan_parity_across_fig6_sweep() {
    let cpu = Microprocessor::paper_65nm();
    let cpu_lut = CpuLut::build_default(cpu.clone());
    for g in light_levels() {
        let cell = SolarCell::kxob22(g);
        let pv_lut = PvLut::build_default(cell.clone()).unwrap();
        for reg in regulators() {
            let exact = optimal_voltage::optimal_regulated_plan(&cell, reg.as_ref(), &cpu);
            let fast = optimal_voltage::optimal_regulated_plan(&pv_lut, reg.as_ref(), &cpu_lut);
            match (exact, fast) {
                (Ok(e), Ok(f)) => {
                    let tag = format!("{} plan at {g}", reg.kind());
                    close(f.p_cpu.watts(), e.p_cpu.watts(), &format!("{tag}: p_cpu"));
                    close(
                        f.frequency.hertz(),
                        e.frequency.hertz(),
                        &format!("{tag}: frequency"),
                    );
                    // The optimum can sit on a flat plateau; voltages agree
                    // loosely, the delivered power is the real contract.
                    assert!(
                        (f.vdd.volts() - e.vdd.volts()).abs() < 0.02,
                        "{tag}: vdd {} vs {}",
                        f.vdd,
                        e.vdd
                    );
                }
                (Err(_), Err(_)) => {} // both infeasible: agreement
                (e, f) => panic!("{} at {g}: exact {e:?} vs fast {f:?}", reg.kind()),
            }
        }
    }
}

#[test]
fn unregulated_point_parity_across_light() {
    let cpu = Microprocessor::paper_65nm();
    let cpu_lut = CpuLut::build_default(cpu.clone());
    for g in light_levels() {
        let cell = SolarCell::kxob22(g);
        let pv_lut = PvLut::build_default(cell.clone()).unwrap();
        let exact = operating_point::unregulated_point(&cell, &cpu);
        let fast = operating_point::unregulated_point(&pv_lut, &cpu_lut);
        match (exact, fast) {
            (Ok(e), Ok(f)) => {
                close(f.power.watts(), e.power.watts(), &format!("power at {g}"));
                close(
                    f.frequency.hertz(),
                    e.frequency.hertz(),
                    &format!("frequency at {g}"),
                );
                assert!((f.vdd.volts() - e.vdd.volts()).abs() < 2e-3);
            }
            (Err(_), Err(_)) => {}
            (e, f) => panic!("at {g}: exact {e:?} vs fast {f:?}"),
        }
    }
}

#[test]
fn system_mep_parity_fig7b() {
    let cpu = Microprocessor::paper_65nm();
    let cpu_lut = CpuLut::build_default(cpu.clone());
    let rail = hems_units::Volts::new(1.1);
    for reg in regulators() {
        let exact = mep::system_mep(&cpu, reg.as_ref(), rail).unwrap();
        let fast = mep::system_mep(&cpu_lut, reg.as_ref(), rail).unwrap();
        let tag = format!("{} MEP", reg.kind());
        close(
            fast.energy_per_cycle.joules(),
            exact.energy_per_cycle.joules(),
            &format!("{tag}: energy"),
        );
        assert!(
            (fast.vdd.volts() - exact.vdd.volts()).abs() < 5e-3,
            "{tag}: vdd {} vs {}",
            fast.vdd,
            exact.vdd
        );
    }
}

#[test]
fn sustainable_frontier_parity() {
    let cpu = Microprocessor::paper_65nm();
    let cpu_lut = CpuLut::build_default(cpu.clone());
    let sc = ScRegulator::paper_65nm();
    let cell = SolarCell::kxob22(Irradiance::HALF_SUN);
    let pv_lut = PvLut::build_default(cell.clone()).unwrap();
    let exact = frontier::sustainable_frontier(&cell, &sc, &cpu, 33).unwrap();
    let fast = frontier::sustainable_frontier(&pv_lut, &sc, &cpu_lut, 33).unwrap();
    assert_eq!(exact.len(), fast.len(), "same points survive on both paths");
    for (e, f) in exact.iter().zip(&fast) {
        assert_eq!(e.vdd, f.vdd);
        close(
            f.frequency.hertz(),
            e.frequency.hertz(),
            &format!("frontier frequency at {}", e.vdd),
        );
    }
}

#[test]
fn frontier_may_return_fewer_points_than_requested() {
    // The omitted-point contract: dim light through an SC regulator leaves
    // high-voltage grid points unsustainable, so the result is shorter
    // than `n` — and every surviving point is genuinely sustainable and in
    // increasing-voltage order.
    let cpu = Microprocessor::paper_65nm();
    let sc = ScRegulator::paper_65nm();
    let cell = SolarCell::kxob22(Irradiance::new(0.3).unwrap());
    let n = 33;
    let points = frontier::sustainable_frontier(&cell, &sc, &cpu, n).unwrap();
    assert!(
        !points.is_empty() && points.len() < n,
        "expected a partial frontier, got {}/{n} points",
        points.len()
    );
    for pair in points.windows(2) {
        assert!(pair[0].vdd < pair[1].vdd, "order preserved after omission");
    }
    for p in &points {
        assert!(p.frequency.is_positive());
    }
}
