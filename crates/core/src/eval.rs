//! Model-evaluation abstraction: exact device models and their LUTs,
//! interchangeable inside every solver.
//!
//! The solvers in this crate ([`crate::optimal_voltage`],
//! [`crate::frontier`], [`crate::mep`], [`crate::bypass`]) are generic
//! over two small traits rather than hard-wired to [`SolarCell`] and
//! [`Microprocessor`]. Passing the exact models gives the reference
//! answer; passing a [`PvLut`]/[`CpuLut`] pair gives the same answer to
//! ≤0.1 % from O(1) table lookups — the fast path the scenario sweeps and
//! figure benches run on. One solver body serves both, so the fast path
//! can never diverge from the exact one in anything but interpolation
//! error.
//!
//! The regulator deliberately stays exact everywhere: its conversion math
//! is closed-form (no inner solves to amortize), and the SC topology's
//! ratio cliffs make voltage-axis interpolation hazardous. See
//! `hems_regulator::EfficiencyGrid` for the plotting/sweep-grid use case
//! where tabulated efficiency *is* appropriate.

use hems_cpu::{CpuLut, Microprocessor};
use hems_pv::{Mpp, PvError, PvLut, SolarCell};
use hems_units::{Hertz, Joules, Volts, Watts};

/// LUT hit/miss telemetry on the process-global registry (DESIGN.md
/// §12): a *hit* is a query answered from a table, a *miss* is one
/// that fell back to (or deliberately chose) the exact device model.
/// Counted on the dominant solver queries — PV power-at-voltage and
/// CPU max-frequency — so the sweeps' fast-path/exact-path mix shows
/// up in `metrics` snapshots without instrumenting every accessor.
mod obs {
    use std::sync::LazyLock;

    use hems_obs::{global, Counter};

    pub(super) static PV_HITS: LazyLock<Counter> =
        LazyLock::new(|| global().counter("core.lut.pv_hits"));
    pub(super) static PV_MISSES: LazyLock<Counter> =
        LazyLock::new(|| global().counter("core.lut.pv_misses"));
    pub(super) static CPU_HITS: LazyLock<Counter> =
        LazyLock::new(|| global().counter("core.lut.cpu_hits"));
    pub(super) static CPU_MISSES: LazyLock<Counter> =
        LazyLock::new(|| global().counter("core.lut.cpu_misses"));
}

/// A photovoltaic source the solvers can query: either the exact
/// [`SolarCell`] (implicit single-diode solve per call) or a [`PvLut`]
/// (table lookup per call).
pub trait PvSource {
    /// Terminal power at voltage `v`.
    fn source_power(&self, v: Volts) -> Watts;

    /// The maximum power point.
    ///
    /// # Errors
    ///
    /// Returns [`PvError`] in darkness, where no MPP exists.
    fn source_mpp(&self) -> Result<Mpp, PvError>;

    /// The open-circuit voltage (upper edge of the useful window).
    fn source_voc(&self) -> Volts;
}

impl PvSource for SolarCell {
    fn source_power(&self, v: Volts) -> Watts {
        obs::PV_MISSES.inc();
        self.power_at(v)
    }

    fn source_mpp(&self) -> Result<Mpp, PvError> {
        self.mpp()
    }

    fn source_voc(&self) -> Volts {
        self.open_circuit_voltage()
    }
}

impl PvSource for PvLut {
    fn source_power(&self, v: Volts) -> Watts {
        obs::PV_HITS.inc();
        self.power_at(v)
    }

    fn source_mpp(&self) -> Result<Mpp, PvError> {
        Ok(self.mpp())
    }

    fn source_voc(&self) -> Volts {
        self.open_circuit_voltage()
    }
}

/// A processor model the solvers can query: either the exact
/// [`Microprocessor`] (alpha-power `powf` + exponential leakage per call)
/// or a [`CpuLut`] (table lookups for the transcendental pieces).
///
/// Window bookkeeping (`v_min`, `v_max`, frequency→voltage inversion,
/// the conventional MEP) always comes from the underlying processor via
/// [`CpuEval::processor`] — those are either cheap or solved once, so
/// tabulating them buys nothing.
pub trait CpuEval {
    /// The underlying exact processor (window, models, inversions).
    fn processor(&self) -> &Microprocessor;

    /// Maximum clock at `vdd`, zero outside the window.
    fn fmax(&self, vdd: Volts) -> Hertz;

    /// Leakage power at `vdd` (clamped to the window edge outside it).
    fn leak(&self, vdd: Volts) -> Watts;

    /// Power at maximum speed, `None` outside the window.
    fn pmax(&self, vdd: Volts) -> Option<Watts>;

    /// Energy per cycle at max speed, unbounded outside the window.
    fn ecycle(&self, vdd: Volts) -> Joules;

    /// Dynamic power at `(vdd, f)` — closed-form, identical on both paths.
    fn pdyn(&self, vdd: Volts, f: Hertz) -> Watts {
        self.processor().power_model().dynamic(vdd, f)
    }

    /// Total power at `(vdd, f)`: dynamic + leakage.
    fn ptotal(&self, vdd: Volts, f: Hertz) -> Watts {
        self.pdyn(vdd, f) + self.leak(vdd)
    }
}

impl CpuEval for Microprocessor {
    fn processor(&self) -> &Microprocessor {
        self
    }

    fn fmax(&self, vdd: Volts) -> Hertz {
        obs::CPU_MISSES.inc();
        self.max_frequency(vdd)
    }

    fn leak(&self, vdd: Volts) -> Watts {
        self.power_model().leakage(vdd)
    }

    fn pmax(&self, vdd: Volts) -> Option<Watts> {
        self.power_at_max_speed(vdd).ok()
    }

    fn ecycle(&self, vdd: Volts) -> Joules {
        self.energy_per_cycle(vdd)
    }
}

impl CpuEval for CpuLut {
    fn processor(&self) -> &Microprocessor {
        self.cpu()
    }

    fn fmax(&self, vdd: Volts) -> Hertz {
        obs::CPU_HITS.inc();
        self.max_frequency(vdd)
    }

    fn leak(&self, vdd: Volts) -> Watts {
        self.leakage(vdd)
    }

    fn pmax(&self, vdd: Volts) -> Option<Watts> {
        self.power_at_max_speed(vdd)
    }

    fn ecycle(&self, vdd: Volts) -> Joules {
        self.energy_per_cycle(vdd)
    }
}

/// Batch extension of [`PvSource`]: evaluate a whole slab of candidate
/// voltages per call.
///
/// The default method is a scalar-fallback loop over
/// [`PvSource::source_power`], so any source is batch-callable and every
/// implementation answers lane-for-lane identically to its own scalar
/// path. [`PvLut`] overrides it with the gather-free cursor kernel
/// ([`PvLut::power_at_many`]) — same bits, one knot-array walk instead of
/// a locate per point. Solvers that take `&impl PvSourceBatch` therefore
/// cost nothing extra on exact models and go batch-fast on tables.
pub trait PvSourceBatch: PvSource {
    /// Terminal power in watts for a slab of voltages in volts, one
    /// output lane per input lane.
    ///
    /// # Panics
    ///
    /// Panics when `volts.len() != watts_out.len()`.
    fn source_power_many(&self, volts: &[f64], watts_out: &mut [f64]) {
        assert_eq!(
            volts.len(),
            watts_out.len(),
            "source_power_many requires equally sized input and output slabs"
        );
        for (o, &v) in watts_out.iter_mut().zip(volts) {
            *o = self.source_power(Volts::new(v)).watts();
        }
    }
}

impl PvSourceBatch for SolarCell {}

impl PvSourceBatch for PvLut {
    fn source_power_many(&self, volts: &[f64], watts_out: &mut [f64]) {
        obs::PV_HITS.add(volts.len() as u64);
        self.power_at_many(volts, watts_out);
    }
}

/// Batch extension of [`CpuEval`]: evaluate slabs of candidate supply
/// voltages per call.
///
/// Same contract as [`PvSourceBatch`]: the defaults are scalar-fallback
/// loops (any [`CpuEval`] is batch-callable, lane-identical to its scalar
/// path), and [`CpuLut`] overrides them with the cursor kernels.
pub trait CpuEvalBatch: CpuEval {
    /// Maximum clock in hertz per lane, zero outside the window.
    ///
    /// # Panics
    ///
    /// Panics when `vdds.len() != hertz_out.len()`.
    fn fmax_many(&self, vdds: &[f64], hertz_out: &mut [f64]) {
        assert_eq!(
            vdds.len(),
            hertz_out.len(),
            "fmax_many requires equally sized input and output slabs"
        );
        for (o, &v) in hertz_out.iter_mut().zip(vdds) {
            *o = self.fmax(Volts::new(v)).hertz();
        }
    }

    /// Leakage power in watts per lane (window-edge clamped).
    ///
    /// # Panics
    ///
    /// Panics when `vdds.len() != watts_out.len()`.
    fn leak_many(&self, vdds: &[f64], watts_out: &mut [f64]) {
        assert_eq!(
            vdds.len(),
            watts_out.len(),
            "leak_many requires equally sized input and output slabs"
        );
        for (o, &v) in watts_out.iter_mut().zip(vdds) {
            *o = self.leak(Volts::new(v)).watts();
        }
    }

    /// Total power in watts for parallel `(vdd, f)` lanes: dynamic +
    /// leakage, no window check (mirrors [`CpuEval::ptotal`]).
    ///
    /// # Panics
    ///
    /// Panics when the three slabs differ in length.
    fn ptotal_many(&self, vdds: &[f64], freqs: &[f64], watts_out: &mut [f64]) {
        assert_eq!(
            vdds.len(),
            freqs.len(),
            "ptotal_many requires equally sized vdd and frequency slabs"
        );
        assert_eq!(
            vdds.len(),
            watts_out.len(),
            "ptotal_many requires equally sized input and output slabs"
        );
        for ((o, &v), &f) in watts_out.iter_mut().zip(vdds).zip(freqs) {
            *o = self.ptotal(Volts::new(v), Hertz::new(f)).watts();
        }
    }

    /// Energy per cycle in joules per lane (max-speed convention),
    /// infinite outside the window.
    ///
    /// # Panics
    ///
    /// Panics when `vdds.len() != joules_out.len()`.
    fn ecycle_many(&self, vdds: &[f64], joules_out: &mut [f64]) {
        assert_eq!(
            vdds.len(),
            joules_out.len(),
            "ecycle_many requires equally sized input and output slabs"
        );
        for (o, &v) in joules_out.iter_mut().zip(vdds) {
            *o = self.ecycle(Volts::new(v)).joules();
        }
    }
}

impl CpuEvalBatch for Microprocessor {}

impl CpuEvalBatch for CpuLut {
    fn fmax_many(&self, vdds: &[f64], hertz_out: &mut [f64]) {
        obs::CPU_HITS.add(vdds.len() as u64);
        self.max_frequency_many(vdds, hertz_out);
    }

    fn leak_many(&self, vdds: &[f64], watts_out: &mut [f64]) {
        self.leakage_many(vdds, watts_out);
    }

    fn ptotal_many(&self, vdds: &[f64], freqs: &[f64], watts_out: &mut [f64]) {
        assert_eq!(
            vdds.len(),
            watts_out.len(),
            "ptotal_many requires equally sized input and output slabs"
        );
        self.total_power_many(vdds, freqs, watts_out);
    }

    fn ecycle_many(&self, vdds: &[f64], joules_out: &mut [f64]) {
        self.energy_per_cycle_many(vdds, joules_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_pv::Irradiance;

    #[test]
    fn exact_and_lut_pv_agree_through_the_trait() {
        let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        let lut = PvLut::build_default(cell.clone()).unwrap();
        let v = Volts::new(0.9);
        let exact = PvSource::source_power(&cell, v).watts();
        let fast = PvSource::source_power(&lut, v).watts();
        assert!((fast - exact).abs() <= 1e-3 * exact);
        assert_eq!(PvSource::source_voc(&lut), PvSource::source_voc(&cell));
    }

    /// Deterministic xorshift64* stream for seeded differential tests.
    fn seeded(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        let mut state = seed.max(1);
        let mut vs: Vec<f64> = (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let u =
                    (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
                lo + u * (hi - lo)
            })
            .collect();
        vs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vs
    }

    #[test]
    fn batch_defaults_match_scalar_lane_for_lane() {
        // Exact models run the scalar-fallback defaults; the slab must
        // reproduce the per-point calls to the bit.
        let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        let vs = seeded(7, 65, 0.0, cell.open_circuit_voltage().volts());
        let mut out = vec![0.0; vs.len()];
        cell.source_power_many(&vs, &mut out);
        for (&v, &p) in vs.iter().zip(&out) {
            assert_eq!(
                p.to_bits(),
                cell.source_power(Volts::new(v)).watts().to_bits()
            );
        }

        let cpu = Microprocessor::paper_65nm();
        let vdds = seeded(11, 65, 0.4, 1.05);
        let freqs: Vec<f64> = vdds.iter().map(|v| v * 4e8).collect();
        let mut f_out = vec![0.0; vdds.len()];
        let mut l_out = vec![0.0; vdds.len()];
        let mut p_out = vec![0.0; vdds.len()];
        let mut e_out = vec![0.0; vdds.len()];
        cpu.fmax_many(&vdds, &mut f_out);
        cpu.leak_many(&vdds, &mut l_out);
        cpu.ptotal_many(&vdds, &freqs, &mut p_out);
        cpu.ecycle_many(&vdds, &mut e_out);
        for (k, &v) in vdds.iter().enumerate() {
            let vdd = Volts::new(v);
            assert_eq!(f_out[k].to_bits(), cpu.fmax(vdd).hertz().to_bits());
            assert_eq!(l_out[k].to_bits(), cpu.leak(vdd).watts().to_bits());
            assert_eq!(
                p_out[k].to_bits(),
                cpu.ptotal(vdd, Hertz::new(freqs[k])).watts().to_bits()
            );
            assert_eq!(e_out[k].to_bits(), cpu.ecycle(vdd).joules().to_bits());
        }
    }

    #[test]
    fn lut_batch_overrides_match_their_scalar_trait_path() {
        let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        let pv = PvLut::build_default(cell).unwrap();
        let vs = seeded(13, 129, -0.1, pv.open_circuit_voltage().volts() + 0.1);
        let mut out = vec![0.0; vs.len()];
        pv.source_power_many(&vs, &mut out);
        for (&v, &p) in vs.iter().zip(&out) {
            assert_eq!(
                p.to_bits(),
                pv.source_power(Volts::new(v)).watts().to_bits()
            );
        }

        let lut = CpuLut::build_default(Microprocessor::paper_65nm());
        let vdds = seeded(17, 129, 0.3, 1.2);
        let freqs: Vec<f64> = vdds.iter().map(|v| v * 4e8).collect();
        let mut f_out = vec![0.0; vdds.len()];
        let mut p_out = vec![0.0; vdds.len()];
        let mut e_out = vec![0.0; vdds.len()];
        lut.fmax_many(&vdds, &mut f_out);
        lut.ptotal_many(&vdds, &freqs, &mut p_out);
        lut.ecycle_many(&vdds, &mut e_out);
        for (k, &v) in vdds.iter().enumerate() {
            let vdd = Volts::new(v);
            assert_eq!(f_out[k].to_bits(), lut.fmax(vdd).hertz().to_bits());
            assert_eq!(
                p_out[k].to_bits(),
                lut.ptotal(vdd, Hertz::new(freqs[k])).watts().to_bits()
            );
            assert_eq!(e_out[k].to_bits(), lut.ecycle(vdd).joules().to_bits());
        }
    }

    #[test]
    fn exact_and_lut_cpu_agree_through_the_trait() {
        let cpu = Microprocessor::paper_65nm();
        let lut = CpuLut::build_default(cpu.clone());
        let v = Volts::new(0.6);
        let f = CpuEval::fmax(&cpu, v);
        assert!((CpuEval::fmax(&lut, v).hertz() - f.hertz()).abs() <= 1e-3 * f.hertz());
        let p = CpuEval::ptotal(&cpu, v, f * 0.5).watts();
        let pf = CpuEval::ptotal(&lut, v, f * 0.5).watts();
        assert!((pf - p).abs() <= 1e-3 * p);
        assert!(CpuEval::pmax(&cpu, Volts::new(0.2)).is_none());
        assert!(CpuEval::pmax(&lut, Volts::new(0.2)).is_none());
    }
}
