//! Model-evaluation abstraction: exact device models and their LUTs,
//! interchangeable inside every solver.
//!
//! The solvers in this crate ([`crate::optimal_voltage`],
//! [`crate::frontier`], [`crate::mep`], [`crate::bypass`]) are generic
//! over two small traits rather than hard-wired to [`SolarCell`] and
//! [`Microprocessor`]. Passing the exact models gives the reference
//! answer; passing a [`PvLut`]/[`CpuLut`] pair gives the same answer to
//! ≤0.1 % from O(1) table lookups — the fast path the scenario sweeps and
//! figure benches run on. One solver body serves both, so the fast path
//! can never diverge from the exact one in anything but interpolation
//! error.
//!
//! The regulator deliberately stays exact everywhere: its conversion math
//! is closed-form (no inner solves to amortize), and the SC topology's
//! ratio cliffs make voltage-axis interpolation hazardous. See
//! `hems_regulator::EfficiencyGrid` for the plotting/sweep-grid use case
//! where tabulated efficiency *is* appropriate.

use hems_cpu::{CpuLut, Microprocessor};
use hems_pv::{Mpp, PvError, PvLut, SolarCell};
use hems_units::{Hertz, Joules, Volts, Watts};

/// LUT hit/miss telemetry on the process-global registry (DESIGN.md
/// §12): a *hit* is a query answered from a table, a *miss* is one
/// that fell back to (or deliberately chose) the exact device model.
/// Counted on the dominant solver queries — PV power-at-voltage and
/// CPU max-frequency — so the sweeps' fast-path/exact-path mix shows
/// up in `metrics` snapshots without instrumenting every accessor.
mod obs {
    use std::sync::LazyLock;

    use hems_obs::{global, Counter};

    pub(super) static PV_HITS: LazyLock<Counter> =
        LazyLock::new(|| global().counter("core.lut.pv_hits"));
    pub(super) static PV_MISSES: LazyLock<Counter> =
        LazyLock::new(|| global().counter("core.lut.pv_misses"));
    pub(super) static CPU_HITS: LazyLock<Counter> =
        LazyLock::new(|| global().counter("core.lut.cpu_hits"));
    pub(super) static CPU_MISSES: LazyLock<Counter> =
        LazyLock::new(|| global().counter("core.lut.cpu_misses"));
}

/// A photovoltaic source the solvers can query: either the exact
/// [`SolarCell`] (implicit single-diode solve per call) or a [`PvLut`]
/// (table lookup per call).
pub trait PvSource {
    /// Terminal power at voltage `v`.
    fn source_power(&self, v: Volts) -> Watts;

    /// The maximum power point.
    ///
    /// # Errors
    ///
    /// Returns [`PvError`] in darkness, where no MPP exists.
    fn source_mpp(&self) -> Result<Mpp, PvError>;

    /// The open-circuit voltage (upper edge of the useful window).
    fn source_voc(&self) -> Volts;
}

impl PvSource for SolarCell {
    fn source_power(&self, v: Volts) -> Watts {
        obs::PV_MISSES.inc();
        self.power_at(v)
    }

    fn source_mpp(&self) -> Result<Mpp, PvError> {
        self.mpp()
    }

    fn source_voc(&self) -> Volts {
        self.open_circuit_voltage()
    }
}

impl PvSource for PvLut {
    fn source_power(&self, v: Volts) -> Watts {
        obs::PV_HITS.inc();
        self.power_at(v)
    }

    fn source_mpp(&self) -> Result<Mpp, PvError> {
        Ok(self.mpp())
    }

    fn source_voc(&self) -> Volts {
        self.open_circuit_voltage()
    }
}

/// A processor model the solvers can query: either the exact
/// [`Microprocessor`] (alpha-power `powf` + exponential leakage per call)
/// or a [`CpuLut`] (table lookups for the transcendental pieces).
///
/// Window bookkeeping (`v_min`, `v_max`, frequency→voltage inversion,
/// the conventional MEP) always comes from the underlying processor via
/// [`CpuEval::processor`] — those are either cheap or solved once, so
/// tabulating them buys nothing.
pub trait CpuEval {
    /// The underlying exact processor (window, models, inversions).
    fn processor(&self) -> &Microprocessor;

    /// Maximum clock at `vdd`, zero outside the window.
    fn fmax(&self, vdd: Volts) -> Hertz;

    /// Leakage power at `vdd` (clamped to the window edge outside it).
    fn leak(&self, vdd: Volts) -> Watts;

    /// Power at maximum speed, `None` outside the window.
    fn pmax(&self, vdd: Volts) -> Option<Watts>;

    /// Energy per cycle at max speed, unbounded outside the window.
    fn ecycle(&self, vdd: Volts) -> Joules;

    /// Dynamic power at `(vdd, f)` — closed-form, identical on both paths.
    fn pdyn(&self, vdd: Volts, f: Hertz) -> Watts {
        self.processor().power_model().dynamic(vdd, f)
    }

    /// Total power at `(vdd, f)`: dynamic + leakage.
    fn ptotal(&self, vdd: Volts, f: Hertz) -> Watts {
        self.pdyn(vdd, f) + self.leak(vdd)
    }
}

impl CpuEval for Microprocessor {
    fn processor(&self) -> &Microprocessor {
        self
    }

    fn fmax(&self, vdd: Volts) -> Hertz {
        obs::CPU_MISSES.inc();
        self.max_frequency(vdd)
    }

    fn leak(&self, vdd: Volts) -> Watts {
        self.power_model().leakage(vdd)
    }

    fn pmax(&self, vdd: Volts) -> Option<Watts> {
        self.power_at_max_speed(vdd).ok()
    }

    fn ecycle(&self, vdd: Volts) -> Joules {
        self.energy_per_cycle(vdd)
    }
}

impl CpuEval for CpuLut {
    fn processor(&self) -> &Microprocessor {
        self.cpu()
    }

    fn fmax(&self, vdd: Volts) -> Hertz {
        obs::CPU_HITS.inc();
        self.max_frequency(vdd)
    }

    fn leak(&self, vdd: Volts) -> Watts {
        self.leakage(vdd)
    }

    fn pmax(&self, vdd: Volts) -> Option<Watts> {
        self.power_at_max_speed(vdd)
    }

    fn ecycle(&self, vdd: Volts) -> Joules {
        self.energy_per_cycle(vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_pv::Irradiance;

    #[test]
    fn exact_and_lut_pv_agree_through_the_trait() {
        let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        let lut = PvLut::build_default(cell.clone()).unwrap();
        let v = Volts::new(0.9);
        let exact = PvSource::source_power(&cell, v).watts();
        let fast = PvSource::source_power(&lut, v).watts();
        assert!((fast - exact).abs() <= 1e-3 * exact);
        assert_eq!(PvSource::source_voc(&lut), PvSource::source_voc(&cell));
    }

    #[test]
    fn exact_and_lut_cpu_agree_through_the_trait() {
        let cpu = Microprocessor::paper_65nm();
        let lut = CpuLut::build_default(cpu.clone());
        let v = Volts::new(0.6);
        let f = CpuEval::fmax(&cpu, v);
        assert!((CpuEval::fmax(&lut, v).hertz() - f.hertz()).abs() <= 1e-3 * f.hertz());
        let p = CpuEval::ptotal(&cpu, v, f * 0.5).watts();
        let pf = CpuEval::ptotal(&lut, v, f * 0.5).watts();
        assert!((pf - p).abs() <= 1e-3 * p);
        assert!(CpuEval::pmax(&cpu, Volts::new(0.2)).is_none());
        assert!(CpuEval::pmax(&lut, Volts::new(0.2)).is_none());
    }
}
