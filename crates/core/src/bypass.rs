//! The low-light bypass policy (paper Section IV-B, Fig. 7a).
//!
//! Regulated MPP operation extracts the most from the cell — when the
//! regulator is efficient. At low light the processor load shrinks, the
//! converter's fixed losses loom large, and "the output power from
//! regulator becomes ~20 % less than delivered from a raw solar cell";
//! below that point the right move is to *bypass* the regulator and ride
//! the cell directly. This module quantifies the comparison and finds the
//! crossover light level.

use crate::{operating_point, optimal_voltage, CoreError, CpuEval};
use hems_pv::{Irradiance, SolarCell, SolarCellModel};
use hems_regulator::Regulator;
use hems_units::Watts;

/// Deliverable processor power under each path at one light level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathComparison {
    /// The light level compared.
    pub irradiance: Irradiance,
    /// Power the processor receives through the regulator at the optimal
    /// regulated plan (zero when infeasible).
    pub regulated: Watts,
    /// Power the processor receives riding the cell directly (zero when
    /// infeasible).
    pub bypassed: Watts,
}

impl PathComparison {
    /// `true` when bypassing beats regulation at this light level.
    pub fn bypass_wins(&self) -> bool {
        self.bypassed > self.regulated
    }
}

/// The crossover-finding policy.
#[derive(Debug, Clone)]
pub struct BypassPolicy {
    model: SolarCellModel,
    crossover: Irradiance,
}

impl BypassPolicy {
    /// Compares the two paths at one light level.
    ///
    /// Infeasible paths contribute zero deliverable power rather than an
    /// error, so the comparison is total.
    ///
    /// Generic over [`CpuEval`] (exact processor or `CpuLut`). The cell
    /// stays exact on purpose: each light level is visited once, so a
    /// per-irradiance `PvLut` rebuild would cost more than it saves.
    pub fn compare_at(
        model: &SolarCellModel,
        regulator: &dyn Regulator,
        cpu: &impl CpuEval,
        irradiance: Irradiance,
    ) -> PathComparison {
        let cell = SolarCell::new(model.clone(), irradiance);
        let regulated = optimal_voltage::optimal_regulated_plan(&cell, regulator, cpu)
            .map(|p| p.p_cpu)
            .unwrap_or(Watts::ZERO);
        let bypassed = operating_point::unregulated_point(&cell, cpu)
            .map(|p| p.power)
            .unwrap_or(Watts::ZERO);
        PathComparison {
            irradiance,
            regulated,
            bypassed,
        }
    }

    /// Builds a policy by locating the crossover light level below which
    /// bypass wins.
    ///
    /// Scans a 128-point grid over `[g_lo, g_hi]` (in very dim light *both*
    /// paths deliver zero, so a simple bisection on "bypass wins" has no
    /// bracketing sign change), finds the brightest grid cell where bypass
    /// still wins, then refines the boundary inside that cell.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when bypass never wins (or always
    /// wins) on the range — no crossover to calibrate.
    pub fn calibrate(
        model: &SolarCellModel,
        regulator: &dyn Regulator,
        cpu: &impl CpuEval,
        g_lo: Irradiance,
        g_hi: Irradiance,
    ) -> Result<BypassPolicy, CoreError> {
        let wins_at = |g: f64| {
            // Grid points interpolate between two valid irradiances, so g
            // is in range; the clamp guards endpoint round-off, and a
            // (theoretically unreachable) construction failure reads as
            // "bypass does not win" rather than a panic.
            Irradiance::new(g.clamp(0.0, 2.0))
                .map(|g| Self::compare_at(model, regulator, cpu, g).bypass_wins())
                .unwrap_or(false)
        };
        const GRID: usize = 128;
        let span = g_hi.fraction() - g_lo.fraction();
        let at = |i: usize| g_lo.fraction() + span * i as f64 / (GRID - 1) as f64;
        let last_win = (0..GRID).rev().find(|&i| wins_at(at(i)));
        let Some(last_win) = last_win else {
            return Err(CoreError::infeasible(
                "bypass crossover",
                format!("bypass never wins on [{g_lo}, {g_hi}]"),
            ));
        };
        if last_win == GRID - 1 {
            return Err(CoreError::infeasible(
                "bypass crossover",
                format!("bypass wins across all of [{g_lo}, {g_hi}]"),
            ));
        }
        let (mut lo, mut hi) = (at(last_win), at(last_win + 1));
        while hi - lo > 1e-3 {
            let mid = 0.5 * (lo + hi);
            if wins_at(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let crossover = Irradiance::new((0.5 * (lo + hi)).clamp(0.0, 2.0))
            .map_err(|e| CoreError::infeasible("bypass crossover", e.to_string()))?;
        Ok(BypassPolicy {
            model: model.clone(),
            crossover,
        })
    }

    /// The light level below which bypass wins.
    pub fn crossover(&self) -> Irradiance {
        self.crossover
    }

    /// `true` when the policy recommends bypassing at light level `g`.
    pub fn should_bypass(&self, g: Irradiance) -> bool {
        g < self.crossover
    }

    /// The calibrated cell model.
    pub fn model(&self) -> &SolarCellModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_cpu::Microprocessor;
    use hems_regulator::ScRegulator;

    fn fixtures() -> (SolarCellModel, ScRegulator, Microprocessor) {
        (
            SolarCellModel::kxob22(),
            ScRegulator::paper_65nm(),
            Microprocessor::paper_65nm(),
        )
    }

    #[test]
    fn regulation_wins_at_full_and_half_sun() {
        // Paper Fig. 7a: 30~40% more power at 100% and 50% light.
        let (model, sc, cpu) = fixtures();
        for g in [Irradiance::FULL_SUN, Irradiance::HALF_SUN] {
            let cmp = BypassPolicy::compare_at(&model, &sc, &cpu, g);
            assert!(!cmp.bypass_wins(), "{g}: bypass should lose");
            let gain = cmp.regulated / cmp.bypassed;
            assert!(
                (1.1..1.6).contains(&gain),
                "{g}: regulated/bypassed = {gain:.2} (paper: 1.3-1.4)"
            );
        }
    }

    #[test]
    fn bypass_wins_at_quarter_sun() {
        // Paper Fig. 7a: "under 25%, the output power from regulator
        // becomes ~20% less than delivered from a raw solar cell".
        let (model, sc, cpu) = fixtures();
        let cmp = BypassPolicy::compare_at(&model, &sc, &cpu, Irradiance::QUARTER_SUN);
        assert!(cmp.bypass_wins(), "bypass should win at quarter sun");
        // Our lumped SC loss model penalizes light load somewhat harder
        // than the paper's silicon (~20% deficit); the *shape* — bypass
        // winning below ~25% light — is the reproduced result.
        let deficit = 1.0 - cmp.regulated / cmp.bypassed;
        assert!(
            (0.05..0.65).contains(&deficit),
            "regulated deficit {:.1}% (paper ~20%)",
            deficit * 100.0
        );
    }

    #[test]
    fn crossover_sits_between_quarter_and_half_sun() {
        let (model, sc, cpu) = fixtures();
        let policy = BypassPolicy::calibrate(
            &model,
            &sc,
            &cpu,
            Irradiance::new(0.05).unwrap(),
            Irradiance::FULL_SUN,
        )
        .unwrap();
        let g = policy.crossover();
        assert!(
            g > Irradiance::QUARTER_SUN && g < Irradiance::new(0.6).unwrap(),
            "crossover at {g}"
        );
        assert!(policy.should_bypass(Irradiance::QUARTER_SUN));
        assert!(!policy.should_bypass(Irradiance::FULL_SUN));
    }

    #[test]
    fn degenerate_range_has_no_crossover() {
        let (model, sc, cpu) = fixtures();
        // Entirely in the bright regime: regulation wins everywhere.
        assert!(BypassPolicy::calibrate(
            &model,
            &sc,
            &cpu,
            Irradiance::new(0.8).unwrap(),
            Irradiance::FULL_SUN,
        )
        .is_err());
    }

    #[test]
    fn darkness_compares_as_zero_vs_zero() {
        let (model, sc, cpu) = fixtures();
        let cmp = BypassPolicy::compare_at(&model, &sc, &cpu, Irradiance::DARK);
        assert_eq!(cmp.regulated, Watts::ZERO);
        assert_eq!(cmp.bypassed, Watts::ZERO);
        assert!(!cmp.bypass_wins());
    }
}
