use hems_units::SolveError;
use std::error::Error;
use std::fmt;

/// Errors raised by the holistic optimizers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No feasible operating point exists under the given constraints
    /// (e.g. the harvester cannot power the processor at any voltage).
    Infeasible {
        /// What was being optimized.
        what: &'static str,
        /// Why no solution exists.
        reason: String,
    },
    /// An underlying numeric solver failed.
    Solver(SolveError),
    /// A sub-model rejected a query.
    Component {
        /// Which component.
        which: &'static str,
        /// Its error message.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Infeasible { what, reason } => {
                write!(f, "{what} has no feasible solution: {reason}")
            }
            CoreError::Solver(e) => write!(f, "optimizer solver failed: {e}"),
            CoreError::Component { which, message } => {
                write!(f, "{which} rejected the query: {message}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for CoreError {
    fn from(e: SolveError) -> Self {
        CoreError::Solver(e)
    }
}

impl CoreError {
    /// Wraps a component error with its origin.
    pub fn component(which: &'static str, err: impl fmt::Display) -> CoreError {
        CoreError::Component {
            which,
            message: err.to_string(),
        }
    }

    /// An infeasibility with context.
    pub fn infeasible(what: &'static str, reason: impl Into<String>) -> CoreError {
        CoreError::Infeasible {
            what,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::infeasible("optimal voltage", "dark");
        assert!(e.to_string().contains("dark"));
        assert!(e.source().is_none());
        let e = CoreError::from(SolveError::BadBracket { lo: 1.0, hi: 0.0 });
        assert!(e.source().is_some());
        let e = CoreError::component("regulator", "nope");
        assert!(e.to_string().contains("regulator"));
    }
}
