//! Figure-level aggregation helpers.
//!
//! These functions assemble exactly the comparisons the paper's evaluation
//! figures plot, so the bench harness (and EXPERIMENTS.md) can print them
//! as rows without re-deriving the physics.

use crate::{
    bypass::PathComparison, mep, optimal_voltage, BypassPolicy, CoreError, MepComparison,
    RegulatedPlan, UnregulatedPoint,
};
use hems_cpu::Microprocessor;
use hems_pv::{Irradiance, SolarCell, SolarCellModel};
use hems_regulator::{AnyRegulator, Regulator, RegulatorKind};

/// Fig. 6: the unregulated point vs each regulator's optimal plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Analysis {
    /// The light level analysed.
    pub irradiance: Irradiance,
    /// The unregulated baseline (Fig. 6a intersection).
    pub unregulated: UnregulatedPoint,
    /// Each regulator's optimal plan with its gains (Fig. 6b).
    pub plans: Vec<(RegulatorKind, RegulatedPlan)>,
}

impl Fig6Analysis {
    /// The plan for a given regulator kind, if present.
    pub fn plan(&self, kind: RegulatorKind) -> Option<&RegulatedPlan> {
        self.plans.iter().find(|(k, _)| *k == kind).map(|(_, p)| p)
    }
}

/// Computes Fig. 6 for the paper's regulator lineup at one light level.
///
/// # Errors
///
/// Propagates infeasibility of the unregulated baseline (e.g. darkness);
/// individual regulators that are infeasible are skipped.
pub fn fig6(cell: &SolarCell, cpu: &Microprocessor) -> Result<Fig6Analysis, CoreError> {
    let unregulated = optimal_voltage::unregulated_baseline(cell, cpu)?;
    let mut plans = Vec::new();
    for regulator in AnyRegulator::paper_lineup() {
        if regulator.kind() == RegulatorKind::Bypass {
            continue;
        }
        if let Ok(plan) = optimal_voltage::optimal_regulated_plan(cell, &regulator, cpu) {
            plans.push((regulator.kind(), plan));
        }
    }
    Ok(Fig6Analysis {
        irradiance: cell.irradiance(),
        unregulated,
        plans,
    })
}

/// Fig. 7a: regulated-vs-bypass deliverable power across light levels.
pub fn fig7a(
    model: &SolarCellModel,
    regulator: &dyn Regulator,
    cpu: &Microprocessor,
    lights: &[Irradiance],
) -> Vec<PathComparison> {
    lights
        .iter()
        .map(|g| BypassPolicy::compare_at(model, regulator, cpu, *g))
        .collect()
}

/// Fig. 7b / Fig. 11a: conventional-vs-holistic MEP for each regulator.
pub fn fig7b(cpu: &Microprocessor, v_in: hems_units::Volts) -> Vec<(RegulatorKind, MepComparison)> {
    AnyRegulator::paper_lineup()
        .into_iter()
        .filter(|r| r.kind() != RegulatorKind::Bypass)
        .filter_map(|r| mep::compare_meps(cpu, &r, v_in).ok().map(|c| (r.kind(), c)))
        .collect()
}

/// The headline in-text numbers of Sections I and VIII, derived from the
/// other analyses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineNumbers {
    /// Extra power extracted by the holistic SC plan vs unregulated
    /// (paper: ~31 %).
    pub sc_power_gain: f64,
    /// Speedup of the holistic SC plan vs unregulated (paper: ~18 %).
    pub sc_speedup: f64,
    /// Energy saved at the holistic MEP vs the conventional MEP
    /// (paper: up to ~31 %).
    pub mep_savings: f64,
    /// Upward shift of the MEP voltage (paper: up to ~0.1 V).
    pub mep_shift_volts: f64,
}

/// Derives the headline numbers at full sun with the SC regulator.
///
/// # Errors
///
/// Propagates infeasibility from the underlying analyses.
pub fn headline_numbers(cpu: &Microprocessor) -> Result<HeadlineNumbers, CoreError> {
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    let fig6 = fig6(&cell, cpu)?;
    let sc_plan = fig6
        .plan(RegulatorKind::SwitchedCapacitor)
        .ok_or_else(|| CoreError::infeasible("headline numbers", "no SC plan"))?;
    let sc = hems_regulator::ScRegulator::paper_65nm();
    let mpp_v = cell
        .mpp()
        .map_err(|e| CoreError::component("solar cell", e))?
        .voltage;
    let mep_cmp = mep::compare_meps(cpu, &sc, mpp_v)?;
    Ok(HeadlineNumbers {
        sc_power_gain: sc_plan.power_gain_vs(&fig6.unregulated) - 1.0,
        sc_speedup: sc_plan.speedup_vs(&fig6.unregulated) - 1.0,
        mep_savings: mep_cmp.energy_savings(),
        mep_shift_volts: mep_cmp.voltage_shift().volts(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_contains_the_three_regulators() {
        let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        let cpu = Microprocessor::paper_65nm();
        let analysis = fig6(&cell, &cpu).unwrap();
        assert_eq!(analysis.plans.len(), 3);
        assert!(analysis.plan(RegulatorKind::SwitchedCapacitor).is_some());
        assert!(analysis.plan(RegulatorKind::Buck).is_some());
        assert!(analysis.plan(RegulatorKind::Ldo).is_some());
        assert!(analysis.plan(RegulatorKind::Bypass).is_none());
    }

    #[test]
    fn fig7a_rows_cover_requested_lights() {
        let model = SolarCellModel::kxob22();
        let cpu = Microprocessor::paper_65nm();
        let sc = hems_regulator::ScRegulator::paper_65nm();
        let rows = fig7a(
            &model,
            &sc,
            &cpu,
            &[
                Irradiance::FULL_SUN,
                Irradiance::HALF_SUN,
                Irradiance::QUARTER_SUN,
            ],
        );
        assert_eq!(rows.len(), 3);
        assert!(!rows[0].bypass_wins());
        assert!(rows[2].bypass_wins());
    }

    #[test]
    fn fig7b_shows_sc_and_buck_shifting() {
        let cpu = Microprocessor::paper_65nm();
        let rows = fig7b(&cpu, hems_units::Volts::new(1.1));
        assert!(rows.len() >= 2);
        for (kind, cmp) in &rows {
            if matches!(kind, RegulatorKind::SwitchedCapacitor | RegulatorKind::Buck) {
                assert!(
                    cmp.voltage_shift().volts() > 0.02,
                    "{kind}: shift {}",
                    cmp.voltage_shift()
                );
            }
        }
    }

    #[test]
    fn headline_numbers_land_in_paper_bands() {
        let cpu = Microprocessor::paper_65nm();
        let h = headline_numbers(&cpu).unwrap();
        assert!(
            (0.15..0.45).contains(&h.sc_power_gain),
            "power gain {}",
            h.sc_power_gain
        );
        assert!(
            (0.05..0.35).contains(&h.sc_speedup),
            "speedup {}",
            h.sc_speedup
        );
        assert!(
            (0.15..0.40).contains(&h.mep_savings),
            "savings {}",
            h.mep_savings
        );
        assert!(
            (0.03..0.12).contains(&h.mep_shift_volts),
            "shift {}",
            h.mep_shift_volts
        );
    }
}
