//! Holistic energy management — the paper's contribution.
//!
//! Everything below Section III of the paper lives in this crate, built on
//! the substrate crates (`hems-pv`, `hems-regulator`, `hems-cpu`,
//! `hems-storage`, `hems-mppt`, `hems-sim`):
//!
//! * [`operating_point`] — the *unregulated* operating point: where the
//!   processor's max-speed load line intersects the solar I-V curve
//!   (Fig. 6a's "Maximum Performance (unregulated)").
//! * [`optimal_voltage`] — eqs. 1–4: the supply voltage maximizing clock
//!   speed subject to the solar maximum-power constraint *including* the
//!   regulator's efficiency profile (Fig. 6b: +31 % power, +18 % speed
//!   with the SC regulator).
//! * [`mep`] — eq. 5: the minimum-energy point *of the whole system*,
//!   `E_sys(V) = E_cyc(V) / η(V)`, which sits ≈ 0.1 V above the
//!   conventional MEP and saves up to ≈ 31 % (Fig. 7b).
//! * [`bypass`] — Section IV-B: below ≈ 25 % light the regulator's
//!   light-load losses exceed the MPP benefit and bypassing wins (Fig. 7a).
//! * [`deadline`] — eqs. 8–11: energy required vs energy available as a
//!   function of completion time; their intersection is the achievable
//!   deadline (Fig. 9a).
//! * [`sprint`] — eqs. 12–13: the "sprinting" schedule (slow first, fast
//!   later) that keeps the solar node at a more productive voltage and
//!   absorbs ≈ 10 % more energy (Fig. 9b).
//! * [`controller`] — the [`HolisticController`]: the runtime policy tying
//!   time-based MPP tracking, DVFS, low-light bypass and sprinting together
//!   inside the simulator (Fig. 11b).
//! * [`analysis`] — figure-level aggregation helpers the benches print.
//! * [`eval`] — the [`PvSource`]/[`CpuEval`] abstraction that lets every
//!   solver above run on either the exact device models or their LUTs
//!   (`hems_pv::PvLut`, `hems_cpu::CpuLut`) without duplicated code.
//! * [`cachekey`] — total, stable 64-bit cache keys over system
//!   configurations and policies, the identity a plan cache (the
//!   `hems-serve` service) indexes on.

// `!(a < b)` is used deliberately throughout this workspace: unlike
// `a >= b` it is `true` when either operand is NaN, which is exactly the
// reject-by-default behaviour the validation paths want.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bypass;
pub mod cachekey;
pub mod controller;
pub mod deadline;
mod error;
pub mod eval;
pub mod frontier;
pub mod mep;
pub mod operating_point;
pub mod optimal_voltage;
pub mod sprint;

pub use bypass::BypassPolicy;
pub use cachekey::{Canonical, KeyHasher};
pub use controller::{HolisticConfig, HolisticController, Mode};
pub use deadline::DeadlinePlan;
pub use error::CoreError;
pub use eval::{CpuEval, CpuEvalBatch, PvSource, PvSourceBatch};
pub use frontier::FrontierPoint;
pub use mep::{MepComparison, SystemMep};
pub use operating_point::UnregulatedPoint;
pub use optimal_voltage::RegulatedPlan;
pub use sprint::SprintPlan;
