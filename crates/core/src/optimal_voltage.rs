//! The holistic optimal voltage point (paper Section IV, eqs. 1–4).
//!
//! Maximize clock speed subject to the source constraint: the regulator
//! holds the solar cell at its MPP (extracting `P_mpp`), and the processor
//! may consume at most what survives the regulator:
//!
//! ```text
//! maximize   f_clk(Vdd)
//! subject to P_cpu(Vdd, f_max(Vdd)) / η(V_mpp → Vdd, P_cpu)  ≤  P_mpp
//! ```
//!
//! Because both `f_max` and the drawn power rise monotonically with `Vdd`,
//! the optimum sits exactly on the constraint boundary and bisection finds
//! it. The payoff over the unregulated intersection point is Fig. 6b's
//! "+31 % power, +18 % speed".

use crate::{operating_point, CoreError, CpuEval, PvSource, PvSourceBatch, UnregulatedPoint};
use hems_regulator::Regulator;
use hems_units::{Efficiency, Hertz, Volts, Watts};

/// The solution of eqs. 1–4 for one (cell, regulator, processor) triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegulatedPlan {
    /// The solar-node voltage held by MPP tracking.
    pub v_solar: Volts,
    /// The chosen processor supply voltage.
    pub vdd: Volts,
    /// The achieved clock speed.
    pub frequency: Hertz,
    /// Power delivered into the processor.
    pub p_cpu: Watts,
    /// Power drawn from the solar node (= `P_mpp` on the boundary).
    pub p_in: Watts,
    /// Regulator efficiency at the operating point.
    pub efficiency: Efficiency,
    /// Clock fraction (< 1 when even the minimum voltage over-draws and
    /// the plan must down-clock at `v_min`).
    pub clock_fraction: f64,
}

impl RegulatedPlan {
    /// Speedup of this plan over an unregulated operating point.
    pub fn speedup_vs(&self, unregulated: &UnregulatedPoint) -> f64 {
        self.frequency / unregulated.frequency
    }

    /// Ratio of processor power under this plan vs unregulated.
    pub fn power_gain_vs(&self, unregulated: &UnregulatedPoint) -> f64 {
        self.p_cpu / unregulated.power
    }
}

/// Solves eqs. 1–4: the fastest sustainable operating point through
/// `regulator` with the cell held at its MPP.
///
/// Generic over [`PvSource`]/[`CpuEval`]: pass the exact models for the
/// reference answer or the LUTs (`PvLut`, `CpuLut`) for the fast path.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] in darkness or when the regulator
/// cannot reach the processor window from the MPP voltage, and propagates
/// component errors.
pub fn optimal_regulated_plan(
    cell: &impl PvSource,
    regulator: &dyn Regulator,
    cpu: &impl CpuEval,
) -> Result<RegulatedPlan, CoreError> {
    let mpp = cell
        .source_mpp()
        .map_err(|e| CoreError::component("solar cell", e))?;
    plan_at_rail(mpp.voltage, mpp.power, regulator, cpu)
}

/// One step beyond eqs. 1–4: choose the solar-node voltage *jointly* with
/// the supply voltage.
///
/// The paper's formulation holds the cell at its own MPP and optimizes the
/// processor side; but the regulator's efficiency depends on its input
/// voltage too — most sharply for the SC converter, whose ratio boundaries
/// create efficiency cliffs in `v_in`. Near such a cliff, operating the
/// cell a few tens of millivolts *off* its MPP can buy a whole ratio step
/// of conversion efficiency and net more delivered power. This solver
/// sweeps the solar-node voltage and applies the eqs. 1–4 inner solve at
/// each rail, keeping the fastest plan — the fully holistic optimum the
/// paper's own argument implies.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when no rail voltage yields a feasible
/// plan (e.g. darkness).
pub fn optimal_joint_plan(
    cell: &impl PvSourceBatch,
    regulator: &dyn Regulator,
    cpu: &impl CpuEval,
) -> Result<RegulatedPlan, CoreError> {
    let voc = cell.source_voc();
    if !voc.is_positive() {
        return Err(CoreError::infeasible(
            "optimal joint plan",
            "the cell is dark".to_string(),
        ));
    }
    let mut best: Option<RegulatedPlan> = None;
    const GRID: usize = 96;
    // The rail grid is ascending, so one batch call evaluates the whole
    // P-V curve through the source's gather-free cursor kernel (a LUT
    // walks its knot array exactly once for all 96 rails).
    let mut rail_volts = [0.0; GRID];
    for (i, v) in rail_volts.iter_mut().enumerate() {
        *v = (voc * (0.3 + 0.69 * i as f64 / (GRID - 1) as f64)).volts();
    }
    let mut budgets = [0.0; GRID];
    cell.source_power_many(&rail_volts, &mut budgets);
    // Visit rails in descending-budget order: the incumbent plan becomes
    // near-optimal almost immediately, so the branch-and-bound probe below
    // prunes most of the grid. (The best-frequency rail is not always the
    // max-budget one — SC ratio cliffs — which is why every rail is still
    // probed rather than stopping at the first descent.) The sort is
    // stable, so equal budgets keep their ascending-voltage order.
    let mut rails: Vec<(Volts, Watts)> = rail_volts
        .iter()
        .zip(&budgets)
        .filter_map(|(&v, &p)| (p > 0.0).then_some((Volts::new(v), Watts::new(p))))
        .collect();
    rails.sort_by(|a, b| b.1.watts().total_cmp(&a.1.watts()));
    for (v_solar, budget) in rails {
        // Branch-and-bound: once an incumbent runs at full clock, a rail
        // can only beat it by sustaining full speed at a strictly higher
        // vdd (fmax is monotone in vdd). If the incumbent's own vdd
        // already over-draws this rail's budget — drawn power rises with
        // vdd, the same monotonicity the inner bisection relies on — the
        // constraint boundary here sits at or below it, so one regulator
        // probe replaces the ~20-conversion inner solve.
        if let Some(b) = best.as_ref().filter(|b| b.clock_fraction == 1.0) {
            let (reg_lo, reg_hi) = regulator.output_range(v_solar);
            if cpu.processor().v_max().min(reg_hi) <= b.vdd {
                continue;
            }
            if b.vdd >= cpu.processor().v_min().max(reg_lo) {
                let beats = cpu
                    .pmax(b.vdd)
                    .and_then(|p_cpu| regulator.convert(v_solar, b.vdd, p_cpu).ok())
                    .is_some_and(|c| c.p_in < budget);
                if !beats {
                    continue;
                }
            }
        }
        let Ok(plan) = plan_at_rail(v_solar, budget, regulator, cpu) else {
            continue;
        };
        if best.as_ref().is_none_or(|b| plan.frequency > b.frequency) {
            best = Some(plan);
        }
    }
    best.ok_or_else(|| {
        CoreError::infeasible(
            "optimal joint plan",
            "no rail voltage yields a feasible operating point".to_string(),
        )
    })
}

/// The eqs. 1–4 inner solve at an explicit rail voltage and power budget.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when the regulator cannot reach the
/// processor window from this rail or the budget cannot cover the leakage
/// floor.
pub fn plan_at_rail(
    v_solar: Volts,
    p_mpp: Watts,
    regulator: &dyn Regulator,
    cpu: &impl CpuEval,
) -> Result<RegulatedPlan, CoreError> {
    let (reg_lo, reg_hi) = regulator.output_range(v_solar);
    let lo = cpu.processor().v_min().max(reg_lo);
    let hi = cpu.processor().v_max().min(reg_hi);
    if !(lo < hi) {
        return Err(CoreError::infeasible(
            "optimal regulated plan",
            format!(
                "regulator window [{reg_lo}, {reg_hi}] at rail {v_solar} misses the \
                 processor window [{}, {}]",
                cpu.processor().v_min(),
                cpu.processor().v_max()
            ),
        ));
    }

    // Power drawn from the node at max speed for a candidate vdd; infinite
    // where the operating point is unsupported so bisection avoids it.
    let drawn = |v: f64| -> f64 {
        let vdd = Volts::new(v);
        let Some(p_cpu) = cpu.pmax(vdd) else {
            return f64::INFINITY;
        };
        match regulator.convert(v_solar, vdd, p_cpu) {
            Ok(c) => c.p_in.watts(),
            Err(_) => f64::INFINITY,
        }
    };

    let finish = |vdd: Volts, clock_fraction: f64| -> Result<RegulatedPlan, CoreError> {
        let frequency = cpu.fmax(vdd) * clock_fraction;
        let p_cpu = cpu.ptotal(vdd, frequency);
        let conv = regulator
            .convert(v_solar, vdd, p_cpu)
            .map_err(|e| CoreError::component("regulator", e))?;
        Ok(RegulatedPlan {
            v_solar,
            vdd,
            frequency,
            p_cpu,
            p_in: conv.p_in,
            efficiency: conv.efficiency,
            clock_fraction,
        })
    };

    if drawn(hi.volts()) <= p_mpp.watts() {
        // Even the fastest point is sustainable: run flat out at the top.
        return finish(hi, 1.0);
    }
    if drawn(lo.volts()) > p_mpp.watts() {
        // Even the slowest full-speed point over-draws: down-clock at v_min
        // so that the drawn power meets the budget.
        let vdd = lo;
        let p_leak = cpu.leak(vdd);
        // Find the clock fraction whose drawn power hits p_mpp (monotone).
        let mut lo_f = 0.0;
        let mut hi_f = 1.0;
        while hi_f - lo_f > 1e-6 {
            let mid = 0.5 * (lo_f + hi_f);
            let f = cpu.fmax(vdd) * mid;
            let p_cpu = cpu.pdyn(vdd, f) + p_leak;
            let p = regulator
                .convert(v_solar, vdd, p_cpu)
                .map(|c| c.p_in.watts())
                .unwrap_or(f64::INFINITY);
            if p > p_mpp.watts() {
                hi_f = mid;
            } else {
                lo_f = mid;
            }
        }
        if lo_f <= 1e-6 {
            return Err(CoreError::infeasible(
                "optimal regulated plan",
                "harvest cannot cover even the leakage floor at v_min".to_string(),
            ));
        }
        return finish(vdd, lo_f);
    }
    // The constraint boundary lies inside (lo, hi): bisect drawn(v) = p_mpp.
    // A microvolt on vdd is far below the 0.1% parity contract (and any
    // physical DVFS step); the old 1e-9 tolerance cost ten extra regulator
    // conversions per rail for digits nothing downstream could observe.
    let v = hems_units::solve::bisect(|v| drawn(v) - p_mpp.watts(), lo.volts(), hi.volts(), 1e-6)?;
    finish(Volts::new(v), 1.0)
}

/// Convenience: the unregulated baseline for the same cell and processor.
///
/// # Errors
///
/// Propagates [`operating_point::unregulated_point`] failures.
pub fn unregulated_baseline(
    cell: &impl PvSource,
    cpu: &impl CpuEval,
) -> Result<UnregulatedPoint, CoreError> {
    operating_point::unregulated_point(cell, cpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_cpu::Microprocessor;
    use hems_pv::{Irradiance, SolarCell};
    use hems_regulator::{BuckRegulator, Ldo, ScRegulator};

    fn setup() -> (SolarCell, Microprocessor) {
        (
            SolarCell::kxob22(Irradiance::FULL_SUN),
            Microprocessor::paper_65nm(),
        )
    }

    #[test]
    fn sc_regulator_delivers_fig6b_gains() {
        // Paper Fig. 6b: SC regulation extracts ~31% more power and runs
        // ~18% faster than the unregulated point under strong light.
        let (cell, cpu) = setup();
        let sc = ScRegulator::paper_65nm();
        let plan = optimal_regulated_plan(&cell, &sc, &cpu).unwrap();
        let baseline = unregulated_baseline(&cell, &cpu).unwrap();
        let power_gain = plan.power_gain_vs(&baseline);
        let speedup = plan.speedup_vs(&baseline);
        assert!(
            (1.15..1.45).contains(&power_gain),
            "power gain {power_gain:.3} (paper ~1.31)"
        );
        assert!(
            (1.05..1.35).contains(&speedup),
            "speedup {speedup:.3} (paper ~1.18)"
        );
        // On the boundary the node draws exactly P_mpp.
        let p_mpp = cell.mpp().unwrap().power;
        assert!((plan.p_in.watts() - p_mpp.watts()).abs() < 1e-6 * p_mpp.watts());
        assert_eq!(plan.clock_fraction, 1.0);
    }

    #[test]
    fn ldo_brings_no_benefit_over_raw_cell() {
        // Paper Section IV-A: "The LDO does not bring any efficiency
        // improvement over raw solar cell ... overall, less power is
        // delivered from the LDO."
        let (cell, cpu) = setup();
        let ldo = Ldo::paper_65nm();
        let plan = optimal_regulated_plan(&cell, &ldo, &cpu).unwrap();
        let baseline = unregulated_baseline(&cell, &cpu).unwrap();
        assert!(
            plan.power_gain_vs(&baseline) < 1.0,
            "LDO gain {:.3} should be < 1",
            plan.power_gain_vs(&baseline)
        );
        assert!(plan.speedup_vs(&baseline) < 1.0);
    }

    #[test]
    fn buck_sits_between_ldo_and_sc() {
        let (cell, cpu) = setup();
        let sc_plan = optimal_regulated_plan(&cell, &ScRegulator::paper_65nm(), &cpu).unwrap();
        let buck_plan = optimal_regulated_plan(&cell, &BuckRegulator::paper_65nm(), &cpu).unwrap();
        let ldo_plan = optimal_regulated_plan(&cell, &Ldo::paper_65nm(), &cpu).unwrap();
        assert!(sc_plan.frequency > buck_plan.frequency);
        assert!(buck_plan.frequency > ldo_plan.frequency);
    }

    #[test]
    fn plan_respects_source_budget() {
        let (cell, cpu) = setup();
        for g in [
            Irradiance::FULL_SUN,
            Irradiance::HALF_SUN,
            Irradiance::QUARTER_SUN,
        ] {
            let cell = SolarCell::kxob22(g);
            let sc = ScRegulator::paper_65nm();
            let plan = optimal_regulated_plan(&cell, &sc, &cpu).unwrap();
            let p_mpp = cell.mpp().unwrap().power;
            assert!(
                plan.p_in <= p_mpp * (1.0 + 1e-6),
                "{g}: drew {:?} of budget {:?}",
                plan.p_in,
                p_mpp
            );
            let _ = cell;
        }
        let _ = cell;
    }

    #[test]
    fn low_light_forces_downclocking() {
        // Under dim light even v_min at full speed over-draws through the
        // regulator; the plan down-clocks instead of failing. The LDO's
        // tiny fixed loss keeps it feasible where the SC is not.
        let cpu = Microprocessor::paper_65nm();
        let cell = SolarCell::kxob22(Irradiance::OVERCAST);
        let ldo = Ldo::paper_65nm();
        let plan = optimal_regulated_plan(&cell, &ldo, &cpu).unwrap();
        assert!(
            plan.clock_fraction < 1.0,
            "fraction {}",
            plan.clock_fraction
        );
        assert_eq!(plan.vdd, cpu.v_min());
    }

    #[test]
    fn sc_fixed_losses_make_overcast_infeasible() {
        // The SC converter's ~1.5 mW fixed loss exceeds the entire overcast
        // harvest — exactly why Section IV-B bypasses at low light.
        let cpu = Microprocessor::paper_65nm();
        let cell = SolarCell::kxob22(Irradiance::OVERCAST);
        let err = optimal_regulated_plan(&cell, &ScRegulator::paper_65nm(), &cpu).unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
    }

    #[test]
    fn darkness_is_infeasible() {
        let cpu = Microprocessor::paper_65nm();
        let cell = SolarCell::kxob22(Irradiance::DARK);
        assert!(optimal_regulated_plan(&cell, &ScRegulator::paper_65nm(), &cpu).is_err());
        assert!(optimal_joint_plan(&cell, &ScRegulator::paper_65nm(), &cpu).is_err());
    }

    #[test]
    fn joint_plan_never_loses_to_the_mpp_pinned_plan() {
        let cpu = Microprocessor::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        for g in [
            Irradiance::FULL_SUN,
            Irradiance::new(0.75).unwrap(),
            Irradiance::HALF_SUN,
            Irradiance::new(0.35).unwrap(),
        ] {
            let cell = SolarCell::kxob22(g);
            let pinned = optimal_regulated_plan(&cell, &sc, &cpu).unwrap();
            let joint = optimal_joint_plan(&cell, &sc, &cpu).unwrap();
            // Within the 96-point rail grid's resolution, the joint plan
            // can never lose: pinning the rail at the MPP is one of its
            // feasible choices.
            assert!(
                joint.frequency >= pinned.frequency * 0.99,
                "{g}: joint {} < pinned {}",
                joint.frequency.to_mega(),
                pinned.frequency.to_mega()
            );
        }
    }

    #[test]
    fn quantized_vdd_makes_the_rail_choice_decisive() {
        // With a *continuous* supply voltage, eqs. 1-4 pinned at the MPP are
        // already near-optimal: the solver rides the SC ratio boundary with
        // intrinsic efficiency -> 1. Real chips quantize Vdd, though, and
        // then the rail choice matters enormously: feeding a 0.5 V rung
        // from the half-sun MPP rail (~0.998 V) falls off the 2:1 ratio
        // onto 3:2, while a rail nudged to 1.01 V keeps 2:1.
        let sc = ScRegulator::paper_65nm();
        let p = Watts::from_milli(5.0);
        let vdd = Volts::new(0.5);
        let at_mpp = sc.efficiency(Volts::new(0.998), vdd, p).unwrap().ratio();
        let nudged = sc.efficiency(Volts::new(1.01), vdd, p).unwrap().ratio();
        assert!(
            nudged > at_mpp * 1.15,
            "nudged {nudged:.3} should beat MPP rail {at_mpp:.3} by >15%"
        );
        // This is the effect the HolisticController's ratio-aware target
        // floor exploits (see controller.rs).
    }
}
