//! The "sprinting" schedule (paper Section VI-B, eqs. 12–13, Fig. 9b).
//!
//! Under a deadline with dimming light, a constant-speed schedule drags the
//! solar node steadily down through the cell's high-power region. Sprinting
//! reshapes the draw — run `(1-β)` of nominal speed in the first half, then
//! `(1+β)` in the second half — so the node lingers near the (new) maximum
//! power point early, where each second harvests more, and only dives
//! through the low-power tail at the end. The same total cycles complete by
//! the same deadline, but ≈ 10 % more solar energy is absorbed at β = 20 %
//! (Fig. 11b).

use crate::CoreError;
use hems_pv::SolarCell;
use hems_storage::Capacitor;
use hems_units::{Joules, Seconds, UnitsError, Volts, Watts};

/// A two-phase sprint schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprintPlan {
    /// The sprint factor β in `[0, 1)`: first half runs at `(1-β)`×nominal
    /// speed, second half at `(1+β)`×.
    pub beta: f64,
    /// Total schedule length.
    pub duration: Seconds,
    /// Nominal (constant-schedule) drawn power from the node.
    pub p_nominal: Watts,
}

/// Outcome of comparing a sprint schedule against constant speed on the
/// same discharge transient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprintComparison {
    /// Solar energy absorbed by the constant-speed schedule.
    pub e_solar_constant: Joules,
    /// Solar energy absorbed by the sprint schedule.
    pub e_solar_sprint: Joules,
    /// Node voltage at the end of the constant-speed schedule.
    pub v_end_constant: Volts,
    /// Node voltage at the end of the sprint schedule.
    pub v_end_sprint: Volts,
}

impl SprintComparison {
    /// Fractional extra solar energy from sprinting (eq. 12's ΔE as a
    /// fraction of the constant-schedule harvest).
    pub fn extra_energy_fraction(&self) -> f64 {
        if self.e_solar_constant.is_positive() {
            self.e_solar_sprint / self.e_solar_constant - 1.0
        } else {
            0.0
        }
    }
}

impl SprintPlan {
    /// Builds a plan.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when `beta` is outside `[0, 1)`, the duration
    /// is non-positive, or the nominal power is non-positive.
    pub fn new(beta: f64, duration: Seconds, p_nominal: Watts) -> Result<SprintPlan, CoreError> {
        if !beta.is_finite() || !(0.0..1.0).contains(&beta) {
            return Err(CoreError::component(
                "sprint plan",
                UnitsError::OutOfRange {
                    what: "sprint factor beta",
                    value: beta,
                    min: 0.0,
                    max: 1.0,
                },
            ));
        }
        if !duration.is_positive() || !p_nominal.is_positive() {
            return Err(CoreError::infeasible(
                "sprint plan",
                "duration and nominal power must be positive".to_string(),
            ));
        }
        Ok(SprintPlan {
            beta,
            duration,
            p_nominal,
        })
    }

    /// The paper's 20 % sprint.
    ///
    /// # Errors
    ///
    /// Propagates validation failures for degenerate duration/power.
    pub fn paper_20_percent(duration: Seconds, p_nominal: Watts) -> Result<SprintPlan, CoreError> {
        SprintPlan::new(0.2, duration, p_nominal)
    }

    /// Drawn power at elapsed time `t` into the schedule: `(1-β)·P` in the
    /// first half, `(1+β)·P` in the second (clamped beyond the end).
    pub fn drawn_power(&self, t: Seconds) -> Watts {
        if t < self.duration * 0.5 {
            self.p_nominal * (1.0 - self.beta)
        } else {
            self.p_nominal * (1.0 + self.beta)
        }
    }

    /// Total cycles-proportional work of the schedule equals the constant
    /// schedule's: `∫ speed dt = P · T` either way (speed ∝ drawn power at
    /// fixed voltage).
    pub fn total_draw(&self) -> Joules {
        self.p_nominal * self.duration
    }

    /// Simulates the discharge transient under both schedules on the same
    /// plant (a quasi-static explicit integration at `dt`) and compares the
    /// harvested solar energy — the quantity behind eqs. 12–13.
    ///
    /// `cell` should already be at the *dimmed* light level; `capacitor`
    /// provides the initial node voltage.
    pub fn compare_against_constant(
        &self,
        cell: &SolarCell,
        capacitor: &Capacitor,
        dt: Seconds,
    ) -> SprintComparison {
        let run = |schedule: &dyn Fn(Seconds) -> Watts| -> (Joules, Volts) {
            let mut cap = capacitor.clone();
            let mut harvested = Joules::ZERO;
            let steps = (self.duration.seconds() / dt.seconds()).round() as u64;
            for i in 0..steps {
                let t = Seconds::new(i as f64 * dt.seconds());
                let v = cap.voltage();
                let p_solar = cell.power_at(v);
                harvested += p_solar * dt;
                let p_draw = schedule(t);
                cap.step_power(p_solar - p_draw, dt);
            }
            (harvested, cap.voltage())
        };
        let (e_const, v_const) = run(&|_t| self.p_nominal);
        let (e_sprint, v_sprint) = run(&|t| self.drawn_power(t));
        SprintComparison {
            e_solar_constant: e_const,
            e_solar_sprint: e_sprint,
            v_end_constant: v_const,
            v_end_sprint: v_sprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_pv::Irradiance;

    /// The Fig. 11b scenario: light just dimmed to quarter sun, node still
    /// charged to 1.2 V, job draws ~6 mW nominal for 30 ms.
    fn fig11_setup() -> (SolarCell, Capacitor, SprintPlan) {
        let cell = SolarCell::kxob22(Irradiance::QUARTER_SUN);
        let mut cap = Capacitor::paper_board();
        cap.set_voltage(Volts::new(1.2)).unwrap();
        let plan = SprintPlan::paper_20_percent(Seconds::from_milli(30.0), Watts::from_milli(6.0))
            .unwrap();
        (cell, cap, plan)
    }

    #[test]
    fn sprinting_absorbs_more_solar_energy() {
        // Paper: "10% more energy was absorbed from solar cell by sprinting
        // operation at 20% rate".
        let (cell, cap, plan) = fig11_setup();
        let cmp = plan.compare_against_constant(&cell, &cap, Seconds::from_micro(20.0));
        let extra = cmp.extra_energy_fraction();
        assert!(
            (0.02..0.25).contains(&extra),
            "sprinting gained {:.1}% (paper ~10%)",
            extra * 100.0
        );
    }

    #[test]
    fn gain_grows_with_beta_then_plateaus() {
        let (cell, cap, _) = fig11_setup();
        let gain_at = |beta: f64| {
            let plan =
                SprintPlan::new(beta, Seconds::from_milli(30.0), Watts::from_milli(6.0)).unwrap();
            plan.compare_against_constant(&cell, &cap, Seconds::from_micro(20.0))
                .extra_energy_fraction()
        };
        assert!(gain_at(0.0).abs() < 1e-9);
        assert!(gain_at(0.2) > gain_at(0.1));
        assert!(gain_at(0.4) > gain_at(0.2) * 0.9); // monotone-ish, may flatten
    }

    #[test]
    fn schedules_draw_the_same_total() {
        let plan = SprintPlan::new(0.3, Seconds::from_milli(20.0), Watts::from_milli(5.0)).unwrap();
        // Integrate drawn power over the schedule.
        let dt = Seconds::from_micro(10.0);
        let steps = (plan.duration.seconds() / dt.seconds()).round() as u64;
        let mut total = Joules::ZERO;
        for i in 0..steps {
            total += plan.drawn_power(Seconds::new(i as f64 * dt.seconds())) * dt;
        }
        let expected = plan.total_draw();
        assert!(
            (total - expected).abs().joules() < 1e-3 * expected.joules(),
            "total {total:?} vs expected {expected:?}"
        );
    }

    #[test]
    fn drawn_power_switches_at_half_time() {
        let plan =
            SprintPlan::new(0.2, Seconds::from_milli(10.0), Watts::from_milli(10.0)).unwrap();
        assert!((plan.drawn_power(Seconds::from_milli(2.0)).to_milli() - 8.0).abs() < 1e-9);
        assert!((plan.drawn_power(Seconds::from_milli(7.0)).to_milli() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn sprint_ends_lower_but_harvests_more() {
        // The sprint spends its capacitor harder at the end — that's the
        // point: the energy came from the *sun*, not the cap.
        let (cell, cap, plan) = fig11_setup();
        let cmp = plan.compare_against_constant(&cell, &cap, Seconds::from_micro(20.0));
        assert!(cmp.e_solar_sprint > cmp.e_solar_constant);
    }

    #[test]
    fn constructor_validates() {
        assert!(SprintPlan::new(1.0, Seconds::new(1.0), Watts::new(1.0)).is_err());
        assert!(SprintPlan::new(-0.1, Seconds::new(1.0), Watts::new(1.0)).is_err());
        assert!(SprintPlan::new(0.2, Seconds::ZERO, Watts::new(1.0)).is_err());
        assert!(SprintPlan::new(0.2, Seconds::new(1.0), Watts::ZERO).is_err());
    }
}
