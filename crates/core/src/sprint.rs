//! The "sprinting" schedule (paper Section VI-B, eqs. 12–13, Fig. 9b).
//!
//! Under a deadline with dimming light, a constant-speed schedule drags the
//! solar node steadily down through the cell's high-power region. Sprinting
//! reshapes the draw — run `(1-β)` of nominal speed in the first half, then
//! `(1+β)` in the second half — so the node lingers near the (new) maximum
//! power point early, where each second harvests more, and only dives
//! through the low-power tail at the end. The same total cycles complete by
//! the same deadline, but ≈ 10 % more solar energy is absorbed at β = 20 %
//! (Fig. 11b).

use crate::{CoreError, PvSourceBatch};
use hems_storage::Capacitor;
use hems_units::{Joules, Seconds, UnitsError, Volts, Watts};

/// A two-phase sprint schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprintPlan {
    /// The sprint factor β in `[0, 1)`: first half runs at `(1-β)`×nominal
    /// speed, second half at `(1+β)`×.
    pub beta: f64,
    /// Total schedule length.
    pub duration: Seconds,
    /// Nominal (constant-schedule) drawn power from the node.
    pub p_nominal: Watts,
}

/// Outcome of comparing a sprint schedule against constant speed on the
/// same discharge transient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprintComparison {
    /// Solar energy absorbed by the constant-speed schedule.
    pub e_solar_constant: Joules,
    /// Solar energy absorbed by the sprint schedule.
    pub e_solar_sprint: Joules,
    /// Node voltage at the end of the constant-speed schedule.
    pub v_end_constant: Volts,
    /// Node voltage at the end of the sprint schedule.
    pub v_end_sprint: Volts,
}

impl SprintComparison {
    /// Fractional extra solar energy from sprinting (eq. 12's ΔE as a
    /// fraction of the constant-schedule harvest).
    pub fn extra_energy_fraction(&self) -> f64 {
        if self.e_solar_constant.is_positive() {
            self.e_solar_sprint / self.e_solar_constant - 1.0
        } else {
            0.0
        }
    }
}

impl SprintPlan {
    /// Builds a plan.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when `beta` is outside `[0, 1)`, the duration
    /// is non-positive, or the nominal power is non-positive.
    pub fn new(beta: f64, duration: Seconds, p_nominal: Watts) -> Result<SprintPlan, CoreError> {
        if !beta.is_finite() || !(0.0..1.0).contains(&beta) {
            return Err(CoreError::component(
                "sprint plan",
                UnitsError::OutOfRange {
                    what: "sprint factor beta",
                    value: beta,
                    min: 0.0,
                    max: 1.0,
                },
            ));
        }
        if !duration.is_positive() || !p_nominal.is_positive() {
            return Err(CoreError::infeasible(
                "sprint plan",
                "duration and nominal power must be positive".to_string(),
            ));
        }
        Ok(SprintPlan {
            beta,
            duration,
            p_nominal,
        })
    }

    /// The paper's 20 % sprint.
    ///
    /// # Errors
    ///
    /// Propagates validation failures for degenerate duration/power.
    pub fn paper_20_percent(duration: Seconds, p_nominal: Watts) -> Result<SprintPlan, CoreError> {
        SprintPlan::new(0.2, duration, p_nominal)
    }

    /// Drawn power at elapsed time `t` into the schedule: `(1-β)·P` in the
    /// first half, `(1+β)·P` in the second (clamped beyond the end).
    pub fn drawn_power(&self, t: Seconds) -> Watts {
        if t < self.duration * 0.5 {
            self.p_nominal * (1.0 - self.beta)
        } else {
            self.p_nominal * (1.0 + self.beta)
        }
    }

    /// Total cycles-proportional work of the schedule equals the constant
    /// schedule's: `∫ speed dt = P · T` either way (speed ∝ drawn power at
    /// fixed voltage).
    pub fn total_draw(&self) -> Joules {
        self.p_nominal * self.duration
    }

    /// Simulates the discharge transient under both schedules on the same
    /// plant (a quasi-static explicit integration at `dt`) and compares the
    /// harvested solar energy — the quantity behind eqs. 12–13.
    ///
    /// `cell` should already be at the *dimmed* light level; `capacitor`
    /// provides the initial node voltage. Generic over [`PvSourceBatch`]:
    /// pass the exact [`hems_pv::SolarCell`] for the reference transient or
    /// a [`hems_pv::PvLut`] to run the whole schedule off table lookups.
    pub fn compare_against_constant(
        &self,
        cell: &impl PvSourceBatch,
        capacitor: &Capacitor,
        dt: Seconds,
    ) -> SprintComparison {
        let mut out = Self::sweep_betas(
            &[self.beta],
            self.duration,
            self.p_nominal,
            cell,
            capacitor,
            dt,
        )
        // hems-lint: allow(panic, reason = "a validated plan's own beta re-validates cleanly")
        .expect("a validated plan's beta sweeps cleanly");
        // hems-lint: allow(panic, reason = "one beta in produces exactly one comparison")
        out.pop().expect("one beta in, one comparison out")
    }

    /// Sweeps a family of sprint factors through one lockstep transient:
    /// lane 0 integrates the shared constant-speed schedule, and each beta
    /// gets its own capacitor lane. Every step gathers the lanes' node
    /// voltages into one slab and makes a single
    /// [`PvSourceBatch::source_power_many`] call, so the per-step model
    /// cost is one batch evaluation instead of `betas + 1` scalar solves —
    /// the shape Fig. 11b's beta sweep wants. Each lane's trajectory is
    /// bit-identical to running [`SprintPlan::compare_against_constant`]
    /// for that beta alone.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] when any `beta` is outside `[0, 1)` or the
    /// duration/power is non-positive, like [`SprintPlan::new`].
    pub fn sweep_betas(
        betas: &[f64],
        duration: Seconds,
        p_nominal: Watts,
        cell: &impl PvSourceBatch,
        capacitor: &Capacitor,
        dt: Seconds,
    ) -> Result<Vec<SprintComparison>, CoreError> {
        let plans: Vec<SprintPlan> = betas
            .iter()
            .map(|&beta| SprintPlan::new(beta, duration, p_nominal))
            .collect::<Result<_, _>>()?;
        if plans.is_empty() {
            return Ok(Vec::new());
        }
        // Lane 0 is the shared constant schedule; lane k+1 sprints at
        // betas[k]. SoA slabs are allocated once and reused every step.
        let lanes = plans.len() + 1;
        let mut caps: Vec<Capacitor> = (0..lanes).map(|_| capacitor.clone()).collect();
        let mut harvested = vec![Joules::ZERO; lanes];
        let mut vs = vec![0.0; lanes];
        let mut ps = vec![0.0; lanes];
        let steps = (duration.seconds() / dt.seconds()).round() as u64;
        for i in 0..steps {
            let t = Seconds::new(i as f64 * dt.seconds());
            for (v, cap) in vs.iter_mut().zip(&caps) {
                *v = cap.voltage().volts();
            }
            cell.source_power_many(&vs, &mut ps);
            let rows = caps.iter_mut().zip(&ps).zip(harvested.iter_mut());
            for (lane, ((cap, &p), h)) in rows.enumerate() {
                let p_solar = Watts::new(p);
                *h += p_solar * dt;
                // Lane 0 is the constant schedule; lane k+1 sprints betas[k].
                let p_draw = match lane.checked_sub(1).and_then(|k| plans.get(k)) {
                    Some(plan) => plan.drawn_power(t),
                    None => p_nominal,
                };
                cap.step_power(p_solar - p_draw, dt);
            }
        }
        let e_solar_constant = harvested.first().copied().unwrap_or(Joules::ZERO);
        let v_end_constant = caps.first().map_or(capacitor.voltage(), Capacitor::voltage);
        Ok(harvested
            .iter()
            .zip(&caps)
            .skip(1)
            .map(|(&e_solar_sprint, cap)| SprintComparison {
                e_solar_constant,
                e_solar_sprint,
                v_end_constant,
                v_end_sprint: cap.voltage(),
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_pv::{Irradiance, PvLut, SolarCell};

    /// The Fig. 11b scenario: light just dimmed to quarter sun, node still
    /// charged to 1.2 V, job draws ~6 mW nominal for 30 ms.
    fn fig11_setup() -> (SolarCell, Capacitor, SprintPlan) {
        let cell = SolarCell::kxob22(Irradiance::QUARTER_SUN);
        let mut cap = Capacitor::paper_board();
        cap.set_voltage(Volts::new(1.2)).unwrap();
        let plan = SprintPlan::paper_20_percent(Seconds::from_milli(30.0), Watts::from_milli(6.0))
            .unwrap();
        (cell, cap, plan)
    }

    #[test]
    fn sprinting_absorbs_more_solar_energy() {
        // Paper: "10% more energy was absorbed from solar cell by sprinting
        // operation at 20% rate".
        let (cell, cap, plan) = fig11_setup();
        let cmp = plan.compare_against_constant(&cell, &cap, Seconds::from_micro(20.0));
        let extra = cmp.extra_energy_fraction();
        assert!(
            (0.02..0.25).contains(&extra),
            "sprinting gained {:.1}% (paper ~10%)",
            extra * 100.0
        );
    }

    #[test]
    fn gain_grows_with_beta_then_plateaus() {
        let (cell, cap, _) = fig11_setup();
        let gain_at = |beta: f64| {
            let plan =
                SprintPlan::new(beta, Seconds::from_milli(30.0), Watts::from_milli(6.0)).unwrap();
            plan.compare_against_constant(&cell, &cap, Seconds::from_micro(20.0))
                .extra_energy_fraction()
        };
        assert!(gain_at(0.0).abs() < 1e-9);
        assert!(gain_at(0.2) > gain_at(0.1));
        assert!(gain_at(0.4) > gain_at(0.2) * 0.9); // monotone-ish, may flatten
    }

    #[test]
    fn schedules_draw_the_same_total() {
        let plan = SprintPlan::new(0.3, Seconds::from_milli(20.0), Watts::from_milli(5.0)).unwrap();
        // Integrate drawn power over the schedule.
        let dt = Seconds::from_micro(10.0);
        let steps = (plan.duration.seconds() / dt.seconds()).round() as u64;
        let mut total = Joules::ZERO;
        for i in 0..steps {
            total += plan.drawn_power(Seconds::new(i as f64 * dt.seconds())) * dt;
        }
        let expected = plan.total_draw();
        assert!(
            (total - expected).abs().joules() < 1e-3 * expected.joules(),
            "total {total:?} vs expected {expected:?}"
        );
    }

    #[test]
    fn drawn_power_switches_at_half_time() {
        let plan =
            SprintPlan::new(0.2, Seconds::from_milli(10.0), Watts::from_milli(10.0)).unwrap();
        assert!((plan.drawn_power(Seconds::from_milli(2.0)).to_milli() - 8.0).abs() < 1e-9);
        assert!((plan.drawn_power(Seconds::from_milli(7.0)).to_milli() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn sprint_ends_lower_but_harvests_more() {
        // The sprint spends its capacitor harder at the end — that's the
        // point: the energy came from the *sun*, not the cap.
        let (cell, cap, plan) = fig11_setup();
        let cmp = plan.compare_against_constant(&cell, &cap, Seconds::from_micro(20.0));
        assert!(cmp.e_solar_sprint > cmp.e_solar_constant);
    }

    #[test]
    fn constructor_validates() {
        assert!(SprintPlan::new(1.0, Seconds::new(1.0), Watts::new(1.0)).is_err());
        assert!(SprintPlan::new(-0.1, Seconds::new(1.0), Watts::new(1.0)).is_err());
        assert!(SprintPlan::new(0.2, Seconds::ZERO, Watts::new(1.0)).is_err());
        assert!(SprintPlan::new(0.2, Seconds::new(1.0), Watts::ZERO).is_err());
    }

    #[test]
    fn sweep_betas_matches_per_beta_comparisons_bitwise() {
        let (cell, cap, _) = fig11_setup();
        let dt = Seconds::from_micro(20.0);
        let duration = Seconds::from_milli(30.0);
        let p = Watts::from_milli(6.0);
        let betas = [0.0, 0.1, 0.2, 0.4];
        let swept = SprintPlan::sweep_betas(&betas, duration, p, &cell, &cap, dt).unwrap();
        assert_eq!(swept.len(), betas.len());
        for (k, &beta) in betas.iter().enumerate() {
            let solo = SprintPlan::new(beta, duration, p)
                .unwrap()
                .compare_against_constant(&cell, &cap, dt);
            assert_eq!(
                swept[k].e_solar_sprint.joules().to_bits(),
                solo.e_solar_sprint.joules().to_bits(),
                "beta={beta}"
            );
            assert_eq!(
                swept[k].e_solar_constant.joules().to_bits(),
                solo.e_solar_constant.joules().to_bits()
            );
            assert_eq!(
                swept[k].v_end_sprint.volts().to_bits(),
                solo.v_end_sprint.volts().to_bits()
            );
        }
        assert!(SprintPlan::sweep_betas(&[], duration, p, &cell, &cap, dt)
            .unwrap()
            .is_empty());
        assert!(SprintPlan::sweep_betas(&[1.5], duration, p, &cell, &cap, dt).is_err());
    }

    #[test]
    fn lut_transient_tracks_the_exact_one() {
        // The sprint solver is generic over PvSourceBatch: a PvLut-driven
        // transient must land within the table's ≤0.1 % parity budget of
        // the exact integration.
        let (cell, cap, plan) = fig11_setup();
        let lut = PvLut::build_default(cell.clone()).unwrap();
        let dt = Seconds::from_micro(20.0);
        let exact = plan.compare_against_constant(&cell, &cap, dt);
        let fast = plan.compare_against_constant(&lut, &cap, dt);
        let rel = (fast.extra_energy_fraction() - exact.extra_energy_fraction()).abs();
        assert!(rel < 1e-2, "sprint gain diverged by {rel:.2e}");
        assert!(
            (fast.e_solar_sprint.joules() - exact.e_solar_sprint.joules()).abs()
                <= 2e-3 * exact.e_solar_sprint.joules()
        );
    }
}
