//! The energy-performance frontier connecting the paper's two objectives.
//!
//! Section IV optimizes pure performance (eqs. 1–4) and Section V pure
//! energy (eq. 5); real deployments live between them. This module sweeps
//! every *sustainable* operating point — supply voltage plus the largest
//! clock the MPP-constrained harvest can carry — and reports clock speed
//! against energy-per-cycle drawn from the source, exposing the frontier a
//! deployment can pick its trade-off from.

use crate::{CoreError, CpuEval, CpuEvalBatch, PvSource};
use hems_regulator::Regulator;
use hems_units::{Hertz, Joules, Volts, Watts};

/// One sustainable operating point on the frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Supply voltage.
    pub vdd: Volts,
    /// Largest sustainable clock at this voltage under the MPP budget.
    pub frequency: Hertz,
    /// Fraction of the voltage's maximum clock that is sustainable.
    pub clock_fraction: f64,
    /// Power delivered into the core.
    pub p_cpu: Watts,
    /// Source energy per cycle (core energy / regulator efficiency).
    pub energy_per_cycle: Joules,
}

/// Sweeps the sustainable frontier over `n` voltages across the processor
/// window, holding the cell at its MPP through `regulator`.
///
/// Generic over [`PvSource`]/[`CpuEval`]: pass the exact models for the
/// reference answer or the LUTs for the fast path.
///
/// # Omitted-point contract
///
/// Voltages where nothing is sustainable (regulator unreachable, or the
/// harvest cannot even cover the leakage-plus-fixed-loss floor) are
/// *omitted*, not filled with placeholders: the result has between 0 and
/// `n` points, every returned point is genuinely sustainable, and the
/// points that survive keep the sweep's increasing-voltage order. Callers
/// must not assume index `i` corresponds to grid voltage `i` — an empty
/// vector is a legal result (e.g. an SC regulator in deep overcast). The
/// result vector is pre-allocated at capacity `n`, so a full frontier
/// performs no reallocation.
///
/// # Errors
///
/// Returns [`CoreError`] when the cell is dark or `n < 2`.
pub fn sustainable_frontier(
    cell: &impl PvSource,
    regulator: &dyn Regulator,
    cpu: &impl CpuEvalBatch,
    n: usize,
) -> Result<Vec<FrontierPoint>, CoreError> {
    if n < 2 {
        return Err(CoreError::infeasible(
            "frontier sweep",
            "need at least two sample voltages".to_string(),
        ));
    }
    let mpp = cell
        .source_mpp()
        .map_err(|e| CoreError::component("solar cell", e))?;
    let (v_min, v_max) = (cpu.processor().v_min(), cpu.processor().v_max());
    // The grid is ascending, so one batch call fills every candidate's max
    // clock through the gather-free cursor kernel; the per-point inner
    // bisection below then touches only the regulator.
    let vdds: Vec<f64> = (0..n)
        .map(|i| (v_min + (v_max - v_min) * (i as f64 / (n - 1) as f64)).volts())
        .collect();
    let mut fmaxes = vec![0.0; n];
    cpu.fmax_many(&vdds, &mut fmaxes);
    let mut points = Vec::with_capacity(n);
    for (&vdd, &f_max) in vdds.iter().zip(&fmaxes) {
        let Some(point) = sustainable_point(
            mpp.voltage,
            mpp.power,
            regulator,
            cpu,
            Volts::new(vdd),
            Hertz::new(f_max),
        ) else {
            continue;
        };
        points.push(point);
    }
    Ok(points)
}

/// The largest sustainable clock fraction at one voltage (whose maximum
/// clock the caller has already evaluated — typically through a batch
/// kernel), or `None` when even the leakage floor cannot be covered.
fn sustainable_point(
    v_solar: Volts,
    p_budget: Watts,
    regulator: &dyn Regulator,
    cpu: &impl CpuEval,
    vdd: Volts,
    f_max: Hertz,
) -> Option<FrontierPoint> {
    if !f_max.is_positive() {
        return None;
    }
    let drawn_at = |fraction: f64| -> Option<f64> {
        let p_cpu = cpu.ptotal(vdd, f_max * fraction);
        regulator
            .convert(v_solar, vdd, p_cpu)
            .ok()
            .map(|c| c.p_in.watts())
    };
    // Full speed already sustainable?
    let fraction = if drawn_at(1.0)? <= p_budget.watts() {
        1.0
    } else {
        // Bisect the sustainable fraction; if even ~zero clock over-draws
        // (fixed losses + leakage exceed the budget), the point is dead.
        if drawn_at(1e-6)? > p_budget.watts() {
            return None;
        }
        let mut lo = 1e-6;
        let mut hi = 1.0;
        // 1e-6 on the clock fraction is 1e-6 relative on frequency —
        // three orders tighter than the 0.1% LUT-parity contract, at a
        // third of the regulator-convert calls a fixed 64-deep loop pays.
        while hi - lo > 1e-6 {
            let mid = 0.5 * (lo + hi);
            match drawn_at(mid) {
                Some(p) if p <= p_budget.watts() => lo = mid,
                _ => hi = mid,
            }
        }
        lo
    };
    let frequency = f_max * fraction;
    let p_cpu = cpu.ptotal(vdd, frequency);
    let conv = regulator.convert(v_solar, vdd, p_cpu).ok()?;
    if !frequency.is_positive() {
        return None;
    }
    Some(FrontierPoint {
        vdd,
        frequency,
        clock_fraction: fraction,
        p_cpu,
        energy_per_cycle: Joules::new(conv.p_in.watts() / frequency.hertz()),
    })
}

/// Reduces a frontier sweep to its Pareto-optimal subset: no other point is
/// both faster and cheaper per cycle.
pub fn pareto_front(points: &[FrontierPoint]) -> Vec<FrontierPoint> {
    let mut front: Vec<FrontierPoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.frequency > p.frequency && q.energy_per_cycle <= p.energy_per_cycle)
                || (q.frequency >= p.frequency && q.energy_per_cycle < p.energy_per_cycle)
        });
        if !dominated {
            front.push(*p);
        }
    }
    front.sort_by(|a, b| a.frequency.hertz().total_cmp(&b.frequency.hertz()));
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mep, optimal_voltage};
    use hems_cpu::Microprocessor;
    use hems_pv::{Irradiance, SolarCell};
    use hems_regulator::ScRegulator;

    fn sweep() -> Vec<FrontierPoint> {
        let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        let sc = ScRegulator::paper_65nm();
        let cpu = Microprocessor::paper_65nm();
        sustainable_frontier(&cell, &sc, &cpu, 64).unwrap()
    }

    #[test]
    fn every_point_respects_the_budget() {
        let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        let p_mpp = cell.mpp().unwrap().power;
        let sc = ScRegulator::paper_65nm();
        for p in sweep() {
            let conv = sc
                .convert(Volts::new(1.113), p.vdd, p.p_cpu)
                .expect("point was produced from a valid conversion");
            assert!(
                conv.p_in <= p_mpp * 1.01,
                "{:?} draws {:?} of {:?}",
                p.vdd,
                conv.p_in,
                p_mpp
            );
        }
    }

    #[test]
    fn fastest_point_matches_the_optimal_voltage_solver() {
        let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        let cpu = Microprocessor::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        let plan = optimal_voltage::optimal_regulated_plan(&cell, &sc, &cpu).unwrap();
        let fastest = sweep()
            .into_iter()
            .max_by(|a, b| a.frequency.partial_cmp(&b.frequency).unwrap())
            .unwrap();
        assert!(
            (fastest.frequency.to_mega() - plan.frequency.to_mega()).abs()
                < 0.05 * plan.frequency.to_mega(),
            "frontier fastest {} vs solver {}",
            fastest.frequency.to_mega(),
            plan.frequency.to_mega()
        );
    }

    #[test]
    fn cheapest_point_is_near_the_holistic_mep() {
        let cpu = Microprocessor::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        let holistic = mep::system_mep(&cpu, &sc, Volts::new(1.113)).unwrap();
        let cheapest = sweep()
            .into_iter()
            .min_by(|a, b| a.energy_per_cycle.partial_cmp(&b.energy_per_cycle).unwrap())
            .unwrap();
        // The frontier charges at max *sustainable* speed so its cheapest
        // point sits near (not exactly at) the max-speed MEP.
        assert!(
            (cheapest.vdd - holistic.vdd).abs() < Volts::from_milli(100.0),
            "cheapest at {} vs MEP {}",
            cheapest.vdd,
            holistic.vdd
        );
    }

    #[test]
    fn pareto_front_is_monotone() {
        let front = pareto_front(&sweep());
        assert!(front.len() >= 2);
        // Along the front, more speed must cost more energy per cycle.
        for w in front.windows(2) {
            assert!(w[1].frequency > w[0].frequency);
            assert!(w[1].energy_per_cycle >= w[0].energy_per_cycle);
        }
    }

    #[test]
    fn dark_cell_errors_and_tiny_sweeps_error() {
        let cpu = Microprocessor::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        let dark = SolarCell::kxob22(Irradiance::DARK);
        assert!(sustainable_frontier(&dark, &sc, &cpu, 16).is_err());
        let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        assert!(sustainable_frontier(&cell, &sc, &cpu, 1).is_err());
    }

    #[test]
    fn low_light_truncates_the_frontier() {
        let cpu = Microprocessor::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        let bright = sweep();
        let dim_cell = SolarCell::kxob22(Irradiance::new(0.3).unwrap());
        let dim = sustainable_frontier(&dim_cell, &sc, &cpu, 64).unwrap();
        assert!(
            dim.len() < bright.len(),
            "dim {} vs bright {}",
            dim.len(),
            bright.len()
        );
        let f_max = |pts: &[FrontierPoint]| {
            pts.iter()
                .map(|p| p.frequency.to_mega())
                .fold(0.0f64, f64::max)
        };
        assert!(f_max(&dim) < f_max(&bright));
    }
}
