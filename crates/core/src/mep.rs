//! The holistic minimum-energy point (paper Section V, eq. 5).
//!
//! The conventional MEP minimizes the processor's own energy per cycle,
//! `E_cyc(V) = E_dyn(V) + E_leak(V)`. In a fully integrated system the
//! energy is drawn *through the regulator*, whose efficiency is itself a
//! function of the output voltage and load, so the correct objective is
//!
//! ```text
//! E_sys(V) = E_cyc(V) / η(V_in → V, P_cpu(V))
//! ```
//!
//! Because `η` collapses at low output voltage and light load (fixed
//! converter losses dominate the shrinking CPU power), the system MEP sits
//! *above* the conventional MEP — by ≈ 0.1 V in the paper — and running at
//! the conventional point wastes up to ≈ 31 % energy (Fig. 7b, Fig. 11a).

use crate::{CoreError, CpuEval};
use hems_cpu::MepPoint;
use hems_regulator::Regulator;
use hems_units::{solve, Joules, Volts};

/// The system-level MEP through one regulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemMep {
    /// The minimizing supply voltage.
    pub vdd: Volts,
    /// System energy per cycle there (CPU energy / regulator efficiency).
    pub energy_per_cycle: Joules,
    /// The rail (solar-node) voltage assumed for the regulator.
    pub v_in: Volts,
}

/// Conventional-vs-holistic MEP comparison (Fig. 7b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MepComparison {
    /// The conventional (CPU-only) MEP.
    pub conventional: MepPoint,
    /// The holistic (system) MEP through the regulator.
    pub holistic: SystemMep,
    /// System energy per cycle if one (wrongly) runs at the conventional
    /// MEP voltage through the regulator.
    pub system_energy_at_conventional: Joules,
}

impl MepComparison {
    /// How far the holistic MEP shifted above the conventional one.
    pub fn voltage_shift(&self) -> Volts {
        self.holistic.vdd - self.conventional.vdd
    }

    /// Fraction of energy saved by operating at the holistic MEP instead
    /// of the conventional MEP (both measured at the system level).
    pub fn energy_savings(&self) -> f64 {
        1.0 - self.holistic.energy_per_cycle / self.system_energy_at_conventional
    }
}

/// System energy per cycle at `vdd` (max-speed convention), or `None`
/// where the CPU or the regulator cannot operate.
///
/// Generic over [`CpuEval`]: pass the exact processor for the reference
/// answer or a `CpuLut` for the fast path.
pub fn system_energy_per_cycle(
    cpu: &impl CpuEval,
    regulator: &dyn Regulator,
    v_in: Volts,
    vdd: Volts,
) -> Option<Joules> {
    let p_cpu = cpu.pmax(vdd)?;
    let e_cyc = cpu.ecycle(vdd);
    if !e_cyc.joules().is_finite() {
        return None;
    }
    let eta = regulator.efficiency(v_in, vdd, p_cpu).ok()?;
    if eta.ratio() <= 0.0 {
        return None;
    }
    Some(Joules::new(e_cyc.joules() / eta.ratio()))
}

/// Finds the holistic MEP of eq. 5 over the processor window, with the
/// rail held at `v_in` (normally the cell's MPP voltage).
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when no voltage in the window is
/// servable through the regulator, and propagates solver failures.
pub fn system_mep(
    cpu: &impl CpuEval,
    regulator: &dyn Regulator,
    v_in: Volts,
) -> Result<SystemMep, CoreError> {
    let (v, e) = solve::minimize(
        |v| match system_energy_per_cycle(cpu, regulator, v_in, Volts::new(v)) {
            Some(e) => e.joules(),
            None => f64::NAN,
        },
        cpu.processor().v_min().volts(),
        cpu.processor().v_max().volts(),
        // 128 grid points step ~5 mV across the processor window — still
        // several samples per SC ratio-cliff basin (those are tens of mV
        // wide), at half the scan cost of the previous 256.
        128,
    )
    .map_err(|err| match err {
        hems_units::SolveError::NonFiniteObjective { .. } => CoreError::infeasible(
            "system mep",
            format!("no supply voltage is servable from rail {v_in}"),
        ),
        other => CoreError::from(other),
    })?;
    Ok(SystemMep {
        vdd: Volts::new(v),
        energy_per_cycle: Joules::new(e),
        v_in,
    })
}

/// Finds the holistic MEP subject to a minimum-performance floor.
///
/// Section V assumes "performance is not a constraint"; real deployments
/// often do have a throughput floor (e.g. one frame per sensing period).
/// This variant restricts the search to voltages whose maximum clock
/// reaches `f_min`.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when the floor exceeds the processor's
/// capability or nothing in the constrained window is servable.
pub fn system_mep_with_floor(
    cpu: &impl CpuEval,
    regulator: &dyn Regulator,
    v_in: Volts,
    f_min: hems_units::Hertz,
) -> Result<SystemMep, CoreError> {
    let proc = cpu.processor();
    let v_floor = proc
        .frequency_model()
        .voltage_for_frequency(f_min, proc.v_max())
        .map_err(|e| CoreError::component("processor", e))?
        .max(proc.v_min());
    if v_floor >= proc.v_max() {
        return Err(CoreError::infeasible(
            "constrained system mep",
            format!("performance floor pins the window shut at {v_floor}"),
        ));
    }
    let (v, e) = solve::minimize(
        |v| match system_energy_per_cycle(cpu, regulator, v_in, Volts::new(v)) {
            Some(e) => e.joules(),
            None => f64::NAN,
        },
        v_floor.volts(),
        proc.v_max().volts(),
        128,
    )
    .map_err(|err| match err {
        hems_units::SolveError::NonFiniteObjective { .. } => CoreError::infeasible(
            "constrained system mep",
            format!("no supply voltage above {v_floor} is servable from rail {v_in}"),
        ),
        other => CoreError::from(other),
    })?;
    Ok(SystemMep {
        vdd: Volts::new(v),
        energy_per_cycle: Joules::new(e),
        v_in,
    })
}

/// Computes the full conventional-vs-holistic comparison of Fig. 7b.
///
/// # Errors
///
/// Propagates failures of either MEP search, and returns
/// [`CoreError::Infeasible`] when the conventional MEP voltage is not even
/// servable through the regulator.
pub fn compare_meps(
    cpu: &impl CpuEval,
    regulator: &dyn Regulator,
    v_in: Volts,
) -> Result<MepComparison, CoreError> {
    let conventional = cpu
        .processor()
        .conventional_mep()
        .map_err(|e| CoreError::component("processor", e))?;
    let holistic = system_mep(cpu, regulator, v_in)?;
    let system_energy_at_conventional =
        system_energy_per_cycle(cpu, regulator, v_in, conventional.vdd).ok_or_else(|| {
            CoreError::infeasible(
                "mep comparison",
                format!(
                    "conventional MEP voltage {} not servable from rail {v_in}",
                    conventional.vdd
                ),
            )
        })?;
    Ok(MepComparison {
        conventional,
        holistic,
        system_energy_at_conventional,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_cpu::Microprocessor;
    use hems_regulator::{BuckRegulator, Ldo, ScRegulator};

    fn rail() -> Volts {
        // Full-sun MPP voltage of the paper's cell, ~1.1 V.
        Volts::new(1.1)
    }

    #[test]
    fn holistic_mep_shifts_upward_with_sc_regulator() {
        // Paper Fig. 7b: "The minimum energy voltage is shifted higher than
        // conventional method with SC and buck regulator cases by up to
        // 0.1V".
        let cpu = Microprocessor::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        let cmp = compare_meps(&cpu, &sc, rail()).unwrap();
        let shift = cmp.voltage_shift();
        assert!(
            shift > Volts::from_milli(30.0) && shift <= Volts::from_milli(120.0),
            "shift {} (paper: up to 0.1 V)",
            shift
        );
    }

    #[test]
    fn sc_savings_match_fig7b_band() {
        // Paper: "up to 31% energy reduction compared with using
        // conventional MEP".
        let cpu = Microprocessor::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        let cmp = compare_meps(&cpu, &sc, rail()).unwrap();
        let savings = cmp.energy_savings();
        assert!(
            (0.15..0.40).contains(&savings),
            "savings {:.1}% (paper: up to 31%)",
            savings * 100.0
        );
    }

    #[test]
    fn buck_also_shifts_but_ldo_barely_moves() {
        let cpu = Microprocessor::paper_65nm();
        let buck_cmp = compare_meps(&cpu, &BuckRegulator::paper_65nm(), rail()).unwrap();
        assert!(buck_cmp.voltage_shift() > Volts::from_milli(20.0));
        // The LDO's efficiency is linear in V, which nearly cancels in the
        // optimization: the MEP moves only slightly ("LDO does not bring
        // any efficiency improvement").
        let ldo_cmp = compare_meps(&cpu, &Ldo::paper_65nm(), rail()).unwrap();
        assert!(
            ldo_cmp.voltage_shift().abs() < buck_cmp.voltage_shift(),
            "LDO shift {} vs buck {}",
            ldo_cmp.voltage_shift(),
            buck_cmp.voltage_shift()
        );
    }

    #[test]
    fn system_energy_exceeds_cpu_energy() {
        let cpu = Microprocessor::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        for v in [0.5, 0.6, 0.8] {
            let vdd = Volts::new(v);
            let sys = system_energy_per_cycle(&cpu, &sc, rail(), vdd).unwrap();
            let raw = cpu.energy_per_cycle(vdd);
            assert!(sys > raw, "at {vdd}: sys {sys:?} <= raw {raw:?}");
        }
    }

    #[test]
    fn unservable_points_are_none() {
        let cpu = Microprocessor::paper_65nm();
        let buck = BuckRegulator::paper_65nm();
        // The buck cannot regulate above 0.8 V.
        assert!(system_energy_per_cycle(&cpu, &buck, rail(), Volts::new(0.9)).is_none());
        // Or below the CPU window.
        assert!(system_energy_per_cycle(&cpu, &buck, rail(), Volts::new(0.2)).is_none());
    }

    #[test]
    fn holistic_mep_is_a_true_minimum() {
        let cpu = Microprocessor::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        let mep = system_mep(&cpu, &sc, rail()).unwrap();
        for dv in [-0.05, 0.05, 0.15] {
            let v = mep.vdd + Volts::new(dv);
            if let Some(e) = system_energy_per_cycle(&cpu, &sc, rail(), v) {
                assert!(e + Joules::new(1e-18) >= mep.energy_per_cycle);
            }
        }
    }

    #[test]
    fn constrained_mep_respects_the_floor() {
        let cpu = Microprocessor::paper_65nm();
        let sc = ScRegulator::paper_65nm();
        let unconstrained = system_mep(&cpu, &sc, rail()).unwrap();
        // A floor below the MEP's own frequency changes nothing.
        let f_at_mep = cpu.max_frequency(unconstrained.vdd);
        let loose = system_mep_with_floor(&cpu, &sc, rail(), f_at_mep * 0.5).unwrap();
        assert!((loose.vdd - unconstrained.vdd).abs() < Volts::from_milli(5.0));
        // A floor above it pushes the MEP up to the constraint boundary.
        let tight = system_mep_with_floor(&cpu, &sc, rail(), f_at_mep * 3.0).unwrap();
        assert!(tight.vdd > unconstrained.vdd);
        assert!(cpu.max_frequency(tight.vdd) >= f_at_mep * 3.0 * 0.999);
        assert!(tight.energy_per_cycle >= unconstrained.energy_per_cycle);
        // An impossible floor is infeasible.
        assert!(
            system_mep_with_floor(&cpu, &sc, rail(), hems_units::Hertz::from_giga(2.0)).is_err()
        );
    }

    #[test]
    fn rail_too_low_is_infeasible() {
        let cpu = Microprocessor::paper_65nm();
        let buck = BuckRegulator::paper_65nm();
        // Rail below the buck's minimum output: nothing servable.
        assert!(system_mep(&cpu, &buck, Volts::new(0.2)).is_err());
    }
}
