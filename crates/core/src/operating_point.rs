//! The unregulated operating point (paper Fig. 6a).
//!
//! With no regulator, the processor's supply rail *is* the solar node, so
//! the system settles where the processor's max-speed power-voltage curve
//! crosses the cell's power-voltage curve — inevitably below the cell's
//! maximum power point, which is the inefficiency the regulated holistic
//! plan (eqs. 1–4) removes.

use crate::{CoreError, CpuEval, PvSource};
use hems_units::{solve, Hertz, Volts, Watts};

/// The steady-state operating point of a direct solar→processor connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnregulatedPoint {
    /// The settled supply/node voltage.
    pub vdd: Volts,
    /// The clock speed achieved there.
    pub frequency: Hertz,
    /// The power flowing at the intersection.
    pub power: Watts,
}

/// Solves for the unregulated operating point of `cpu` directly on `cell`.
///
/// Generic over [`PvSource`]/[`CpuEval`]: pass the exact models for the
/// reference answer or the LUTs for the fast path.
///
/// The intersection is searched on the overlap of the processor window and
/// the cell's voltage range. The balance `P_solar(V) - P_cpu(V)` is
/// positive at low voltage (cell can over-supply a slow core) and negative
/// at high voltage (fast core out-draws the cell), so a sign change brackets
/// the root.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when the windows do not overlap or the
/// cell cannot power the core even at the minimum operating voltage.
pub fn unregulated_point(
    cell: &impl PvSource,
    cpu: &impl CpuEval,
) -> Result<UnregulatedPoint, CoreError> {
    let voc = cell.source_voc();
    let lo = cpu.processor().v_min();
    let hi = cpu.processor().v_max().min(voc);
    if lo >= hi {
        return Err(CoreError::infeasible(
            "unregulated operating point",
            format!("processor window starts at {lo} but cell tops out at {voc}"),
        ));
    }
    let balance = |v: f64| {
        let v = Volts::new(v);
        let p_solar = cell.source_power(v).watts();
        let p_cpu = cpu.pmax(v).map(|p| p.watts()).unwrap_or(f64::INFINITY);
        p_solar - p_cpu
    };
    if balance(lo.volts()) <= 0.0 {
        return Err(CoreError::infeasible(
            "unregulated operating point",
            format!(
                "cell cannot sustain the core even at {lo} ({:.3} mW short)",
                -balance(lo.volts()) * 1e3
            ),
        ));
    }
    if balance(hi.volts()) >= 0.0 {
        // The core never out-draws the cell inside its window: it simply
        // runs at its maximum voltage.
        let vdd = cpu.processor().v_max().min(hi);
        let frequency = cpu.fmax(vdd);
        return Ok(UnregulatedPoint {
            vdd,
            frequency,
            power: cpu.pmax(vdd).ok_or_else(|| {
                CoreError::infeasible(
                    "unregulated operating point",
                    format!("window top {vdd} is outside the processor window"),
                )
            })?,
        });
    }
    let v = solve::bisect(balance, lo.volts(), hi.volts(), 1e-9)?;
    let vdd = Volts::new(v);
    Ok(UnregulatedPoint {
        vdd,
        frequency: cpu.fmax(vdd),
        power: cell.source_power(vdd),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_cpu::Microprocessor;
    use hems_pv::{Irradiance, SolarCell};

    #[test]
    fn full_sun_intersection_sits_below_mpp() {
        let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        let cpu = Microprocessor::paper_65nm();
        let point = unregulated_point(&cell, &cpu).unwrap();
        let mpp = cell.mpp().unwrap();
        // Fig. 6a: the unregulated point is well below the cell MPP voltage
        // and extracts noticeably less than the MPP power.
        assert!(point.vdd < mpp.voltage);
        assert!(point.power < mpp.power);
        assert!(
            point.vdd.volts() > 0.5 && point.vdd.volts() < 0.6,
            "intersection at {}",
            point.vdd
        );
        // At the intersection supply and demand match.
        let p_cpu = cpu.power_at_max_speed(point.vdd).unwrap();
        assert!((p_cpu.watts() - point.power.watts()).abs() < 1e-6);
    }

    #[test]
    fn lower_light_lowers_the_intersection() {
        let cpu = Microprocessor::paper_65nm();
        let full = unregulated_point(&SolarCell::kxob22(Irradiance::FULL_SUN), &cpu).unwrap();
        let quarter = unregulated_point(&SolarCell::kxob22(Irradiance::QUARTER_SUN), &cpu).unwrap();
        assert!(quarter.vdd < full.vdd);
        assert!(quarter.power < full.power);
        assert!(quarter.frequency < full.frequency);
    }

    #[test]
    fn darkness_is_infeasible() {
        let cpu = Microprocessor::paper_65nm();
        let err = unregulated_point(&SolarCell::kxob22(Irradiance::DARK), &cpu).unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
    }

    #[test]
    fn very_dim_light_cannot_sustain_the_core() {
        let cpu = Microprocessor::paper_65nm();
        let cell = SolarCell::kxob22(Irradiance::new(0.005).unwrap());
        assert!(unregulated_point(&cell, &cpu).is_err());
    }

    #[test]
    fn oversized_array_runs_core_at_window_top() {
        // A cell so strong the core never out-draws it: settles at v_max.
        use hems_pv::SolarCellModel;
        use hems_units::{Amps, Ohms};
        let model =
            SolarCellModel::new(Amps::new(2.0), Volts::new(1.5), Volts::new(0.2), Ohms::ZERO)
                .unwrap();
        let cell = SolarCell::new(model, Irradiance::FULL_SUN);
        let cpu = Microprocessor::paper_65nm();
        let point = unregulated_point(&cell, &cpu).unwrap();
        assert_eq!(point.vdd, cpu.v_max());
    }
}
