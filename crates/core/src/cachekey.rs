//! Canonical cache keys for configurations and plan queries.
//!
//! The scenario-planning service (`hems-serve`) answers repeated questions
//! about identical systems; a plan cache needs a key that is **total**
//! (every representable configuration hashes without panicking) and
//! **stable** (equal configurations always produce equal keys, a perturbed
//! field a different one). This module provides that key as a 64-bit
//! FNV-1a hash over a *canonical byte stream*:
//!
//! * every field is preceded by a length-prefixed tag, so adjacent fields
//!   can never alias each other's bytes;
//! * floats are written as IEEE-754 bit patterns after normalizing the two
//!   ambiguous encodings (`-0.0` → `+0.0`, every NaN → the canonical quiet
//!   NaN), so tolerance-free float equality matches key equality;
//! * lists are length-prefixed;
//! * opaque component models (the solar cell, capacitor, regulator and
//!   processor, whose fields are private to their crates) contribute their
//!   derived `Debug` rendering — which prints every field with
//!   shortest-round-trip float formatting, so it distinguishes any two
//!   models that differ in a parameter and is stable for equal models.
//!
//! Keys are *not* portable across releases (a renamed field changes the
//! `Debug` rendering) — they index in-process caches, not durable storage.
//! Collisions are possible in principle for a 64-bit key; callers that
//! cannot tolerate them should store the canonicalized inputs alongside
//! the value, but for a plan cache a ~10⁻¹⁹ per-pair collision rate is
//! far below the noise floor of the models themselves.

use hems_sim::sweep::SweepPolicy;
use hems_sim::SystemConfig;
use hems_units::{Seconds, Volts};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a hasher over the canonical byte stream.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u64,
}

impl KeyHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> KeyHasher {
        KeyHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds an unsigned integer (little-endian bytes).
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Feeds a float's normalized bit pattern: `-0.0` hashes as `+0.0`
    /// and every NaN as the canonical quiet NaN, so values that compare
    /// equal (or are equally poisonous) key identically.
    pub fn write_f64(&mut self, value: f64) {
        let canonical = if value == 0.0 {
            0.0
        } else if value.is_nan() {
            f64::NAN
        } else {
            value
        };
        self.write_u64(canonical.to_bits());
    }

    /// Feeds a length-prefixed UTF-8 string (the prefix prevents adjacent
    /// strings from aliasing each other's bytes).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a field or variant tag — an alias of [`KeyHasher::write_str`]
    /// named for intent at call sites.
    pub fn write_tag(&mut self, tag: &str) {
        self.write_str(tag);
    }

    /// Feeds an opaque component via its `Debug` rendering (see the module
    /// docs for why this is canonical enough for in-process keys).
    pub fn write_debug(&mut self, value: &impl std::fmt::Debug) {
        self.write_str(&format!("{value:?}"));
    }

    /// The accumulated 64-bit key.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for KeyHasher {
    fn default() -> KeyHasher {
        KeyHasher::new()
    }
}

/// Types that can contribute a canonical byte stream to a [`KeyHasher`].
pub trait Canonical {
    /// Feeds this value's canonical representation into `hasher`.
    fn canonicalize(&self, hasher: &mut KeyHasher);
}

impl Canonical for SystemConfig {
    fn canonicalize(&self, hasher: &mut KeyHasher) {
        hasher.write_tag("SystemConfig");
        hasher.write_tag("cell");
        hasher.write_debug(&self.cell);
        hasher.write_tag("capacitor");
        hasher.write_debug(&self.capacitor);
        hasher.write_tag("regulator");
        hasher.write_debug(&self.regulator);
        hasher.write_tag("cpu");
        hasher.write_debug(&self.cpu);
        hasher.write_tag("comparator_thresholds");
        hasher.write_u64(self.comparator_thresholds.len() as u64);
        for v in &self.comparator_thresholds {
            hasher.write_f64(v.volts());
        }
        hasher.write_tag("comparator_hysteresis");
        hasher.write_f64(self.comparator_hysteresis.volts());
        hasher.write_tag("v_restart");
        hasher.write_f64(self.v_restart.volts());
        hasher.write_tag("p_standby");
        hasher.write_f64(self.p_standby.watts());
        hasher.write_tag("dvfs_transition");
        match &self.dvfs_transition {
            None => hasher.write_tag("none"),
            Some(t) => {
                hasher.write_tag("some");
                hasher.write_f64(t.latency.seconds());
                hasher.write_f64(t.energy.joules());
            }
        }
        hasher.write_tag("dt");
        hasher.write_f64(self.dt.seconds());
    }
}

impl Canonical for SweepPolicy {
    fn canonicalize(&self, hasher: &mut KeyHasher) {
        match self {
            SweepPolicy::FixedVoltage {
                vdd,
                clock_fraction,
            } => {
                hasher.write_tag("FixedVoltage");
                hasher.write_f64(vdd.volts());
                hasher.write_f64(*clock_fraction);
            }
            SweepPolicy::DutyCycle { v_run, v_stop, vdd } => {
                hasher.write_tag("DutyCycle");
                hasher.write_f64(v_run.volts());
                hasher.write_f64(v_stop.volts());
                hasher.write_f64(vdd.volts());
            }
        }
    }
}

/// The canonical key of one system configuration.
pub fn config_key(config: &SystemConfig) -> u64 {
    let mut hasher = KeyHasher::new();
    config.canonicalize(&mut hasher);
    hasher.finish()
}

/// The canonical key of one simulation scenario: a configuration plus the
/// control policy and run settings that determine its transient.
pub fn scenario_key(
    config: &SystemConfig,
    policy: &SweepPolicy,
    v_initial: Volts,
    duration: Seconds,
) -> u64 {
    let mut hasher = KeyHasher::new();
    config.canonicalize(&mut hasher);
    hasher.write_tag("policy");
    policy.canonicalize(&mut hasher);
    hasher.write_tag("v_initial");
    hasher.write_f64(v_initial.volts());
    hasher.write_tag("duration");
    hasher.write_f64(duration.seconds());
    hasher.finish()
}

/// The position of one virtual node on the 64-bit consistent-hash ring:
/// the canonical FNV-1a hash of `(shard, replica)` under a fixed domain
/// tag. The router places [`RING_REPLICAS`] of these per shard so key
/// ranges split evenly; the same helper in tests reconstructs the ring
/// bit-for-bit, which is what makes key-affinity assertions exact.
pub fn ring_point(shard: u64, replica: u64) -> u64 {
    let mut hasher = KeyHasher::new();
    hasher.write_tag("hems-ring-v1");
    hasher.write_u64(shard);
    hasher.write_u64(replica);
    hasher.finish()
}

/// Virtual nodes per shard on the consistent-hash ring. 64 replicas keep
/// the largest/smallest shard key-range ratio under ~1.4 for small shard
/// counts while the ring still fits in a few cache lines.
pub const RING_REPLICAS: u64 = 64;

/// Mixes a request key before ring lookup (splitmix64 finalizer). Cache
/// keys are FNV of structured fields and can share low-bit patterns
/// across adjacent scenarios; the finalizer spreads them uniformly around
/// the ring so shard load tracks key popularity, not key arithmetic.
pub fn ring_mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_points_are_stable_and_distinct() {
        // Pinned values: the ring layout is part of the router's
        // key-affinity contract, so a hash change must be deliberate.
        assert_eq!(ring_point(0, 0), ring_point(0, 0));
        let mut points: Vec<u64> = (0..4u64)
            .flat_map(|s| (0..RING_REPLICAS).map(move |r| ring_point(s, r)))
            .collect();
        let total = points.len();
        points.sort_unstable();
        points.dedup();
        assert_eq!(points.len(), total, "no vnode collisions at 4 shards");
    }

    #[test]
    fn ring_mix_spreads_adjacent_keys() {
        // Sequential keys must not land in the same ring region: check
        // the mixed values differ in their high bits (the ring lookup
        // is a binary search on the full 64-bit value).
        let a = ring_mix(1) >> 56;
        let b = ring_mix(2) >> 56;
        let c = ring_mix(3) >> 56;
        assert!(!(a == b && b == c), "high bytes all equal: {a} {b} {c}");
        assert_eq!(ring_mix(42), ring_mix(42));
    }

    #[test]
    fn equal_configs_key_equal() {
        let a = SystemConfig::paper_sc_system().unwrap();
        let b = a.clone();
        assert_eq!(config_key(&a), config_key(&b));
    }

    #[test]
    fn each_scalar_field_reaches_the_key() {
        let base = SystemConfig::paper_sc_system().unwrap();
        let k0 = config_key(&base);
        let mut dt = base.clone();
        dt.dt = Seconds::from_micro(51.0);
        assert_ne!(config_key(&dt), k0, "dt must reach the key");
        let mut restart = base.clone();
        restart.v_restart = Volts::new(0.61);
        assert_ne!(config_key(&restart), k0, "v_restart must reach the key");
        let mut thresholds = base.clone();
        thresholds.comparator_thresholds.pop();
        assert_ne!(config_key(&thresholds), k0, "threshold list must reach");
    }

    #[test]
    fn component_swap_reaches_the_key() {
        let sc = SystemConfig::paper_sc_system().unwrap();
        let ldo = SystemConfig::paper_ldo_system().unwrap();
        assert_ne!(config_key(&sc), config_key(&ldo));
    }

    #[test]
    fn zero_signs_are_normalized_but_values_distinguish() {
        let mut a = KeyHasher::new();
        a.write_f64(0.0);
        let mut b = KeyHasher::new();
        b.write_f64(-0.0);
        assert_eq!(a.finish(), b.finish(), "-0.0 and +0.0 compare equal");
        let mut c = KeyHasher::new();
        c.write_f64(1e-300);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn tags_prevent_adjacent_field_aliasing() {
        // ("ab", "c") and ("a", "bc") must not collide: the length prefix
        // keeps the byte streams distinct.
        let mut a = KeyHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = KeyHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn policy_variants_and_fields_distinguish() {
        let fixed = SweepPolicy::paper_fixed();
        let duty = SweepPolicy::paper_duty_cycle();
        let key = |p: &SweepPolicy| {
            let mut h = KeyHasher::new();
            p.canonicalize(&mut h);
            h.finish()
        };
        assert_ne!(key(&fixed), key(&duty));
        let mut slower = fixed.clone();
        if let SweepPolicy::FixedVoltage { clock_fraction, .. } = &mut slower {
            *clock_fraction = 0.5;
        }
        assert_ne!(key(&fixed), key(&slower));
    }
}
