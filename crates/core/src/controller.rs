//! The holistic runtime controller (paper Sections VI–VII, Fig. 11b).
//!
//! [`HolisticController`] implements [`hems_sim::Controller`] and combines
//! every mechanism the paper proposes:
//!
//! * **time-based MPP tracking** — the comparator/timer scheme of
//!   Section VI-A keeps the solar node at the lookup-table MPP voltage by
//!   modulating DVFS;
//! * **low-light bypass** — when the estimated input power falls below the
//!   crossover of Section IV-B, the regulator is shorted out; periodic
//!   open-node probes detect when the light returns;
//! * **holistic-MEP operation** — [`Mode::MinEnergy`] runs at the system
//!   MEP of eq. 5 (computed lazily from the system models on first use),
//!   duty-cycling through bypass and sleep as the node discharges;
//! * **sprinting under deadlines** — [`Mode::Deadline`] runs slow-then-fast
//!   (eqs. 12–13) and bypasses the regulator at the end of the discharge,
//!   reproducing the measured waveform of Fig. 11b.

use crate::mep;
use hems_cpu::DvfsLadder;
use hems_mppt::{MppTracker, Observation, TimeBasedTracker};
use hems_regulator::Regulator;
use hems_sim::{ControlDecision, Controller, SystemView};
use hems_units::{Seconds, Volts, Watts};

/// Operating objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Maximize sustained clock speed (Section IV: eqs. 1–4 at runtime).
    MaxPerformance,
    /// Minimize energy per cycle (Section V: run at the holistic MEP).
    MinEnergy,
    /// Finish the queued work by `deadline` using the sprinting schedule.
    Deadline {
        /// Absolute deadline.
        deadline: Seconds,
        /// Sprint factor β in `[0, 1)`.
        beta: f64,
    },
}

/// Tunables of the holistic controller.
#[derive(Debug, Clone, PartialEq)]
pub struct HolisticConfig {
    /// The operating objective.
    pub mode: Mode,
    /// DVFS voltage ladder.
    pub ladder: DvfsLadder,
    /// How often the MPPT feedback replans.
    pub control_period: Seconds,
    /// Estimated input power below which bypass engages (low-light rule).
    pub bypass_entry_power: Watts,
    /// While bypassed, how often to float the node and probe the light.
    pub probe_period: Seconds,
    /// How long each probe floats the node.
    pub probe_duration: Seconds,
    /// Probe voltage above which the light is deemed restored (the node
    /// floats toward `Voc`, which measures irradiance directly).
    pub bypass_exit_voltage: Volts,
    /// Node voltage to recharge to before waking from a sleep episode.
    pub wake_voltage: Volts,
    /// How often [`Mode::MaxPerformance`] forces a fresh eq. 7 measurement
    /// when the node has sat above the comparators with no natural
    /// crossings (a stale MPP target otherwise persists indefinitely).
    pub recalibration_period: Seconds,
    /// Optional throughput floor for [`Mode::MinEnergy`]: the MEP search is
    /// restricted to voltages whose clock reaches this rate (see
    /// [`crate::mep::system_mep_with_floor`]). `None` reproduces the
    /// paper's unconstrained Section V operation.
    pub performance_floor: Option<hems_units::Hertz>,
}

impl HolisticConfig {
    /// Paper-calibrated defaults for a given mode: 25 mV ladder, 0.5 ms
    /// control period, bypass below ≈ 3 mW estimated input (the quarter-sun
    /// crossover of Fig. 7a), 20 ms probes every 500 ms, exit at 1.25 V
    /// float (≈ 30 % sun), wake at 1.0 V.
    pub fn paper_default(mode: Mode) -> HolisticConfig {
        HolisticConfig {
            mode,
            // Finer than the chip's coarse characterization ladder: 25 mV
            // rungs keep the quantized feedback close to the continuous
            // optimum of eqs. 1-4.
            ladder: DvfsLadder::uniform(Volts::new(0.45), Volts::new(1.0), 23)
                // hems-lint: allow(panic, reason = "fixed paper constants, validated by unit tests")
                .expect("reference ladder is valid"),
            control_period: Seconds::from_micro(500.0),
            bypass_entry_power: Watts::from_milli(3.0),
            probe_period: Seconds::from_milli(500.0),
            probe_duration: Seconds::from_milli(20.0),
            bypass_exit_voltage: Volts::new(1.25),
            wake_voltage: Volts::new(1.0),
            recalibration_period: Seconds::from_milli(1000.0),
            performance_floor: None,
        }
    }
}

/// The paper's holistic energy-management policy.
///
/// Modeling note: the controller's state (MPP target, PD state, bypass
/// latch) is treated as living in the always-on supervisor domain — the
/// board-level comparator/clock-generator feedback of the paper's Fig. 10
/// — so it survives processor brownouts. Software-only state would be lost
/// at every power failure; see `hems-intermittent` for that regime.
#[derive(Debug)]
pub struct HolisticController {
    config: HolisticConfig,
    tracker: TimeBasedTracker,
    next_control: Seconds,
    bypassed: bool,
    probe_until: Option<Seconds>,
    next_probe: Seconds,
    sleeping: bool,
    mep_vdd: Option<Volts>,
    schedule_start: Option<Seconds>,
    last_error: f64,
    v_target: Volts,
    next_recalibration: Seconds,
    v_target_ema: Volts,
    recal_phase: Option<RecalPhase>,
    recal_phase_started: Seconds,
    recal_saw_measurement: bool,
}

/// Phases of an active MPP re-measurement (see `decide_max_performance`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum RecalPhase {
    /// Load shed; the node climbs above the comparator ladder.
    Climb,
    /// Constant raised draw; the node falls through V1 and V2, producing a
    /// clean eq. 7 estimate.
    Dip,
}

impl HolisticController {
    /// Builds a controller with the paper's tracker and the given config.
    pub fn new(config: HolisticConfig) -> HolisticController {
        let next_probe = config.probe_period;
        HolisticController {
            config,
            tracker: TimeBasedTracker::paper_default(),
            next_control: Seconds::ZERO,
            bypassed: false,
            probe_until: None,
            next_probe,
            sleeping: false,
            mep_vdd: None,
            schedule_start: None,
            last_error: f64::INFINITY,
            v_target: Volts::new(0.5),
            next_recalibration: Seconds::ZERO,
            v_target_ema: Volts::new(0.5),
            recal_phase: None,
            recal_phase_started: Seconds::ZERO,
            recal_saw_measurement: false,
        }
    }

    /// Paper defaults for a mode.
    pub fn paper_default(mode: Mode) -> HolisticController {
        HolisticController::new(HolisticConfig::paper_default(mode))
    }

    /// Replaces the MPP tracker (e.g. with different comparator thresholds).
    pub fn with_tracker(mut self, tracker: TimeBasedTracker) -> Self {
        self.tracker = tracker;
        self
    }

    /// `true` while the regulator is bypassed.
    pub fn is_bypassed(&self) -> bool {
        self.bypassed
    }

    /// The MPPT target for the solar node.
    pub fn mppt_target(&self) -> Volts {
        self.tracker.target()
    }

    /// Lazily computes and caches the holistic MEP voltage from the
    /// system models in `view`, snapped to the ladder.
    fn mep_vdd(&mut self, view: &SystemView<'_>) -> Volts {
        if let Some(v) = self.mep_vdd {
            return v;
        }
        let v_in = self.tracker.target();
        let solved = match self.config.performance_floor {
            Some(floor) => mep::system_mep_with_floor(view.cpu, view.regulator, v_in, floor),
            None => mep::system_mep(view.cpu, view.regulator, v_in),
        };
        let v = solved.map(|m| m.vdd).unwrap_or_else(|_| {
            view.cpu
                .conventional_mep()
                .map(|m| m.vdd)
                .unwrap_or(view.cpu.v_min())
        });
        let snapped = self.config.ladder.nearest(v);
        self.mep_vdd = Some(snapped);
        snapped
    }

    /// The node-voltage target the feedback holds: the tracker's MPP
    /// estimate, raised onto the nearest efficient conversion boundary when
    /// that costs little harvest.
    ///
    /// The P-V curve is flat at the MPP, but a switched-capacitor
    /// converter's efficiency is saw-toothed in its input voltage: sitting
    /// a few millivolts on the wrong side of a ratio boundary costs a whole
    /// ratio step (e.g. rail 0.998 V feeding a 0.5 V core falls off 2:1
    /// onto 3:2, -17 % efficiency). Probing the regulator at candidate
    /// rails just above `1.5x` and `2x` the chosen rung and taking any
    /// >5 % efficiency win for <10 % of rail movement is the fully
    /// > holistic completion of the paper's argument.
    fn effective_target(&self, view: &SystemView<'_>) -> Volts {
        let base = self.tracker.target();
        // The probe rung follows a slow average of the operating point so
        // the boost decision cannot ping-pong with the fast PD state, and
        // the probe power is fixed for the same reason.
        let vdd = self
            .config
            .ladder
            .ceil(self.v_target_ema)
            .min(view.cpu.v_max());
        let p_probe = hems_units::Watts::from_milli(5.0);
        let eta_at = |rail: Volts| {
            view.regulator
                .efficiency(rail, vdd, p_probe)
                .map(|e| e.ratio())
                .unwrap_or(0.0)
        };
        let eta_base = eta_at(base);
        let mut best = base;
        let mut best_eta = eta_base * 1.05; // demand a real improvement
        for factor in [1.5, 2.0] {
            let candidate = vdd * (factor * 1.01);
            if candidate > base && candidate < base * 1.10 {
                let eta = eta_at(candidate);
                if eta > best_eta {
                    best = candidate;
                    best_eta = eta;
                }
            }
        }
        best
    }

    /// Shared: feed the tracker, maintain bypass entry, handle probes.
    /// Returns `Some(decision)` when the bypass/probe machinery preempts
    /// the mode logic.
    fn bypass_machinery(&mut self, view: &SystemView<'_>) -> Option<ControlDecision> {
        // Feed the time-based tracker every step (crossings are rare).
        let mut obs = Observation::basic(
            view.now,
            view.v_solar,
            view.last_p_cpu,
            view.last_efficiency,
        );
        obs.crossings = view.crossings.to_vec();
        self.tracker.update(&obs);

        if self.bypassed {
            // Probe windows: float the node, read the light off its Voc.
            if let Some(until) = self.probe_until {
                if view.now >= until {
                    self.probe_until = None;
                    self.next_probe = view.now + self.config.probe_period;
                    if view.v_solar >= self.config.bypass_exit_voltage {
                        self.bypassed = false;
                        self.tracker.reset();
                        return None; // fall through to mode logic, regulated again
                    }
                } else {
                    return Some(ControlDecision::sleep());
                }
            } else if view.now >= self.next_probe {
                self.probe_until = Some(view.now + self.config.probe_duration);
                return Some(ControlDecision::sleep());
            }
            return Some(ControlDecision::bypass());
        }

        // Entry rule: a fresh low input-power estimate engages bypass.
        if let Some(est) = self.tracker.last_estimate() {
            if est < self.config.bypass_entry_power {
                self.bypassed = true;
                self.tracker.reset();
                self.next_probe = view.now + self.config.probe_period;
                return Some(ControlDecision::bypass());
            }
        }
        None
    }

    fn decide_max_performance(&mut self, view: &SystemView<'_>) -> ControlDecision {
        // Hold the operating point while a threshold-crossing measurement
        // is in flight: eq. 7 assumes constant drawn power over the window,
        // so the paper's scheme measures first and adjusts DVFS after.
        let measuring = self.tracker.is_measuring();
        // Periodic active recalibration: if the node has floated above the
        // comparator ladder with no crossings, the MPP target can be stale
        // (e.g. set at a different light level). Deliberately raise the
        // draw a notch and ride the node down through V1/V2 at *constant*
        // load, which is exactly the measurement eq. 7 wants.
        match self.recal_phase {
            Some(RecalPhase::Climb) => {
                if view.v_solar >= Volts::new(1.05) {
                    // High enough: switch to the constant-draw dip.
                    self.recal_phase = Some(RecalPhase::Dip);
                    self.recal_phase_started = view.now;
                    self.v_target = (self.v_target + Volts::from_milli(50.0))
                        .clamp(view.cpu.v_min(), view.cpu.v_max());
                } else if view.now - self.recal_phase_started > Seconds::from_milli(100.0) {
                    // The node cannot climb above the ladder: the light is
                    // very dim (Voc below ~1.05 V means < ~10 % sun). Abort
                    // and let the low-light machinery take over.
                    self.recal_phase = None;
                    self.next_recalibration = view.now + self.config.recalibration_period;
                } else {
                    return ControlDecision::sleep();
                }
            }
            Some(RecalPhase::Dip) => {
                if measuring {
                    self.recal_saw_measurement = true;
                } else if self.recal_saw_measurement {
                    // The armed V1->V2 window completed: estimate refreshed.
                    self.recal_phase = None;
                    self.recal_saw_measurement = false;
                    self.next_recalibration = view.now + self.config.recalibration_period;
                    self.v_target = (self.v_target - Volts::from_milli(50.0))
                        .clamp(view.cpu.v_min(), view.cpu.v_max());
                } else if view.now - self.recal_phase_started > Seconds::from_milli(100.0) {
                    // Draw not large enough to dip: push harder.
                    self.recal_phase_started = view.now;
                    self.v_target = (self.v_target + Volts::from_milli(50.0))
                        .clamp(view.cpu.v_min(), view.cpu.v_max());
                }
            }
            None => {
                if view.now >= self.next_recalibration && !measuring {
                    self.recal_phase = Some(RecalPhase::Climb);
                    self.recal_phase_started = view.now;
                }
            }
        }
        if self.recal_phase == Some(RecalPhase::Dip) {
            // Hold the raised draw constant through the dip.
            let vdd = self.config.ladder.ceil(self.v_target).min(view.cpu.v_max());
            let f_target = view.cpu.max_frequency(self.v_target);
            let f_max = view.cpu.max_frequency(vdd);
            let fraction = if f_max.is_positive() {
                (f_target / f_max).clamp(1e-3, 1.0)
            } else {
                1.0
            };
            return ControlDecision::regulated(vdd).at_clock_fraction(fraction);
        }
        if view.now >= self.next_control || !view.crossings.is_empty() {
            self.next_control = view.now + self.config.control_period;
            // Damped continuous feedback on a virtual operating voltage.
            // The voltage rungs are coarse — adjacent rungs near 0.5 V
            // differ by 2x in drawn power — so pure rung-stepping either
            // limit-cycles or parks far from balance. Instead we integrate
            // a *continuous* target `v_target`, realize it as the next rung
            // up with a reduced clock (clock division is fine-grained on
            // real silicon), and damp the integrator while the node error
            // is already shrinking on its own.
            let error = view.v_solar - self.effective_target(view);
            // PD feedback. The storage node integrates the draw mismatch
            // and the controller integrates the error, so a pure integral
            // loop is a double integrator and oscillates; the derivative
            // term damps it.
            let last = if self.last_error.is_finite() {
                Volts::new(self.last_error)
            } else {
                error
            };
            let derivative = error - last;
            self.last_error = error.volts();
            let delta = (error * 0.05 + derivative * 2.0)
                .clamp(Volts::from_milli(-25.0), Volts::from_milli(25.0));
            self.v_target = (self.v_target + delta).clamp(view.cpu.v_min(), view.cpu.v_max());
            self.v_target_ema = self.v_target_ema + (self.v_target - self.v_target_ema) * 0.02;
        }
        // Emergency load shed when the node nears the processor window.
        if view.v_solar < Volts::new(0.55) {
            self.v_target = view.cpu.v_min();
        }
        let vdd = self.config.ladder.ceil(self.v_target).min(view.cpu.v_max());
        let f_target = view.cpu.max_frequency(self.v_target);
        let f_max = view.cpu.max_frequency(vdd);
        let fraction = if f_max.is_positive() {
            (f_target / f_max).clamp(1e-3, 1.0)
        } else {
            1.0
        };
        ControlDecision::regulated(vdd).at_clock_fraction(fraction)
    }

    fn decide_min_energy(&mut self, view: &SystemView<'_>) -> ControlDecision {
        let vdd = self.mep_vdd(view);
        if self.sleeping {
            if view.v_solar >= self.config.wake_voltage {
                self.sleeping = false;
            } else {
                return ControlDecision::sleep();
            }
        }
        // Regulated at the holistic MEP while the rail supports it.
        let (lo, hi) = view.regulator.output_range(view.v_solar);
        if vdd >= lo && vdd <= hi {
            return ControlDecision::regulated(vdd);
        }
        // Rail too low to regulate: ride it directly while the core can.
        if view.v_solar >= view.cpu.v_min() {
            return ControlDecision::bypass();
        }
        // Drained: sleep until recharged.
        self.sleeping = true;
        ControlDecision::sleep()
    }

    fn decide_deadline(
        &mut self,
        view: &SystemView<'_>,
        deadline: Seconds,
        beta: f64,
    ) -> ControlDecision {
        let remaining = view.jobs.total_remaining();
        if remaining.count() <= 0.0 {
            return ControlDecision::sleep(); // done — conserve
        }
        // Plan against 95 % of the window: the self-correcting schedule
        // converges asymptotically, so a small margin turns "finishes in
        // the limit" into "finishes strictly before the deadline".
        let start = *self.schedule_start.get_or_insert(view.now);
        let planning_deadline = start + (deadline - start) * 0.95;
        let time_left = planning_deadline - view.now;
        if !time_left.is_positive() {
            // Past the planning window: flat out, damage control.
            return self.fastest_viable(view);
        }
        let f_nominal = remaining / time_left;
        // Sprint phasing: slow through the first half of the schedule, fast
        // through the second — and sprint early if the node has already
        // sagged below the comparator threshold, as in Fig. 11b's measured
        // waveform (slow 1.2→0.9 V, accelerate below 0.9 V).
        let halfway = start + (planning_deadline - start) * 0.5;
        let node_sagged = view.v_solar < Volts::new(0.9);
        let scale = if view.now < halfway && !node_sagged {
            1.0 - beta
        } else {
            1.0 + beta
        };
        let f_target = f_nominal * scale;
        let Ok(op) = view.cpu.point_for_frequency(f_target) else {
            return self.fastest_viable(view);
        };
        let vdd = self.config.ladder.ceil(op.vdd).min(view.cpu.v_max());
        let f_max = view.cpu.max_frequency(vdd);
        let fraction = if f_max.is_positive() {
            (f_target / f_max).clamp(1e-3, 1.0)
        } else {
            1.0
        };
        // End-of-discharge bypass: when the regulator can no longer build
        // the required vdd from the sagging rail, short it out and ride the
        // node down to the core's minimum (the +20 % operation extension).
        let (lo, hi) = view.regulator.output_range(view.v_solar);
        if vdd >= lo && vdd <= hi && view.v_solar > vdd {
            ControlDecision::regulated(vdd).at_clock_fraction(fraction)
        } else if view.v_solar >= view.cpu.v_min() {
            ControlDecision::bypass()
        } else {
            ControlDecision::sleep()
        }
    }

    fn fastest_viable(&self, view: &SystemView<'_>) -> ControlDecision {
        let (lo, hi) = view.regulator.output_range(view.v_solar);
        let vdd = view.cpu.v_max().min(hi);
        if vdd >= lo && vdd >= view.cpu.v_min() {
            ControlDecision::regulated(vdd)
        } else if view.v_solar >= view.cpu.v_min() {
            ControlDecision::bypass()
        } else {
            ControlDecision::sleep()
        }
    }
}

impl Controller for HolisticController {
    fn decide(&mut self, view: &SystemView<'_>) -> ControlDecision {
        if let Some(preempt) = self.bypass_machinery(view) {
            return preempt;
        }
        match self.config.mode {
            Mode::MaxPerformance => self.decide_max_performance(view),
            Mode::MinEnergy => self.decide_min_energy(view),
            Mode::Deadline { deadline, beta } => self.decide_deadline(view, deadline, beta),
        }
    }

    fn name(&self) -> &'static str {
        "holistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_pv::Irradiance;
    use hems_sim::{FixedVoltageController, Job, LightProfile, Simulation, SystemConfig};
    use hems_units::Cycles;

    fn sim_with(light: LightProfile, v0: f64) -> Simulation {
        let config = SystemConfig::paper_sc_system().unwrap();
        Simulation::new(config, light, Volts::new(v0)).unwrap()
    }

    #[test]
    fn max_performance_tracks_the_mpp() {
        let mut sim = sim_with(LightProfile::constant(Irradiance::FULL_SUN), 1.1);
        sim.enable_recorder(10);
        let mut ctl = HolisticController::paper_default(Mode::MaxPerformance);
        sim.run(&mut ctl, Seconds::from_milli(400.0));
        // The node oscillates around the full-sun MPP voltage (~1.1 V):
        // judge the time average, not one instant of the damped swing.
        let samples = sim.recorder().unwrap().samples();
        let tail = &samples[samples.len() / 2..];
        let mean_v: f64 = tail.iter().map(|s| s.v_solar.volts()).sum::<f64>() / tail.len() as f64;
        assert!(
            (mean_v - 1.1).abs() < 0.08,
            "node averaged {mean_v:.3} V, MPP is ~1.1 V"
        );
        assert_eq!(sim.events().brownouts(), 0);
    }

    #[test]
    fn max_performance_beats_naive_fixed_voltage() {
        // The headline claim: holistic operation extracts more compute from
        // the same light than a conventional fixed operating point.
        let run = |ctl: &mut dyn hems_sim::Controller| {
            let mut sim = sim_with(LightProfile::constant(Irradiance::FULL_SUN), 1.1);
            sim.run(ctl, Seconds::from_milli(500.0)).total_cycles
        };
        let mut holistic = HolisticController::paper_default(Mode::MaxPerformance);
        // A naive designer picks the conventional max-perf point ~0.7 V —
        // unsustainable, so the node collapses and browns out.
        let mut naive = FixedVoltageController::new(Volts::new(0.7));
        let holistic_cycles = run(&mut holistic);
        let naive_cycles = run(&mut naive);
        assert!(
            holistic_cycles.count() > naive_cycles.count(),
            "holistic {} <= naive {}",
            holistic_cycles.count(),
            naive_cycles.count()
        );
    }

    #[test]
    fn low_light_engages_bypass() {
        // Start bright, dim hard: the estimate falls below the 3 mW
        // threshold and the controller bypasses (Fig. 7a policy). (At
        // milder dimming levels the damped DVFS loop can legitimately shed
        // load fast enough to keep regulating — bypass is for light the
        // regulator's fixed losses cannot justify.)
        let light = LightProfile::step(
            Irradiance::FULL_SUN,
            Irradiance::new(0.15).unwrap(),
            Seconds::from_milli(100.0),
        );
        let mut sim = sim_with(light, 1.1);
        let mut ctl = HolisticController::paper_default(Mode::MaxPerformance);
        sim.run(&mut ctl, Seconds::from_milli(600.0));
        assert!(ctl.is_bypassed(), "controller should have bypassed");
        let engaged = sim
            .events()
            .filter(|k| matches!(k, hems_sim::EventKind::BypassEngaged))
            .count();
        assert!(engaged >= 1);
    }

    #[test]
    fn bypass_exits_when_light_returns() {
        let light = LightProfile::Step {
            before: Irradiance::QUARTER_SUN,
            after: Irradiance::FULL_SUN,
            at: Seconds::from_milli(600.0),
        };
        let mut sim = sim_with(light, 1.1);
        let mut ctl = HolisticController::paper_default(Mode::MaxPerformance);
        // Long enough to dim, probe, and recover (probes every 500 ms).
        sim.run(&mut ctl, Seconds::new(2.0));
        assert!(
            !ctl.is_bypassed(),
            "controller should have returned to regulated operation"
        );
    }

    #[test]
    fn min_energy_mode_runs_at_the_holistic_mep() {
        let mut sim = sim_with(LightProfile::constant(Irradiance::FULL_SUN), 1.1);
        sim.enable_recorder(10);
        let mut ctl = HolisticController::paper_default(Mode::MinEnergy);
        sim.run(&mut ctl, Seconds::from_milli(200.0));
        // The recorded vdd should sit at the holistic MEP (~0.5-0.6 V),
        // not at the conventional MEP (~0.46 V).
        let rec = sim.recorder().unwrap();
        let active: Vec<_> = rec
            .samples()
            .iter()
            .filter(|s| s.vdd.is_positive())
            .collect();
        assert!(!active.is_empty());
        let mean_vdd: f64 = active.iter().map(|s| s.vdd.volts()).sum::<f64>() / active.len() as f64;
        assert!(
            (0.48..0.65).contains(&mean_vdd),
            "MinEnergy ran at {mean_vdd:.3} V"
        );
    }

    #[test]
    fn deadline_mode_finishes_on_time_with_sprinting() {
        // Fig. 11b scenario: light dims right as a job must complete. The
        // job is sized so the capacitor + dimmed harvest can just cover it.
        let light = LightProfile::step(
            Irradiance::FULL_SUN,
            Irradiance::HALF_SUN,
            Seconds::from_milli(10.0),
        );
        let mut sim = sim_with(light, 1.2);
        let deadline = Seconds::from_milli(50.0);
        sim.enqueue(Job::with_deadline(Cycles::new(2.0e6), deadline));
        let mut ctl = HolisticController::paper_default(Mode::Deadline {
            deadline,
            beta: 0.2,
        });
        let summary = sim.run(&mut ctl, Seconds::from_milli(55.0));
        assert_eq!(summary.completed_jobs, 1, "job did not finish");
        assert!(
            sim.jobs().missed_deadlines(sim.now()).is_empty(),
            "deadline missed"
        );
    }

    #[test]
    fn deadline_mode_engages_bypass_at_end_of_discharge() {
        // Heavier job + dimmer light: the node sags below the regulator's
        // reach and the controller rides it down directly.
        let light = LightProfile::step(
            Irradiance::FULL_SUN,
            Irradiance::new(0.1).unwrap(),
            Seconds::from_milli(2.0),
        );
        let mut sim = sim_with(light, 1.2);
        let deadline = Seconds::from_milli(60.0);
        sim.enqueue(Job::with_deadline(Cycles::new(8.0e6), deadline));
        let mut ctl = HolisticController::paper_default(Mode::Deadline {
            deadline,
            beta: 0.2,
        });
        sim.run(&mut ctl, Seconds::from_milli(60.0));
        let engaged = sim
            .events()
            .filter(|k| matches!(k, hems_sim::EventKind::BypassEngaged))
            .count();
        assert!(engaged >= 1, "no end-of-discharge bypass observed");
    }

    #[test]
    fn min_energy_performance_floor_raises_the_operating_point() {
        let run_with = |floor: Option<hems_units::Hertz>| {
            let mut config = HolisticConfig::paper_default(Mode::MinEnergy);
            config.performance_floor = floor;
            let mut sim = sim_with(LightProfile::constant(Irradiance::FULL_SUN), 1.1);
            sim.enable_recorder(10);
            let mut ctl = HolisticController::new(config);
            let summary = sim.run(&mut ctl, Seconds::from_milli(200.0));
            let max_vdd = sim
                .recorder()
                .unwrap()
                .samples()
                .iter()
                .map(|s| s.vdd.volts())
                .fold(0.0f64, f64::max);
            (summary.total_cycles, max_vdd)
        };
        let (unconstrained_cycles, unconstrained_vdd) = run_with(None);
        let (floored_cycles, floored_vdd) = run_with(Some(hems_units::Hertz::from_mega(400.0)));
        // A 400 MHz floor forces a much higher operating voltage than the
        // ~100 MHz holistic MEP (0.52 V); throughput rises too, though the
        // harvest budget caps how much.
        // 400 MHz needs ~0.69 V; the 25 mV ladder snaps to 0.675.
        assert!(
            floored_vdd > 0.65 && unconstrained_vdd < 0.6,
            "vdd: floored {floored_vdd} vs unconstrained {unconstrained_vdd}"
        );
        assert!(
            floored_cycles.count() > unconstrained_cycles.count(),
            "floored {} vs unconstrained {}",
            floored_cycles.count(),
            unconstrained_cycles.count()
        );
    }

    #[test]
    fn ratio_aware_floor_parks_the_rail_on_the_efficient_boundary() {
        // At half sun the cell MPP (0.998 V) sits a hair below the SC 2:1
        // boundary for the 0.5 V rung; the controller should hold the rail
        // just *above* the boundary (~1.01 V) instead.
        let mut sim = sim_with(LightProfile::constant(Irradiance::HALF_SUN), 1.0);
        sim.enable_recorder(10);
        let mut ctl = HolisticController::paper_default(Mode::MaxPerformance);
        sim.run(&mut ctl, Seconds::from_milli(600.0));
        let samples = sim.recorder().unwrap().samples();
        let tail = &samples[samples.len() * 3 / 4..];
        let mean_v: f64 = tail.iter().map(|s| s.v_solar.volts()).sum::<f64>() / tail.len() as f64;
        assert!(
            (1.0..1.06).contains(&mean_v),
            "rail averaged {mean_v:.3} V; expected just above the 2:1 boundary"
        );
    }

    #[test]
    fn recalibration_survives_very_dim_light() {
        // Below ~10% sun the node cannot climb above 1.05 V, so the climb
        // phase must time out rather than sleep forever.
        let light = LightProfile::constant(Irradiance::new(0.08).unwrap());
        let mut sim = sim_with(light, 0.9);
        let mut ctl = HolisticController::paper_default(Mode::MaxPerformance);
        let summary = sim.run(&mut ctl, Seconds::new(1.0));
        // The system keeps operating (duty-cycled) instead of deadlocking
        // in a recalibration climb.
        assert!(
            summary.total_cycles.count() > 1e5,
            "only {} cycles in 1 s",
            summary.total_cycles.count()
        );
    }

    #[test]
    fn controller_name_and_accessors() {
        let ctl = HolisticController::paper_default(Mode::MaxPerformance);
        assert_eq!(ctl.name(), "holistic");
        assert!(!ctl.is_bypassed());
        assert!(ctl.mppt_target().is_positive());
    }
}
