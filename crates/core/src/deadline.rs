//! Deadline-constrained operation (paper Section VI-B, eqs. 8–11, Fig. 9a).
//!
//! A job of `N` cycles finished in time `T` forces the clock `f = N/T`,
//! which forces the supply voltage through the frequency law (eq. 9/10) and
//! hence the energy drawn from the source (eq. 8):
//!
//! ```text
//! E_in(T) = N · (C_s V(T)² + P_leak(V)/f) / η
//! ```
//!
//! — a *decreasing* function of `T` (slower is cheaper). The energy
//! *available* by `T` (eq. 11) is the capacitor's usable charge plus the
//! solar intake, an *increasing* function of `T`. Where the two curves
//! intersect is the fastest achievable completion time (Fig. 9a's
//! "Completion Time").

use crate::CoreError;
use hems_cpu::Microprocessor;
use hems_pv::SolarCell;
use hems_regulator::Regulator;
use hems_storage::Capacitor;
use hems_units::{solve, Cycles, Hertz, Joules, Seconds, Volts};

/// The energy budget curves and their intersection for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlinePlan {
    /// The job size.
    pub cycles: Cycles,
    /// The fastest achievable completion time.
    pub completion_time: Seconds,
    /// The supply voltage required to finish exactly at that time.
    pub vdd: Volts,
    /// The clock required.
    pub frequency: Hertz,
    /// Source energy required at the intersection (eq. 10).
    pub e_required: Joules,
    /// Energy available by the intersection (eq. 11).
    pub e_available: Joules,
}

/// The planner: a (cell, regulator, processor, capacitor) system plus the
/// usable voltage floor.
pub struct DeadlineSolver<'a> {
    cell: &'a SolarCell,
    regulator: &'a dyn Regulator,
    cpu: &'a Microprocessor,
    capacitor: &'a Capacitor,
    v_floor: Volts,
}

impl<'a> DeadlineSolver<'a> {
    /// Builds a solver. `v_floor` is the node voltage below which operation
    /// halts (capacitor charge below it is unusable).
    pub fn new(
        cell: &'a SolarCell,
        regulator: &'a dyn Regulator,
        cpu: &'a Microprocessor,
        capacitor: &'a Capacitor,
        v_floor: Volts,
    ) -> DeadlineSolver<'a> {
        DeadlineSolver {
            cell,
            regulator,
            cpu,
            capacitor,
            v_floor,
        }
    }

    /// The supply voltage and clock needed to finish `cycles` in `t`
    /// (eq. 9 inverted).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when the required clock exceeds the
    /// processor's capability.
    pub fn required_point(&self, cycles: Cycles, t: Seconds) -> Result<(Volts, Hertz), CoreError> {
        let f = cycles / t;
        let op = self
            .cpu
            .point_for_frequency(f)
            .map_err(|e| CoreError::component("processor", e))?;
        Ok((op.vdd, f))
    }

    /// Source energy required to finish `cycles` in `t` (eqs. 8–10): CPU
    /// energy at the required point divided by the regulator efficiency
    /// from the MPP rail.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] for unachievable clocks and
    /// propagates regulator errors.
    pub fn required_energy(&self, cycles: Cycles, t: Seconds) -> Result<Joules, CoreError> {
        let (vdd, f) = self.required_point(cycles, t)?;
        let p_cpu = self.cpu.power_model().total(vdd, f);
        let e_cpu = p_cpu * t;
        let v_in = self
            .cell
            .mpp()
            .map_err(|e| CoreError::component("solar cell", e))?
            .voltage;
        let eta = self
            .regulator
            .efficiency(v_in, vdd, p_cpu)
            .map_err(|e| CoreError::component("regulator", e))?;
        if eta.ratio() <= 0.0 {
            return Err(CoreError::infeasible(
                "deadline energy",
                "regulator efficiency is zero at the required point".to_string(),
            ));
        }
        Ok(Joules::new(e_cpu.joules() / eta.ratio()))
    }

    /// Energy available by time `t` (eq. 11): the capacitor's usable charge
    /// above the floor plus the MPP solar intake.
    ///
    /// # Errors
    ///
    /// Propagates MPP-search failures (darkness).
    pub fn available_energy(&self, t: Seconds) -> Result<Joules, CoreError> {
        let v0 = self.capacitor.voltage();
        let usable = self.capacitor.capacitance().stored_energy(v0)
            - self
                .capacitor
                .capacitance()
                .stored_energy(self.v_floor.min(v0));
        let p_mpp = self
            .cell
            .mpp()
            .map_err(|e| CoreError::component("solar cell", e))?
            .power;
        Ok(usable + p_mpp * t)
    }

    /// Solves for the fastest achievable completion time of `cycles` —
    /// the intersection of the two curves of Fig. 9a.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when the job is unachievable even
    /// at the relaxed end of the search window.
    pub fn solve(&self, cycles: Cycles) -> Result<DeadlinePlan, CoreError> {
        // The fastest physically possible time (clock at window top), with
        // a hair of slack so the boundary point itself stays solvable.
        let f_top = self.cpu.max_frequency(self.cpu.v_max());
        let t_min = (cycles / f_top).seconds() * (1.0 + 1e-6);
        // A generous upper bound: running at v_min.
        let f_bot = self.cpu.max_frequency(self.cpu.v_min());
        let t_max = (cycles / f_bot).seconds();
        // Unsolvable sample points read as "requires a huge finite energy"
        // so bisection can still bracket against them.
        const UNSOLVABLE: f64 = 1e30;
        let gap = |t: f64| -> f64 {
            let t = Seconds::new(t);
            let required = match self.required_energy(cycles, t) {
                Ok(e) => e.joules(),
                Err(_) => return UNSOLVABLE,
            };
            let available = match self.available_energy(t) {
                Ok(e) => e.joules(),
                Err(_) => return UNSOLVABLE,
            };
            required - available
        };
        if gap(t_max) > 0.0 {
            return Err(CoreError::infeasible(
                "deadline",
                format!(
                    "even at the slowest sustainable clock the job needs more \
                     energy than arrives by t = {t_max:.3} s"
                ),
            ));
        }
        let t_star = if gap(t_min) <= 0.0 {
            // Plentiful energy: the processor's own top speed is the limit.
            t_min
        } else {
            solve::bisect(gap, t_min, t_max, 1e-9)?
        };
        let t = Seconds::new(t_star);
        let (vdd, frequency) = self.required_point(cycles, t)?;
        Ok(DeadlinePlan {
            cycles,
            completion_time: t,
            vdd,
            frequency,
            e_required: self.required_energy(cycles, t)?,
            e_available: self.available_energy(t)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_pv::Irradiance;
    use hems_regulator::ScRegulator;

    fn fixtures(v0: f64, g: Irradiance) -> (SolarCell, ScRegulator, Microprocessor, Capacitor) {
        let cell = SolarCell::kxob22(g);
        let mut cap = Capacitor::paper_board();
        cap.set_voltage(Volts::new(v0)).unwrap();
        (
            cell,
            ScRegulator::paper_65nm(),
            Microprocessor::paper_65nm(),
            cap,
        )
    }

    #[test]
    fn required_energy_decreases_with_time() {
        // Fig. 9a's E_in curve: pushing completion time out lowers the
        // required energy.
        let (cell, sc, cpu, cap) = fixtures(1.2, Irradiance::FULL_SUN);
        let solver = DeadlineSolver::new(&cell, &sc, &cpu, &cap, Volts::new(0.5));
        let n = Cycles::new(5.0e6);
        let fast = solver
            .required_energy(n, Seconds::from_milli(10.0))
            .unwrap();
        let slow = solver
            .required_energy(n, Seconds::from_milli(60.0))
            .unwrap();
        assert!(fast > slow, "fast {fast:?} <= slow {slow:?}");
    }

    #[test]
    fn available_energy_increases_with_time() {
        let (cell, sc, cpu, cap) = fixtures(1.2, Irradiance::FULL_SUN);
        let solver = DeadlineSolver::new(&cell, &sc, &cpu, &cap, Volts::new(0.5));
        let early = solver.available_energy(Seconds::from_milli(5.0)).unwrap();
        let late = solver.available_energy(Seconds::from_milli(50.0)).unwrap();
        assert!(late > early);
        // The capacitor's usable part alone: ½C(1.2² - 0.5²) = 59.5 µJ.
        let at_zero = solver.available_energy(Seconds::ZERO).unwrap();
        assert!((at_zero.to_micro() - 59.5).abs() < 0.5, "{at_zero:?}");
    }

    #[test]
    fn intersection_balances_the_curves() {
        let (cell, sc, cpu, cap) = fixtures(1.2, Irradiance::FULL_SUN);
        let solver = DeadlineSolver::new(&cell, &sc, &cpu, &cap, Volts::new(0.5));
        let n = Cycles::new(10.0e6);
        let plan = solver.solve(n).unwrap();
        let rel = (plan.e_required - plan.e_available).abs().joules() / plan.e_available.joules();
        // Either the curves balance (the bisected intersection) or the
        // system was energy-rich and the clock ceiling binds instead.
        assert!(
            rel < 1e-3 || plan.vdd == cpu.v_max(),
            "curves unbalanced by {rel} away from the clock ceiling"
        );
        // The plan's clock actually finishes the job in time.
        let t_check = plan.cycles / plan.frequency;
        assert!((t_check - plan.completion_time).abs() < Seconds::from_micro(1.0));
    }

    #[test]
    fn dimmer_light_pushes_completion_later() {
        let n = Cycles::new(20.0e6);
        let (cell_f, sc, cpu, cap) = fixtures(1.2, Irradiance::FULL_SUN);
        let full = DeadlineSolver::new(&cell_f, &sc, &cpu, &cap, Volts::new(0.5))
            .solve(n)
            .unwrap();
        let (cell_h, sc, cpu, cap) = fixtures(1.2, Irradiance::HALF_SUN);
        let half = DeadlineSolver::new(&cell_h, &sc, &cpu, &cap, Volts::new(0.5))
            .solve(n)
            .unwrap();
        assert!(half.completion_time > full.completion_time);
        assert!(half.vdd <= full.vdd);
    }

    #[test]
    fn larger_capacitor_allows_faster_completion() {
        let n = Cycles::new(20.0e6);
        let (cell, sc, cpu, small_cap) = fixtures(1.2, Irradiance::HALF_SUN);
        let small = DeadlineSolver::new(&cell, &sc, &cpu, &small_cap, Volts::new(0.5))
            .solve(n)
            .unwrap();
        let mut big_cap =
            Capacitor::new(hems_units::Farads::from_micro(1000.0), Volts::new(1.6)).unwrap();
        big_cap.set_voltage(Volts::new(1.2)).unwrap();
        let big = DeadlineSolver::new(&cell, &sc, &cpu, &big_cap, Volts::new(0.5))
            .solve(n)
            .unwrap();
        assert!(big.completion_time <= small.completion_time);
    }

    #[test]
    fn impossible_jobs_are_infeasible() {
        // Indoor light, drained capacitor, huge job.
        let (cell, sc, cpu, cap) = fixtures(0.55, Irradiance::INDOOR);
        let solver = DeadlineSolver::new(&cell, &sc, &cpu, &cap, Volts::new(0.5));
        assert!(matches!(
            solver.solve(Cycles::new(1.0e9)),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn unreachable_clock_is_infeasible() {
        let (cell, sc, cpu, cap) = fixtures(1.2, Irradiance::FULL_SUN);
        let solver = DeadlineSolver::new(&cell, &sc, &cpu, &cap, Volts::new(0.5));
        // 10 M cycles in 1 ms needs 10 GHz.
        assert!(solver
            .required_point(Cycles::new(10.0e6), Seconds::from_milli(1.0))
            .is_err());
    }
}
