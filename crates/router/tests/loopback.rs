//! Loopback integration suite for the routing front tier: byte-for-byte
//! relay transparency, key affinity, drain-and-rejoin with zero dropped
//! in-flight requests, health-probe ejection / half-open recovery, and
//! per-shard metrics aggregation.

use hems_fleet::plan::{AnalyticPlans, PlanSource, ServePlans};
use hems_router::server::plan_key;
use hems_router::{route, HealthPolicy, RouterConfig, RouterHandle};
use hems_serve::wire::{read_line_bounded, send_line};
use hems_serve::{serve, QueryKind, Request, ScenarioSpec, ServeConfig, ServerHandle, Value};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn backend(shard: u64) -> ServerHandle {
    serve(
        "127.0.0.1:0",
        ServeConfig {
            threads: Some(1),
            cache_capacity: 512,
            shard_id: Some(shard),
            ..ServeConfig::default()
        },
    )
    .expect("bind backend")
}

fn router_over(backends: &[&ServerHandle]) -> RouterHandle {
    let config = RouterConfig {
        backends: backends.iter().map(|b| b.addr()).collect(),
        probe_interval: Duration::from_millis(15),
        health: HealthPolicy {
            eject_after: 3,
            rejoin_after: 2,
        },
        connect_timeout: Duration::from_millis(300),
        request_timeout: Duration::from_secs(5),
        seed: 7,
        ..RouterConfig::default()
    };
    route("127.0.0.1:0", config).expect("bind router")
}

/// One raw NDJSON exchange on a dedicated connection stream.
struct RawClient {
    conn: BufReader<TcpStream>,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("deadline");
        RawClient {
            conn: BufReader::new(stream),
        }
    }

    fn exchange(&mut self, line: &str) -> String {
        send_line(self.conn.get_mut(), line).expect("send");
        read_line_bounded(&mut self.conn, 256 * 1024)
            .expect("read")
            .expect("response line")
    }
}

fn plan_line(id: i64, kind: QueryKind, irradiance: f64) -> String {
    let spec = ScenarioSpec::baseline(irradiance);
    Request::render_line(id, kind, Some(&spec))
}

#[test]
fn router_relays_byte_identical_responses() {
    // A bare backend and a router-fronted backend see the same request
    // stream; every response line must match byte for byte — misses,
    // cache hits (second pass), and semantic errors alike.
    let direct = backend(0);
    let fronted = backend(0);
    let router = router_over(&[&fronted]);
    let mut to_direct = RawClient::connect(direct.addr());
    let mut to_router = RawClient::connect(router.addr());
    let mut lines: Vec<String> = Vec::new();
    for (i, g) in [0.62, 0.74, 0.88].iter().enumerate() {
        lines.push(plan_line(i as i64, QueryKind::OptimalPoint, *g));
        lines.push(plan_line(100 + i as i64, QueryKind::Mep, *g));
    }
    // An unbuildable scenario: the error verdict must relay verbatim too.
    lines.push(plan_line(999, QueryKind::OptimalPoint, -5.0));
    for pass in 0..2 {
        for line in &lines {
            let a = to_direct.exchange(line);
            let b = to_router.exchange(line);
            assert_eq!(a, b, "pass {pass}: direct vs routed for {line}");
        }
    }
}

#[test]
fn key_affinity_pins_keys_to_their_home_shard() {
    let (b0, b1, b2) = (backend(0), backend(1), backend(2));
    let router = router_over(&[&b0, &b1, &b2]);
    let mut client = RawClient::connect(router.addr());
    let specs: Vec<ScenarioSpec> = (0..24)
        .map(|i| ScenarioSpec::baseline(0.2 + 0.06 * i as f64))
        .collect();
    // First pass warms each key's home shard; the second pass must be
    // all cache hits — the proof that the same key reached the same
    // shard both times.
    for pass in 0..2 {
        for (i, spec) in specs.iter().enumerate() {
            let line =
                Request::render_line((pass * 100 + i) as i64, QueryKind::OptimalPoint, Some(spec));
            let response = client.exchange(&line);
            let parsed = hems_serve::json::parse(&response).expect("response json");
            assert_eq!(
                parsed.get("status").and_then(Value::as_str),
                Some("ok"),
                "{response}"
            );
            let cached = parsed.get("cached").and_then(Value::as_bool);
            if pass == 1 {
                assert_eq!(cached, Some(true), "second pass must hit: {response}");
            }
        }
    }
    // The ring must have spread these keys over more than one shard, and
    // the observed shard for each key must be its ring home.
    let stats = router.stats_value();
    let shards = stats
        .get("backends")
        .and_then(|b| b.as_arr())
        .expect("backends");
    let used = shards
        .iter()
        .filter(|s| s.get("forwarded").and_then(Value::as_f64).unwrap_or(0.0) > 0.0)
        .count();
    assert!(
        used >= 2,
        "expected ≥2 shards used, stats: {}",
        stats.render()
    );
    for spec in &specs {
        let key = plan_key(QueryKind::OptimalPoint, spec).expect("key");
        let home = router.ring().home(key).expect("home");
        assert!(home < 3);
    }
}

#[test]
fn drain_and_rejoin_drops_no_inflight_requests() {
    let (b0, b1, b2) = (backend(0), backend(1), backend(2));
    let router = router_over(&[&b0, &b1, &b2]);
    let addr = router.addr();
    // Sustained concurrent load through retrying clients while shard 0
    // is drained and rejoined mid-stream: every request must answer.
    let workers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = hems_serve::Client::new(
                    addr,
                    hems_serve::RetryPolicy {
                        jitter_seed: 40 + w,
                        ..hems_serve::RetryPolicy::default()
                    },
                );
                let mut answered = 0usize;
                for i in 0..40 {
                    let spec = ScenarioSpec::baseline(0.3 + (w * 40 + i) as f64 * 0.008);
                    let answer = client
                        .plan(QueryKind::OptimalPoint, &spec)
                        .expect("plan through drain");
                    assert!(answer.result.get("frequency_hz").is_some());
                    answered += 1;
                }
                answered
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    assert!(router.drain_shard(0), "drain shard 0");
    std::thread::sleep(Duration::from_millis(30));
    assert!(router.rejoin_shard(0), "rejoin shard 0");
    let total: usize = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    assert_eq!(total, 160, "every request answered across drain+rejoin");
    let stats = router.stats_value();
    assert_eq!(
        stats.get("errors").and_then(Value::as_f64),
        Some(0.0),
        "no router-synthesized errors: {}",
        stats.render()
    );
}

fn wait_for_state(router: &RouterHandle, shard: usize, state: &str, within: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < within {
        if router.shard_state(shard) == Some(state) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn probes_eject_dead_backends_and_rejoin_recovered_ones() {
    let b0 = backend(0);
    let mut b1 = backend(1);
    let router = router_over(&[&b0, &b1]);
    let mut client = RawClient::connect(router.addr());
    // Baseline: both shards answer.
    let warm = client.exchange(&plan_line(1, QueryKind::OptimalPoint, 0.7));
    assert!(warm.contains("\"status\":\"ok\""));

    // Kill shard 1; probes must eject it.
    b1.shutdown();
    assert!(
        wait_for_state(&router, 1, "ejected", Duration::from_secs(5)),
        "shard 1 ejected after its backend died (state: {:?})",
        router.shard_state(1)
    );
    // Traffic owned by the dead shard reroutes and still answers.
    for i in 0..12 {
        let response = client.exchange(&plan_line(
            50 + i,
            QueryKind::OptimalPoint,
            0.5 + i as f64 * 0.03,
        ));
        assert!(
            response.contains("\"status\":\"ok\""),
            "rerouted request {i} failed: {response}"
        );
    }

    // Restart the shard on a fresh port, repoint the slot: probes must
    // walk it through half-open back to healthy and count a rejoin.
    let revived = backend(1);
    assert!(router.set_backend(1, revived.addr()));
    assert!(
        wait_for_state(&router, 1, "healthy", Duration::from_secs(5)),
        "shard 1 healthy after restart (state: {:?})",
        router.shard_state(1)
    );
    let stats = router.stats_value();
    let ejections = stats
        .get("ejections")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    assert!(ejections >= 1.0, "ejection recorded: {}", stats.render());
    let after = client.exchange(&plan_line(99, QueryKind::OptimalPoint, 0.7));
    assert!(after.contains("\"status\":\"ok\""));
}

#[test]
fn metrics_aggregates_per_shard_snapshots_with_prefixes() {
    let (b0, b1) = (backend(0), backend(1));
    let router = router_over(&[&b0, &b1]);
    let mut client = RawClient::connect(router.addr());
    for i in 0..8 {
        client.exchange(&plan_line(
            i,
            QueryKind::OptimalPoint,
            0.45 + 0.06 * i as f64,
        ));
    }
    let snapshot = router.metrics_snapshot();
    assert!(snapshot.counter("router.requests").unwrap_or(0) >= 8);
    let shard_requests = |i: usize| {
        snapshot
            .counter(&format!("shard{i}.serve.requests"))
            .unwrap_or(0)
    };
    assert!(
        shard_requests(0) + shard_requests(1) >= 8,
        "per-shard serve series present and labeled"
    );
    // The wire verb returns the same aggregation as a structured result.
    let response = client.exchange("{\"id\":7,\"query\":\"metrics\"}");
    let parsed = hems_serve::json::parse(&response).expect("metrics json");
    assert!(parsed.get("result").and_then(|r| r.get("series")).is_some());
}

#[test]
fn fleet_planning_waves_ride_through_the_router() {
    // The fleet's serve-backed plan source pointed at the router must
    // agree with the pure analytic planner — the router is transparent
    // to the planning tier.
    let (b0, b1) = (backend(0), backend(1));
    let router = router_over(&[&b0, &b1]);
    let mut through_router = ServePlans::new(router.addr());
    let mut analytic = AnalyticPlans::new();
    for g in [480.0, 640.0, 800.0] {
        let a = through_router.optimal_point(g).expect("router plan");
        let b = analytic.optimal_point(g).expect("analytic plan");
        match (a, b) {
            (Some(a), Some(b)) => {
                assert!(
                    (a.frequency_hz - b.frequency_hz).abs() <= 1e-9 * b.frequency_hz.abs(),
                    "frequency at {g}: {} vs {}",
                    a.frequency_hz,
                    b.frequency_hz
                );
            }
            (None, None) => {}
            (a, b) => panic!("answerability diverged at {g}: {a:?} vs {b:?}"),
        }
    }
}
