//! `hems-router` daemon: front a set of `hems-serve` backends.
//!
//! ```text
//! HEMS_ROUTER_ADDR=127.0.0.1:7979 \
//! HEMS_ROUTER_BACKENDS=127.0.0.1:7878,127.0.0.1:7879 hems-router
//!     front existing backends (index order = shard id)
//!
//! hems-router --spawn 3
//!     spawn 3 in-process hems-serve shards on ephemeral ports and
//!     front them (single-command serving tier for local work)
//! ```
//!
//! With `--spawn`, backends get `shard_id` set so the router's identity
//! handshake is exercised end to end. Runs until a wire `shutdown`.

use hems_router::{route, RouterConfig};
use hems_serve::{serve, ServeConfig, ServerHandle};
use std::net::SocketAddr;
use std::process::ExitCode;

fn main() -> ExitCode {
    let addr = std::env::var("HEMS_ROUTER_ADDR").unwrap_or_else(|_| "127.0.0.1:7979".to_string());
    let spawn = spawn_count();
    let mut backends: Vec<ServerHandle> = Vec::new();
    let backend_addrs: Vec<SocketAddr> = if let Some(n) = spawn {
        for shard in 0..n {
            let config = ServeConfig {
                shard_id: Some(shard as u64),
                ..ServeConfig::default()
            };
            match serve("127.0.0.1:0", config) {
                Ok(handle) => backends.push(handle),
                Err(e) => {
                    eprintln!("hems-router: spawning shard {shard}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        backends.iter().map(ServerHandle::addr).collect()
    } else {
        match parse_backends() {
            Ok(addrs) => addrs,
            Err(message) => {
                eprintln!("hems-router: {message}");
                return ExitCode::FAILURE;
            }
        }
    };
    let config = RouterConfig {
        verify_shard_ids: spawn.is_some(),
        backends: backend_addrs,
        ..RouterConfig::default()
    };
    let mut handle = match route(addr.as_str(), config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("hems-router: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("hems-router listening on {}", handle.addr());
    for (i, backend) in backends.iter().enumerate() {
        println!("  shard {i}: {}", backend.addr());
    }
    handle.wait();
    for backend in &backends {
        backend.begin_drain();
    }
    ExitCode::SUCCESS
}

fn spawn_count() -> Option<usize> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--spawn" {
            return args.next().and_then(|n| n.parse().ok()).or(Some(3));
        }
    }
    None
}

fn parse_backends() -> Result<Vec<SocketAddr>, String> {
    let raw = std::env::var("HEMS_ROUTER_BACKENDS")
        .map_err(|_| "set HEMS_ROUTER_BACKENDS=host:port,... or pass --spawn N".to_string())?;
    let mut addrs = Vec::new();
    for part in raw.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        addrs.push(
            part.parse::<SocketAddr>()
                .map_err(|e| format!("backend address {part:?}: {e}"))?,
        );
    }
    if addrs.is_empty() {
        return Err("HEMS_ROUTER_BACKENDS is empty".to_string());
    }
    Ok(addrs)
}
