//! The per-backend health state machine: eject, half-open, rejoin.
//!
//! A backend's health is driven by two signal streams — periodic seeded
//! probes (a `stats` round trip on a fresh connection, which also
//! re-verifies the shard-identity handshake) and live traffic outcomes.
//! Both feed one consecutive-failure counter; only probe rounds advance
//! the ejection cooldown, so the machine's transitions are a pure
//! function of the (deterministic, seeded) probe schedule and the
//! backend's actual behavior:
//!
//! ```text
//!            failures ≥ eject_after
//!   Healthy ───────────────────────► Ejected
//!      ▲                               │ rejoin_after probe rounds
//!      │ probe/traffic success         ▼
//!      └─────────────────────────── HalfOpen
//!                                      │ any failure
//!                                      └──────────► Ejected (cooldown resets)
//! ```
//!
//! `Ejected` takes a shard out of rotation (the ring slides its keys to
//! the next live shard); `HalfOpen` admits trial traffic again so one
//! success can confirm recovery without waiting for a full probe round.

/// Where a backend stands in the ejection cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// In rotation; failures accumulate toward ejection.
    Healthy,
    /// Out of rotation; probe rounds count toward half-open.
    Ejected,
    /// Trial rotation: the next outcome decides.
    HalfOpen,
}

impl HealthState {
    /// Stable lowercase name for reports and stats.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Ejected => "ejected",
            HealthState::HalfOpen => "half_open",
        }
    }
}

/// Ejection thresholds.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Consecutive failures (probe or traffic) that eject a shard.
    pub eject_after: u32,
    /// Probe rounds a shard stays ejected before a half-open trial.
    pub rejoin_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            eject_after: 3,
            rejoin_after: 2,
        }
    }
}

/// What one recorded outcome changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// Crossed the failure threshold: now ejected.
    Ejected,
    /// Cooldown elapsed: now admitting trial traffic.
    HalfOpen,
    /// A trial (or ejected-state probe) succeeded: back in rotation.
    Rejoined,
}

/// One backend's mutable health record.
#[derive(Debug, Clone)]
pub struct Health {
    state: HealthState,
    consecutive_failures: u32,
    ejected_rounds: u32,
}

impl Default for Health {
    fn default() -> Health {
        Health::new()
    }
}

impl Health {
    /// A fresh healthy record.
    pub fn new() -> Health {
        Health {
            state: HealthState::Healthy,
            consecutive_failures: 0,
            ejected_rounds: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// `true` when the ring may route traffic here (healthy or trial).
    pub fn admits_traffic(&self) -> bool {
        self.state != HealthState::Ejected
    }

    /// Records a probe outcome; probe rounds advance the ejection
    /// cooldown.
    pub fn on_probe(&mut self, ok: bool, policy: &HealthPolicy) -> Transition {
        if ok {
            return self.on_success();
        }
        match self.state {
            HealthState::Ejected => {
                self.ejected_rounds = self.ejected_rounds.saturating_add(1);
                if self.ejected_rounds >= policy.rejoin_after.max(1) {
                    self.state = HealthState::HalfOpen;
                    Transition::HalfOpen
                } else {
                    Transition::None
                }
            }
            _ => self.on_failure(policy),
        }
    }

    /// Records a live-traffic outcome (no cooldown advance).
    pub fn on_traffic(&mut self, ok: bool, policy: &HealthPolicy) -> Transition {
        if ok {
            self.on_success()
        } else {
            self.on_failure(policy)
        }
    }

    fn on_success(&mut self) -> Transition {
        let was = self.state;
        self.state = HealthState::Healthy;
        self.consecutive_failures = 0;
        self.ejected_rounds = 0;
        if was == HealthState::Healthy {
            Transition::None
        } else {
            Transition::Rejoined
        }
    }

    fn on_failure(&mut self, policy: &HealthPolicy) -> Transition {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            HealthState::HalfOpen => {
                // A failed trial re-ejects immediately and restarts the
                // cooldown.
                self.state = HealthState::Ejected;
                self.ejected_rounds = 0;
                Transition::Ejected
            }
            HealthState::Healthy if self.consecutive_failures >= policy.eject_after.max(1) => {
                self.state = HealthState::Ejected;
                self.ejected_rounds = 0;
                Transition::Ejected
            }
            _ => Transition::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            eject_after: 3,
            rejoin_after: 2,
        }
    }

    #[test]
    fn ejects_after_consecutive_failures_then_half_opens_then_rejoins() {
        let p = policy();
        let mut h = Health::new();
        assert_eq!(h.on_probe(false, &p), Transition::None);
        assert_eq!(h.on_probe(false, &p), Transition::None);
        assert_eq!(h.on_probe(false, &p), Transition::Ejected);
        assert!(!h.admits_traffic());
        // Cooldown: two failed rounds while ejected → half-open trial.
        assert_eq!(h.on_probe(false, &p), Transition::None);
        assert_eq!(h.on_probe(false, &p), Transition::HalfOpen);
        assert!(h.admits_traffic());
        // Trial succeeds → rejoined.
        assert_eq!(h.on_probe(true, &p), Transition::Rejoined);
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn failed_half_open_trial_re_ejects_and_restarts_cooldown() {
        let p = policy();
        let mut h = Health::new();
        for _ in 0..3 {
            h.on_probe(false, &p);
        }
        h.on_probe(false, &p);
        assert_eq!(h.on_probe(false, &p), Transition::HalfOpen);
        assert_eq!(h.on_traffic(false, &p), Transition::Ejected);
        assert!(!h.admits_traffic());
        // Full cooldown again before the next trial.
        assert_eq!(h.on_probe(false, &p), Transition::None);
        assert_eq!(h.on_probe(false, &p), Transition::HalfOpen);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let p = policy();
        let mut h = Health::new();
        h.on_traffic(false, &p);
        h.on_traffic(false, &p);
        assert_eq!(h.on_traffic(true, &p), Transition::None);
        h.on_traffic(false, &p);
        h.on_traffic(false, &p);
        assert_eq!(h.state(), HealthState::Healthy, "streak was reset");
    }
}
