//! `hems-router`: a consistent-hash routing front tier over sharded
//! `hems-serve` backends.
//!
//! One `hems-serve` process answers plan queries from an 8-shard LRU
//! cache; a fleet of millions outgrows any single cache. This crate
//! multiplies the cache instead of the process: a std-only
//! NDJSON-over-TCP router that
//!
//! 1. computes each plan query's canonical FNV-1a cache key (the same
//!    `hems_core::cachekey` bytes the backends cache under),
//! 2. places it on a 64-bit consistent-hash ring ([`ring`]) so a key
//!    always lands on the same backend shard — each shard's plan cache
//!    stays hot for exactly its key range, and aggregate cache capacity
//!    scales with the shard count,
//! 3. forwards the request line *verbatim* over a per-backend persistent
//!    connection pool ([`backend`]) and relays the response line
//!    verbatim, so a router-fronted answer is byte-identical to a
//!    direct one (the conformance plane's `serve_sharded` oracle pins
//!    this),
//! 4. keeps backends honest with seeded health probes driving an
//!    eject / half-open / rejoin state machine ([`health`]), per-shard
//!    bounded admission control answering explicit `overloaded`, and
//!    bounded retries with deterministic jittered backoff — the same
//!    retry semantics as `hems_serve::Client`, and
//! 5. supports hot reconfiguration: [`RouterHandle::drain_shard`] stops
//!    routing new work to a shard and blocks until its in-flight
//!    requests finish, [`RouterHandle::set_backend`] repoints the slot
//!    (e.g. at a restarted process), and
//!    [`RouterHandle::rejoin_shard`] puts it back in rotation — with
//!    zero dropped in-flight requests.
//!
//! The router answers `stats` itself (its own counters plus per-shard
//! rollups) and `metrics` by fetching every live shard's registry
//! snapshot, relabeling each with `Snapshot::with_prefix` (`shard0.*`,
//! `shard1.*`, …), and merging them with its own `router.*` series via
//! `Snapshot::merged`. Everything is dependency-free `std`; see
//! `DESIGN.md` §17.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod health;
pub mod ring;
pub mod server;
pub mod stats;

pub use health::{HealthPolicy, HealthState};
pub use ring::HashRing;
pub use server::{route, RouterConfig, RouterHandle};
pub use stats::RouterStats;

pub(crate) mod sync {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Locks `mutex`, recovering the guard if a previous holder
    /// panicked. Router state (pools, health records, addresses) stays
    /// structurally valid across an unwind, so recovery is always safe.
    pub(crate) fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
        mutex.lock().unwrap_or_else(PoisonError::into_inner)
    }
}
