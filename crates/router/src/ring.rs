//! The consistent-hash ring: canonical key → shard, stable under
//! ejection.
//!
//! Each shard owns [`hems_core::cachekey::RING_REPLICAS`] virtual nodes
//! placed by the canonical FNV-1a point hash
//! (`hems_core::cachekey::ring_point`), and a request key is mixed
//! through a splitmix64 finalizer before lookup so structured cache keys
//! spread uniformly. Lookup walks clockwise from the key's position to
//! the first *available* shard: when a shard is ejected or draining,
//! only the keys it owned move (each vnode's arc slides to the next
//! shard on the ring), and every other key keeps its home — which is
//! the whole point: plan caches stay hot through partial failures.

use hems_core::cachekey::{ring_mix, ring_point, RING_REPLICAS};

/// An immutable ring over `shards` backend slots.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(position, shard)` ascending by position.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl HashRing {
    /// A ring over `shards` slots (64 vnodes each).
    pub fn new(shards: usize) -> HashRing {
        let mut points: Vec<(u64, u32)> = (0..shards as u64)
            .flat_map(|s| (0..RING_REPLICAS).map(move |r| (ring_point(s, r), s as u32)))
            .collect();
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Shard count the ring was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The home shard of `key` ignoring liveness (`None` on an empty
    /// ring). This is the affinity contract tests pin: the home shard
    /// never changes while the shard set is constant.
    pub fn home(&self, key: u64) -> Option<u32> {
        self.route(key, |_| true)
    }

    /// The first available shard clockwise from `key`'s ring position.
    /// `available` is consulted per candidate shard; returns `None` when
    /// no shard is available.
    pub fn route(&self, key: u64, available: impl Fn(u32) -> bool) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let mixed = ring_mix(key);
        let start = self.points.partition_point(|(p, _)| *p < mixed);
        let n = self.points.len();
        let mut rejected = vec![false; self.shards];
        let mut rejected_count = 0usize;
        for step in 0..n {
            let &(_, shard) = self.points.get((start + step) % n)?;
            if rejected.get(shard as usize).copied().unwrap_or(true) {
                continue;
            }
            if available(shard) {
                return Some(shard);
            }
            if let Some(flag) = rejected.get_mut(shard as usize) {
                *flag = true;
                rejected_count += 1;
                if rejected_count == self.shards {
                    return None;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = HashRing::new(3);
        for key in 0..1000u64 {
            let a = ring.home(key);
            let b = ring.home(key);
            assert_eq!(a, b);
            assert!(a.is_some());
            assert!(a.unwrap() < 3);
        }
    }

    #[test]
    fn load_spreads_across_shards() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        for key in 0..8000u64 {
            let shard = ring.home(key).unwrap() as usize;
            counts[shard] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            // Perfect balance is 2000/shard; vnode placement keeps every
            // shard within a factor ~1.5 of fair share.
            assert!(
                (1300..=2700).contains(&count),
                "shard {shard} got {count} of 8000"
            );
        }
    }

    #[test]
    fn ejection_moves_only_the_ejected_shards_keys() {
        let ring = HashRing::new(3);
        let keys: Vec<u64> = (0..2000).collect();
        let homes: Vec<u32> = keys.iter().map(|&k| ring.home(k).unwrap()).collect();
        let without_1: Vec<u32> = keys
            .iter()
            .map(|&k| ring.route(k, |s| s != 1).unwrap())
            .collect();
        for ((&key, &home), &rerouted) in keys.iter().zip(&homes).zip(&without_1) {
            if home == 1 {
                assert_ne!(rerouted, 1, "key {key} must leave the ejected shard");
            } else {
                assert_eq!(rerouted, home, "key {key} must keep its home shard");
            }
        }
    }

    #[test]
    fn no_available_shard_routes_none() {
        let ring = HashRing::new(2);
        assert_eq!(ring.route(7, |_| false), None);
        assert_eq!(HashRing::new(0).home(7), None);
    }
}
