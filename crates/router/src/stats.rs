//! Router counters and the forward-latency histogram, on the shared
//! telemetry core.
//!
//! Same shape as `hems_serve::ServeStats`: every number is a `hems_obs`
//! metric in a per-router registry (named `router.*`), powering the
//! wire `stats` verb, the `metrics` registry snapshot (merged with each
//! shard's own relabeled snapshot), and in-process test assertions.

use hems_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Counters plus the end-to-end forward-latency histogram.
#[derive(Debug, Clone)]
pub struct RouterStats {
    registry: Arc<Registry>,
    /// Request lines parsed (every verb, including refused ones).
    pub requests: Counter,
    /// Requests answered by a backend (after any retries).
    pub forwarded: Counter,
    /// Requests refused by per-shard admission control.
    pub overloaded: Counter,
    /// Forward attempts beyond each request's first (retries).
    pub retries: Counter,
    /// Requests the router itself answered with an error (parse
    /// failures, exhausted retries, no live shard).
    pub errors: Counter,
    /// Health probes performed.
    pub probes: Counter,
    /// Health probes that failed.
    pub probe_failures: Counter,
    /// Healthy/half-open → ejected transitions.
    pub ejections: Counter,
    /// Ejected/half-open → healthy transitions.
    pub rejoins: Counter,
    /// Client connections reaped by the read deadline.
    pub reaped: Counter,
    /// Live (routable) backends right now.
    pub backends_live: Gauge,
    latency: Histogram,
}

impl Default for RouterStats {
    fn default() -> RouterStats {
        RouterStats::new()
    }
}

impl RouterStats {
    /// Fresh zeroed stats over a fresh per-router registry.
    pub fn new() -> RouterStats {
        let registry = Arc::new(Registry::new());
        RouterStats {
            requests: registry.counter("router.requests"),
            forwarded: registry.counter("router.forwarded"),
            overloaded: registry.counter("router.overloaded"),
            retries: registry.counter("router.retries"),
            errors: registry.counter("router.errors"),
            probes: registry.counter("router.probes"),
            probe_failures: registry.counter("router.probe_failures"),
            ejections: registry.counter("router.ejections"),
            rejoins: registry.counter("router.rejoins"),
            reaped: registry.counter("router.reaped"),
            backends_live: registry.gauge("router.backends_live"),
            latency: registry.histogram("router.latency_ns"),
            registry,
        }
    }

    /// The per-router registry backing these stats.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one request's receipt→response latency.
    pub fn record_latency_ns(&self, ns: f64) {
        self.latency.record(ns.max(0.0) as u64);
    }

    /// `(p50, p95)` forward latency in nanoseconds, `None` with no
    /// samples yet.
    pub fn latency_percentiles(&self) -> Option<(f64, f64)> {
        let snap = self.latency.snapshot();
        if snap.count == 0 {
            return None;
        }
        Some((snap.quantile(0.50), snap.quantile(0.95)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_under_router_names() {
        let stats = RouterStats::new();
        stats.requests.inc();
        stats.record_latency_ns(1000.0);
        let snap = stats.registry().snapshot();
        assert_eq!(snap.counter("router.requests"), Some(1));
        assert!(snap.histogram("router.latency_ns").is_some());
        assert!(stats.latency_percentiles().is_some());
    }
}
