//! One backend shard slot: address, persistent connection pool,
//! admission counters, and health record.
//!
//! Connections are pooled per backend and reused across requests (one
//! request in flight per pooled connection, matching the NDJSON
//! protocol's one-line-in/one-line-out framing). A fresh connection
//! performs the *shard-identity handshake*: a `stats` round trip whose
//! response must carry `"shard": <expected>` — a backend that answers
//! as the wrong shard (a misconfigured shard set, a port collision
//! after restart) is refused before any traffic reaches it, turning a
//! silent cache-affinity loss into an ejection.
//!
//! Any IO error drops the connection on the floor rather than returning
//! it to the pool; the next request dials fresh. Forwarding itself is
//! one attempt — the retry/backoff/re-route loop lives in
//! [`crate::server`] where it can consult the ring and the health
//! machine between attempts.

use crate::health::Health;
use crate::sync::relock;
use hems_serve::wire::{read_line_bounded, send_line};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Most idle connections retained per backend.
const POOL_CAP: usize = 16;

/// Dial/IO tuning for one backend attempt.
#[derive(Debug, Clone)]
pub struct DialConfig {
    /// Connect deadline for a fresh pool connection.
    pub connect_timeout: Duration,
    /// Per-attempt read/write deadline on a pooled connection.
    pub request_timeout: Duration,
    /// Longest accepted backend response line.
    pub max_line_bytes: usize,
    /// Expected shard identity (`None` skips the handshake).
    pub expect_shard: Option<u64>,
}

/// One shard slot in the router's backend table.
#[derive(Debug)]
pub struct Backend {
    addr: Mutex<SocketAddr>,
    idle: Mutex<Vec<BufReader<TcpStream>>>,
    /// Requests currently being forwarded to this backend (admission).
    pub inflight: AtomicUsize,
    /// Set while an operator drains this shard: no new routes.
    pub draining: AtomicBool,
    /// Health record driven by probes and traffic outcomes.
    pub health: Mutex<Health>,
    /// Requests forwarded here over the slot's lifetime.
    pub forwarded: AtomicU64,
}

impl Backend {
    /// A fresh healthy slot for `addr` with an empty pool.
    pub fn new(addr: SocketAddr) -> Backend {
        Backend {
            addr: Mutex::new(addr),
            idle: Mutex::new(Vec::new()),
            inflight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            health: Mutex::new(Health::new()),
            forwarded: AtomicU64::new(0),
        }
    }

    /// Current backend address.
    pub fn addr(&self) -> SocketAddr {
        *relock(&self.addr)
    }

    /// Repoints the slot (e.g. at a restarted process) and empties the
    /// pool so no connection to the old address survives.
    pub fn set_addr(&self, addr: SocketAddr) {
        *relock(&self.addr) = addr;
        relock(&self.idle).clear();
        *relock(&self.health) = Health::new();
    }

    /// Dials a fresh connection and runs the shard-identity handshake.
    fn connect(&self, dial: &DialConfig) -> io::Result<BufReader<TcpStream>> {
        let addr = self.addr();
        let stream = TcpStream::connect_timeout(&addr, dial.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(dial.request_timeout))?;
        stream.set_write_timeout(Some(dial.request_timeout))?;
        let mut conn = BufReader::new(stream);
        if let Some(expected) = dial.expect_shard {
            let response = round_trip(
                &mut conn,
                "{\"id\":\"hems-router-handshake\",\"query\":\"stats\"}",
                dial.max_line_bytes,
            )?;
            let parsed = hems_serve::json::parse(&response)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let shard = parsed
                .get("result")
                .and_then(|r| r.get("shard"))
                .and_then(|s| s.as_f64());
            if shard != Some(expected as f64) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "shard identity mismatch at {addr}: expected {expected}, got {shard:?}"
                    ),
                ));
            }
        }
        Ok(conn)
    }

    /// Forwards one raw request line, returning the raw response line.
    /// One attempt: any failure drops the connection and surfaces the
    /// error to the caller's retry loop.
    ///
    /// # Errors
    ///
    /// Dial, handshake, write, deadline, or EOF errors from the attempt.
    pub fn forward(&self, line: &str, dial: &DialConfig) -> io::Result<String> {
        let mut conn = match relock(&self.idle).pop() {
            Some(conn) => conn,
            None => self.connect(dial)?,
        };
        let response = round_trip(&mut conn, line, dial.max_line_bytes)?;
        let mut idle = relock(&self.idle);
        if idle.len() < POOL_CAP {
            idle.push(conn);
        }
        self.forwarded.fetch_add(1, Ordering::Relaxed);
        Ok(response)
    }

    /// One health probe: a fresh dial plus the identity handshake (and a
    /// `stats` round trip when no identity is expected). `true` = alive
    /// and correctly identified.
    pub fn probe(&self, dial: &DialConfig) -> bool {
        let mut conn = match self.connect(dial) {
            Ok(conn) => conn,
            Err(_) => return false,
        };
        if dial.expect_shard.is_some() {
            // `connect` already round-tripped the handshake.
            return true;
        }
        round_trip(
            &mut conn,
            "{\"id\":\"hems-router-probe\",\"query\":\"stats\"}",
            dial.max_line_bytes,
        )
        .is_ok()
    }

    /// Drops every pooled connection (used on shutdown).
    pub fn clear_pool(&self) {
        relock(&self.idle).clear();
    }
}

/// Writes one line and reads one line on a pooled connection.
fn round_trip(
    conn: &mut BufReader<TcpStream>,
    line: &str,
    max_line_bytes: usize,
) -> io::Result<String> {
    send_line(conn.get_mut(), line)?;
    match read_line_bounded(conn, max_line_bytes)? {
        Some(response) => Ok(response),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "backend closed the connection mid-request",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_serve::{serve, ServeConfig};

    fn dial(expect_shard: Option<u64>) -> DialConfig {
        DialConfig {
            connect_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_secs(2),
            max_line_bytes: 64 * 1024,
            expect_shard,
        }
    }

    #[test]
    fn handshake_accepts_matching_and_refuses_mismatched_identity() {
        let config = ServeConfig {
            threads: Some(1),
            shard_id: Some(4),
            ..ServeConfig::default()
        };
        let handle = serve("127.0.0.1:0", config).expect("bind");
        let backend = Backend::new(handle.addr());
        assert!(backend.probe(&dial(Some(4))), "matching identity");
        assert!(!backend.probe(&dial(Some(5))), "mismatched identity");
        assert!(backend.probe(&dial(None)), "no identity expected");
    }

    #[test]
    fn forward_relays_raw_lines_and_reuses_the_connection() {
        let handle = serve(
            "127.0.0.1:0",
            ServeConfig {
                threads: Some(1),
                ..ServeConfig::default()
            },
        )
        .expect("bind");
        let backend = Backend::new(handle.addr());
        let d = dial(None);
        let a = backend
            .forward("{\"id\":1,\"query\":\"stats\"}", &d)
            .expect("first");
        assert!(a.contains("\"id\":1"));
        let b = backend
            .forward("{\"id\":2,\"query\":\"stats\"}", &d)
            .expect("second");
        assert!(b.contains("\"id\":2"));
        assert_eq!(backend.forwarded.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn probe_fails_fast_on_a_dead_address() {
        let backend = Backend::new("127.0.0.1:1".parse().expect("addr"));
        assert!(!backend.probe(&dial(None)));
    }
}
