//! The routing front tier: acceptor, per-connection forwarders, and the
//! seeded health prober.
//!
//! ## Thread anatomy
//!
//! ```text
//! acceptor ──► forwarder (one per client connection)
//!                │  parse → stats/metrics/reconfig/shutdown inline
//!                │  plan query → canonical key → ring → shard slot
//!                │     admission full → overloaded (explicit)
//!                │     forward verbatim ──► backend pool ──► relay verbatim
//!                │     IO failure → health, backoff, re-route, retry
//!                ▼
//!              client ◄── response line (byte-identical to direct serve)
//! prober  ──► per-shard stats round trip every jittered interval
//!                │  drives eject / half-open / rejoin (health machine)
//! ```
//!
//! ## Verbatim relay
//!
//! The router parses a plan query only far enough to compute its
//! canonical cache key; what goes to the backend is the client's
//! original line, and what goes back is the backend's original line.
//! Router-synthesized responses exist only where the router *is* the
//! authority: admission refusals (`overloaded`), exhausted retries
//! (retryable `error`), aggregated `stats`/`metrics`, and `reconfig`.
//!
//! ## Determinism
//!
//! Retry backoff jitter and the probe schedule draw from one seeded
//! xorshift stream per concern ([`RouterConfig::seed`]), so a chaos
//! campaign replaying the same seed sees the same retry timing and the
//! same probe cadence.

use crate::backend::{Backend, DialConfig};
use crate::health::{HealthPolicy, Transition};
use crate::ring::HashRing;
use crate::stats::RouterStats;
use crate::sync::relock;
use hems_obs::clock::monotonic_ns;
use hems_obs::snapshot::{Bucket, HistogramSnapshot, Series, SeriesData, Snapshot};
use hems_serve::json::{self, Value};
use hems_serve::proto::{
    error_response, ok_response, overloaded_response, retryable_error_response, QueryKind, Request,
    ScenarioSpec,
};
use hems_serve::wire::{is_timeout, read_line_bounded, send_line};
use hems_units::XorShiftRng;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs for a router instance.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend shard addresses; the vector index is the shard id the
    /// identity handshake verifies.
    pub backends: Vec<SocketAddr>,
    /// Most requests simultaneously in flight per shard; beyond it the
    /// router answers `overloaded` without touching the backend.
    pub max_inflight_per_shard: usize,
    /// Longest accepted request/response line, bytes.
    pub max_line_bytes: usize,
    /// Per-client-connection read deadline (idle/slow-loris reap).
    pub read_timeout: Option<Duration>,
    /// Per-client-connection write deadline.
    pub write_timeout: Option<Duration>,
    /// Dial deadline for fresh backend connections.
    pub connect_timeout: Duration,
    /// Per-attempt backend read/write deadline.
    pub request_timeout: Duration,
    /// Most forward attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Seed for backoff jitter and the probe schedule.
    pub seed: u64,
    /// Pause between health-probe rounds (jittered ±25 %).
    pub probe_interval: Duration,
    /// Ejection thresholds.
    pub health: HealthPolicy,
    /// Verify each backend's `shard` identity on fresh connections.
    pub verify_shard_ids: bool,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            backends: Vec::new(),
            max_inflight_per_shard: 128,
            max_line_bytes: 64 * 1024,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            connect_timeout: Duration::from_millis(1000),
            request_timeout: Duration::from_secs(5),
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
            seed: 1,
            probe_interval: Duration::from_millis(200),
            health: HealthPolicy::default(),
            verify_shard_ids: true,
        }
    }
}

impl RouterConfig {
    fn dial(&self, shard: usize) -> DialConfig {
        DialConfig {
            connect_timeout: self.connect_timeout,
            request_timeout: self.request_timeout,
            max_line_bytes: self.max_line_bytes,
            expect_shard: self.verify_shard_ids.then_some(shard as u64),
        }
    }

    /// The backoff before attempt `attempt` (1-based), without jitter.
    fn backoff(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(2).min(20);
        let raw = self
            .base_delay
            .saturating_mul(1u32.checked_shl(doublings).unwrap_or(u32::MAX));
        raw.min(self.max_delay)
    }
}

struct Shared {
    config: RouterConfig,
    ring: HashRing,
    slots: Vec<Backend>,
    stats: RouterStats,
    accepting: AtomicBool,
    /// Flipped (and broadcast) when shutdown begins; the prober sleeps
    /// on it so shutdown is prompt.
    stop_cv: (Mutex<bool>, Condvar),
    conn_seq: AtomicU64,
}

impl Shared {
    /// `true` when the ring may send new work to `shard`.
    fn available(&self, shard: u32) -> bool {
        let Some(slot) = self.slots.get(shard as usize) else {
            return false;
        };
        !slot.draining.load(Ordering::SeqCst) && relock(&slot.health).admits_traffic()
    }

    fn live_backends(&self) -> usize {
        (0..self.slots.len() as u32)
            .filter(|&s| self.available(s))
            .count()
    }

    fn begin_shutdown(&self) {
        self.accepting.store(false, Ordering::SeqCst);
        let (lock, cv) = &self.stop_cv;
        *relock(lock) = true;
        cv.notify_all();
        for slot in &self.slots {
            slot.clear_pool();
        }
    }

    /// The router `stats` body: own counters plus a per-shard rollup.
    fn stats_value(&self) -> Value {
        let count = |c: &hems_obs::Counter| Value::Num(c.total() as f64);
        let (p50, p95) = self
            .stats
            .latency_percentiles()
            .map_or((Value::Null, Value::Null), |(p50, p95)| {
                (Value::Num(p50), Value::Num(p95))
            });
        let backends: Vec<Value> = self
            .slots
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                Value::obj(vec![
                    ("shard", Value::Num(i as f64)),
                    ("addr", Value::str(slot.addr().to_string())),
                    ("state", Value::str(relock(&slot.health).state().name())),
                    (
                        "draining",
                        Value::Bool(slot.draining.load(Ordering::SeqCst)),
                    ),
                    (
                        "inflight",
                        Value::Num(slot.inflight.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "forwarded",
                        Value::Num(slot.forwarded.load(Ordering::Relaxed) as f64),
                    ),
                ])
            })
            .collect();
        Value::obj(vec![
            ("requests", count(&self.stats.requests)),
            ("forwarded", count(&self.stats.forwarded)),
            ("overloaded", count(&self.stats.overloaded)),
            ("retries", count(&self.stats.retries)),
            ("errors", count(&self.stats.errors)),
            ("probes", count(&self.stats.probes)),
            ("probe_failures", count(&self.stats.probe_failures)),
            ("ejections", count(&self.stats.ejections)),
            ("rejoins", count(&self.stats.rejoins)),
            ("reaped", count(&self.stats.reaped)),
            ("backends_live", Value::Num(self.live_backends() as f64)),
            ("latency_p50_ns", p50),
            ("latency_p95_ns", p95),
            ("backends", Value::Arr(backends)),
        ])
    }

    /// The aggregated `metrics` snapshot: the router's own registry
    /// merged with every reachable shard's registry snapshot relabeled
    /// `shard<i>.*` via [`Snapshot::with_prefix`].
    fn metrics_snapshot(&self) -> Snapshot {
        let mut merged = self.stats.registry().snapshot();
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.available(i as u32) {
                continue;
            }
            let line = "{\"id\":\"hems-router-metrics\",\"query\":\"metrics\"}";
            let Ok(response) = slot.forward(line, &self.config.dial(i)) else {
                continue;
            };
            let Ok(parsed) = json::parse(&response) else {
                continue;
            };
            let Some(snapshot) = parsed.get("result").and_then(snapshot_from_value) else {
                continue;
            };
            merged = merged.merged(snapshot.with_prefix(&format!("shard{i}")));
        }
        merged
    }
}

/// Rebuilds an obs [`Snapshot`] from the `metrics` verb's JSON render.
/// The render is integer-only by contract, so `f64` round trips are
/// exact; series whose shape is unrecognized are skipped.
fn snapshot_from_value(value: &Value) -> Option<Snapshot> {
    let at_ns = value.get("at_ns")?.as_f64()? as u64;
    let Some(Value::Obj(fields)) = value.get("series") else {
        return None;
    };
    let mut series: Vec<Series> = Vec::with_capacity(fields.len());
    for (name, body) in fields {
        let Some(data) = series_from_value(body) else {
            continue;
        };
        series.push(Series {
            name: name.clone(),
            data,
        });
    }
    series.sort_by(|a, b| a.name.cmp(&b.name));
    Some(Snapshot { at_ns, series })
}

fn series_from_value(body: &Value) -> Option<SeriesData> {
    match body.get("kind")?.as_str()? {
        "counter" => Some(SeriesData::Counter(body.get("value")?.as_f64()? as u64)),
        "gauge" => Some(SeriesData::Gauge(body.get("value")?.as_f64()? as i64)),
        "histogram" => {
            let field = |name: &str| body.get(name).and_then(Value::as_f64);
            let mut buckets = Vec::new();
            for entry in body.get("buckets")?.as_arr()? {
                let edges = entry.as_arr()?;
                let at = |i: usize| edges.get(i).and_then(Value::as_f64);
                buckets.push(Bucket {
                    lo: at(0)? as u64,
                    hi: at(1)? as u64,
                    n: at(2)? as u64,
                });
            }
            Some(SeriesData::Histogram(HistogramSnapshot {
                count: field("count")? as u64,
                sum: field("sum")? as u64,
                min: field("min")? as u64,
                max: field("max")? as u64,
                buckets,
            }))
        }
        _ => None,
    }
}

/// The canonical routing key of one plan query — the same FNV-1a cache
/// key the backend caches the answer under, and the same hex id the
/// retrying client uses for idempotent resubmission.
///
/// # Errors
///
/// The scenario's build error, verbatim.
pub fn plan_key(kind: QueryKind, spec: &ScenarioSpec) -> Result<u64, String> {
    let (config, policy) = spec.build()?;
    Ok(spec.cache_key(kind, &config, &policy))
}

/// A running router. Dropping the handle shuts it down and joins its
/// threads.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound front address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The ring (for affinity assertions and shard-aware tooling).
    pub fn ring(&self) -> &HashRing {
        &self.shared.ring
    }

    /// Live router counters (the same body a wire `stats` query gets).
    pub fn stats_value(&self) -> Value {
        self.shared.stats_value()
    }

    /// The aggregated metrics snapshot (`router.*` + `shard<i>.*`).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.shared.metrics_snapshot()
    }

    /// One shard's current health state name (`None`: no such shard).
    pub fn shard_state(&self, shard: usize) -> Option<&'static str> {
        let slot = self.shared.slots.get(shard)?;
        Some(relock(&slot.health).state().name())
    }

    /// Takes `shard` out of rotation and blocks until its in-flight
    /// requests finish — the drain half of hot reconfiguration. New
    /// requests re-route to the remaining shards immediately; nothing
    /// in flight is dropped. `false`: no such shard.
    pub fn drain_shard(&self, shard: usize) -> bool {
        let Some(slot) = self.shared.slots.get(shard) else {
            return false;
        };
        slot.draining.store(true, Ordering::SeqCst);
        while slot.inflight.load(Ordering::SeqCst) > 0 {
            thread::sleep(Duration::from_millis(1));
        }
        slot.clear_pool();
        true
    }

    /// Puts a drained shard back in rotation with a fresh health
    /// record — the rejoin half of hot reconfiguration. `false`: no
    /// such shard.
    pub fn rejoin_shard(&self, shard: usize) -> bool {
        let Some(slot) = self.shared.slots.get(shard) else {
            return false;
        };
        slot.set_addr(slot.addr());
        slot.draining.store(false, Ordering::SeqCst);
        true
    }

    /// Repoints `shard` at `addr` (e.g. a restarted backend on a new
    /// port), dropping pooled connections to the old address. Usually
    /// bracketed by [`Self::drain_shard`] / [`Self::rejoin_shard`].
    /// `false`: no such shard.
    pub fn set_backend(&self, shard: usize, addr: SocketAddr) -> bool {
        let Some(slot) = self.shared.slots.get(shard) else {
            return false;
        };
        slot.set_addr(addr);
        true
    }

    /// Initiates shutdown and joins the acceptor and prober.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }

    /// Blocks until the router shuts down (e.g. by a wire `shutdown`).
    pub fn wait(&mut self) {
        {
            let (lock, cv) = &self.shared.stop_cv;
            let mut stopped = relock(lock);
            while !*stopped {
                stopped = cv
                    .wait(stopped)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(p) = self.prober.take() {
            let _ = p.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }
}

/// Binds and starts a router over `config.backends`.
///
/// # Errors
///
/// Propagates the bind failure, and rejects an empty backend set.
pub fn route<A: ToSocketAddrs>(addr: A, config: RouterConfig) -> io::Result<RouterHandle> {
    if config.backends.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "router needs at least one backend",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        ring: HashRing::new(config.backends.len()),
        slots: config.backends.iter().map(|&a| Backend::new(a)).collect(),
        stats: RouterStats::new(),
        accepting: AtomicBool::new(true),
        stop_cv: (Mutex::new(false), Condvar::new()),
        conn_seq: AtomicU64::new(0),
        config,
    });
    shared.stats.backends_live.set(shared.slots.len() as i64);
    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("hems-router-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))?
    };
    let prober = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("hems-router-probe".to_string())
            .spawn(move || probe_loop(&shared))
    };
    let prober = match prober {
        Ok(handle) => handle,
        Err(e) => {
            shared.begin_shutdown();
            let _ = acceptor.join();
            return Err(e);
        }
    };
    Ok(RouterHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        prober: Some(prober),
    })
}

/// Shortest accept-loop poll/backoff step.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Cap for the accept-error backoff.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut error_backoff = ACCEPT_POLL;
    while shared.accepting.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                error_backoff = ACCEPT_POLL;
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(shared.config.read_timeout);
                let _ = stream.set_write_timeout(shared.config.write_timeout);
                let shared = Arc::clone(shared);
                let _ = thread::Builder::new()
                    .name("hems-router-conn".to_string())
                    .spawn(move || connection_loop(stream, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                thread::sleep(error_backoff);
                error_backoff = (error_backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

fn probe_loop(shared: &Arc<Shared>) {
    let mut rng = XorShiftRng::seed_from_u64(shared.config.seed ^ 0x70726f6265); // "probe"
    loop {
        {
            let (lock, cv) = &shared.stop_cv;
            let jitter = 0.75 + 0.5 * rng.next_f64();
            let wait = shared.config.probe_interval.mul_f64(jitter);
            let stopped = relock(lock);
            let (stopped, _) = cv
                .wait_timeout(stopped, wait)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if *stopped {
                return;
            }
        }
        for (i, slot) in shared.slots.iter().enumerate() {
            shared.stats.probes.inc();
            let ok = slot.probe(&shared.config.dial(i));
            if !ok {
                shared.stats.probe_failures.inc();
            }
            let transition = relock(&slot.health).on_probe(ok, &shared.config.health);
            record_transition(shared, transition);
        }
        shared
            .stats
            .backends_live
            .set(shared.live_backends() as i64);
    }
}

fn record_transition(shared: &Arc<Shared>, transition: Transition) {
    match transition {
        Transition::Ejected => shared.stats.ejections.inc(),
        Transition::Rejoined => shared.stats.rejoins.inc(),
        Transition::None | Transition::HalfOpen => {}
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
    let mut rng = XorShiftRng::seed_from_u64(shared.config.seed ^ (conn_id.rotate_left(17)));
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader, shared.config.max_line_bytes) {
            Ok(Some(line)) => line,
            Ok(None) => return,
            Err(e) if is_timeout(&e) => {
                shared.stats.reaped.inc();
                return;
            }
            Err(_) => {
                shared.stats.errors.inc();
                let _ = send_line(reader.get_mut(), &error_response(&Value::Null, "bad line"));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = monotonic_ns();
        shared.stats.requests.inc();
        let response = dispatch(shared, &line, &mut rng);
        shared
            .stats
            .record_latency_ns(monotonic_ns().saturating_sub(started) as f64);
        let done = matches!(response, Dispatch::Shutdown(_));
        let body = match response {
            Dispatch::Reply(body) | Dispatch::Shutdown(body) => body,
        };
        if send_line(reader.get_mut(), &body).is_err() {
            return;
        }
        if done {
            shared.begin_shutdown();
            return;
        }
    }
}

enum Dispatch {
    Reply(String),
    Shutdown(String),
}

fn dispatch(shared: &Arc<Shared>, line: &str, rng: &mut XorShiftRng) -> Dispatch {
    // Router-level verbs are recognized before protocol parsing so the
    // router, not a backend, answers them.
    let parsed = json::parse(line).ok();
    let id = parsed
        .as_ref()
        .and_then(|v| v.get("id"))
        .cloned()
        .unwrap_or(Value::Null);
    let verb = parsed
        .as_ref()
        .and_then(|v| v.get("query"))
        .and_then(Value::as_str)
        .unwrap_or("");
    match verb {
        "stats" => Dispatch::Reply(ok_response(&id, false, shared.stats_value())),
        "metrics" => {
            let rendered = shared.metrics_snapshot().render();
            match json::parse(&rendered) {
                Ok(value) => Dispatch::Reply(ok_response(&id, false, value)),
                Err(e) => {
                    shared.stats.errors.inc();
                    Dispatch::Reply(error_response(&id, &e.to_string()))
                }
            }
        }
        "shutdown" => Dispatch::Shutdown(ok_response(
            &id,
            false,
            Value::obj(vec![("draining", Value::Bool(true))]),
        )),
        "reconfig" => Dispatch::Reply(reconfig(shared, &id, parsed.as_ref())),
        _ => Dispatch::Reply(forward_plan(shared, line, rng)),
    }
}

/// The wire half of drain-and-rejoin: marks shards draining (non-
/// blocking; in-flight requests finish on their connections) or back in
/// rotation, and reports each touched shard's remaining in-flight count
/// so an operator can poll for quiescence.
fn reconfig(shared: &Arc<Shared>, id: &Value, parsed: Option<&Value>) -> String {
    let shard_list = |key: &str| -> Vec<usize> {
        parsed
            .and_then(|v| v.get(key))
            .and_then(Value::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(Value::as_f64)
                    .map(|s| s as usize)
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut touched: Vec<Value> = Vec::new();
    for shard in shard_list("drain") {
        let Some(slot) = shared.slots.get(shard) else {
            continue;
        };
        slot.draining.store(true, Ordering::SeqCst);
        touched.push(Value::obj(vec![
            ("shard", Value::Num(shard as f64)),
            ("draining", Value::Bool(true)),
            (
                "inflight",
                Value::Num(slot.inflight.load(Ordering::SeqCst) as f64),
            ),
        ]));
    }
    for shard in shard_list("rejoin") {
        let Some(slot) = shared.slots.get(shard) else {
            continue;
        };
        slot.set_addr(slot.addr());
        slot.draining.store(false, Ordering::SeqCst);
        touched.push(Value::obj(vec![
            ("shard", Value::Num(shard as f64)),
            ("draining", Value::Bool(false)),
            ("inflight", Value::Num(0.0)),
        ]));
    }
    ok_response(id, false, Value::obj(vec![("shards", Value::Arr(touched))]))
}

fn forward_plan(shared: &Arc<Shared>, line: &str, rng: &mut XorShiftRng) -> String {
    // Full protocol parse: identical parser, identical error text — a
    // malformed line gets the same answer it would get from a backend.
    let request = match Request::parse_line(line) {
        Ok(request) => request,
        Err((id, message)) => {
            shared.stats.errors.inc();
            return error_response(&id, &message);
        }
    };
    // The routing key is the canonical cache key. A scenario that fails
    // to build still routes (any backend produces the identical error
    // verdict); key 0 keeps that deterministic.
    let key = match &request.scenario {
        Some(spec) => plan_key(request.kind, spec).unwrap_or_default(),
        None => 0,
    };
    let mut last = String::from("no live backend shard");
    for attempt in 1..=shared.config.max_attempts.max(1) {
        if attempt > 1 {
            shared.stats.retries.inc();
            let jitter = 0.5 + 0.5 * rng.next_f64();
            thread::sleep(shared.config.backoff(attempt).mul_f64(jitter));
        }
        let Some(shard) = shared.ring.route(key, |s| shared.available(s)) else {
            continue;
        };
        let Some(slot) = shared.slots.get(shard as usize) else {
            continue;
        };
        // Admission: bound the shard's in-flight work and answer
        // `overloaded` explicitly — the client's backoff loop handles
        // the rest, exactly as with a saturated single node.
        let admitted = slot.inflight.fetch_add(1, Ordering::SeqCst);
        if admitted >= shared.config.max_inflight_per_shard {
            slot.inflight.fetch_sub(1, Ordering::SeqCst);
            shared.stats.overloaded.inc();
            return overloaded_response(
                &request.id,
                &format!("shard {shard} admission limit reached"),
            );
        }
        let outcome = slot.forward(line, &shared.config.dial(shard as usize));
        slot.inflight.fetch_sub(1, Ordering::SeqCst);
        match outcome {
            Ok(response) => {
                let transition = relock(&slot.health).on_traffic(true, &shared.config.health);
                record_transition(shared, transition);
                shared.stats.forwarded.inc();
                return response;
            }
            Err(e) => {
                let transition = relock(&slot.health).on_traffic(false, &shared.config.health);
                record_transition(shared, transition);
                last = format!("shard {shard}: {e}");
            }
        }
    }
    shared.stats.errors.inc();
    retryable_error_response(
        &request.id,
        &format!(
            "forwarding failed after {} attempts: {last}",
            shared.config.max_attempts.max(1)
        ),
    )
}
