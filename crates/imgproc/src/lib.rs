//! The test-vehicle workload: a pattern-recognition image pipeline.
//!
//! The paper's test chip (Section VII, Fig. 10) is a "pattern recognition
//! image processor which performs feature extraction and classification by
//! using gradient feature vectors in a windowed frame": pixels are scanned
//! into on-chip memory, gradients are extracted, vector-formed and
//! classified, and "for a low resolution image with 64×64 pixels, it takes
//! about 15 ms to process at 0.5 V".
//!
//! This crate implements that pipeline for real — Sobel gradients, windowed
//! orientation-histogram feature vectors, nearest-centroid classification —
//! plus a cycle-cost model calibrated so a 64×64 frame costs ≈ 1.0 M cycles,
//! which at the CPU model's 66.7 MHz (0.5 V) reproduces the paper's 15 ms.
//! The energy-management layers consume only the cycle counts, but the
//! pipeline being real means the counts respond to image content and
//! classifier configuration the way a real workload's would.
//!
//! ```
//! use hems_imgproc::{Frame, RecognitionPipeline};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pipeline = RecognitionPipeline::paper_default()?;
//! let frame = Frame::synthetic_shape(64, 64, hems_imgproc::Shape::Cross, 7)?;
//! let result = pipeline.process(&frame);
//! assert!(result.cycles.count() > 0.9e6 && result.cycles.count() < 1.1e6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod cost;
mod detector;
mod error;
mod features;
mod frame;
mod pgm;
mod pipeline;
mod sobel;

pub use classify::NearestCentroidClassifier;
pub use cost::CycleCostModel;
pub use detector::{Detection, WindowDetector};
pub use error::ImgError;
pub use features::{FeatureExtractor, FeatureVector};
pub use frame::{Frame, Shape};
pub use pgm::{read_pgm, write_pgm, PgmError};
pub use pipeline::{PipelineResult, RecognitionPipeline};
pub use sobel::GradientField;
