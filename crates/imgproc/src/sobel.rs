use crate::Frame;

/// Per-pixel gradient field from a 3×3 Sobel operator.
///
/// The "feature extraction" stage of the paper's image processor: gradient
/// magnitude and orientation at every interior pixel (borders are zero).
#[derive(Debug, Clone, PartialEq)]
pub struct GradientField {
    width: usize,
    height: usize,
    gx: Vec<f32>,
    gy: Vec<f32>,
}

impl GradientField {
    /// Computes Sobel gradients of `frame`.
    pub fn compute(frame: &Frame) -> GradientField {
        let w = frame.width();
        let h = frame.height();
        let mut gx = vec![0.0f32; w * h];
        let mut gy = vec![0.0f32; w * h];
        if w >= 3 && h >= 3 {
            let px = frame.pixels();
            for y in 1..h - 1 {
                for x in 1..w - 1 {
                    let at = |dx: isize, dy: isize| -> f32 {
                        px[((y as isize + dy) as usize) * w + (x as isize + dx) as usize] as f32
                    };
                    // Sobel kernels.
                    let sx = -at(-1, -1) + at(1, -1) - 2.0 * at(-1, 0) + 2.0 * at(1, 0) - at(-1, 1)
                        + at(1, 1);
                    let sy = -at(-1, -1) - 2.0 * at(0, -1) - at(1, -1)
                        + at(-1, 1)
                        + 2.0 * at(0, 1)
                        + at(1, 1);
                    gx[y * w + x] = sx;
                    gy[y * w + x] = sy;
                }
            }
        }
        GradientField {
            width: w,
            height: h,
            gx,
            gy,
        }
    }

    /// Field width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Field height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Horizontal gradient at `(x, y)`.
    pub fn gx(&self, x: usize, y: usize) -> f32 {
        self.gx[y * self.width + x]
    }

    /// Vertical gradient at `(x, y)`.
    pub fn gy(&self, x: usize, y: usize) -> f32 {
        self.gy[y * self.width + x]
    }

    /// Gradient magnitude at `(x, y)`.
    pub fn magnitude(&self, x: usize, y: usize) -> f32 {
        let gx = self.gx(x, y);
        let gy = self.gy(x, y);
        (gx * gx + gy * gy).sqrt()
    }

    /// Gradient orientation at `(x, y)` in `[0, π)` (unsigned).
    pub fn orientation(&self, x: usize, y: usize) -> f32 {
        let angle = self.gy(x, y).atan2(self.gx(x, y));
        let pi = std::f32::consts::PI;
        ((angle % pi) + pi) % pi
    }

    /// Mean gradient magnitude over the field — a cheap "edge content"
    /// statistic used by tests.
    pub fn mean_magnitude(&self) -> f64 {
        let mut acc = 0.0f64;
        for y in 0..self.height {
            for x in 0..self.width {
                acc += self.magnitude(x, y) as f64;
            }
        }
        acc / (self.width * self.height) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn flat_frame_has_zero_gradient() {
        let f = Frame::black(16, 16).unwrap();
        let g = GradientField::compute(&f);
        assert_eq!(g.mean_magnitude(), 0.0);
    }

    #[test]
    fn vertical_edge_produces_horizontal_gradient() {
        // Left half dark, right half bright.
        let w = 16;
        let pixels: Vec<u8> = (0..w * w)
            .map(|i| if i % w < w / 2 { 0 } else { 200 })
            .collect();
        let f = Frame::from_pixels(w, w, pixels).unwrap();
        let g = GradientField::compute(&f);
        // At the edge column the x-gradient is strong, y-gradient zero.
        let x_edge = w / 2 - 1;
        assert!(g.gx(x_edge, 8).abs() > 100.0);
        assert_eq!(g.gy(x_edge, 8), 0.0);
        // Orientation of a vertical edge is 0 (pointing along x).
        assert!(g.orientation(x_edge, 8) < 0.1);
    }

    #[test]
    fn horizontal_edge_produces_vertical_gradient() {
        let w = 16;
        let pixels: Vec<u8> = (0..w * w)
            .map(|i| if i / w < w / 2 { 0 } else { 200 })
            .collect();
        let f = Frame::from_pixels(w, w, pixels).unwrap();
        let g = GradientField::compute(&f);
        let y_edge = w / 2 - 1;
        assert!(g.gy(8, y_edge).abs() > 100.0);
        assert_eq!(g.gx(8, y_edge), 0.0);
        // Orientation of a horizontal edge is π/2.
        assert!((g.orientation(8, y_edge) - std::f32::consts::FRAC_PI_2).abs() < 0.1);
    }

    #[test]
    fn borders_are_zero() {
        let f = Frame::synthetic_shape(32, 32, Shape::Disc, 5).unwrap();
        let g = GradientField::compute(&f);
        for i in 0..32 {
            assert_eq!(g.magnitude(i, 0), 0.0);
            assert_eq!(g.magnitude(0, i), 0.0);
            assert_eq!(g.magnitude(i, 31), 0.0);
            assert_eq!(g.magnitude(31, i), 0.0);
        }
    }

    #[test]
    fn shapes_have_edge_content() {
        for shape in Shape::ALL {
            let f = Frame::synthetic_shape(64, 64, shape, 9).unwrap();
            let g = GradientField::compute(&f);
            assert!(
                g.mean_magnitude() > 10.0,
                "{shape:?} produced no edges ({})",
                g.mean_magnitude()
            );
        }
    }

    #[test]
    fn tiny_frames_do_not_panic() {
        let f = Frame::black(2, 2).unwrap();
        let g = GradientField::compute(&f);
        assert_eq!(g.width(), 2);
        assert_eq!(g.mean_magnitude(), 0.0);
    }

    #[test]
    fn orientation_is_in_half_open_pi_range() {
        let f = Frame::synthetic_shape(64, 64, Shape::Stripes, 11).unwrap();
        let g = GradientField::compute(&f);
        for y in 0..64 {
            for x in 0..64 {
                let o = g.orientation(x, y);
                assert!((0.0..std::f32::consts::PI + 1e-6).contains(&o));
            }
        }
    }
}
