use crate::{FeatureVector, ImgError};

/// Nearest-centroid classifier — the "classifier" block of the paper's
/// image processor, matched to what fits a tiny fixed-function accelerator:
/// one stored centroid per class, one distance computation per class per
/// frame.
#[derive(Debug, Clone, PartialEq)]
pub struct NearestCentroidClassifier {
    centroids: Vec<(usize, FeatureVector)>,
}

impl NearestCentroidClassifier {
    /// Trains a classifier from labelled feature vectors: one centroid per
    /// distinct label.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::BadClassifier`] when no examples are given or
    /// dimensions are inconsistent.
    pub fn train(examples: &[(usize, FeatureVector)]) -> Result<Self, ImgError> {
        if examples.is_empty() {
            return Err(ImgError::BadClassifier {
                reason: "training set is empty",
            });
        }
        let dim = examples[0].1.len();
        if examples.iter().any(|(_, v)| v.len() != dim) {
            return Err(ImgError::BadClassifier {
                reason: "training vectors have mismatched dimensions",
            });
        }
        let mut labels: Vec<usize> = examples.iter().map(|(l, _)| *l).collect();
        labels.sort_unstable();
        labels.dedup();
        let mut centroids = Vec::with_capacity(labels.len());
        for label in labels {
            let class_vectors: Vec<FeatureVector> = examples
                .iter()
                .filter(|(l, _)| *l == label)
                .map(|(_, v)| v.clone())
                .collect();
            centroids.push((label, FeatureVector::centroid(&class_vectors)?));
        }
        Ok(NearestCentroidClassifier { centroids })
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.centroids.len()
    }

    /// Feature dimensionality expected by this classifier.
    pub fn dimension(&self) -> usize {
        self.centroids[0].1.len()
    }

    /// Classifies a feature vector, returning `(label, distance)` of the
    /// nearest centroid.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::BadClassifier`] when the vector dimension does
    /// not match the training dimension.
    pub fn classify(&self, features: &FeatureVector) -> Result<(usize, f64), ImgError> {
        if features.len() != self.dimension() {
            return Err(ImgError::BadClassifier {
                reason: "query vector dimension differs from training dimension",
            });
        }
        let mut best: Option<(usize, f64)> = None;
        for (label, centroid) in &self.centroids {
            let d = features.distance(centroid);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((*label, d));
            }
        }
        Ok(best.expect("at least one centroid by construction"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeatureExtractor, Frame, Shape};

    fn training_set(seeds: std::ops::Range<u64>) -> Vec<(usize, FeatureVector)> {
        let extractor = FeatureExtractor::paper_default();
        let mut examples = Vec::new();
        for shape in Shape::ALL {
            for seed in seeds.clone() {
                let frame = Frame::synthetic_shape(64, 64, shape, seed).unwrap();
                examples.push((shape.label(), extractor.extract(&frame).unwrap()));
            }
        }
        examples
    }

    #[test]
    fn train_validates_inputs() {
        assert!(NearestCentroidClassifier::train(&[]).is_err());
        let a = FeatureVector::centroid(&[training_set(0..1)[0].1.clone()]).unwrap();
        let mismatched = vec![
            (0usize, a),
            (
                1usize,
                FeatureVector::centroid(&[FeatureVector::centroid(&[training_set(0..1)[0]
                    .1
                    .clone()])
                .unwrap()])
                .unwrap(),
            ),
        ];
        // Same dims here, so this should be fine.
        assert!(NearestCentroidClassifier::train(&mismatched).is_ok());
    }

    #[test]
    fn classifies_held_out_shapes_correctly() {
        let classifier = NearestCentroidClassifier::train(&training_set(0..10)).unwrap();
        assert_eq!(classifier.class_count(), 4);
        assert_eq!(classifier.dimension(), 512);
        let extractor = FeatureExtractor::paper_default();
        let mut correct = 0;
        let mut total = 0;
        for shape in Shape::ALL {
            for seed in 100..110 {
                let frame = Frame::synthetic_shape(64, 64, shape, seed).unwrap();
                let v = extractor.extract(&frame).unwrap();
                let (label, _) = classifier.classify(&v).unwrap();
                total += 1;
                if label == shape.label() {
                    correct += 1;
                }
            }
        }
        // A real recognizer: expect strong accuracy on clean synthetic data.
        assert!(
            correct * 100 >= total * 85,
            "accuracy {correct}/{total} below 85%"
        );
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let classifier = NearestCentroidClassifier::train(&training_set(0..2)).unwrap();
        let small = FeatureExtractor::new(8, 4).unwrap();
        let frame = Frame::synthetic_shape(64, 64, Shape::Disc, 0).unwrap();
        let v = small.extract(&frame).unwrap();
        assert!(classifier.classify(&v).is_err());
    }

    #[test]
    fn distance_to_own_centroid_is_smallest() {
        let examples = training_set(0..5);
        let classifier = NearestCentroidClassifier::train(&examples).unwrap();
        // The centroid itself classifies to its own label at distance ~0.
        for (label, centroid) in &classifier.centroids {
            let (got, d) = classifier.classify(centroid).unwrap();
            assert_eq!(got, *label);
            assert!(d < 1e-6);
        }
    }
}
