use crate::ImgError;
use hems_units::XorShiftRng;

/// Synthetic test patterns for frame generation.
///
/// The paper scans camera pixels into the chip; lacking a sensor, these
/// deterministic generators produce frames with distinct gradient signatures
/// that the classifier can genuinely distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// A bright axis-aligned rectangle on a dark background.
    Rectangle,
    /// A plus-sign of two crossing bars.
    Cross,
    /// A filled disc.
    Disc,
    /// Diagonal stripes.
    Stripes,
}

impl Shape {
    /// All supported shapes, in a stable order.
    pub const ALL: [Shape; 4] = [Shape::Rectangle, Shape::Cross, Shape::Disc, Shape::Stripes];

    /// A stable class label for this shape.
    pub fn label(self) -> usize {
        match self {
            Shape::Rectangle => 0,
            Shape::Cross => 1,
            Shape::Disc => 2,
            Shape::Stripes => 3,
        }
    }
}

/// A grayscale image frame, stored row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Frame {
    /// Builds a frame from a pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::BadDimensions`] for zero dimensions and
    /// [`ImgError::BufferMismatch`] when the buffer length differs from
    /// `width * height`.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Result<Frame, ImgError> {
        if width == 0 || height == 0 {
            return Err(ImgError::BadDimensions {
                width,
                height,
                reason: "dimensions must be positive",
            });
        }
        if pixels.len() != width * height {
            return Err(ImgError::BufferMismatch {
                expected: width * height,
                got: pixels.len(),
            });
        }
        Ok(Frame {
            width,
            height,
            pixels,
        })
    }

    /// A uniformly dark frame.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::BadDimensions`] for zero dimensions.
    pub fn black(width: usize, height: usize) -> Result<Frame, ImgError> {
        Frame::from_pixels(width, height, vec![0; width * height])
    }

    /// A deterministic synthetic frame showing `shape`, with seeded noise
    /// and jittered placement so repeated generation with different seeds
    /// yields a varied but reproducible dataset.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::BadDimensions`] for dimensions below 8×8.
    pub fn synthetic_shape(
        width: usize,
        height: usize,
        shape: Shape,
        seed: u64,
    ) -> Result<Frame, ImgError> {
        if width < 8 || height < 8 {
            return Err(ImgError::BadDimensions {
                width,
                height,
                reason: "synthetic frames need at least 8x8 pixels",
            });
        }
        let mut rng = XorShiftRng::seed_from_u64(seed ^ (shape.label() as u64) << 32);
        let mut pixels = vec![0u8; width * height];
        // Background noise.
        for p in &mut pixels {
            *p = rng.below_u32(32) as u8;
        }
        let cx = width as f64 * rng.range_f64(0.4, 0.6);
        let cy = height as f64 * rng.range_f64(0.4, 0.6);
        let scale = (width.min(height) as f64) * rng.range_f64(0.25, 0.35);
        let fg: u8 = rng.range_u32(180, 256) as u8;
        for y in 0..height {
            for x in 0..width {
                let dx = x as f64 - cx;
                let dy = y as f64 - cy;
                let inside = match shape {
                    Shape::Rectangle => dx.abs() < scale && dy.abs() < scale * 0.6,
                    Shape::Cross => {
                        (dx.abs() < scale * 0.2 && dy.abs() < scale)
                            || (dy.abs() < scale * 0.2 && dx.abs() < scale)
                    }
                    Shape::Disc => (dx * dx + dy * dy).sqrt() < scale,
                    Shape::Stripes => ((dx + dy) / (scale * 0.4)).rem_euclid(2.0) < 1.0,
                };
                if inside {
                    pixels[y * width + x] = fg.saturating_sub(rng.below_u32(16) as u8);
                }
            }
        }
        Frame::from_pixels(width, height, pixels)
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    pub fn pixel_count(&self) -> usize {
        self.pixels.len()
    }

    /// The raw pixel buffer, row-major.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Mean pixel intensity in `[0, 255]`.
    pub fn mean_intensity(&self) -> f64 {
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }

    /// Copies the `w × h` window whose top-left corner is `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::BadDimensions`] when the window exceeds the
    /// frame bounds or has zero size.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Result<Frame, ImgError> {
        if w == 0 || h == 0 || x + w > self.width || y + h > self.height {
            return Err(ImgError::BadDimensions {
                width: w,
                height: h,
                reason: "crop window out of bounds",
            });
        }
        let mut pixels = Vec::with_capacity(w * h);
        for row in y..y + h {
            let start = row * self.width + x;
            pixels.extend_from_slice(&self.pixels[start..start + w]);
        }
        Frame::from_pixels(w, h, pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(Frame::from_pixels(0, 4, vec![]).is_err());
        assert!(Frame::from_pixels(4, 0, vec![]).is_err());
        assert!(matches!(
            Frame::from_pixels(4, 4, vec![0; 15]),
            Err(ImgError::BufferMismatch {
                expected: 16,
                got: 15
            })
        ));
        assert!(Frame::from_pixels(4, 4, vec![0; 16]).is_ok());
        assert!(Frame::synthetic_shape(4, 4, Shape::Disc, 0).is_err());
    }

    #[test]
    fn synthetic_frames_are_deterministic() {
        let a = Frame::synthetic_shape(64, 64, Shape::Cross, 42).unwrap();
        let b = Frame::synthetic_shape(64, 64, Shape::Cross, 42).unwrap();
        assert_eq!(a, b);
        let c = Frame::synthetic_shape(64, 64, Shape::Cross, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn shapes_have_distinct_content() {
        let disc = Frame::synthetic_shape(64, 64, Shape::Disc, 1).unwrap();
        let cross = Frame::synthetic_shape(64, 64, Shape::Cross, 1).unwrap();
        // A disc fills much more area than a thin cross.
        assert!(disc.mean_intensity() > cross.mean_intensity());
    }

    #[test]
    fn foreground_is_brighter_than_background() {
        let f = Frame::synthetic_shape(64, 64, Shape::Rectangle, 3).unwrap();
        assert!(f.mean_intensity() > 20.0);
        // Corner pixels are background noise.
        assert!(f.pixel(0, 0) < 32);
        assert!(f.pixel(63, 63) < 32);
        // Center pixel is foreground.
        assert!(f.pixel(32, 32) > 150);
    }

    #[test]
    fn accessors_agree() {
        let f = Frame::black(16, 8).unwrap();
        assert_eq!(f.width(), 16);
        assert_eq!(f.height(), 8);
        assert_eq!(f.pixel_count(), 128);
        assert_eq!(f.pixels().len(), 128);
        assert_eq!(f.mean_intensity(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn pixel_bounds_are_checked() {
        let f = Frame::black(8, 8).unwrap();
        let _ = f.pixel(8, 0);
    }

    #[test]
    fn shape_labels_are_stable_and_distinct() {
        let labels: Vec<usize> = Shape::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }
}
