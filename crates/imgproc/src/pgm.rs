//! Minimal PGM (portable graymap) I/O, so real camera frames can be fed
//! through the recognition pipeline.
//!
//! Supports the binary `P5` variant with 8-bit depth — the de-facto
//! interchange format for grayscale test imagery — using only `std`.

use crate::{Frame, ImgError};
use std::io::{self, BufRead, Write};

/// Error type for PGM parsing: either an I/O failure or a format defect.
#[derive(Debug)]
pub enum PgmError {
    /// Underlying reader/writer failed.
    Io(io::Error),
    /// The byte stream is not a valid 8-bit P5 PGM.
    Format {
        /// Explanation of the defect.
        reason: &'static str,
    },
    /// The pixels parsed but violate frame invariants.
    Frame(ImgError),
}

impl std::fmt::Display for PgmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PgmError::Io(e) => write!(f, "pgm i/o failed: {e}"),
            PgmError::Format { reason } => write!(f, "malformed pgm: {reason}"),
            PgmError::Frame(e) => write!(f, "pgm produced an invalid frame: {e}"),
        }
    }
}

impl std::error::Error for PgmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PgmError::Io(e) => Some(e),
            PgmError::Frame(e) => Some(e),
            PgmError::Format { .. } => None,
        }
    }
}

impl From<io::Error> for PgmError {
    fn from(e: io::Error) -> Self {
        PgmError::Io(e)
    }
}

impl From<ImgError> for PgmError {
    fn from(e: ImgError) -> Self {
        PgmError::Frame(e)
    }
}

/// Reads one ASCII token (whitespace-delimited, `#` comments skipped).
fn read_token<R: BufRead>(r: &mut R) -> Result<String, PgmError> {
    let mut token = String::new();
    let mut byte = [0u8; 1];
    // Skip whitespace and comments.
    loop {
        if r.read(&mut byte)? == 0 {
            return Err(PgmError::Format {
                reason: "unexpected end of header",
            });
        }
        match byte[0] {
            b'#' => {
                // Comment to end of line.
                let mut junk = Vec::new();
                r.read_until(b'\n', &mut junk)?;
            }
            c if c.is_ascii_whitespace() => {}
            c => {
                token.push(c as char);
                break;
            }
        }
    }
    loop {
        if r.read(&mut byte)? == 0 {
            break;
        }
        if byte[0].is_ascii_whitespace() {
            break;
        }
        token.push(byte[0] as char);
        if token.len() > 16 {
            return Err(PgmError::Format {
                reason: "header token too long",
            });
        }
    }
    Ok(token)
}

/// Parses a binary 8-bit `P5` PGM from `reader` into a [`Frame`].
///
/// # Errors
///
/// Returns [`PgmError`] for I/O failures, non-P5 magic, missing header
/// fields, depths other than 1–255, or truncated pixel data.
pub fn read_pgm<R: BufRead>(mut reader: R) -> Result<Frame, PgmError> {
    let magic = read_token(&mut reader)?;
    if magic != "P5" {
        return Err(PgmError::Format {
            reason: "only binary P5 graymaps are supported",
        });
    }
    let parse = |t: String, what: &'static str| -> Result<usize, PgmError> {
        t.parse::<usize>().map_err(|_| PgmError::Format {
            reason: match what {
                "width" => "width is not a number",
                "height" => "height is not a number",
                _ => "maxval is not a number",
            },
        })
    };
    let width = parse(read_token(&mut reader)?, "width")?;
    let height = parse(read_token(&mut reader)?, "height")?;
    let maxval = parse(read_token(&mut reader)?, "maxval")?;
    if maxval == 0 || maxval > 255 {
        return Err(PgmError::Format {
            reason: "only 8-bit graymaps (maxval 1-255) are supported",
        });
    }
    let mut pixels = vec![
        0u8;
        width.checked_mul(height).ok_or(PgmError::Format {
            reason: "image dimensions overflow",
        })?
    ];
    reader
        .read_exact(&mut pixels)
        .map_err(|_| PgmError::Format {
            reason: "truncated pixel data",
        })?;
    if maxval != 255 {
        // Rescale to the full 8-bit range the pipeline expects.
        for p in &mut pixels {
            *p = ((*p as usize * 255) / maxval) as u8;
        }
    }
    Ok(Frame::from_pixels(width, height, pixels)?)
}

/// Writes `frame` as a binary 8-bit `P5` PGM.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_pgm<W: Write>(frame: &Frame, mut writer: W) -> io::Result<()> {
    write!(writer, "P5\n{} {}\n255\n", frame.width(), frame.height())?;
    writer.write_all(frame.pixels())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn round_trips_a_synthetic_frame() {
        let frame = Frame::synthetic_shape(64, 64, Shape::Disc, 5).unwrap();
        let mut buf = Vec::new();
        write_pgm(&frame, &mut buf).unwrap();
        let back = read_pgm(buf.as_slice()).unwrap();
        assert_eq!(frame, back);
    }

    #[test]
    fn parses_headers_with_comments() {
        let mut data = b"P5\n# a comment\n2 2\n# another\n255\n".to_vec();
        data.extend_from_slice(&[0, 64, 128, 255]);
        let frame = read_pgm(data.as_slice()).unwrap();
        assert_eq!(frame.width(), 2);
        assert_eq!(frame.pixel(1, 1), 255);
    }

    #[test]
    fn rescales_low_maxval() {
        let mut data = b"P5\n2 1\n3\n".to_vec();
        data.extend_from_slice(&[0, 3]);
        let frame = read_pgm(data.as_slice()).unwrap();
        assert_eq!(frame.pixel(0, 0), 0);
        assert_eq!(frame.pixel(1, 0), 255);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(
            read_pgm(b"P2\n2 2\n255\n".as_slice()),
            Err(PgmError::Format { .. })
        ));
        assert!(matches!(
            read_pgm(b"P5\nhello 2\n255\n".as_slice()),
            Err(PgmError::Format { .. })
        ));
        assert!(matches!(
            read_pgm(b"P5\n2 2\n0\n".as_slice()),
            Err(PgmError::Format { .. })
        ));
        assert!(matches!(
            read_pgm(b"P5\n2 2\n65535\n".as_slice()),
            Err(PgmError::Format { .. })
        ));
        // Truncated data.
        let data = b"P5\n4 4\n255\nab".to_vec();
        assert!(matches!(
            read_pgm(data.as_slice()),
            Err(PgmError::Format { reason }) if reason.contains("truncated")
        ));
        // Empty stream.
        assert!(matches!(
            read_pgm(b"".as_slice()),
            Err(PgmError::Format { .. })
        ));
    }

    #[test]
    fn error_display_and_source() {
        let e = PgmError::Format { reason: "bad" };
        assert!(e.to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_none());
        let e = PgmError::from(io::Error::other("x"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
