use crate::{CycleCostModel, FeatureExtractor, Frame, ImgError, NearestCentroidClassifier, Shape};
use hems_units::Cycles;

/// Result of processing one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineResult {
    /// Predicted class label.
    pub label: usize,
    /// Distance to the winning centroid (lower = more confident).
    pub distance: f64,
    /// Clock cycles the frame cost, per the [`CycleCostModel`].
    pub cycles: Cycles,
}

/// The full recognition pipeline of the paper's test chip: feature
/// extraction → vector formation → classification, with cycle accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct RecognitionPipeline {
    extractor: FeatureExtractor,
    classifier: NearestCentroidClassifier,
    cost: CycleCostModel,
}

impl RecognitionPipeline {
    /// Assembles a pipeline from its stages.
    pub fn new(
        extractor: FeatureExtractor,
        classifier: NearestCentroidClassifier,
        cost: CycleCostModel,
    ) -> RecognitionPipeline {
        RecognitionPipeline {
            extractor,
            classifier,
            cost,
        }
    }

    /// The paper-scale pipeline: 64×64 frames, 8×8/8-bin features, a
    /// 4-class shape classifier trained on a small synthetic set, and the
    /// calibrated cycle costs.
    ///
    /// # Errors
    ///
    /// Propagates training failures (should not occur for the built-in
    /// synthetic set).
    pub fn paper_default() -> Result<RecognitionPipeline, ImgError> {
        let extractor = FeatureExtractor::paper_default();
        let mut examples = Vec::new();
        for shape in Shape::ALL {
            for seed in 0..8 {
                let frame = Frame::synthetic_shape(64, 64, shape, seed)?;
                examples.push((shape.label(), extractor.extract(&frame)?));
            }
        }
        Ok(RecognitionPipeline {
            extractor,
            classifier: NearestCentroidClassifier::train(&examples)?,
            cost: CycleCostModel::paper_default(),
        })
    }

    /// The feature extractor stage.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// The classifier stage.
    pub fn classifier(&self) -> &NearestCentroidClassifier {
        &self.classifier
    }

    /// Cycles one `frame` would cost, without running it.
    pub fn frame_cost(&self, frame: &Frame) -> Cycles {
        self.cost
            .frame_cost(frame, &self.extractor, self.classifier.class_count())
    }

    /// Processes a frame end-to-end.
    ///
    /// # Panics
    ///
    /// Panics if the frame does not tile into the extractor's cells or its
    /// features mismatch the classifier — configuration errors that
    /// [`RecognitionPipeline::try_process`] surfaces as `Err` instead.
    pub fn process(&self, frame: &Frame) -> PipelineResult {
        self.try_process(frame)
            .expect("frame incompatible with pipeline configuration")
    }

    /// Processes a frame end-to-end, surfacing configuration mismatches.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError`] when the frame does not tile into the feature
    /// cells or the resulting vector has the wrong dimension.
    pub fn try_process(&self, frame: &Frame) -> Result<PipelineResult, ImgError> {
        let features = self.extractor.extract(frame)?;
        let (label, distance) = self.classifier.classify(&features)?;
        Ok(PipelineResult {
            label,
            distance,
            cycles: self.frame_cost(frame),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pipeline_recognizes_shapes() {
        let p = RecognitionPipeline::paper_default().unwrap();
        let mut correct = 0;
        for shape in Shape::ALL {
            for seed in 50..55 {
                let frame = Frame::synthetic_shape(64, 64, shape, seed).unwrap();
                if p.process(&frame).label == shape.label() {
                    correct += 1;
                }
            }
        }
        assert!(correct >= 17, "only {correct}/20 correct");
    }

    #[test]
    fn cycle_cost_matches_calibration() {
        let p = RecognitionPipeline::paper_default().unwrap();
        let frame = Frame::synthetic_shape(64, 64, Shape::Disc, 99).unwrap();
        let r = p.process(&frame);
        assert!(r.cycles.count() > 0.95e6 && r.cycles.count() < 1.05e6);
        assert_eq!(r.cycles, p.frame_cost(&frame));
    }

    #[test]
    fn try_process_surfaces_bad_frames() {
        let p = RecognitionPipeline::paper_default().unwrap();
        let odd = Frame::black(60, 60).unwrap();
        assert!(p.try_process(&odd).is_err());
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn process_panics_on_bad_frames() {
        let p = RecognitionPipeline::paper_default().unwrap();
        let odd = Frame::black(60, 60).unwrap();
        let _ = p.process(&odd);
    }

    #[test]
    fn accessors_expose_stages() {
        let p = RecognitionPipeline::paper_default().unwrap();
        assert_eq!(p.extractor().cell_size(), 8);
        assert_eq!(p.classifier().class_count(), 4);
    }
}
