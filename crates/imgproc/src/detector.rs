use crate::{CycleCostModel, FeatureExtractor, Frame, ImgError, NearestCentroidClassifier, Shape};
use hems_units::Cycles;

/// One sliding-window hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Window top-left x.
    pub x: usize,
    /// Window top-left y.
    pub y: usize,
    /// Predicted class of the window.
    pub label: usize,
    /// Distance to the winning centroid (lower = stronger).
    pub distance: f64,
}

/// Sliding-window pattern detector — the "windowed frame" processing the
/// paper's Section VII describes: feature vectors are formed per window and
/// classified, windows too far from every trained centroid are rejected as
/// background.
///
/// This is the heavy workload variant: a 64×64 frame at the default
/// 32×32/stride-16 configuration runs 9 windows, each a full
/// extract-and-classify pass, so one detector frame costs several times a
/// plain classification frame — the kind of job the deadline/sprinting
/// machinery exists for.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowDetector {
    extractor: FeatureExtractor,
    classifier: NearestCentroidClassifier,
    cost: CycleCostModel,
    window: usize,
    stride: usize,
    reject_distance: f64,
}

impl WindowDetector {
    /// Builds a detector.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::BadDimensions`] when the window does not tile
    /// into the extractor's cells or the stride is zero, and
    /// [`ImgError::BadClassifier`] when the classifier's dimension does not
    /// match the extractor's output for the window size.
    pub fn new(
        extractor: FeatureExtractor,
        classifier: NearestCentroidClassifier,
        cost: CycleCostModel,
        window: usize,
        stride: usize,
        reject_distance: f64,
    ) -> Result<WindowDetector, ImgError> {
        if stride == 0 || window == 0 || !window.is_multiple_of(extractor.cell_size()) {
            return Err(ImgError::BadDimensions {
                width: window,
                height: stride,
                reason: "window must tile into feature cells and stride must be positive",
            });
        }
        if classifier.dimension() != extractor.output_dim(window, window) {
            return Err(ImgError::BadClassifier {
                reason: "classifier dimension does not match window features",
            });
        }
        Ok(WindowDetector {
            extractor,
            classifier,
            cost,
            window,
            stride,
            reject_distance,
        })
    }

    /// A 32×32-window, stride-16 detector trained on synthetic shape crops.
    ///
    /// # Errors
    ///
    /// Propagates training failures (should not occur for the built-in
    /// synthetic set).
    pub fn paper_default() -> Result<WindowDetector, ImgError> {
        let extractor = FeatureExtractor::paper_default();
        let mut examples = Vec::new();
        for shape in Shape::ALL {
            for seed in 0..10 {
                let frame = Frame::synthetic_shape(32, 32, shape, seed)?;
                examples.push((shape.label(), extractor.extract(&frame)?));
            }
        }
        WindowDetector::new(
            extractor,
            NearestCentroidClassifier::train(&examples)?,
            CycleCostModel::paper_default(),
            32,
            16,
            // Empirically: true shape windows score 0.5-2.2, noise-only
            // background 2.8+, flat black 3.5 — 2.5 separates cleanly.
            2.5,
        )
    }

    /// The window edge length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The scan stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of windows scanned in a `w × h` frame.
    pub fn window_count(&self, w: usize, h: usize) -> usize {
        if w < self.window || h < self.window {
            return 0;
        }
        let nx = (w - self.window) / self.stride + 1;
        let ny = (h - self.window) / self.stride + 1;
        nx * ny
    }

    /// Cycles one detector pass over `frame` costs: one scan-in plus a full
    /// extract+classify per window.
    pub fn detection_cost(&self, frame: &Frame) -> Cycles {
        let scan = frame.pixel_count() as f64 * self.cost.scan_per_pixel;
        let per_window_pixels = (self.window * self.window) as f64
            * (self.cost.gradient_per_pixel + self.cost.histogram_per_pixel);
        let per_window_classify = self.extractor.output_dim(self.window, self.window) as f64
            * self.cost.classify_per_element
            * self.classifier.class_count() as f64;
        let windows = self.window_count(frame.width(), frame.height()) as f64;
        Cycles::new(
            scan + windows * (per_window_pixels + per_window_classify) + self.cost.frame_overhead,
        )
    }

    /// Scans `frame` and returns every window whose nearest centroid is
    /// within the rejection distance.
    ///
    /// # Errors
    ///
    /// Propagates extraction errors (cannot occur when the detector's
    /// window tiles the extractor cells, which construction guarantees).
    pub fn detect(&self, frame: &Frame) -> Result<Vec<Detection>, ImgError> {
        let mut detections = Vec::new();
        if frame.width() < self.window || frame.height() < self.window {
            return Ok(detections);
        }
        let mut y = 0;
        while y + self.window <= frame.height() {
            let mut x = 0;
            while x + self.window <= frame.width() {
                let crop = frame.crop(x, y, self.window, self.window)?;
                let features = self.extractor.extract(&crop)?;
                let (label, distance) = self.classifier.classify(&features)?;
                if distance <= self.reject_distance {
                    detections.push(Detection {
                        x,
                        y,
                        label,
                        distance,
                    });
                }
                x += self.stride;
            }
            y += self.stride;
        }
        Ok(detections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 64×64 frame with a 32×32 shape pasted into one quadrant.
    fn frame_with_shape_at(shape: Shape, qx: usize, qy: usize) -> Frame {
        let patch = Frame::synthetic_shape(32, 32, shape, 77).unwrap();
        let mut pixels = vec![8u8; 64 * 64];
        for y in 0..32 {
            for x in 0..32 {
                pixels[(qy * 32 + y) * 64 + (qx * 32 + x)] = patch.pixel(x, y);
            }
        }
        Frame::from_pixels(64, 64, pixels).unwrap()
    }

    #[test]
    fn detects_a_shape_in_the_right_quadrant() {
        let detector = WindowDetector::paper_default().unwrap();
        let frame = frame_with_shape_at(Shape::Disc, 1, 0); // top-right
        let detections = detector.detect(&frame).unwrap();
        assert!(!detections.is_empty(), "nothing detected");
        // The strongest detection is the aligned top-right window.
        let best = detections
            .iter()
            .min_by(|a, b| a.distance.partial_cmp(&b.distance).unwrap())
            .unwrap();
        assert_eq!((best.x, best.y), (32, 0), "best at {best:?}");
        assert_eq!(best.label, Shape::Disc.label());
    }

    #[test]
    fn empty_frames_yield_no_detections() {
        let detector = WindowDetector::paper_default().unwrap();
        let frame = Frame::black(64, 64).unwrap();
        assert!(detector.detect(&frame).unwrap().is_empty());
        // Too-small frames scan zero windows.
        let tiny = Frame::black(16, 16).unwrap();
        assert!(detector.detect(&tiny).unwrap().is_empty());
        assert_eq!(detector.window_count(16, 16), 0);
    }

    #[test]
    fn window_count_and_cost_scale_with_stride() {
        let detector = WindowDetector::paper_default().unwrap();
        assert_eq!(detector.window_count(64, 64), 9); // 3x3 at stride 16
        assert_eq!(detector.window(), 32);
        assert_eq!(detector.stride(), 16);
        let frame = Frame::black(64, 64).unwrap();
        let cost = detector.detection_cost(&frame);
        // 9 windows of full feature work dwarf a single-pass frame.
        let single = CycleCostModel::paper_default().frame_cost(
            &frame,
            &FeatureExtractor::paper_default(),
            4,
        );
        assert!(
            cost.count() > single.count() * 1.5,
            "detector {} vs single {}",
            cost.count(),
            single.count()
        );
    }

    #[test]
    fn constructor_validates() {
        let extractor = FeatureExtractor::paper_default();
        let frame = Frame::synthetic_shape(32, 32, Shape::Disc, 0).unwrap();
        let classifier =
            NearestCentroidClassifier::train(&[(0, extractor.extract(&frame).unwrap())]).unwrap();
        let cost = CycleCostModel::paper_default();
        // Stride 0.
        assert!(WindowDetector::new(extractor, classifier.clone(), cost, 32, 0, 4.0).is_err());
        // Window not a multiple of the cell size.
        assert!(WindowDetector::new(extractor, classifier.clone(), cost, 30, 16, 4.0).is_err());
        // Dimension mismatch (classifier trained on 32x32, window 64).
        assert!(WindowDetector::new(extractor, classifier, cost, 64, 16, 4.0).is_err());
    }

    #[test]
    fn crop_helper_behaves() {
        let frame = Frame::synthetic_shape(64, 64, Shape::Cross, 1).unwrap();
        let crop = frame.crop(16, 8, 32, 32).unwrap();
        assert_eq!(crop.width(), 32);
        assert_eq!(crop.pixel(0, 0), frame.pixel(16, 8));
        assert_eq!(crop.pixel(31, 31), frame.pixel(47, 39));
        assert!(frame.crop(40, 40, 32, 32).is_err());
        assert!(frame.crop(0, 0, 0, 4).is_err());
    }
}
