use crate::{FeatureExtractor, Frame};
use hems_units::Cycles;

/// Cycle-cost model of the fixed-function image processor.
///
/// The energy-management layers charge the CPU model by clock cycles; this
/// model translates pipeline work into cycles. Costs are per-pixel /
/// per-element constants for each hardware block of the paper's Fig. 10
/// (data scan-in, feature extraction, vector formation, classifier), plus a
/// fixed per-frame control overhead.
///
/// **Calibration** (asserted in tests): with the default constants a 64×64
/// frame through the paper-default extractor and a 4-class classifier costs
/// ≈ 1.0 M cycles — which the CPU model turns into the paper's "about 15 ms
/// at 0.5 V".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleCostModel {
    /// Cycles to scan one pixel into on-chip memory.
    pub scan_per_pixel: f64,
    /// Cycles of gradient computation per pixel.
    pub gradient_per_pixel: f64,
    /// Cycles of histogram/vector formation per pixel.
    pub histogram_per_pixel: f64,
    /// Cycles per feature-vector element per class in the classifier.
    pub classify_per_element: f64,
    /// Fixed per-frame control overhead in cycles.
    pub frame_overhead: f64,
}

impl CycleCostModel {
    /// The calibrated default (see type-level docs).
    pub fn paper_default() -> CycleCostModel {
        CycleCostModel {
            scan_per_pixel: 30.0,
            gradient_per_pixel: 120.0,
            histogram_per_pixel: 80.0,
            classify_per_element: 2.0,
            frame_overhead: 50_000.0,
        }
    }

    /// Cycles to process `frame` through `extractor` and an `n_classes`-way
    /// classifier.
    pub fn frame_cost(
        &self,
        frame: &Frame,
        extractor: &FeatureExtractor,
        n_classes: usize,
    ) -> Cycles {
        let pixels = frame.pixel_count() as f64;
        let dim = extractor.output_dim(frame.width(), frame.height()) as f64;
        let per_pixel = self.scan_per_pixel + self.gradient_per_pixel + self.histogram_per_pixel;
        Cycles::new(
            pixels * per_pixel
                + dim * self.classify_per_element * n_classes as f64
                + self.frame_overhead,
        )
    }
}

impl Default for CycleCostModel {
    fn default() -> Self {
        CycleCostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_64x64_costs_about_a_megacycle() {
        let cost = CycleCostModel::paper_default();
        let frame = Frame::black(64, 64).unwrap();
        let extractor = FeatureExtractor::paper_default();
        let c = cost.frame_cost(&frame, &extractor, 4);
        assert!(
            c.count() > 0.95e6 && c.count() < 1.05e6,
            "cost = {} cycles",
            c.count()
        );
    }

    #[test]
    fn cost_scales_with_pixels() {
        let cost = CycleCostModel::paper_default();
        let extractor = FeatureExtractor::paper_default();
        let small = cost.frame_cost(&Frame::black(32, 32).unwrap(), &extractor, 4);
        let large = cost.frame_cost(&Frame::black(64, 64).unwrap(), &extractor, 4);
        // 4x the pixels, but the fixed overhead keeps the ratio below 4.
        let ratio = large.count() / small.count();
        assert!(ratio > 3.0 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn cost_scales_with_class_count() {
        let cost = CycleCostModel::paper_default();
        let extractor = FeatureExtractor::paper_default();
        let frame = Frame::black(64, 64).unwrap();
        let few = cost.frame_cost(&frame, &extractor, 2);
        let many = cost.frame_cost(&frame, &extractor, 16);
        assert!(many > few);
        let delta = many.count() - few.count();
        assert_eq!(delta, 512.0 * 2.0 * 14.0);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(CycleCostModel::default(), CycleCostModel::paper_default());
    }
}
