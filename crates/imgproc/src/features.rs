use crate::{Frame, GradientField, ImgError};

/// A dense feature vector of windowed gradient-orientation histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    values: Vec<f32>,
}

impl FeatureVector {
    /// The vector's components.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Dimensionality.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Euclidean distance to another vector.
    ///
    /// # Panics
    ///
    /// Panics when the dimensions differ.
    pub fn distance(&self, other: &FeatureVector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "feature vectors must share a dimensionality"
        );
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| {
                let d = (a - b) as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Component-wise mean of several vectors (the centroid).
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::BadClassifier`] when `vectors` is empty or the
    /// dimensions disagree.
    pub fn centroid(vectors: &[FeatureVector]) -> Result<FeatureVector, ImgError> {
        let Some(first) = vectors.first() else {
            return Err(ImgError::BadClassifier {
                reason: "cannot form a centroid of zero vectors",
            });
        };
        let dim = first.len();
        if vectors.iter().any(|v| v.len() != dim) {
            return Err(ImgError::BadClassifier {
                reason: "centroid inputs have mismatched dimensions",
            });
        }
        let mut acc = vec![0.0f32; dim];
        for v in vectors {
            for (a, x) in acc.iter_mut().zip(v.values.iter()) {
                *a += x;
            }
        }
        let n = vectors.len() as f32;
        Ok(FeatureVector {
            values: acc.into_iter().map(|a| a / n).collect(),
        })
    }
}

/// Extracts windowed gradient-orientation histograms — the "vector
/// formation" block of the paper's Fig. 10.
///
/// The frame is tiled into `cell_size × cell_size` cells; each cell
/// accumulates a histogram of gradient orientations over `bins` bins,
/// weighted by gradient magnitude, then the histogram is L2-normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureExtractor {
    cell_size: usize,
    bins: usize,
}

impl FeatureExtractor {
    /// Builds an extractor.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::BadDimensions`] when `cell_size < 2` or
    /// `bins == 0`.
    pub fn new(cell_size: usize, bins: usize) -> Result<FeatureExtractor, ImgError> {
        if cell_size < 2 || bins == 0 {
            return Err(ImgError::BadDimensions {
                width: cell_size,
                height: bins,
                reason: "cell size must be >= 2 and bins >= 1",
            });
        }
        Ok(FeatureExtractor { cell_size, bins })
    }

    /// The paper-scale default: 8×8 cells with 8 orientation bins, so a
    /// 64×64 frame yields an 8·8·8 = 512-dimensional vector.
    pub fn paper_default() -> FeatureExtractor {
        FeatureExtractor::new(8, 8).expect("reference parameters are valid")
    }

    /// Cell edge length in pixels.
    pub fn cell_size(&self) -> usize {
        self.cell_size
    }

    /// Orientation bins per cell.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Dimensionality of the vector produced for `width × height` frames.
    pub fn output_dim(&self, width: usize, height: usize) -> usize {
        (width / self.cell_size) * (height / self.cell_size) * self.bins
    }

    /// Extracts the feature vector of `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`ImgError::BadDimensions`] when the frame is not an exact
    /// multiple of the cell size in both axes.
    pub fn extract(&self, frame: &Frame) -> Result<FeatureVector, ImgError> {
        let w = frame.width();
        let h = frame.height();
        if !w.is_multiple_of(self.cell_size) || !h.is_multiple_of(self.cell_size) {
            return Err(ImgError::BadDimensions {
                width: w,
                height: h,
                reason: "frame must tile exactly into feature cells",
            });
        }
        let grad = GradientField::compute(frame);
        let cells_x = w / self.cell_size;
        let cells_y = h / self.cell_size;
        let mut values = vec![0.0f32; cells_x * cells_y * self.bins];
        let bin_width = std::f32::consts::PI / self.bins as f32;
        for cy in 0..cells_y {
            for cx in 0..cells_x {
                let base = (cy * cells_x + cx) * self.bins;
                for dy in 0..self.cell_size {
                    for dx in 0..self.cell_size {
                        let x = cx * self.cell_size + dx;
                        let y = cy * self.cell_size + dy;
                        let mag = grad.magnitude(x, y);
                        if mag > 0.0 {
                            let bin =
                                ((grad.orientation(x, y) / bin_width) as usize).min(self.bins - 1);
                            values[base + bin] += mag;
                        }
                    }
                }
                // L2-normalize the cell histogram.
                let norm: f32 = values[base..base + self.bins]
                    .iter()
                    .map(|v| v * v)
                    .sum::<f32>()
                    .sqrt();
                if norm > 0.0 {
                    for v in &mut values[base..base + self.bins] {
                        *v /= norm;
                    }
                }
            }
        }
        Ok(FeatureVector { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn output_dimension_matches_tiling() {
        let e = FeatureExtractor::paper_default();
        assert_eq!(e.output_dim(64, 64), 512);
        assert_eq!(e.cell_size(), 8);
        assert_eq!(e.bins(), 8);
        let f = Frame::synthetic_shape(64, 64, Shape::Disc, 1).unwrap();
        let v = e.extract(&f).unwrap();
        assert_eq!(v.len(), 512);
        assert!(!v.is_empty());
    }

    #[test]
    fn rejects_untileable_frames() {
        let e = FeatureExtractor::paper_default();
        let f = Frame::black(60, 64).unwrap();
        assert!(matches!(e.extract(&f), Err(ImgError::BadDimensions { .. })));
    }

    #[test]
    fn cells_are_l2_normalized() {
        let e = FeatureExtractor::paper_default();
        let f = Frame::synthetic_shape(64, 64, Shape::Cross, 2).unwrap();
        let v = e.extract(&f).unwrap();
        for cell in v.values().chunks(8) {
            let norm: f32 = cell.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-4, "cell norm {norm}");
        }
    }

    #[test]
    fn flat_frame_yields_zero_vector() {
        let e = FeatureExtractor::paper_default();
        let f = Frame::black(64, 64).unwrap();
        let v = e.extract(&f).unwrap();
        assert!(v.values().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn different_shapes_yield_distant_vectors() {
        let e = FeatureExtractor::paper_default();
        let disc = e
            .extract(&Frame::synthetic_shape(64, 64, Shape::Disc, 3).unwrap())
            .unwrap();
        let stripes = e
            .extract(&Frame::synthetic_shape(64, 64, Shape::Stripes, 3).unwrap())
            .unwrap();
        let disc2 = e
            .extract(&Frame::synthetic_shape(64, 64, Shape::Disc, 4).unwrap())
            .unwrap();
        // Same shape, different seed: closer than different shapes.
        assert!(disc.distance(&disc2) < disc.distance(&stripes));
    }

    #[test]
    fn centroid_averages_components() {
        let a = FeatureVector {
            values: vec![0.0, 2.0],
        };
        let b = FeatureVector {
            values: vec![4.0, 0.0],
        };
        let c = FeatureVector::centroid(&[a.clone(), b]).unwrap();
        assert_eq!(c.values(), &[2.0, 1.0]);
        assert!(FeatureVector::centroid(&[]).is_err());
        let short = FeatureVector { values: vec![1.0] };
        assert!(FeatureVector::centroid(&[a, short]).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn distance_requires_matching_dims() {
        let a = FeatureVector { values: vec![1.0] };
        let b = FeatureVector {
            values: vec![1.0, 2.0],
        };
        let _ = a.distance(&b);
    }

    #[test]
    fn extractor_constructor_validates() {
        assert!(FeatureExtractor::new(1, 8).is_err());
        assert!(FeatureExtractor::new(8, 0).is_err());
        assert!(FeatureExtractor::new(4, 6).is_ok());
    }
}
