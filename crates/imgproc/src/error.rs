use std::error::Error;
use std::fmt;

/// Errors raised by the image-processing workload.
#[derive(Debug, Clone, PartialEq)]
pub enum ImgError {
    /// Frame dimensions are unusable (zero, or not divisible by the feature
    /// extractor's cell size).
    BadDimensions {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
        /// Explanation of the constraint violated.
        reason: &'static str,
    },
    /// The pixel buffer length does not match `width * height`.
    BufferMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The classifier was asked to work without any trained classes, or
    /// with inconsistent feature dimensions.
    BadClassifier {
        /// Explanation of the defect.
        reason: &'static str,
    },
}

impl fmt::Display for ImgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImgError::BadDimensions {
                width,
                height,
                reason,
            } => write!(f, "unusable frame dimensions {width}x{height}: {reason}"),
            ImgError::BufferMismatch { expected, got } => {
                write!(f, "pixel buffer holds {got} bytes, expected {expected}")
            }
            ImgError::BadClassifier { reason } => write!(f, "classifier misconfigured: {reason}"),
        }
    }
}

impl Error for ImgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ImgError::BadDimensions {
            width: 0,
            height: 64,
            reason: "width must be positive",
        };
        assert!(e.to_string().contains("0x64"));
        let e = ImgError::BufferMismatch {
            expected: 4096,
            got: 100,
        };
        assert!(e.to_string().contains("4096"));
        let e = ImgError::BadClassifier {
            reason: "no classes",
        };
        assert!(e.to_string().contains("no classes"));
    }
}
