//! Shard-merge determinism: snapshot totals must depend only on the
//! multiset of recorded values, never on which threads recorded them
//! or how the scheduler interleaved them.
//!
//! The property test drives a seeded workload (values from the
//! workspace's own `XorShiftRng`) through varying thread counts and
//! asserts every derived quantity — counter totals, histogram count /
//! sum / min / max, per-bucket counts, and quantile estimates — is
//! bit-identical to a single-threaded reference run over the same
//! values.

use hems_obs::{Registry, Snapshot};
use hems_units::XorShiftRng;
use std::sync::Arc;

/// The seeded workload: `(counter increments, histogram samples)`
/// partitioned into `threads` slices. Samples span the exact-integer
/// region, the log region, and the overflow region of the bucket
/// table.
fn workload(seed: u64, total: usize) -> Vec<(u64, u64)> {
    let mut rng = XorShiftRng::seed_from_u64(seed);
    (0..total)
        .map(|_| {
            let add = rng.below_u32(5) as u64 + 1;
            let magnitude = rng.below_u32(4);
            let sample = match magnitude {
                0 => rng.below_u32(16) as u64 + 1,
                1 => rng.below_u32(100_000) as u64,
                2 => rng.below_u32(u32::MAX) as u64,
                _ => u64::from(rng.below_u32(1_000)) * 10_000_000_000,
            };
            (add, sample)
        })
        .collect()
}

fn record_all(registry: &Registry, threads: usize, items: &[(u64, u64)]) -> Snapshot {
    std::thread::scope(|scope| {
        for chunk in items.chunks(items.len().div_ceil(threads).max(1)) {
            let counter = registry.counter("det.count");
            let histogram = registry.histogram("det.hist");
            scope.spawn(move || {
                for (add, sample) in chunk {
                    counter.add(*add);
                    histogram.record(*sample);
                }
            });
        }
    });
    registry.snapshot()
}

#[test]
fn snapshot_totals_are_independent_of_thread_interleaving() {
    for seed in [1u64, 7, 42, 1234] {
        let items = workload(seed, 4_000);
        let reference = record_all(&Registry::new(), 1, &items);
        for threads in [2usize, 4, 8, 16, 19] {
            let snap = record_all(&Registry::new(), threads, &items);
            assert_eq!(
                snap.counter("det.count"),
                reference.counter("det.count"),
                "seed {seed}, {threads} threads"
            );
            let h = snap.histogram("det.hist").expect("histogram present");
            let r = reference.histogram("det.hist").expect("reference present");
            assert_eq!(h, r, "seed {seed}, {threads} threads");
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(
                    h.quantile(q).to_bits(),
                    r.quantile(q).to_bits(),
                    "seed {seed}, {threads} threads, q {q}"
                );
            }
        }
    }
}

#[test]
fn repeated_runs_of_the_same_seed_render_identically() {
    // Beyond struct equality: the exported JSON (what the chaos
    // report embeds) is byte-stable when the clock is manual.
    let clock = Arc::new(hems_obs::ManualClock::new(0));
    let render = |clock: &Arc<hems_obs::ManualClock>| {
        let registry = Registry::with_clock(clock.clone());
        let items = workload(99, 2_000);
        record_all(&registry, 8, &items);
        registry.snapshot().render()
    };
    assert_eq!(render(&clock), render(&clock));
}
