//! The global kill switch, exercised in its own process: integration
//! test binaries run separately from the unit tests, so toggling the
//! process-wide enable flag here cannot race with them.

use hems_obs::{set_enabled, Counter, Gauge, Histogram, ManualClock, Registry};
use std::sync::Arc;

#[test]
fn disabled_recording_is_a_no_op_everywhere() {
    let counter = Counter::detached();
    let gauge = Gauge::detached();
    let histogram = Histogram::detached();
    let clock = Arc::new(ManualClock::new(0));
    let registry = Registry::with_clock(clock.clone());

    counter.add(2);
    gauge.add(3);
    histogram.record(7);
    {
        let _guard = registry.span("work.ns");
        clock.advance(10);
    }

    set_enabled(false);
    assert!(!hems_obs::enabled());
    counter.add(100);
    gauge.add(100);
    gauge.set_max(100);
    histogram.record(100);
    {
        let _guard = registry.span("work.ns");
        clock.advance(100);
    }
    set_enabled(true);

    assert_eq!(counter.total(), 2);
    assert_eq!(gauge.value(), 3);
    let h = histogram.snapshot();
    assert_eq!((h.count, h.sum), (1, 7));
    let spans = registry.histogram("work.ns").snapshot();
    assert_eq!((spans.count, spans.sum), (1, 10));
}
