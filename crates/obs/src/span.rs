//! Span tracing: RAII guards whose lifetime becomes a histogram
//! sample.
//!
//! ```
//! let _guard = hems_obs::span!("solve_mep");
//! // ... work ...
//! // guard drops here; elapsed ns land in the "solve_mep" histogram
//! ```

use crate::clock::Clock;
use crate::metrics::Histogram;
use std::sync::Arc;

struct SpanInner {
    histogram: Histogram,
    clock: Arc<dyn Clock>,
    start_ns: u64,
}

/// A running span. Dropping it records the elapsed nanoseconds (per
/// its registry's clock) into the span's histogram. Inert when
/// recording is disabled.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("running", &self.inner.is_some())
            .finish()
    }
}

impl SpanGuard {
    pub(crate) fn started(histogram: Histogram, clock: Arc<dyn Clock>) -> Self {
        let start_ns = clock.now_ns();
        Self {
            inner: Some(SpanInner {
                histogram,
                clock,
                start_ns,
            }),
        }
    }

    pub(crate) fn inert() -> Self {
        Self { inner: None }
    }

    /// Ends the span now instead of at scope exit.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.clock.now_ns().saturating_sub(inner.start_ns);
            inner.histogram.record(elapsed);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record();
    }
}

/// Starts a span on the [global registry](crate::global): the
/// expression evaluates to a [`SpanGuard`] whose drop records elapsed
/// nanoseconds into the named histogram.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
}

#[cfg(test)]
mod tests {
    use crate::clock::ManualClock;
    use crate::registry::Registry;
    use std::sync::Arc;

    #[test]
    fn span_duration_comes_from_the_registry_clock() {
        let clock = Arc::new(ManualClock::new(1_000));
        let registry = Registry::with_clock(clock.clone());
        {
            let _guard = registry.span("work.ns");
            clock.advance(250);
        }
        let h = registry.histogram("work.ns").snapshot();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 250);
        assert_eq!((h.min, h.max), (250, 250));
    }

    #[test]
    fn nested_and_repeated_spans_accumulate() {
        let clock = Arc::new(ManualClock::new(0));
        let registry = Registry::with_clock(clock.clone());
        for step in [10u64, 20, 30] {
            let guard = registry.span("work.ns");
            clock.advance(step);
            guard.finish();
        }
        {
            let _outer = registry.span("outer.ns");
            let _inner = registry.span("work.ns");
            clock.advance(5);
        }
        let work = registry.histogram("work.ns").snapshot();
        assert_eq!(work.count, 4);
        assert_eq!(work.sum, 65);
        let outer = registry.histogram("outer.ns").snapshot();
        assert_eq!((outer.count, outer.sum), (1, 5));
    }

    #[test]
    fn span_macro_records_on_the_global_registry() {
        {
            let _guard = crate::span!("obs.span_test.macro_ns");
        }
        let snap = crate::global().snapshot();
        let h = snap
            .histogram("obs.span_test.macro_ns")
            .expect("histogram registered by the macro");
        assert!(h.count >= 1);
    }
}
