//! Time sources for the telemetry layer.
//!
//! Everything in the workspace that needs wall-clock time goes through
//! this module — the hems-lint `clock` rule forbids raw
//! `Instant::now()` / `SystemTime::now()` calls anywhere else. Two
//! implementations of [`Clock`] exist: [`MonotonicClock`] reads the
//! process-wide monotonic nanosecond counter (real time), and
//! [`ManualClock`] is a deterministic clock for tests that only moves
//! when told to.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::LazyLock;
use std::time::Instant;

/// A nanosecond time source. Implementations must be cheap and
/// thread-safe: `now_ns` sits inside span guards on hot paths.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds since the clock's epoch.
    fn now_ns(&self) -> u64;
}

/// The process epoch: captured on first use, so all `monotonic_ns`
/// readings share one origin and differences are meaningful.
static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

/// Nanoseconds since the first call into this module, from the OS
/// monotonic clock. This is the one sanctioned way to read real time
/// in the workspace; the `u64` range covers ~584 years of uptime.
pub fn monotonic_ns() -> u64 {
    EPOCH.elapsed().as_nanos() as u64
}

/// Real time: delegates to [`monotonic_ns`].
#[derive(Debug, Clone, Copy, Default)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        monotonic_ns()
    }
}

/// A clock that only advances when told to — spans measured against it
/// are exactly reproducible, which is what the span-duration unit
/// tests and the chaos campaign's byte-stable snapshots need.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_ns`.
    pub fn new(start_ns: u64) -> Self {
        Self {
            now: AtomicU64::new(start_ns),
        }
    }

    /// Moves the clock forward by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute reading.
    pub fn set(&self, now_ns: u64) {
        self.now.store(now_ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_goes_backwards() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
        let clock = MonotonicClock;
        assert!(clock.now_ns() >= b);
    }

    #[test]
    fn manual_clock_moves_only_on_command() {
        let clock = ManualClock::new(100);
        assert_eq!(clock.now_ns(), 100);
        assert_eq!(clock.now_ns(), 100);
        clock.advance(50);
        assert_eq!(clock.now_ns(), 150);
        clock.set(7);
        assert_eq!(clock.now_ns(), 7);
    }
}
