//! `hems-obs`: the workspace's dependency-free telemetry core.
//!
//! The paper's whole argument is measurement-driven control — the
//! time-based MPP estimator infers input power from observed timing
//! instead of sensing it directly. This crate gives the reproduction
//! the same discipline at the systems level: one place where counters,
//! gauges, histograms, and spans live, cheap enough to leave on in the
//! hot paths of the sweep engine and the serve plane.
//!
//! Design (DESIGN.md §12):
//!
//! - **Sharded atomics** — each metric is striped across 16
//!   cache-line-padded atomic stripes; a record is a relaxed RMW on
//!   the calling thread's stripe. No locks, no shared lines on the
//!   hot path. Stripes merge at snapshot time, so totals are exact
//!   and independent of thread interleaving.
//! - **Registries** — [`global()`] is the process-wide registry on
//!   the real monotonic clock; components needing reproducible or
//!   isolated numbers (chaos campaigns, per-server serve stats) own
//!   private [`Registry`] instances, optionally on a [`ManualClock`].
//! - **Spans** — [`span!`] returns a guard whose drop records elapsed
//!   nanoseconds into a histogram; durations come from the registry's
//!   [`Clock`], so tests measure exact, deterministic spans.
//! - **Export** — [`Snapshot::render`] emits compact, integer-only,
//!   sorted-key JSON that round-trips byte-for-byte through
//!   `hems_serve::json`; [`Snapshot::diff`] turns two snapshots into
//!   interval deltas for rate computation.
//! - **Kill switch** — [`set_enabled(false)`](set_enabled) reduces
//!   every record call to one relaxed load + branch; the
//!   `BENCH_obs.json` bench quantifies instrumented-vs-off overhead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use clock::{monotonic_ns, Clock, ManualClock, MonotonicClock};
pub use metrics::{enabled, set_enabled, Counter, Gauge, Histogram};
pub use registry::{global, Registry};
pub use snapshot::{Bucket, HistogramSnapshot, Series, SeriesData, Snapshot};
pub use span::SpanGuard;
