//! Immutable snapshots of a registry: merged series, quantile
//! estimation, interval diffing, and JSON export.
//!
//! The JSON renderer emits only integers, sorted keys, and escaped
//! strings, so a snapshot round-trips byte-for-byte through
//! `hems_serve::json` (`parse(render()).render() == render()`), which
//! is what the `metrics` query verb and the chaos report rely on.

/// One histogram bucket: samples in `(lo, hi]` (the first bucket
/// starts at 0 inclusive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// Lower edge (exclusive, except 0).
    pub lo: u64,
    /// Upper edge (inclusive).
    pub hi: u64,
    /// Samples in the bucket.
    pub n: u64,
}

/// Merged histogram state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear
    /// interpolation inside the bucket holding that rank, clamped to
    /// the exact observed `[min, max]`. Resolution is the bucket
    /// width: exact for values ≤ 16, within ~19% beyond that.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * (self.count.saturating_sub(1)) as f64;
        let mut before = 0u64;
        for bucket in &self.buckets {
            let after = before + bucket.n;
            if (after as f64) > rank {
                let into = (rank - before as f64 + 1.0) / bucket.n as f64;
                let lo = bucket.lo as f64;
                let hi = bucket.hi as f64;
                let value = lo + into.clamp(0.0, 1.0) * (hi - lo);
                return value.clamp(self.min as f64, self.max as f64);
            }
            before = after;
        }
        self.max as f64
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// This snapshot minus an `earlier` one of the same histogram:
    /// per-bucket and total deltas. `min`/`max` keep the later values
    /// (they are lifetime extremes, not interval ones).
    pub fn diff(&self, earlier: &Self) -> Self {
        let mut buckets = Vec::new();
        for bucket in &self.buckets {
            let prior = earlier
                .buckets
                .iter()
                .find(|b| b.hi == bucket.hi)
                .map(|b| b.n)
                .unwrap_or(0);
            let n = bucket.n.saturating_sub(prior);
            if n > 0 {
                buckets.push(Bucket { n, ..*bucket });
            }
        }
        Self {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets,
        }
    }
}

/// One named series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Registry name, e.g. `sweep.scenarios`.
    pub name: String,
    /// The merged value.
    pub data: SeriesData,
}

/// The value side of a [`Series`].
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesData {
    /// Monotonic total.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Merged histogram.
    Histogram(HistogramSnapshot),
}

/// A point-in-time view of a registry: every series, merged across
/// stripes, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Registry clock reading at snapshot time (interval length for
    /// snapshots produced by [`Snapshot::diff`]).
    pub at_ns: u64,
    /// All series, ascending by name.
    pub series: Vec<Series>,
}

impl Snapshot {
    /// Looks up one series by name.
    pub fn get(&self, name: &str) -> Option<&SeriesData> {
        self.series
            .binary_search_by(|s| s.name.as_str().cmp(name))
            .ok()
            .and_then(|i| self.series.get(i))
            .map(|s| &s.data)
    }

    /// Counter total by name (`None` if absent or not a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(SeriesData::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// Gauge level by name (`None` if absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(SeriesData::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram by name (`None` if absent or not a histogram).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(SeriesData::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The same snapshot with every series renamed to
    /// `<prefix>.<name>`. This is how a multi-shard aggregator keeps
    /// per-shard series distinguishable under [`Snapshot::merged`]
    /// (which drops colliding names): label each shard's snapshot —
    /// `shard0.serve.hits`, `shard1.serve.hits` — before merging.
    pub fn with_prefix(mut self, prefix: &str) -> Snapshot {
        for series in &mut self.series {
            series.name = format!("{prefix}.{}", series.name);
        }
        // Prefixing preserves relative order of the sorted names, so the
        // series stay ascending and `get`'s binary search stays valid.
        self
    }

    /// Union of two snapshots (e.g. the process-global registry plus a
    /// component's private one). On a name collision `self` wins.
    pub fn merged(mut self, other: Snapshot) -> Snapshot {
        for series in other.series {
            if self.get(&series.name).is_none() {
                self.series.push(series);
            }
        }
        self.series.sort_by(|a, b| a.name.cmp(&b.name));
        self
    }

    /// Interval view: this snapshot minus an `earlier` one. Counters
    /// and histogram totals become deltas, gauges keep their later
    /// level, and `at_ns` becomes the interval length — so
    /// `delta.counter(name) / delta.at_ns` is a rate.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let series = self
            .series
            .iter()
            .map(|s| {
                let data = match (&s.data, earlier.get(&s.name)) {
                    (SeriesData::Counter(now), Some(SeriesData::Counter(then))) => {
                        SeriesData::Counter(now.saturating_sub(*then))
                    }
                    (SeriesData::Histogram(now), Some(SeriesData::Histogram(then))) => {
                        SeriesData::Histogram(now.diff(then))
                    }
                    (data, _) => data.clone(),
                };
                Series {
                    name: s.name.clone(),
                    data,
                }
            })
            .collect();
        Snapshot {
            at_ns: self.at_ns.saturating_sub(earlier.at_ns),
            series,
        }
    }

    /// Renders the snapshot as one compact JSON object:
    ///
    /// ```json
    /// {"at_ns":12,"series":{"name":{"kind":"counter","value":3},...}}
    /// ```
    ///
    /// Histograms carry `count`/`sum`/`min`/`max`, rounded `p50`/`p95`
    /// estimates, and their non-empty `[lo,hi,n]` buckets. All values
    /// are integers, so the text survives an f64-based JSON parser
    /// unchanged (exact below 2^53).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"at_ns\":");
        out.push_str(&self.at_ns.to_string());
        out.push_str(",\"series\":{");
        for (i, series) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, &series.name);
            out.push(':');
            render_series(&mut out, &series.data);
        }
        out.push_str("}}");
        out
    }

    /// JSON-lines export: one self-describing object per series, each
    /// line independently parseable.
    pub fn render_lines(&self) -> String {
        let mut out = String::new();
        for series in &self.series {
            out.push_str("{\"at_ns\":");
            out.push_str(&self.at_ns.to_string());
            out.push_str(",\"name\":");
            push_json_str(&mut out, &series.name);
            out.push_str(",\"data\":");
            render_series(&mut out, &series.data);
            out.push_str("}\n");
        }
        out
    }
}

fn render_series(out: &mut String, data: &SeriesData) {
    match data {
        SeriesData::Counter(n) => {
            out.push_str("{\"kind\":\"counter\",\"value\":");
            out.push_str(&n.to_string());
            out.push('}');
        }
        SeriesData::Gauge(v) => {
            out.push_str("{\"kind\":\"gauge\",\"value\":");
            out.push_str(&v.to_string());
            out.push('}');
        }
        SeriesData::Histogram(h) => {
            out.push_str("{\"kind\":\"histogram\",\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"sum\":");
            out.push_str(&h.sum.to_string());
            out.push_str(",\"min\":");
            out.push_str(&h.min.to_string());
            out.push_str(",\"max\":");
            out.push_str(&h.max.to_string());
            out.push_str(",\"p50\":");
            out.push_str(&(h.quantile(0.50).round() as u64).to_string());
            out.push_str(",\"p95\":");
            out.push_str(&(h.quantile(0.95).round() as u64).to_string());
            out.push_str(",\"buckets\":[");
            for (i, bucket) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                out.push_str(&bucket.lo.to_string());
                out.push(',');
                out.push_str(&bucket.hi.to_string());
                out.push(',');
                out.push_str(&bucket.n.to_string());
                out.push(']');
            }
            out.push_str("]}");
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let hi = (c as u32) >> 4;
                let lo = (c as u32) & 0xf;
                out.push(char::from_digit(hi, 16).unwrap_or('0'));
                out.push(char::from_digit(lo, 16).unwrap_or('0'));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::bounds;

    /// Index of an upper bound in the shared bounds table.
    fn bound_index(hi: u64) -> Option<usize> {
        bounds().iter().position(|b| *b == hi)
    }

    fn sample_hist(values: &[u64]) -> HistogramSnapshot {
        let h = crate::metrics::Histogram::detached();
        for v in values {
            h.record(*v);
        }
        h.snapshot()
    }

    #[test]
    fn quantile_is_exact_for_small_integer_samples() {
        let h = sample_hist(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert!((h.quantile(0.0) - 1.0).abs() < 1e-9);
        assert!((h.quantile(1.0) - 10.0).abs() < 1e-9);
        let p50 = h.quantile(0.5);
        assert!((5.0..=6.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn quantile_tracks_sorted_percentile_within_bucket_resolution() {
        // Uniform 1..=10_000: bucket interpolation must stay within
        // one bucket width (~19% relative) of the exact percentile.
        let values: Vec<u64> = (1..=10_000u64).collect();
        let h = sample_hist(&values);
        for (q, exact) in [(0.5, 5_000.5), (0.95, 9_500.05), (0.99, 9_900.01)] {
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.19, "q={q}: est {est} vs exact {exact} ({rel})");
        }
    }

    #[test]
    fn histogram_diff_subtracts_counts_and_buckets() {
        let h = crate::metrics::Histogram::detached();
        h.record(5);
        h.record(5);
        let earlier = h.snapshot();
        h.record(5);
        h.record(900);
        let later = h.snapshot();
        let delta = later.diff(&earlier);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 905);
        let total: u64 = delta.buckets.iter().map(|b| b.n).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn snapshot_lookup_merge_and_diff() {
        let a = Snapshot {
            at_ns: 100,
            series: vec![
                Series {
                    name: "a.count".into(),
                    data: SeriesData::Counter(10),
                },
                Series {
                    name: "a.depth".into(),
                    data: SeriesData::Gauge(3),
                },
            ],
        };
        let b = Snapshot {
            at_ns: 90,
            series: vec![Series {
                name: "b.count".into(),
                data: SeriesData::Counter(7),
            }],
        };
        let merged = a.clone().merged(b);
        assert_eq!(merged.counter("a.count"), Some(10));
        assert_eq!(merged.counter("b.count"), Some(7));
        assert_eq!(merged.gauge("a.depth"), Some(3));
        assert!(merged.get("missing").is_none());

        let earlier = Snapshot {
            at_ns: 40,
            series: vec![Series {
                name: "a.count".into(),
                data: SeriesData::Counter(4),
            }],
        };
        let delta = a.diff(&earlier);
        assert_eq!(delta.at_ns, 60);
        assert_eq!(delta.counter("a.count"), Some(6));
        assert_eq!(delta.gauge("a.depth"), Some(3));
    }

    #[test]
    fn prefixed_snapshots_merge_without_collisions() {
        let shard = |value: u64| Snapshot {
            at_ns: 7,
            series: vec![Series {
                name: "serve.hits".into(),
                data: SeriesData::Counter(value),
            }],
        };
        let merged = shard(3)
            .with_prefix("shard0")
            .merged(shard(9).with_prefix("shard1"));
        assert_eq!(merged.counter("shard0.serve.hits"), Some(3));
        assert_eq!(merged.counter("shard1.serve.hits"), Some(9));
        assert!(merged.get("serve.hits").is_none());
    }

    #[test]
    fn render_is_compact_integer_only_json() {
        let snap = Snapshot {
            at_ns: 5,
            series: vec![
                Series {
                    name: "c".into(),
                    data: SeriesData::Counter(2),
                },
                Series {
                    name: "g".into(),
                    data: SeriesData::Gauge(-1),
                },
                Series {
                    name: "h".into(),
                    data: SeriesData::Histogram(sample_hist(&[3, 3])),
                },
            ],
        };
        let text = snap.render();
        assert!(text.starts_with("{\"at_ns\":5,\"series\":{"));
        assert!(text.contains("\"c\":{\"kind\":\"counter\",\"value\":2}"));
        assert!(text.contains("\"g\":{\"kind\":\"gauge\",\"value\":-1}"));
        assert!(text.contains("\"kind\":\"histogram\",\"count\":2,\"sum\":6"));
        assert!(!text.contains('.'), "integers only: {text}");
        let lines = snap.render_lines();
        assert_eq!(lines.lines().count(), 3);
        for line in lines.lines() {
            assert!(line.starts_with("{\"at_ns\":5,\"name\":"));
        }
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn bucket_edges_line_up_with_the_bounds_table() {
        let h = sample_hist(&[100]);
        let bucket = h.buckets.first().expect("one bucket");
        let i = bound_index(bucket.hi).expect("hi is a table bound");
        assert!(bucket.lo < bucket.hi);
        if i > 0 {
            assert_eq!(Some(bucket.lo), bounds().get(i - 1).copied());
        }
    }
}
