//! Named-metric registries.
//!
//! A [`Registry`] is a map from series name to metric, guarded by a
//! mutex that is touched only on registration and snapshot — the
//! returned handles ([`Counter`](crate::Counter) etc.) are clones of
//! the shared cores and never take the lock again. One process-wide
//! registry ([`global`]) backs the `span!` macro and the standing
//! instrumentation in sim/serve; components that need isolated,
//! reproducible numbers (the chaos campaign, per-server serve stats)
//! own private registries instead.

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{Series, SeriesData, Snapshot};
use crate::span::SpanGuard;
use std::collections::HashMap;
use std::sync::{Arc, LazyLock, Mutex, MutexGuard};

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics sharing one [`Clock`].
pub struct Registry {
    metrics: Mutex<HashMap<String, Metric>>,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let count = self.lock().len();
        f.debug_struct("Registry").field("metrics", &count).finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

static GLOBAL: LazyLock<Registry> = LazyLock::new(Registry::new);

/// The process-wide registry (monotonic real clock). Standing
/// instrumentation registers here; `span!` records here.
pub fn global() -> &'static Registry {
    &GLOBAL
}

impl Registry {
    /// An empty registry on the monotonic real clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock))
    }

    /// An empty registry on a caller-supplied clock (use
    /// [`ManualClock`](crate::ManualClock) for deterministic tests and
    /// byte-stable snapshots).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            metrics: Mutex::new(HashMap::new()),
            clock,
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Metric>> {
        // A poisoned registry still holds structurally valid metric
        // handles (updates are atomic), so recover the guard.
        match self.metrics.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The registry clock's current reading.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Gets or registers the counter `name`. If the name is already
    /// taken by a different metric kind, a detached counter is
    /// returned (it records but is not exported) rather than panicking.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::detached()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::detached(),
        }
    }

    /// Gets or registers the gauge `name` (kind conflicts yield a
    /// detached handle, as with [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::detached()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::detached(),
        }
    }

    /// Gets or registers the histogram `name` (kind conflicts yield a
    /// detached handle, as with [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::detached()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::detached(),
        }
    }

    /// Starts a span over this registry's clock; its duration lands in
    /// the histogram `name` when the guard drops. When recording is
    /// disabled the guard is inert and the clock is never read.
    pub fn span(&self, name: &str) -> SpanGuard {
        if !crate::metrics::enabled() {
            return SpanGuard::inert();
        }
        SpanGuard::started(self.histogram(name), self.clock.clone())
    }

    /// Merges every stripe of every metric into a sorted, immutable
    /// [`Snapshot`] stamped with the registry clock.
    pub fn snapshot(&self) -> Snapshot {
        let at_ns = self.clock.now_ns();
        let metrics = self.lock();
        let mut series: Vec<Series> = metrics
            .iter()
            .map(|(name, metric)| Series {
                name: name.clone(),
                data: match metric {
                    Metric::Counter(c) => SeriesData::Counter(c.total()),
                    Metric::Gauge(g) => SeriesData::Gauge(g.value()),
                    Metric::Histogram(h) => SeriesData::Histogram(h.snapshot()),
                },
            })
            .collect();
        series.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { at_ns, series }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn handles_share_one_core_per_name() {
        let registry = Registry::new();
        let a = registry.counter("demo.count");
        let b = registry.counter("demo.count");
        a.inc();
        b.inc();
        assert_eq!(a.total(), 2);
        assert_eq!(registry.snapshot().counter("demo.count"), Some(2));
    }

    #[test]
    fn kind_conflicts_return_detached_handles_not_panics() {
        let registry = Registry::new();
        registry.counter("demo.metric").inc();
        let gauge = registry.gauge("demo.metric");
        gauge.set(9); // goes nowhere visible
        assert_eq!(registry.snapshot().counter("demo.metric"), Some(1));
        let histogram = registry.histogram("demo.metric");
        histogram.record(5);
        assert_eq!(registry.snapshot().counter("demo.metric"), Some(1));
    }

    #[test]
    fn snapshot_is_sorted_and_stamped_by_the_registry_clock() {
        let clock = Arc::new(ManualClock::new(40));
        let registry = Registry::with_clock(clock.clone());
        registry.counter("z.last").inc();
        registry.gauge("a.first").set(2);
        clock.advance(2);
        let snap = registry.snapshot();
        assert_eq!(snap.at_ns, 42);
        let names: Vec<&str> = snap.series.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("obs.registry_test.shared");
        let before = c.total();
        global().counter("obs.registry_test.shared").inc();
        assert_eq!(c.total(), before + 1);
    }
}
