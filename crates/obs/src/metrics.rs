//! The metric primitives: counters, gauges, and fixed-bucket
//! histograms, each backed by per-thread atomic shards so the record
//! path is a handful of relaxed atomic ops with no locks and no
//! cross-core cache-line ping-pong. Shards are merged on snapshot.
//!
//! A process-wide enable flag ([`set_enabled`]) turns every record
//! operation into a single relaxed load + branch; the overhead bench
//! (`BENCH_obs.json`) measures instrumented code against exactly that
//! no-op mode.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, LazyLock};

/// Number of atomic stripes per metric. Threads are assigned stripes
/// round-robin; 16 keeps contention negligible for the worker-pool
/// sizes the sweep engine uses while bounding snapshot merge cost.
pub(crate) const SHARDS: usize = 16;

/// Histogram bucket count (excluding the overflow slot). Bounds are
/// unit-agnostic: exact integers up to ~20, then log-spaced at ratio
/// 2^(1/4) (~19% per bucket) out to ~9.2e11 — covering batch sizes as
/// well as nanosecond latencies from tens of ns to ~15 minutes.
pub(crate) const BUCKETS: usize = 160;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables recording. Disabled, every record call
/// is one relaxed load and a branch. Gauges stop moving too, so
/// toggling mid-workload can leave inc/dec gauges skewed; the overhead
/// bench toggles only between whole passes.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's stripe, assigned round-robin on first use.
    static SHARD: Cell<usize> = Cell::new(NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS);
}

fn shard_index() -> usize {
    SHARD.with(Cell::get)
}

/// Bucket upper bounds (inclusive), strictly increasing. The
/// `max(prev + 1, ...)` ramp makes the low end exact per-integer
/// before the log spacing takes over.
static BOUNDS: LazyLock<Vec<u64>> = LazyLock::new(|| {
    let mut bounds = Vec::with_capacity(BUCKETS);
    let mut prev = 0u64;
    for k in 0..BUCKETS {
        let log = (2f64).powf(k as f64 / 4.0).round() as u64;
        let bound = log.max(prev + 1);
        bounds.push(bound);
        prev = bound;
    }
    bounds
});

/// The shared bounds table.
pub(crate) fn bounds() -> &'static [u64] {
    &BOUNDS
}

/// Index of the bucket whose range contains `value` (`BUCKETS` for the
/// overflow slot).
pub(crate) fn bucket_of(value: u64) -> usize {
    bounds().partition_point(|b| *b < value)
}

/// One cache line per stripe so concurrent writers on different
/// stripes never share a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

#[derive(Debug)]
struct CounterCore {
    shards: [PaddedU64; SHARDS],
}

/// A monotonically increasing event count. Handles are cheap clones of
/// one shared core; `inc`/`add` are a single relaxed `fetch_add` on
/// the calling thread's stripe.
#[derive(Debug, Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    /// A counter not attached to any registry (records, but never
    /// appears in a snapshot). Useful as a default handle.
    pub fn detached() -> Self {
        Self {
            core: Arc::new(CounterCore {
                shards: std::array::from_fn(|_| PaddedU64::default()),
            }),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if !enabled() {
            return;
        }
        if let Some(shard) = self.core.shards.get(shard_index()) {
            shard.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sum over all stripes. Independent of thread interleaving: every
    /// recorded increment lands in exactly one stripe.
    pub fn total(&self) -> u64 {
        self.core
            .shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }
}

/// A signed instantaneous level (queue depth, workers busy). One
/// atomic, not striped: gauges are written at event rate, not
/// per-sample rate.
#[derive(Debug, Clone)]
pub struct Gauge {
    core: Arc<AtomicI64>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Self {
            core: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Sets the level.
    pub fn set(&self, value: i64) {
        if enabled() {
            self.core.store(value, Ordering::Relaxed);
        }
    }

    /// Moves the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.core.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Raises the level to `value` if it is below it (running maximum).
    pub fn set_max(&self, value: i64) {
        if enabled() {
            self.core.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.core.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistShard {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl HistShard {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..=BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

#[derive(Debug)]
struct HistogramCore {
    shards: Box<[HistShard]>,
}

/// A fixed-bucket histogram of `u64` samples (nanoseconds, batch
/// sizes, ...). Recording touches only the calling thread's stripe:
/// count, sum, min, max, and one bucket slot, all relaxed.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Self {
        Self {
            core: Arc::new(HistogramCore {
                shards: (0..SHARDS).map(|_| HistShard::new()).collect(),
            }),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let bucket = bucket_of(value);
        if let Some(shard) = self.core.shards.get(shard_index()) {
            shard.count.fetch_add(1, Ordering::Relaxed);
            shard.sum.fetch_add(value, Ordering::Relaxed);
            shard.min.fetch_min(value, Ordering::Relaxed);
            shard.max.fetch_max(value, Ordering::Relaxed);
            if let Some(slot) = shard.buckets.get(bucket) {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total samples recorded (all stripes).
    pub fn count(&self) -> u64 {
        self.core.shards.iter().fold(0u64, |acc, s| {
            acc.wrapping_add(s.count.load(Ordering::Relaxed))
        })
    }

    /// Merges every stripe into an immutable snapshot.
    pub fn snapshot(&self) -> crate::snapshot::HistogramSnapshot {
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut merged = vec![0u64; BUCKETS + 1];
        for shard in self.core.shards.iter() {
            count = count.wrapping_add(shard.count.load(Ordering::Relaxed));
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            min = min.min(shard.min.load(Ordering::Relaxed));
            max = max.max(shard.max.load(Ordering::Relaxed));
            for (slot, n) in merged.iter_mut().zip(shard.buckets.iter()) {
                *slot = slot.wrapping_add(n.load(Ordering::Relaxed));
            }
        }
        let bounds = bounds();
        let mut buckets = Vec::new();
        let mut lo = 0u64;
        for (i, n) in merged.iter().enumerate() {
            let hi = bounds.get(i).copied().unwrap_or(max.max(lo));
            if *n > 0 {
                buckets.push(crate::snapshot::Bucket {
                    lo,
                    hi: hi.max(lo),
                    n: *n,
                });
            }
            lo = hi;
        }
        crate::snapshot::HistogramSnapshot {
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing_and_integer_exact_at_the_low_end() {
        let b = bounds();
        assert_eq!(b.len(), BUCKETS);
        for pair in b.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        // Exact small integers: bucket_of(n) resolves n precisely.
        for v in 1..=16u64 {
            let i = bucket_of(v);
            assert_eq!(b[i], v, "bucket for {v}");
        }
        // Range reaches past 15 minutes of nanoseconds.
        assert!(*b.last().unwrap() > 900_000_000_000);
    }

    // Note: `set_enabled(false)` behavior is covered in
    // `tests/disable.rs`, a separate process — toggling the global
    // flag here would race with the other unit tests.
    #[test]
    fn counter_accumulates_across_handles() {
        let c = Counter::detached();
        c.inc();
        c.add(4);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn gauge_tracks_level_and_running_max() {
        let g = Gauge::detached();
        g.add(3);
        g.add(-1);
        assert_eq!(g.value(), 2);
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.value(), 10);
        g.set(-5);
        assert_eq!(g.value(), -5);
    }

    #[test]
    fn histogram_snapshot_merges_count_sum_min_max() {
        let h = Histogram::detached();
        for v in [5u64, 1, 100, 5] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 111);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 100);
        let bucketed: u64 = snap.buckets.iter().map(|b| b.n).sum();
        assert_eq!(bucketed, 4);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let snap = Histogram::detached().snapshot();
        assert_eq!((snap.count, snap.sum, snap.min, snap.max), (0, 0, 0, 0));
        assert!(snap.buckets.is_empty());
    }
}
