//! NDJSON wire helpers shared by the server, the retrying client, and
//! the router front tier.
//!
//! The protocol's framing is one `\n`-terminated JSON line per message,
//! so every peer needs the same two primitives — a bounded line read
//! that cannot be ballooned by a hostile sender, and a
//! write-all-and-flush — plus a portable timeout test (`read` on a
//! socket with a deadline fails as `WouldBlock` on Unix and `TimedOut`
//! on Windows).

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Reads one `\n`-terminated line with a hard size cap. `Ok(None)` = EOF
/// before any byte. Reads byte-at-a-time through the caller's
/// `BufReader`, so the cap bounds memory, not throughput.
///
/// # Errors
///
/// `InvalidData` when the line exceeds `max_bytes`; otherwise the
/// underlying read error (including deadline expiry — see
/// [`is_timeout`]).
pub fn read_line_bounded<R: Read>(reader: &mut R, max_bytes: usize) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return if line.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(String::from_utf8_lossy(&line).into_owned()))
                };
            }
            Ok(_) => {
                let [b] = byte;
                if b == b'\n' {
                    return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
                }
                if line.len() >= max_bytes {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "request line exceeds the size cap",
                    ));
                }
                line.push(b);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Writes `line` plus the terminating newline and flushes.
///
/// # Errors
///
/// Propagates the underlying write/flush error.
pub fn send_line(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// `true` when an IO error is a socket deadline expiry.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_read_splits_lines_and_reports_eof() {
        let mut input = Cursor::new(b"alpha\nbeta".to_vec());
        assert_eq!(
            read_line_bounded(&mut input, 64).unwrap(),
            Some("alpha".to_string())
        );
        assert_eq!(
            read_line_bounded(&mut input, 64).unwrap(),
            Some("beta".to_string())
        );
        assert_eq!(read_line_bounded(&mut input, 64).unwrap(), None);
    }

    #[test]
    fn bounded_read_enforces_the_cap() {
        let mut input = Cursor::new(vec![b'x'; 100]);
        let err = read_line_bounded(&mut input, 10).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
