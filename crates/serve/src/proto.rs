//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, matched by an `id` field
//! the server echoes back verbatim — responses may arrive out of request
//! order (cache hits overtake batched misses), so clients correlate by id.
//!
//! ## Request shape
//!
//! ```json
//! {"id": 7, "query": "optimal_point", "scenario": {
//!     "irradiance": 0.5, "regulator": "sc",
//!     "policy": {"kind": "fixed", "vdd": 0.55, "clock_fraction": 1.0},
//!     "capacitance": 3.3e-5, "v_initial": 1.1,
//!     "duration": 0.04, "deadline": 0.02}}
//! ```
//!
//! Query kinds: `optimal_point`, `mep`, `bypass`, `sprint`,
//! `sweep_summary` (scenario-backed, cacheable), plus the service queries
//! `stats` and `shutdown` (no scenario, never cached). Every scenario
//! field except `irradiance` has a paper-baseline default.
//!
//! ## Response shape
//!
//! ```json
//! {"id": 7, "status": "ok", "cached": false, "result": {...}}
//! {"id": 7, "status": "error", "error": "..."}
//! {"id": 7, "status": "overloaded", "error": "..."}
//! ```
//!
//! `overloaded` is the admission-control verdict: the request was *not*
//! accepted and the client should back off and retry; `error` means the
//! request was understood but unanswerable (malformed scenario, infeasible
//! plan).

use crate::json::{parse, Value};
use hems_core::cachekey::{Canonical, KeyHasher};
use hems_regulator::{AnyRegulator, BuckRegulator, Ldo, ScRegulator};
use hems_sim::sweep::SweepPolicy;
use hems_sim::{SimError, SystemConfig};
use hems_storage::Capacitor;
use hems_units::{Farads, Seconds, Volts};

/// What a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// The holistic optimal operating point (paper §IV, eqs. 1–4 plus the
    /// joint rail/supply refinement).
    OptimalPoint,
    /// The system minimum-energy point (paper §V, eq. 5).
    Mep,
    /// The low-light bypass decision (paper §IV-B, Fig. 7a).
    Bypass,
    /// The two-phase sprint schedule under a deadline (paper §VI-B).
    Sprint,
    /// A full transient sweep of the scenario, summarized.
    SweepSummary,
    /// Service counters and latency percentiles (not cached).
    Stats,
    /// Full telemetry snapshot: the process-global and per-server
    /// `hems_obs` registries merged and rendered as JSON (not cached).
    Metrics,
    /// Graceful shutdown: drain in-flight work, then stop (not cached).
    Shutdown,
}

impl QueryKind {
    /// Parses the wire name of a query kind.
    pub fn from_wire(name: &str) -> Option<QueryKind> {
        Some(match name {
            "optimal_point" => QueryKind::OptimalPoint,
            "mep" => QueryKind::Mep,
            "bypass" => QueryKind::Bypass,
            "sprint" => QueryKind::Sprint,
            "sweep_summary" => QueryKind::SweepSummary,
            "stats" => QueryKind::Stats,
            "metrics" => QueryKind::Metrics,
            "shutdown" => QueryKind::Shutdown,
            _ => return None,
        })
    }

    /// The wire name (also the cache-key tag).
    pub fn as_wire(self) -> &'static str {
        match self {
            QueryKind::OptimalPoint => "optimal_point",
            QueryKind::Mep => "mep",
            QueryKind::Bypass => "bypass",
            QueryKind::Sprint => "sprint",
            QueryKind::SweepSummary => "sweep_summary",
            QueryKind::Stats => "stats",
            QueryKind::Metrics => "metrics",
            QueryKind::Shutdown => "shutdown",
        }
    }

    /// `true` for the scenario-backed, cacheable plan queries.
    pub fn needs_scenario(self) -> bool {
        !matches!(
            self,
            QueryKind::Stats | QueryKind::Metrics | QueryKind::Shutdown
        )
    }
}

/// The regulator topology named by a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegulatorChoice {
    /// Switched-capacitor converter (the paper's headline topology).
    Sc,
    /// Linear regulator.
    Ldo,
    /// Inductive buck converter.
    Buck,
}

impl RegulatorChoice {
    fn from_wire(name: &str) -> Option<RegulatorChoice> {
        Some(match name {
            "sc" => RegulatorChoice::Sc,
            "ldo" => RegulatorChoice::Ldo,
            "buck" => RegulatorChoice::Buck,
            _ => return None,
        })
    }

    fn build(self) -> AnyRegulator {
        match self {
            RegulatorChoice::Sc => AnyRegulator::from(ScRegulator::paper_65nm()),
            RegulatorChoice::Ldo => AnyRegulator::from(Ldo::paper_65nm()),
            RegulatorChoice::Buck => AnyRegulator::from(BuckRegulator::paper_65nm()),
        }
    }
}

/// The control policy named by a request.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySpec {
    /// Fixed supply voltage at a clock fraction.
    Fixed {
        /// Supply setpoint, volts.
        vdd: f64,
        /// Fraction of the maximum clock, `(0, 1]`.
        clock_fraction: f64,
    },
    /// Comparator-driven duty cycling.
    Duty {
        /// Resume threshold, volts.
        v_run: f64,
        /// Stop threshold, volts.
        v_stop: f64,
        /// Supply while running, volts.
        vdd: f64,
    },
}

impl PolicySpec {
    fn build(&self) -> SweepPolicy {
        match *self {
            PolicySpec::Fixed {
                vdd,
                clock_fraction,
            } => SweepPolicy::FixedVoltage {
                vdd: Volts::new(vdd),
                clock_fraction,
            },
            PolicySpec::Duty { v_run, v_stop, vdd } => SweepPolicy::DutyCycle {
                v_run: Volts::new(v_run),
                v_stop: Volts::new(v_stop),
                vdd: Volts::new(vdd),
            },
        }
    }
}

/// The scenario a plan query is about. Every field but `irradiance` is
/// optional on the wire, defaulting to the paper's Fig. 10 system.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Light level as a fraction of full sun, `[0, 2]`.
    pub irradiance: f64,
    /// Storage capacitance, farads (`None` → the board capacitor).
    pub capacitance: Option<f64>,
    /// Regulator topology.
    pub regulator: RegulatorChoice,
    /// Control policy for transient queries.
    pub policy: PolicySpec,
    /// Initial solar-node voltage, volts.
    pub v_initial: f64,
    /// Simulated duration, seconds.
    pub duration: f64,
    /// Optional deadline for sprint planning, seconds.
    pub deadline: Option<f64>,
}

impl ScenarioSpec {
    /// The paper-baseline scenario at the given light fraction.
    pub fn baseline(irradiance: f64) -> ScenarioSpec {
        ScenarioSpec {
            irradiance,
            capacitance: None,
            regulator: RegulatorChoice::Sc,
            policy: PolicySpec::Fixed {
                vdd: 0.55,
                clock_fraction: 1.0,
            },
            v_initial: 1.1,
            duration: 0.04,
            deadline: None,
        }
    }

    fn from_value(value: &Value) -> Result<ScenarioSpec, String> {
        let irradiance = value
            .get("irradiance")
            .and_then(Value::as_f64)
            .ok_or("scenario.irradiance (number) is required")?;
        let mut spec = ScenarioSpec::baseline(irradiance);
        if let Some(c) = value.get("capacitance") {
            spec.capacitance = Some(c.as_f64().ok_or("scenario.capacitance must be a number")?);
        }
        if let Some(r) = value.get("regulator") {
            let name = r.as_str().ok_or("scenario.regulator must be a string")?;
            spec.regulator = RegulatorChoice::from_wire(name)
                .ok_or_else(|| format!("unknown regulator '{name}' (sc|ldo|buck)"))?;
        }
        if let Some(p) = value.get("policy") {
            spec.policy = parse_policy(p)?;
        }
        if let Some(v) = value.get("v_initial") {
            spec.v_initial = v.as_f64().ok_or("scenario.v_initial must be a number")?;
        }
        if let Some(t) = value.get("duration") {
            spec.duration = t.as_f64().ok_or("scenario.duration must be a number")?;
        }
        if let Some(d) = value.get("deadline") {
            spec.deadline = Some(d.as_f64().ok_or("scenario.deadline must be a number")?);
        }
        Ok(spec)
    }

    /// Materializes the spec into a simulator configuration and policy.
    ///
    /// # Errors
    ///
    /// Returns a rendered error for out-of-range light levels or
    /// unrealizable capacitances.
    pub fn build(&self) -> Result<(SystemConfig, SweepPolicy), String> {
        let mut config = SystemConfig::paper_sc_system().map_err(|e| e.to_string())?;
        let g = hems_pv::Irradiance::new(self.irradiance).map_err(|e| e.to_string())?;
        config.cell.set_irradiance(g);
        config.regulator = self.regulator.build();
        if let Some(c) = self.capacitance {
            let mut capacitor = Capacitor::new(Farads::new(c), config.capacitor.v_rating())
                .map_err(|e| SimError::component("scenario capacitor", e).to_string())?;
            if let Some(r_leak) = config.capacitor.leakage_resistance() {
                capacitor = capacitor
                    .with_leakage(r_leak)
                    .map_err(|e| SimError::component("scenario capacitor", e).to_string())?;
            }
            config.capacitor = capacitor;
        }
        Ok((config, self.policy.build()))
    }

    /// The canonical cache key of `(kind, scenario)` — built on
    /// `hems_core::cachekey` so equal requests collide and any perturbed
    /// field separates.
    pub fn cache_key(&self, kind: QueryKind, config: &SystemConfig, policy: &SweepPolicy) -> u64 {
        let mut hasher = KeyHasher::new();
        hasher.write_tag(kind.as_wire());
        config.canonicalize(&mut hasher);
        hasher.write_tag("policy");
        policy.canonicalize(&mut hasher);
        hasher.write_tag("v_initial");
        hasher.write_f64(self.v_initial);
        hasher.write_tag("duration");
        hasher.write_f64(self.duration);
        hasher.write_tag("deadline");
        match self.deadline {
            None => hasher.write_tag("none"),
            Some(d) => hasher.write_f64(d),
        }
        hasher.finish()
    }
}

fn parse_policy(value: &Value) -> Result<PolicySpec, String> {
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("policy.kind (string) is required")?;
    let num = |key: &str, default: Option<f64>| -> Result<f64, String> {
        match value.get(key) {
            Some(v) => v
                .as_f64()
                .ok_or_else(|| format!("policy.{key} must be a number")),
            None => default.ok_or_else(|| format!("policy.{key} (number) is required")),
        }
    };
    match kind {
        "fixed" => Ok(PolicySpec::Fixed {
            vdd: num("vdd", Some(0.55))?,
            clock_fraction: num("clock_fraction", Some(1.0))?,
        }),
        "duty" => Ok(PolicySpec::Duty {
            v_run: num("v_run", Some(1.0))?,
            v_stop: num("v_stop", Some(0.8))?,
            vdd: num("vdd", Some(0.55))?,
        }),
        other => Err(format!("unknown policy kind '{other}' (fixed|duty)")),
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The client's correlation id, echoed back verbatim.
    pub id: Value,
    /// What is being asked.
    pub kind: QueryKind,
    /// The scenario, for plan queries.
    pub scenario: Option<ScenarioSpec>,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (already suitable for an `error`
    /// response) on malformed JSON or a semantically invalid request.
    pub fn parse_line(line: &str) -> Result<Request, (Value, String)> {
        let value = parse(line).map_err(|e| (Value::Null, e.to_string()))?;
        let id = value.get("id").cloned().unwrap_or(Value::Null);
        let kind_name = value
            .get("query")
            .and_then(Value::as_str)
            .ok_or_else(|| (id.clone(), "request.query (string) is required".to_string()))?;
        let kind = QueryKind::from_wire(kind_name).ok_or_else(|| {
            (
                id.clone(),
                format!(
                    "unknown query '{kind_name}' \
                     (optimal_point|mep|bypass|sprint|sweep_summary|stats|metrics|shutdown)"
                ),
            )
        })?;
        let scenario = if kind.needs_scenario() {
            let s = value
                .get("scenario")
                .ok_or_else(|| (id.clone(), format!("query '{kind_name}' needs a scenario")))?;
            Some(ScenarioSpec::from_value(s).map_err(|e| (id.clone(), e))?)
        } else {
            None
        };
        Ok(Request { id, kind, scenario })
    }

    /// Renders a request line (used by clients and benches).
    pub fn render_line(id: i64, kind: QueryKind, scenario: Option<&ScenarioSpec>) -> String {
        Request::render_line_with_id(&Value::Num(id as f64), kind, scenario)
    }

    /// [`render_line`](Request::render_line) with an arbitrary JSON id —
    /// the retrying client correlates by its 64-bit cache key, which does
    /// not fit losslessly in a JSON number, so it sends the key as a hex
    /// string instead.
    pub fn render_line_with_id(
        id: &Value,
        kind: QueryKind,
        scenario: Option<&ScenarioSpec>,
    ) -> String {
        let mut fields = vec![
            ("id".to_string(), id.clone()),
            ("query".to_string(), Value::str(kind.as_wire())),
        ];
        if let Some(spec) = scenario {
            let mut s = vec![("irradiance".to_string(), Value::Num(spec.irradiance))];
            if let Some(c) = spec.capacitance {
                s.push(("capacitance".to_string(), Value::Num(c)));
            }
            let reg = match spec.regulator {
                RegulatorChoice::Sc => "sc",
                RegulatorChoice::Ldo => "ldo",
                RegulatorChoice::Buck => "buck",
            };
            s.push(("regulator".to_string(), Value::str(reg)));
            let policy = match spec.policy {
                PolicySpec::Fixed {
                    vdd,
                    clock_fraction,
                } => Value::obj(vec![
                    ("kind", Value::str("fixed")),
                    ("vdd", Value::Num(vdd)),
                    ("clock_fraction", Value::Num(clock_fraction)),
                ]),
                PolicySpec::Duty { v_run, v_stop, vdd } => Value::obj(vec![
                    ("kind", Value::str("duty")),
                    ("v_run", Value::Num(v_run)),
                    ("v_stop", Value::Num(v_stop)),
                    ("vdd", Value::Num(vdd)),
                ]),
            };
            s.push(("policy".to_string(), policy));
            s.push(("v_initial".to_string(), Value::Num(spec.v_initial)));
            s.push(("duration".to_string(), Value::Num(spec.duration)));
            if let Some(d) = spec.deadline {
                s.push(("deadline".to_string(), Value::Num(d)));
            }
            fields.push(("scenario".to_string(), Value::Obj(s)));
        }
        Value::Obj(fields).render()
    }
}

/// Renders an `ok` response line (without the trailing newline).
pub fn ok_response(id: &Value, cached: bool, result: Value) -> String {
    Value::obj(vec![
        ("id", id.clone()),
        ("status", Value::str("ok")),
        ("cached", Value::Bool(cached)),
        ("result", result),
    ])
    .render()
}

/// Renders an `error` response line.
pub fn error_response(id: &Value, message: &str) -> String {
    Value::obj(vec![
        ("id", id.clone()),
        ("status", Value::str("error")),
        ("error", Value::str(message)),
    ])
    .render()
}

/// Renders a *retryable* `error` response line: the request was sound but
/// the server faulted while answering it (a worker panic). Unlike a plain
/// `error`, resubmitting the identical request may well succeed, and the
/// `retryable` flag tells clients so.
pub fn retryable_error_response(id: &Value, message: &str) -> String {
    Value::obj(vec![
        ("id", id.clone()),
        ("status", Value::str("error")),
        ("error", Value::str(message)),
        ("retryable", Value::Bool(true)),
    ])
    .render()
}

/// Renders an `overloaded` (admission-refused) response line.
pub fn overloaded_response(id: &Value, reason: &str) -> String {
    Value::obj(vec![
        ("id", id.clone()),
        ("status", Value::str("overloaded")),
        ("error", Value::str(reason)),
    ])
    .render()
}

/// The duration actually simulated/planned for: the deadline when one is
/// given, else the scenario duration.
pub fn effective_duration(spec: &ScenarioSpec) -> Seconds {
    Seconds::new(spec.deadline.unwrap_or(spec.duration))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_request_with_defaults() {
        let req =
            Request::parse_line(r#"{"id":3,"query":"mep","scenario":{"irradiance":0.5}}"#).unwrap();
        assert_eq!(req.kind, QueryKind::Mep);
        let spec = req.scenario.unwrap();
        assert_eq!(spec.irradiance, 0.5);
        assert_eq!(spec.regulator, RegulatorChoice::Sc);
        assert_eq!(spec.v_initial, 1.1);
    }

    #[test]
    fn stats_needs_no_scenario_and_plans_do() {
        assert!(Request::parse_line(r#"{"query":"stats"}"#).is_ok());
        let err = Request::parse_line(r#"{"id":9,"query":"mep"}"#).unwrap_err();
        assert_eq!(err.0, Value::Num(9.0), "id still echoed on error");
        assert!(err.1.contains("scenario"));
    }

    #[test]
    fn unknown_query_and_bad_json_are_rejected() {
        assert!(Request::parse_line(r#"{"query":"divine"}"#).is_err());
        assert!(Request::parse_line("not json").is_err());
        assert!(Request::parse_line(r#"{"query":5}"#).is_err());
    }

    #[test]
    fn render_parse_round_trips() {
        let mut spec = ScenarioSpec::baseline(0.25);
        spec.regulator = RegulatorChoice::Buck;
        spec.deadline = Some(0.02);
        spec.policy = PolicySpec::Duty {
            v_run: 1.0,
            v_stop: 0.8,
            vdd: 0.55,
        };
        let line = Request::render_line(11, QueryKind::Sprint, Some(&spec));
        let req = Request::parse_line(&line).unwrap();
        assert_eq!(req.kind, QueryKind::Sprint);
        assert_eq!(req.scenario.unwrap(), spec);
    }

    #[test]
    fn cache_keys_separate_query_kinds_and_fields() {
        let spec = ScenarioSpec::baseline(0.5);
        let (config, policy) = spec.build().unwrap();
        let k_mep = spec.cache_key(QueryKind::Mep, &config, &policy);
        let k_opt = spec.cache_key(QueryKind::OptimalPoint, &config, &policy);
        assert_ne!(k_mep, k_opt, "query kind reaches the key");
        let mut dim = spec.clone();
        dim.irradiance = 0.4;
        let (config2, policy2) = dim.build().unwrap();
        assert_ne!(
            k_mep,
            dim.cache_key(QueryKind::Mep, &config2, &policy2),
            "irradiance reaches the key"
        );
        let mut dl = spec.clone();
        dl.deadline = Some(0.02);
        let (config3, policy3) = dl.build().unwrap();
        assert_ne!(
            k_mep,
            dl.cache_key(QueryKind::Mep, &config3, &policy3),
            "deadline reaches the key"
        );
    }

    #[test]
    fn invalid_scenarios_fail_to_build() {
        let mut spec = ScenarioSpec::baseline(3.0); // beyond even concentrated sun
        assert!(spec.build().is_err());
        spec.irradiance = 0.5;
        spec.capacitance = Some(-1.0);
        assert!(spec.build().is_err());
    }
}
