//! The `hems-serve` daemon: binds `HEMS_SERVE_ADDR` (default
//! `127.0.0.1:7878`) and serves plan queries until a wire `shutdown`.

use hems_serve::{serve, ServeConfig};

fn main() {
    let addr = std::env::var("HEMS_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let mut handle = match serve(addr.as_str(), ServeConfig::default()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("hems-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("hems-serve listening on {}", handle.addr());
    handle.wait();
    println!("hems-serve: drained, bye");
}
