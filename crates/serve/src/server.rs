//! The service: TCP acceptor, per-connection readers, and the micro-batcher.
//!
//! ## Thread anatomy
//!
//! ```text
//! acceptor ──► reader (one per connection)
//!                │  parse → stats/shutdown inline
//!                │  cache hit → respond inline (cached: true)
//!                │  cache miss → bounded queue ──► batcher ──► worker pool
//!                │  queue full → overloaded          │  (fan out one batch,
//!                ▼                                   ▼   in-batch dedup)
//!              client ◄──────────────── responses written per-pending
//! ```
//!
//! ## Admission control
//!
//! The miss queue is bounded ([`ServeConfig::max_queue`]). A full queue
//! refuses the request with an explicit `overloaded` response instead of
//! queueing unboundedly — under a compute-bound load the client learns to
//! back off within one round trip, and accepted requests keep a bounded
//! latency. Cache hits, `stats`, and errors bypass the queue entirely, so
//! an overloaded server still answers cheap traffic.
//!
//! ## Batching
//!
//! The batcher drains up to [`ServeConfig::max_batch`] pending misses at a
//! time, dedupes them by cache key (concurrent identical misses share one
//! solve), and fans the distinct jobs out across the sim crate's
//! [`WorkerPool`]. Results are rendered once, inserted into the cache, and
//! written to every waiter of that key.
//!
//! ## Shutdown
//!
//! A `shutdown` query (or [`ServerHandle::shutdown`]) flips the accepting
//! flag, wakes the batcher, and *drains*: every request already accepted
//! into the queue is answered before the batcher exits and the pool joins.
//! Requests arriving after the flag see `overloaded` with a "shutting
//! down" reason.

use crate::cache::PlanCache;
use crate::planner::{self, PlanJob};
use crate::proto::{
    error_response, ok_response, overloaded_response, retryable_error_response, QueryKind, Request,
};
use crate::stats::ServeStats;
use crate::sync::relock;
use crate::wire::{is_timeout, read_line_bounded};
use hems_obs::clock::monotonic_ns;
use hems_sim::WorkerPool;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs for a server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads for plan solves (`None` → `HEMS_THREADS` or the
    /// machine's parallelism, like the sweep engine).
    pub threads: Option<usize>,
    /// Total plan-cache entries across shards.
    pub cache_capacity: usize,
    /// Bounded miss-queue depth; beyond it requests get `overloaded`.
    pub max_queue: usize,
    /// Most misses fanned out in one batch.
    pub max_batch: usize,
    /// Longest accepted request line, bytes (DoS guard).
    pub max_line_bytes: usize,
    /// Per-connection read deadline. A client that stays silent (or drips
    /// bytes slower than one line per deadline — slow loris) is reaped and
    /// its handler thread reclaimed. `None` disables the deadline.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline: a client that stops draining its
    /// receive window cannot pin a writer forever. `None` disables it.
    pub write_timeout: Option<Duration>,
    /// Deterministic fault injection for chaos campaigns: `Some(n)` makes
    /// every n-th batched job panic inside the worker pool instead of
    /// solving. The panic exercises the real isolation path — the slot's
    /// waiters get a retryable degraded response, the batch survives, the
    /// `faults` counter ticks. `None` (the default) injects nothing.
    pub inject_panic_one_in: Option<u64>,
    /// Shard identity for router-fronted deployments: when set, `stats`
    /// responses carry a `shard` field. The router's connect handshake
    /// probes it and refuses to pool connections to a backend whose
    /// reported identity disagrees with the ring slot it was registered
    /// under (a misconfigured shard set silently destroys cache affinity;
    /// the handshake turns that into an ejection instead).
    pub shard_id: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: None,
            cache_capacity: 1024,
            max_queue: 256,
            max_batch: 32,
            max_line_bytes: 64 * 1024,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            inject_panic_one_in: None,
            shard_id: None,
        }
    }
}

/// One accepted cache miss waiting for the batcher.
struct Pending {
    id: crate::json::Value,
    job: PlanJob,
    conn: Arc<Mutex<TcpStream>>,
    accepted_at: u64,
}

struct Shared {
    config: ServeConfig,
    cache: PlanCache,
    stats: ServeStats,
    queue: Mutex<VecDeque<Pending>>,
    queue_ready: Condvar,
    /// Cleared on shutdown: new work is refused.
    accepting: AtomicBool,
    /// Flipped (and broadcast) when the batcher has drained and exited.
    drained_cv: (Mutex<bool>, Condvar),
    pool: WorkerPool,
    /// Jobs dispatched to the pool so far — the deterministic counter the
    /// `inject_panic_one_in` chaos hook keys off.
    jobs_dispatched: AtomicU64,
}

impl Shared {
    fn queue_depth(&self) -> usize {
        relock(&self.queue).len()
    }

    /// The `stats` response body: the counter snapshot, plus the shard
    /// identity when this server runs as a router-fronted shard.
    fn stats_value(&self) -> crate::json::Value {
        let snapshot =
            self.stats
                .snapshot(self.queue_depth(), self.cache.len(), self.pool.threads());
        match (self.config.shard_id, snapshot) {
            (Some(sid), crate::json::Value::Obj(mut fields)) => {
                fields.push(("shard".to_string(), crate::json::Value::Num(sid as f64)));
                crate::json::Value::Obj(fields)
            }
            (_, snapshot) => snapshot,
        }
    }

    fn begin_shutdown(&self) {
        self.accepting.store(false, Ordering::SeqCst);
        // Wake the batcher even if the queue is empty so it can exit.
        self.queue_ready.notify_all();
    }
}

/// A running server. Dropping the handle shuts the server down and joins
/// its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live service counters (the same snapshot a `stats` query returns).
    pub fn stats_snapshot(&self) -> crate::json::Value {
        self.shared.stats_value()
    }

    /// Initiates graceful shutdown *without* joining: stops accepting,
    /// wakes the batcher to drain, and returns immediately. This is the
    /// drain hook a supervisor (the router's drain-and-rejoin protocol,
    /// the chaos crash/restart surface) uses to take a backend out of
    /// rotation while its in-flight batches still complete; follow with
    /// [`ServerHandle::wait`] or [`ServerHandle::shutdown`] to join.
    pub fn begin_drain(&self) {
        self.shared.begin_shutdown();
    }

    /// Initiates graceful shutdown and blocks until in-flight work drains.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }

    /// Blocks until the server shuts down (e.g. by a wire `shutdown`
    /// query).
    pub fn wait(&mut self) {
        {
            let (lock, cv) = &self.shared.drained_cv;
            let mut drained = relock(lock);
            while !*drained {
                drained = cv
                    .wait(drained)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join_threads();
    }
}

/// Binds and starts a server.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve<A: ToSocketAddrs>(addr: A, config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let pool = WorkerPool::with_default_threads(config.threads);
    let stats = ServeStats::new();
    let shared = Arc::new(Shared {
        cache: PlanCache::with_registry(config.cache_capacity, stats.registry()),
        stats,
        queue: Mutex::new(VecDeque::new()),
        queue_ready: Condvar::new(),
        accepting: AtomicBool::new(true),
        drained_cv: (Mutex::new(false), Condvar::new()),
        pool,
        jobs_dispatched: AtomicU64::new(0),
        config,
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("hems-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))?
    };
    let batcher = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("hems-serve-batch".to_string())
            .spawn(move || batch_loop(&shared))
    };
    let batcher = match batcher {
        Ok(handle) => handle,
        Err(e) => {
            // Without a batcher the server would accept and never answer;
            // unwind the acceptor before reporting the failure.
            shared.begin_shutdown();
            let _ = acceptor.join();
            return Err(e);
        }
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        batcher: Some(batcher),
    })
}

/// Shortest accept-loop poll/backoff step.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Cap for the accept-error backoff.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    // Reader threads detach; they exit when their connection closes or
    // shutdown refuses further work. Nonblocking accept lets the acceptor
    // poll the shutdown flag without a self-connect trick.
    let mut error_backoff = ACCEPT_POLL;
    while shared.accepting.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                error_backoff = ACCEPT_POLL;
                // One small response line per request: Nagle + delayed ACK
                // would add ~40 ms to every round trip.
                let _ = stream.set_nodelay(true);
                // Deadlines are the slow-loris/half-open defence: a
                // connection that cannot make a line's progress per
                // deadline is reaped, not parked forever.
                let _ = stream.set_read_timeout(shared.config.read_timeout);
                let _ = stream.set_write_timeout(shared.config.write_timeout);
                let shared = Arc::clone(shared);
                let _ = thread::Builder::new()
                    .name("hems-serve-conn".to_string())
                    .spawn(move || connection_loop(stream, &shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Idle poll: fixed short sleep keeps shutdown responsive.
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Persistent accept errors (EMFILE, ENOBUFS, …) must not
                // hot-loop at 200 Hz: back off exponentially to a cap, and
                // reset on the next successful accept.
                thread::sleep(error_backoff);
                error_backoff = (error_backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

fn write_line(conn: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut stream = relock(conn);
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line_bounded(&mut reader, shared.config.max_line_bytes) {
            Ok(Some(line)) => line,
            Ok(None) => return, // clean EOF
            Err(e) if is_timeout(&e) => {
                // Read deadline expired: an idle, half-open, or slow-loris
                // connection. Reap it quietly — the close *is* the signal,
                // and writing into a stalled socket could itself block
                // until the write deadline.
                shared.stats.reaped.inc();
                return;
            }
            Err(_) => {
                shared.stats.errors.inc();
                write_line(
                    &writer,
                    &error_response(&crate::json::Value::Null, "bad line"),
                );
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = monotonic_ns();
        shared.stats.requests.inc();
        let request = match Request::parse_line(&line) {
            Ok(request) => request,
            Err((id, message)) => {
                shared.stats.errors.inc();
                write_line(&writer, &error_response(&id, &message));
                continue;
            }
        };
        match request.kind {
            QueryKind::Stats => {
                write_line(
                    &writer,
                    &ok_response(&request.id, false, shared.stats_value()),
                );
                shared.stats.record_latency_ns(elapsed_ns(started));
            }
            QueryKind::Metrics => {
                // Merge the process-global registry (sweep, pool, LUT
                // series) with this server's own (serve.*, cache), then
                // round-trip the rendered snapshot through this crate's
                // parser so the response is a structured result object,
                // not an opaque string.
                let merged = hems_obs::global()
                    .snapshot()
                    .merged(shared.stats.registry().snapshot());
                match crate::json::parse(&merged.render()) {
                    Ok(value) => {
                        write_line(&writer, &ok_response(&request.id, false, value));
                        shared.stats.record_latency_ns(elapsed_ns(started));
                    }
                    Err(e) => {
                        shared.stats.errors.inc();
                        write_line(&writer, &error_response(&request.id, &e.to_string()));
                    }
                }
            }
            QueryKind::Shutdown => {
                write_line(
                    &writer,
                    &ok_response(
                        &request.id,
                        false,
                        crate::json::Value::obj(vec![("draining", crate::json::Value::Bool(true))]),
                    ),
                );
                shared.begin_shutdown();
                return;
            }
            _ => handle_plan_query(shared, &writer, request, started),
        }
    }
}

fn handle_plan_query(
    shared: &Arc<Shared>,
    writer: &Arc<Mutex<TcpStream>>,
    request: Request,
    started: u64,
) {
    let Some(spec) = request.scenario else {
        // Parsing guarantees plan queries carry a scenario; answer rather
        // than crash the connection if that invariant ever slips.
        shared.stats.errors.inc();
        write_line(
            writer,
            &error_response(&request.id, "plan query is missing a scenario"),
        );
        return;
    };
    let job = match PlanJob::build(request.kind, spec) {
        Ok(job) => job,
        Err(message) => {
            shared.stats.errors.inc();
            write_line(writer, &error_response(&request.id, &message));
            return;
        }
    };
    if let Some(rendered) = shared.cache.get(job.key) {
        shared.stats.hits.inc();
        write_line(writer, &ok_line(&request.id, true, &rendered));
        shared.stats.record_latency_ns(elapsed_ns(started));
        return;
    }
    // Admission control: refuse instead of queueing unboundedly. The
    // accepting flag is checked under the queue lock so shutdown cannot
    // race an enqueue past the drain.
    let refused = {
        let mut queue = relock(&shared.queue);
        if !shared.accepting.load(Ordering::SeqCst) {
            Some("shutting down")
        } else if queue.len() >= shared.config.max_queue {
            Some("queue full, back off and retry")
        } else {
            shared.stats.misses.inc();
            queue.push_back(Pending {
                id: request.id.clone(),
                job,
                conn: Arc::clone(writer),
                accepted_at: started,
            });
            None
        }
    };
    match refused {
        Some(reason) => {
            shared.stats.overloaded.inc();
            write_line(writer, &overloaded_response(&request.id, reason));
        }
        None => shared.queue_ready.notify_one(),
    }
}

/// Renders an `ok` response by splicing an already-rendered result —
/// cache hits and batch fan-out never re-serialize the result object.
fn ok_line(id: &crate::json::Value, cached: bool, rendered_result: &str) -> String {
    let mut line = String::with_capacity(rendered_result.len() + 48);
    line.push_str("{\"id\":");
    line.push_str(&id.render());
    line.push_str(",\"status\":\"ok\",\"cached\":");
    line.push_str(if cached { "true" } else { "false" });
    line.push_str(",\"result\":");
    line.push_str(rendered_result);
    line.push('}');
    line
}

fn elapsed_ns(started_ns: u64) -> f64 {
    monotonic_ns().saturating_sub(started_ns) as f64
}

fn batch_loop(shared: &Arc<Shared>) {
    loop {
        let batch: Vec<Pending> = {
            let mut queue = relock(&shared.queue);
            loop {
                if !queue.is_empty() {
                    let n = queue.len().min(shared.config.max_batch);
                    break queue.drain(..n).collect();
                }
                if !shared.accepting.load(Ordering::SeqCst) {
                    // Queue empty and no new work can arrive: drained.
                    drop(queue);
                    let (lock, cv) = &shared.drained_cv;
                    *relock(lock) = true;
                    cv.notify_all();
                    return;
                }
                queue = shared
                    .queue_ready
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };

        // In-batch dedup: waiters grouped per key, one solve per key.
        let mut waiters: HashMap<u64, Vec<Pending>> = HashMap::new();
        let mut jobs: Vec<PlanJob> = Vec::new();
        for pending in batch {
            let entry = waiters.entry(pending.job.key).or_default();
            if entry.is_empty() {
                jobs.push(pending.job.clone());
            }
            entry.push(pending);
        }
        shared.stats.record_batch(jobs.len());

        // Partition the deduped misses: sweep summaries ride the sweep
        // engine's chunked batch entry — the whole micro-batch becomes one
        // scenario list, whole chunks travel the pool per job, and answers
        // come back in list order through the same exact device models, so
        // responses stay byte-identical to the per-job path. Everything
        // else (analytic solves, plus any chaos-injected job so the fault
        // hook keeps its per-key blast radius) takes a pool slot of its
        // own via run_jobs_result.
        let mut unit_jobs: Vec<(u64, PlanJob, bool)> = Vec::new();
        let mut sweep_jobs: Vec<(u64, PlanJob)> = Vec::new();
        for job in jobs {
            let nth = shared.jobs_dispatched.fetch_add(1, Ordering::Relaxed) + 1;
            let inject = shared
                .config
                .inject_panic_one_in
                .is_some_and(|n| n > 0 && nth.is_multiple_of(n));
            if job.kind == QueryKind::SweepSummary && !inject {
                sweep_jobs.push((job.key, job));
            } else {
                unit_jobs.push((job.key, job, inject));
            }
        }

        // Outcome per key: Ok(answer-or-semantic-error) or Err(fault text).
        type KeyedOutcome = (u64, Result<Result<crate::json::Value, String>, String>);
        let mut outcomes: Vec<KeyedOutcome> = Vec::new();
        if !sweep_jobs.is_empty() {
            let scenarios: Vec<_> = sweep_jobs
                .iter()
                .enumerate()
                .map(|(i, (_, job))| planner::scenario_for(job, i))
                .collect();
            // The integrator is panic-free by contract; the guard keeps a
            // violation degrading this batch's sweep keys (retryably)
            // instead of killing the batcher thread.
            let chunked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                hems_sim::sweep::run_scenarios_chunked(
                    &scenarios,
                    &shared.pool,
                    hems_sim::sweep::BATCH_LANES,
                )
            }));
            match chunked {
                Ok(results) => {
                    for ((key, _), result) in sweep_jobs.iter().zip(results) {
                        outcomes.push((*key, Ok(planner::sweep_answer(result))));
                    }
                }
                Err(_) => {
                    for (key, _) in &sweep_jobs {
                        outcomes
                            .push((*key, Err("internal fault: sweep batch paniced".to_string())));
                    }
                }
            }
        }

        // run_jobs_result isolates a panicking solve to its own slot:
        // that key's waiters get an error response and every other job
        // in the batch (and the pool itself) carries on.
        let unit_keys: Vec<u64> = unit_jobs.iter().map(|(key, _, _)| *key).collect();
        let answers = shared.pool.run_jobs_result(
            unit_jobs
                .into_iter()
                .map(|(_, job, inject)| {
                    move || {
                        if inject {
                            // hems-lint: allow(panic, reason = "chaos hook: opt-in injected worker fault, caught by run_jobs_result")
                            panic!("chaos: injected worker fault");
                        }
                        planner::answer(&job)
                    }
                })
                .collect::<Vec<_>>(),
        );
        for (key, outcome) in unit_keys.into_iter().zip(answers) {
            outcomes.push((
                key,
                outcome.map_err(|panic| format!("internal fault: {}", panic.message())),
            ));
        }

        for (key, outcome) in outcomes {
            let pendings = waiters.remove(&key).unwrap_or_default();
            match outcome {
                Ok(Ok(result)) => {
                    let rendered = result.render();
                    shared.cache.insert(key, rendered.clone());
                    for p in pendings {
                        write_line(&p.conn, &ok_line(&p.id, false, &rendered));
                        shared.stats.record_latency_ns(elapsed_ns(p.accepted_at));
                    }
                }
                Ok(Err(message)) => {
                    // A semantic failure (malformed scenario, infeasible
                    // plan): resubmitting the same request cannot succeed,
                    // so the error is terminal. Not cached — a transiently
                    // infeasible plan (e.g. a race on darkness) should not
                    // poison the key.
                    shared.stats.errors.inc();
                    for p in pendings {
                        write_line(&p.conn, &error_response(&p.id, &message));
                        shared.stats.record_latency_ns(elapsed_ns(p.accepted_at));
                    }
                }
                Err(message) => {
                    // A worker panic is a *fault*, not a verdict about the
                    // request: only this key's waiters degrade (the rest of
                    // the batch already has answers) and the response is
                    // marked retryable so a well-behaved client resubmits.
                    shared.stats.faults.inc();
                    for p in pendings {
                        write_line(&p.conn, &retryable_error_response(&p.id, &message));
                        shared.stats.record_latency_ns(elapsed_ns(p.accepted_at));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::proto::ScenarioSpec;
    use std::io::{BufRead, Read};

    fn small_config() -> ServeConfig {
        ServeConfig {
            threads: Some(2),
            cache_capacity: 64,
            max_queue: 64,
            max_batch: 8,
            max_line_bytes: 16 * 1024,
            ..ServeConfig::default()
        }
    }

    fn query_line(stream: &mut TcpStream, line: &str) -> Value {
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write request");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        parse(&response).expect("response is JSON")
    }

    #[test]
    fn answers_a_plan_query_then_serves_the_repeat_from_cache() {
        let mut handle = serve("127.0.0.1:0", small_config()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let line = Request::render_line(1, QueryKind::Mep, Some(&ScenarioSpec::baseline(0.5)));
        let first = query_line(&mut stream, &line);
        assert_eq!(first.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));
        let second = query_line(&mut stream, &line);
        assert_eq!(second.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(
            first.get("result").map(Value::render),
            second.get("result").map(Value::render),
            "cached result is byte-identical"
        );
        let stats = handle.stats_snapshot();
        assert_eq!(stats.get("hits").and_then(Value::as_f64), Some(1.0));
        assert_eq!(stats.get("misses").and_then(Value::as_f64), Some(1.0));
        handle.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_the_connection_survives() {
        let mut handle = serve("127.0.0.1:0", small_config()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let bad = query_line(&mut stream, r#"{"id":5,"query":"nope"}"#);
        assert_eq!(bad.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(bad.get("id").and_then(Value::as_f64), Some(5.0));
        // Same connection still answers good queries.
        let ok = query_line(&mut stream, r#"{"id":6,"query":"stats"}"#);
        assert_eq!(ok.get("status").and_then(Value::as_str), Some("ok"));
        handle.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped_by_the_read_deadline() {
        let config = ServeConfig {
            read_timeout: Some(Duration::from_millis(100)),
            ..small_config()
        };
        let mut handle = serve("127.0.0.1:0", config).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // Say nothing. The server must hang up on its own; without the
        // deadline this read would block forever (the old slow-loris bug).
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 64];
        let n = stream.read(&mut buf).expect("server closed cleanly");
        assert_eq!(n, 0, "reap is a plain close, not an error frame");
        let stats = handle.stats_snapshot();
        assert_eq!(stats.get("reaped").and_then(Value::as_f64), Some(1.0));
        handle.shutdown();
    }

    #[test]
    fn torn_frame_gets_an_error_and_the_next_frame_still_parses() {
        let mut handle = serve("127.0.0.1:0", small_config()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        // A frame torn mid-byte but newline-terminated: the parser must
        // reject it without killing the connection.
        let torn = query_line(&mut stream, r#"{"id":8,"query":"mep","scenario":{"irr"#);
        assert_eq!(torn.get("status").and_then(Value::as_str), Some("error"));
        let ok = query_line(&mut stream, r#"{"id":9,"query":"stats"}"#);
        assert_eq!(ok.get("status").and_then(Value::as_str), Some("ok"));
        handle.shutdown();
    }

    #[test]
    fn fragmented_frames_reassemble_within_the_deadline() {
        let config = ServeConfig {
            read_timeout: Some(Duration::from_secs(2)),
            ..small_config()
        };
        let mut handle = serve("127.0.0.1:0", config).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let line = format!(
            "{}\n",
            Request::render_line(3, QueryKind::Mep, Some(&ScenarioSpec::baseline(0.3)))
        );
        // Drip the request a few bytes at a time (a slow but honest
        // client); the per-line reader must reassemble it.
        for chunk in line.as_bytes().chunks(7) {
            stream.write_all(chunk).unwrap();
            stream.flush().unwrap();
            thread::sleep(Duration::from_millis(2));
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let value = parse(&response).unwrap();
        assert_eq!(value.get("status").and_then(Value::as_str), Some("ok"));
        handle.shutdown();
    }

    #[test]
    fn injected_worker_faults_degrade_to_retryable_errors() {
        let config = ServeConfig {
            inject_panic_one_in: Some(2), // every 2nd batched job panics
            ..small_config()
        };
        let mut handle = serve("127.0.0.1:0", config).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let first = query_line(
            &mut stream,
            &Request::render_line(1, QueryKind::Mep, Some(&ScenarioSpec::baseline(0.5))),
        );
        assert_eq!(first.get("status").and_then(Value::as_str), Some("ok"));
        // A distinct scenario forces a second solve: job #2 panics in the
        // pool, and the waiter gets a retryable degraded response instead
        // of a dead connection or a dead server.
        let second = query_line(
            &mut stream,
            &Request::render_line(2, QueryKind::Mep, Some(&ScenarioSpec::baseline(0.6))),
        );
        assert_eq!(second.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(second.get("retryable").and_then(Value::as_bool), Some(true));
        // The batch pipeline survived the panic.
        let stats = query_line(&mut stream, r#"{"id":3,"query":"stats"}"#);
        assert_eq!(stats.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(
            stats
                .get("result")
                .and_then(|r| r.get("faults"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
        handle.shutdown();
    }

    #[test]
    fn wire_shutdown_unblocks_wait() {
        let mut handle = serve("127.0.0.1:0", small_config()).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let bye = query_line(&mut stream, r#"{"id":1,"query":"shutdown"}"#);
        assert_eq!(bye.get("status").and_then(Value::as_str), Some("ok"));
        handle.wait(); // must return, not hang
    }
}
