//! Executes plan queries against the paper's solvers.
//!
//! One [`PlanJob`] is one cache miss: a fully materialized `(query kind,
//! SystemConfig, SweepPolicy, spec)` tuple whose [`answer`] runs on the
//! sim crate's worker pool. Answers are JSON result objects (the `result`
//! field of an `ok` response); failures are rendered strings (the `error`
//! field of an `error` response).
//!
//! The mapping to the paper:
//!
//! | query           | solver                                             |
//! |-----------------|----------------------------------------------------|
//! | `optimal_point` | §IV eqs. 1–4 + joint rail/supply refinement        |
//! | `mep`           | §V eq. 5 system MEP at the cell's MPP rail         |
//! | `bypass`        | §IV-B crossover calibration + per-level comparison |
//! | `sprint`        | §VI-B eqs. 12–13 two-phase schedule vs constant    |
//! | `sweep_summary` | the transient integrator, summarized               |
//!
//! Every query runs the *exact* device models — the service's latency
//! budget is the plan cache, not the LUT fast path, so misses pay the
//! reference-quality solve and hits are free. Sweep misses additionally
//! expose their scenario through [`scenario_for`] so the server can run a
//! whole micro-batch of them through the sweep engine's chunked batch
//! entry (`hems_sim::sweep::run_scenarios_chunked`) — same exact models,
//! byte-identical answers, one pool round-trip per chunk instead of per
//! key — and render each outcome with [`sweep_answer`].

use crate::json::Value;
use crate::proto::{effective_duration, QueryKind, ScenarioSpec};
use hems_core::{bypass::BypassPolicy, mep, operating_point, optimal_voltage, sprint::SprintPlan};
use hems_core::{Canonical, KeyHasher, PvSource};
use hems_sim::sweep::{run_scenario, Scenario, SweepPolicy};
use hems_sim::SystemConfig;
use hems_units::Volts;

/// One cache miss, ready to execute on a worker.
#[derive(Debug, Clone)]
pub struct PlanJob {
    /// The canonical cache key of the request.
    pub key: u64,
    /// What is being asked.
    pub kind: QueryKind,
    /// The materialized system.
    pub config: SystemConfig,
    /// The materialized control policy.
    pub policy: SweepPolicy,
    /// The original spec (for run settings the config doesn't carry).
    pub spec: ScenarioSpec,
}

impl PlanJob {
    /// Builds a job from a parsed scenario spec.
    ///
    /// # Errors
    ///
    /// Returns a rendered message when the spec cannot be materialized
    /// (out-of-range light, unrealizable capacitance).
    pub fn build(kind: QueryKind, spec: ScenarioSpec) -> Result<PlanJob, String> {
        let (config, policy) = spec.build()?;
        let key = spec.cache_key(kind, &config, &policy);
        Ok(PlanJob {
            key,
            kind,
            config,
            policy,
            spec,
        })
    }
}

/// Executes one plan job. Infallible queries return `Ok`; infeasible
/// plans (darkness, unreachable windows) return the solver's message.
///
/// # Errors
///
/// Returns the rendered solver error for infeasible scenarios.
pub fn answer(job: &PlanJob) -> Result<Value, String> {
    match job.kind {
        QueryKind::OptimalPoint => optimal_point(job),
        QueryKind::Mep => holistic_mep(job),
        QueryKind::Bypass => bypass_decision(job),
        QueryKind::Sprint => sprint_plan(job),
        QueryKind::SweepSummary => sweep_summary(job),
        QueryKind::Stats | QueryKind::Metrics | QueryKind::Shutdown => {
            Err("service queries are answered inline, not planned".to_string())
        }
    }
}

fn optimal_point(job: &PlanJob) -> Result<Value, String> {
    let plan = optimal_voltage::optimal_joint_plan(
        &job.config.cell,
        &job.config.regulator,
        &job.config.cpu,
    )
    .map_err(|e| e.to_string())?;
    // The unregulated baseline contextualizes the gain (Fig. 6b's +31 %
    // power / +18 % speed claim); it can be infeasible where the plan is
    // not, so it is optional in the answer.
    let baseline = operating_point::unregulated_point(&job.config.cell, &job.config.cpu).ok();
    let mut fields = vec![
        ("v_solar", Value::Num(plan.v_solar.volts())),
        ("vdd", Value::Num(plan.vdd.volts())),
        ("frequency_hz", Value::Num(plan.frequency.hertz())),
        ("p_cpu_w", Value::Num(plan.p_cpu.watts())),
        ("p_in_w", Value::Num(plan.p_in.watts())),
        ("efficiency", Value::Num(plan.efficiency.ratio())),
        ("clock_fraction", Value::Num(plan.clock_fraction)),
    ];
    if let Some(u) = baseline {
        fields.push(("speedup_vs_unregulated", Value::Num(plan.speedup_vs(&u))));
        fields.push((
            "power_gain_vs_unregulated",
            Value::Num(plan.power_gain_vs(&u)),
        ));
    }
    Ok(Value::obj(fields))
}

fn holistic_mep(job: &PlanJob) -> Result<Value, String> {
    let mpp = job.config.cell.source_mpp().map_err(|e| e.to_string())?;
    let m = mep::system_mep(&job.config.cpu, &job.config.regulator, mpp.voltage)
        .map_err(|e| e.to_string())?;
    Ok(Value::obj(vec![
        ("vdd", Value::Num(m.vdd.volts())),
        (
            "energy_per_cycle_j",
            Value::Num(m.energy_per_cycle.joules()),
        ),
        ("v_in", Value::Num(m.v_in.volts())),
    ]))
}

fn bypass_decision(job: &PlanJob) -> Result<Value, String> {
    let g = job.config.cell.irradiance();
    let comparison = BypassPolicy::compare_at(
        job.config.cell.model(),
        &job.config.regulator,
        &job.config.cpu,
        g,
    );
    // The crossover calibration can legitimately fail (bypass never wins
    // for an efficient-everywhere regulator); the per-level comparison is
    // still the answer, with the crossover attached when it exists.
    let dawn = hems_pv::Irradiance::new(0.02).map_err(|e| e.to_string())?;
    let policy = BypassPolicy::calibrate(
        job.config.cell.model(),
        &job.config.regulator,
        &job.config.cpu,
        dawn,
        hems_pv::Irradiance::FULL_SUN,
    );
    let mut fields = vec![
        ("irradiance", Value::Num(g.fraction())),
        ("regulated_w", Value::Num(comparison.regulated.watts())),
        ("bypassed_w", Value::Num(comparison.bypassed.watts())),
        ("bypass_wins", Value::Bool(comparison.bypass_wins())),
    ];
    match policy {
        Ok(policy) => {
            fields.push(("crossover", Value::Num(policy.crossover().fraction())));
            fields.push(("should_bypass", Value::Bool(policy.should_bypass(g))));
        }
        Err(_) => {
            fields.push(("crossover", Value::Null));
            fields.push(("should_bypass", Value::Bool(comparison.bypass_wins())));
        }
    }
    Ok(Value::obj(fields))
}

fn sprint_plan(job: &PlanJob) -> Result<Value, String> {
    let duration = effective_duration(&job.spec);
    // Nominal draw: what the optimal regulated plan pulls from the node.
    let plan = optimal_voltage::optimal_joint_plan(
        &job.config.cell,
        &job.config.regulator,
        &job.config.cpu,
    )
    .map_err(|e| e.to_string())?;
    let sprint = SprintPlan::paper_20_percent(duration, plan.p_in).map_err(|e| e.to_string())?;
    let mut capacitor = job.config.capacitor.clone();
    capacitor
        .set_voltage(Volts::new(job.spec.v_initial))
        .map_err(|e| e.to_string())?;
    let comparison = sprint.compare_against_constant(&job.config.cell, &capacitor, job.config.dt);
    Ok(Value::obj(vec![
        ("beta", Value::Num(sprint.beta)),
        ("duration_s", Value::Num(sprint.duration.seconds())),
        ("p_nominal_w", Value::Num(sprint.p_nominal.watts())),
        (
            "e_solar_constant_j",
            Value::Num(comparison.e_solar_constant.joules()),
        ),
        (
            "e_solar_sprint_j",
            Value::Num(comparison.e_solar_sprint.joules()),
        ),
        (
            "extra_energy_fraction",
            Value::Num(comparison.extra_energy_fraction()),
        ),
        (
            "v_end_constant",
            Value::Num(comparison.v_end_constant.volts()),
        ),
        ("v_end_sprint", Value::Num(comparison.v_end_sprint.volts())),
    ]))
}

/// Materializes the transient scenario a sweep-summary job describes —
/// shared by the single-miss path here and the server's batched sweep
/// path. `index` is the scenario's position in whatever list the caller
/// assembles (0 for a solo run).
pub fn scenario_for(job: &PlanJob, index: usize) -> Scenario {
    Scenario {
        index,
        label: scenario_label(job),
        config: job.config.clone(),
        policy: job.policy.clone(),
        v_initial: Volts::new(job.spec.v_initial),
        duration: effective_duration(&job.spec),
    }
}

fn sweep_summary(job: &PlanJob) -> Result<Value, String> {
    sweep_answer(run_scenario(&scenario_for(job, 0)))
}

/// Renders a sweep engine outcome into the `sweep_summary` answer object.
///
/// # Errors
///
/// Returns the scenario's own rendered error when the run was infeasible.
pub fn sweep_answer(result: hems_sim::sweep::ScenarioResult) -> Result<Value, String> {
    let summary = result.summary?;
    Ok(Value::obj(vec![
        ("label", Value::str(result.label)),
        ("completed_jobs", Value::Num(summary.completed_jobs as f64)),
        ("brownouts", Value::Num(summary.brownouts as f64)),
        ("total_cycles", Value::Num(summary.total_cycles.count())),
        ("final_v_solar", Value::Num(summary.final_v_solar.volts())),
        ("harvested_j", Value::Num(summary.ledger.harvested.joules())),
        (
            "delivered_to_cpu_j",
            Value::Num(summary.ledger.delivered_to_cpu.joules()),
        ),
        (
            "regulator_loss_j",
            Value::Num(summary.ledger.regulator_loss.joules()),
        ),
        ("duty_cycle", Value::Num(summary.ledger.duty_cycle())),
        (
            "mean_delivered_w",
            Value::Num(summary.ledger.mean_delivered_power().watts()),
        ),
    ]))
}

fn scenario_label(job: &PlanJob) -> String {
    use hems_regulator::Regulator;
    format!(
        "g={} C={} reg={} {}",
        job.config.cell.irradiance(),
        job.config.capacitor.capacitance(),
        job.config.regulator.kind(),
        job.policy.label()
    )
}

/// A self-check that the planner and the cache key agree on identity: two
/// jobs with the same key must produce byte-identical answers. Exercised
/// by tests; exported so the bench can spot-check too.
pub fn keys_agree(a: &PlanJob, b: &PlanJob) -> bool {
    let mut ha = KeyHasher::new();
    let mut hb = KeyHasher::new();
    a.config.canonicalize(&mut ha);
    b.config.canonicalize(&mut hb);
    (a.key == b.key) == (ha.finish() == hb.finish() && a.kind == b.kind && a.spec == b.spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(kind: QueryKind, g: f64) -> PlanJob {
        PlanJob::build(kind, ScenarioSpec::baseline(g)).unwrap()
    }

    #[test]
    fn optimal_point_matches_the_direct_solver() {
        let job = job(QueryKind::OptimalPoint, 1.0);
        let result = answer(&job).unwrap();
        let direct = optimal_voltage::optimal_joint_plan(
            &job.config.cell,
            &job.config.regulator,
            &job.config.cpu,
        )
        .unwrap();
        assert_eq!(
            result.get("vdd").and_then(Value::as_f64),
            Some(direct.vdd.volts())
        );
        assert_eq!(
            result.get("frequency_hz").and_then(Value::as_f64),
            Some(direct.frequency.hertz())
        );
    }

    #[test]
    fn mep_sits_inside_the_processor_window() {
        let result = answer(&job(QueryKind::Mep, 0.5)).unwrap();
        let vdd = result.get("vdd").and_then(Value::as_f64).unwrap();
        assert!((0.2..=1.2).contains(&vdd), "vdd = {vdd}");
        assert!(
            result
                .get("energy_per_cycle_j")
                .and_then(Value::as_f64)
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn bypass_flips_between_bright_and_dim() {
        let bright = answer(&job(QueryKind::Bypass, 1.0)).unwrap();
        assert_eq!(
            bright.get("should_bypass").and_then(Value::as_bool),
            Some(false)
        );
        let dim = answer(&job(QueryKind::Bypass, 0.1)).unwrap();
        assert_eq!(
            dim.get("should_bypass").and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn sprint_answers_with_a_comparison() {
        let mut spec = ScenarioSpec::baseline(0.25);
        spec.deadline = Some(0.02);
        let job = PlanJob::build(QueryKind::Sprint, spec).unwrap();
        let result = answer(&job).unwrap();
        assert_eq!(result.get("beta").and_then(Value::as_f64), Some(0.2));
        assert!(
            result
                .get("e_solar_sprint_j")
                .and_then(Value::as_f64)
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn sweep_summary_reports_the_transient() {
        let result = answer(&job(QueryKind::SweepSummary, 1.0)).unwrap();
        assert!(result.get("harvested_j").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(result.get("total_cycles").and_then(Value::as_f64).unwrap() > 0.0);
    }

    #[test]
    fn batched_sweep_answers_are_byte_identical_to_solo_ones() {
        // The server runs a micro-batch of sweep misses through the sweep
        // engine's chunked entry; both paths use the exact models, so the
        // rendered answers must agree byte-for-byte.
        let jobs: Vec<PlanJob> = [1.0, 0.5, 0.25]
            .into_iter()
            .map(|g| job(QueryKind::SweepSummary, g))
            .collect();
        let scenarios: Vec<_> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| scenario_for(j, i))
            .collect();
        let pool = hems_sim::WorkerPool::new(2);
        let batched = hems_sim::sweep::run_scenarios_chunked(&scenarios, &pool, scenarios.len());
        for (j, result) in jobs.iter().zip(batched) {
            let solo = answer(j).unwrap().render();
            let via_batch = sweep_answer(result).unwrap().render();
            assert_eq!(solo, via_batch);
        }
    }

    #[test]
    fn dark_scenarios_answer_with_errors_not_panics() {
        for kind in [QueryKind::OptimalPoint, QueryKind::Mep, QueryKind::Sprint] {
            let job = job(kind, 0.0);
            assert!(answer(&job).is_err(), "{kind:?} in darkness");
        }
    }

    #[test]
    fn equal_jobs_have_equal_keys_and_answers() {
        let a = job(QueryKind::Mep, 0.5);
        let b = job(QueryKind::Mep, 0.5);
        assert_eq!(a.key, b.key);
        assert!(keys_agree(&a, &b));
        assert_eq!(answer(&a).unwrap().render(), answer(&b).unwrap().render());
    }
}
