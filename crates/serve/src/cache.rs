//! A sharded LRU plan cache.
//!
//! Values are *rendered result JSON strings* — caching the final bytes
//! means a hit costs one hash, one shard lock, and one string clone, with
//! no re-serialization. Keys are the canonical 64-bit request keys from
//! `hems_core::cachekey` (via `proto::ScenarioSpec::cache_key`).
//!
//! Sharding: the key's top bits pick one of [`SHARDS`] independently
//! locked maps, so concurrent connection threads rarely contend on the
//! same mutex. Each shard runs its own LRU clock — a `u64` tick bumped on
//! every touch; eviction removes the smallest tick. Eviction is an O(shard)
//! scan, which for a plan cache (hundreds to thousands of entries, hit
//! paths dominated by the planner's millisecond solves) is simpler and
//! cheaper than maintaining an intrusive list — and it only runs when a
//! shard is full.

use crate::sync::relock;
use hems_obs::{Counter, Registry};
use std::collections::HashMap;
use std::sync::Mutex;

/// Number of independently locked shards (a power of two).
pub const SHARDS: usize = 8;

#[derive(Debug)]
struct Shard {
    entries: HashMap<u64, (u64, String)>,
    clock: u64,
}

/// The sharded LRU cache of rendered plan results.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl PlanCache {
    /// A cache holding at most ~`capacity` entries total (rounded up to a
    /// multiple of [`SHARDS`]; a zero capacity disables caching). Hit,
    /// miss, and eviction counters stay detached (counted but invisible);
    /// use [`PlanCache::with_registry`] to surface them in a snapshot.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS),
            hits: Counter::detached(),
            misses: Counter::detached(),
            evictions: Counter::detached(),
        }
    }

    /// Like [`PlanCache::new`], but registers `serve.cache.hits`,
    /// `serve.cache.misses`, and `serve.cache.evictions` counters in
    /// `registry` so cache behaviour shows up in `metrics` snapshots.
    pub fn with_registry(capacity: usize, registry: &Registry) -> PlanCache {
        let mut cache = PlanCache::new(capacity);
        cache.hits = registry.counter("serve.cache.hits");
        cache.misses = registry.counter("serve.cache.misses");
        cache.evictions = registry.counter("serve.cache.evictions");
        cache
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // Top bits: the FNV avalanche is strongest there, and the low bits
        // already index the HashMap buckets inside the shard. The modulo
        // keeps the index in 0..SHARDS by construction.
        // hems-lint: allow(index, reason = "index is key % SHARDS, always in range")
        &self.shards[(key >> 61) as usize % SHARDS]
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<String> {
        let mut shard = relock(self.shard(key));
        shard.clock += 1;
        let clock = shard.clock;
        let value = shard.entries.get_mut(&key).map(|entry| {
            entry.0 = clock;
            entry.1.clone()
        });
        match value {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        value
    }

    /// Inserts (or refreshes) a rendered result, evicting the shard's
    /// least-recently-used entry when full.
    pub fn insert(&self, key: u64, value: String) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = relock(self.shard(key));
        shard.clock += 1;
        let clock = shard.clock;
        if shard.entries.len() >= self.per_shard_capacity && !shard.entries.contains_key(&key) {
            if let Some((&oldest, _)) = shard.entries.iter().min_by_key(|(_, (tick, _))| *tick) {
                shard.entries.remove(&oldest);
                self.evictions.inc();
            }
        }
        shard.entries.insert(key, (clock, value));
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| relock(s).entries.len()).sum()
    }

    /// `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_insert_hits_and_misses_are_none() {
        let cache = PlanCache::new(64);
        assert_eq!(cache.get(1), None);
        cache.insert(1, "plan-a".to_string());
        assert_eq!(cache.get(1).as_deref(), Some("plan-a"));
        assert_eq!(cache.get(2), None);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn insert_refreshes_an_existing_key() {
        let cache = PlanCache::new(64);
        cache.insert(1, "old".to_string());
        cache.insert(1, "new".to_string());
        assert_eq!(cache.get(1).as_deref(), Some("new"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        // Capacity 8 → 1 entry per shard; three keys in the same shard.
        let cache = PlanCache::new(8);
        let in_shard = |i: u64| i << 8; // top bits zero → shard 0
        cache.insert(in_shard(1), "a".to_string());
        cache.insert(in_shard(2), "b".to_string());
        assert_eq!(cache.get(in_shard(1)), None, "a was evicted");
        assert_eq!(cache.get(in_shard(2)).as_deref(), Some("b"));
        // A 1-entry shard always evicts its occupant for the newcomer.
        cache.insert(in_shard(3), "c".to_string());
        assert_eq!(cache.get(in_shard(2)), None);
        assert_eq!(cache.get(in_shard(3)).as_deref(), Some("c"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert(1, "a".to_string());
        assert_eq!(cache.get(1), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn registry_counters_track_hits_misses_and_evictions() {
        let registry = Registry::new();
        let cache = PlanCache::with_registry(8, &registry);
        let in_shard = |i: u64| i << 8; // top bits zero → shard 0
        assert_eq!(cache.get(in_shard(1)), None); // miss
        cache.insert(in_shard(1), "a".to_string());
        assert!(cache.get(in_shard(1)).is_some()); // hit
        cache.insert(in_shard(2), "b".to_string()); // 1-entry shard: evicts a
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.cache.hits"), Some(1));
        assert_eq!(snap.counter("serve.cache.misses"), Some(1));
        assert_eq!(snap.counter("serve.cache.evictions"), Some(1));
    }

    #[test]
    fn keys_spread_across_shards() {
        let cache = PlanCache::new(SHARDS * 4);
        for i in 0..64u64 {
            // Vary the top bits so shards are exercised.
            cache.insert(i << 58, format!("v{i}"));
        }
        assert!(cache.len() > SHARDS, "multiple shards hold entries");
    }
}
