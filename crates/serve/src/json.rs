//! Minimal hand-rolled JSON encode/decode for the wire protocol.
//!
//! The offline-build rule (no `serde`, no crates.io) means the service
//! carries its own JSON. This module is the smallest correct slice the
//! newline-delimited protocol needs: a recursive-descent parser into a
//! [`Value`] tree and a compact single-line encoder. Design points:
//!
//! * **Objects keep insertion order** in a `Vec<(String, Value)>` — the
//!   protocol never needs keyed maps and ordered pairs render
//!   deterministically (responses are byte-stable for identical inputs,
//!   which the plan cache exploits by caching rendered strings).
//! * **Numbers are `f64`** — every quantity in the system is; integers
//!   round-trip exactly up to 2⁵³ and the encoder prints them without a
//!   decimal point. Non-finite numbers encode as `null` (JSON has no NaN).
//! * **Depth-limited parsing** (64 levels) so a hostile request cannot
//!   overflow the stack; the server separately bounds line length.

use std::fmt;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Renders the value as compact single-line JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) if !x.is_finite() => out.push_str("null"),
            Value::Num(x) => {
                // Integers in f64 range print without a decimal point.
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document, requiring it to span the whole input
/// (trailing whitespace allowed).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, nesting beyond 64 levels,
/// or trailing non-whitespace.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", expected as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Decode surrogate pairs; lone surrogates are
                            // replaced rather than rejected.
                            let ch = if (0xd800..0xdc00).contains(&unit) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(unit) - 0xd800) << 10)
                                        + (u32::from(low) - 0xdc00);
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(u32::from(unit)).unwrap_or('\u{fffd}')
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction; report rather
                    // than crash if that ever stops holding).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let Some(ch) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let unit = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ASCII in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let text = r#"{"id":7,"q":"mep","scenario":{"irradiance":0.5,"flags":[true,false,null],"label":"g=\"half\"\n"}}"#;
        let value = parse(text).unwrap();
        assert_eq!(
            value.get("q").and_then(Value::as_str),
            Some("mep"),
            "string field"
        );
        assert_eq!(
            value
                .get("scenario")
                .and_then(|s| s.get("irradiance"))
                .and_then(Value::as_f64),
            Some(0.5)
        );
        // render → parse is identity on the tree.
        assert_eq!(parse(&value.render()).unwrap(), value);
    }

    #[test]
    fn numbers_parse_in_all_standard_forms() {
        for (text, expected) in [
            ("0", 0.0),
            ("-12", -12.0),
            ("3.25", 3.25),
            ("1e-3", 1e-3),
            ("6.02E23", 6.02e23),
        ] {
            assert_eq!(parse(text).unwrap(), Value::Num(expected), "{text}");
        }
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Value::Num(42.0).render(), "42");
        assert_eq!(Value::Num(0.5).render(), "0.5");
        assert_eq!(Value::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let value = parse(r#""aébA 😀 \\n""#).unwrap();
        assert_eq!(value, Value::Str("aébA 😀 \\n".to_string()));
        let rendered = Value::Str("tab\there\"q\"".to_string()).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some("tab\there\"q\""));
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nul",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn object_lookup_is_first_match_in_order() {
        let value = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(value.get("a").and_then(Value::as_f64), Some(1.0));
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn torn_frames_error_at_every_split_and_never_panic() {
        // The chaos-proxy fault model: a frame torn mid-byte arrives as a
        // prefix (tear at the boundary) or as a prefix with garbage where
        // the rest should be (tear plus the next frame's bytes). The
        // parser must reject every such input with an error — never panic
        // — and, being stateless per line, must still parse the next
        // well-formed frame afterwards.
        let line = crate::proto::Request::render_line(
            77,
            crate::proto::QueryKind::Sprint,
            Some(&{
                let mut s = crate::proto::ScenarioSpec::baseline(0.42);
                s.deadline = Some(0.02);
                s
            }),
        );
        // Every strict prefix of a well-formed object is malformed.
        for split in 0..line.len() {
            let torn = &line[..split];
            if torn.is_char_boundary(split) {
                assert!(parse(torn).is_err(), "prefix {split} parsed: {torn:?}");
            }
            assert!(parse(&line).is_ok(), "intact frame must still parse");
        }
        // Seeded random tears, splices, and bit flips now live in the
        // conformance plane: the `json_frames` oracle in
        // `crates/conformance` generates them at fuzz scale, with
        // shrinking and replayable repro seeds.
    }
}
