//! Poison-recovering lock helpers shared by the service plane.
//!
//! A panic while holding one of this crate's mutexes poisons it; the
//! default `lock().unwrap()` would then cascade that one fault into every
//! other thread touching the lock. The state guarded here — streams,
//! queues of requests, counters, cache shards — stays structurally valid
//! across an unwind, so recovery is always safe: take the guard back and
//! keep serving.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
pub(crate) fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}
