//! A retrying client: bounded exponential backoff, deterministic jitter,
//! and idempotent re-submission.
//!
//! The server's failure answers are all *safe to retry* for plan queries:
//! plan queries are pure functions of their scenario, so resubmitting the
//! identical request cannot double-apply anything. The client leans on
//! that — it correlates request and response by the scenario's canonical
//! FNV-1a cache key (rendered as a hex string, since a 64-bit key does not
//! fit losslessly in a JSON number) so a resubmission is byte-identical to
//! the original and lands on the same server-side cache entry.
//!
//! Retry triggers: connection failures, torn/short responses, `overloaded`
//! (admission control says back off), and `error` responses flagged
//! `retryable` (a worker fault, not a verdict). A plain `error` is
//! terminal — the request itself is unanswerable and retrying cannot help.
//!
//! Backoff between attempts doubles from [`RetryPolicy::base_delay`] up to
//! [`RetryPolicy::max_delay`], scaled by a deterministic jitter factor in
//! `[0.5, 1.0]` drawn from the seeded xorshift RNG — the same seed always
//! produces the same retry schedule, which keeps chaos campaigns
//! reproducible.

use crate::json::{parse, Value};
use crate::proto::{QueryKind, Request, ScenarioSpec};
use hems_units::XorShiftRng;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

/// How a [`Client`] retries: attempt budget, backoff shape, deadlines.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Most attempts per request (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Per-attempt socket read/write deadline.
    pub request_timeout: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            request_timeout: Duration::from_secs(5),
            jitter_seed: 1,
        }
    }
}

impl RetryPolicy {
    /// The backoff before attempt `attempt + 1` (zero-based `attempt`
    /// counts completed tries), without jitter: `base * 2^(attempt-1)`
    /// capped at `max_delay`.
    fn backoff(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        let raw = self
            .base_delay
            .saturating_mul(1u32.checked_shl(doublings).unwrap_or(u32::MAX));
        raw.min(self.max_delay)
    }
}

/// A terminal client-side failure (retries exhausted or pointless).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The server understood the request and said it is unanswerable;
    /// retrying the identical request cannot succeed.
    Rejected(String),
    /// Every attempt failed with a retryable condition.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// The last retryable failure, for diagnostics.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected(message) => write!(f, "request rejected: {message}"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A successfully answered plan query.
#[derive(Debug, Clone)]
pub struct PlanAnswer {
    /// The rendered plan (the response's `result` object).
    pub result: Value,
    /// Whether the server answered from its plan cache.
    pub cached: bool,
    /// Attempts it took (1 = first try).
    pub attempts: u32,
}

/// A reconnecting, retrying connection to a `hems-serve` endpoint.
///
/// One request is in flight at a time; responses are matched to requests
/// by id, and any protocol confusion (torn frame, id mismatch, short read)
/// drops the connection and retries on a fresh one.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    policy: RetryPolicy,
    rng: XorShiftRng,
    conn: Option<BufReader<TcpStream>>,
    retries: u64,
}

impl Client {
    /// A client for `addr`. Connects lazily on the first request.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> Client {
        let rng = XorShiftRng::seed_from_u64(policy.jitter_seed);
        Client {
            addr,
            policy,
            rng,
            conn: None,
            retries: 0,
        }
    }

    /// Total retry attempts performed over the client's lifetime (not
    /// counting each request's first try).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Asks a plan query, retrying per the policy.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] when the server terminally refuses the
    /// request; [`ClientError::Exhausted`] when the attempt budget runs
    /// out on retryable failures.
    pub fn plan(
        &mut self,
        kind: QueryKind,
        spec: &ScenarioSpec,
    ) -> Result<PlanAnswer, ClientError> {
        // The idempotency key: the same canonical key the server caches
        // under, so a resubmitted request is byte-identical and a repeat
        // answer comes straight from cache.
        let id = match spec.build() {
            Ok((config, policy)) => {
                Value::str(format!("{:016x}", spec.cache_key(kind, &config, &policy)))
            }
            Err(message) => return Err(ClientError::Rejected(message)),
        };
        let line = Request::render_line_with_id(&id, kind, Some(spec));
        let mut last = String::new();
        for attempt in 1..=self.policy.max_attempts.max(1) {
            if attempt > 1 {
                self.retries += 1;
                let jitter = 0.5 + 0.5 * self.rng.next_f64();
                thread::sleep(self.policy.backoff(attempt).mul_f64(jitter));
            }
            match self.attempt(&line, &id) {
                Ok(Outcome::Answered(answer)) => {
                    return Ok(PlanAnswer {
                        result: answer.result,
                        cached: answer.cached,
                        attempts: attempt,
                    })
                }
                Ok(Outcome::Terminal(message)) => return Err(ClientError::Rejected(message)),
                Ok(Outcome::Retry(message)) => last = message,
                Err(e) => {
                    // IO trouble: the connection is suspect, rebuild it.
                    self.conn = None;
                    last = e.to_string();
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.policy.max_attempts.max(1),
            last,
        })
    }

    /// Fetches the server's stats snapshot (no retries beyond the policy).
    ///
    /// # Errors
    ///
    /// Same contract as [`Client::plan`].
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        let id = Value::str("stats");
        let line = Request::render_line_with_id(&id, QueryKind::Stats, None);
        let mut last = String::new();
        for attempt in 1..=self.policy.max_attempts.max(1) {
            if attempt > 1 {
                self.retries += 1;
                let jitter = 0.5 + 0.5 * self.rng.next_f64();
                thread::sleep(self.policy.backoff(attempt).mul_f64(jitter));
            }
            match self.attempt(&line, &id) {
                Ok(Outcome::Answered(answer)) => return Ok(answer.result),
                Ok(Outcome::Terminal(message)) => return Err(ClientError::Rejected(message)),
                Ok(Outcome::Retry(message)) => last = message,
                Err(e) => {
                    self.conn = None;
                    last = e.to_string();
                }
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.policy.max_attempts.max(1),
            last,
        })
    }

    fn connection(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            let _ = stream.set_nodelay(true);
            stream.set_read_timeout(Some(self.policy.request_timeout))?;
            stream.set_write_timeout(Some(self.policy.request_timeout))?;
            self.conn = Some(BufReader::new(stream));
        }
        self.conn
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no connection"))
    }

    /// One wire round trip. `Err` means the connection is unusable.
    fn attempt(&mut self, line: &str, want_id: &Value) -> io::Result<Outcome> {
        let reader = self.connection()?;
        {
            let stream = reader.get_mut();
            stream.write_all(line.as_bytes())?;
            stream.write_all(b"\n")?;
            stream.flush()?;
        }
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let value = parse(&response).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("torn response: {e}"))
        })?;
        if value.get("id") != Some(want_id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response id does not match the in-flight request",
            ));
        }
        let status = value.get("status").and_then(Value::as_str).unwrap_or("");
        let message = || {
            value
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unexplained failure")
                .to_string()
        };
        match status {
            "ok" => Ok(Outcome::Answered(Answered {
                result: value.get("result").cloned().unwrap_or(Value::Null),
                cached: value
                    .get("cached")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
            })),
            "overloaded" => Ok(Outcome::Retry(format!("overloaded: {}", message()))),
            "error" => {
                let retryable = value
                    .get("retryable")
                    .and_then(Value::as_bool)
                    .unwrap_or(false);
                if retryable {
                    Ok(Outcome::Retry(message()))
                } else {
                    Ok(Outcome::Terminal(message()))
                }
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown response status '{other}'"),
            )),
        }
    }
}

struct Answered {
    result: Value,
    cached: bool,
}

enum Outcome {
    Answered(Answered),
    Terminal(String),
    Retry(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve, ServeConfig};

    fn test_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(20),
            request_timeout: Duration::from_secs(5),
            jitter_seed: 42,
        }
    }

    fn small_config() -> ServeConfig {
        ServeConfig {
            threads: Some(2),
            cache_capacity: 64,
            max_queue: 64,
            max_batch: 8,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(70),
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(40));
        assert_eq!(policy.backoff(4), Duration::from_millis(70), "capped");
        assert_eq!(policy.backoff(30), Duration::from_millis(70), "no overflow");
    }

    #[test]
    fn jitter_schedule_is_deterministic_per_seed() {
        let mut a = XorShiftRng::seed_from_u64(7);
        let mut b = XorShiftRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn plan_round_trips_and_repeats_hit_the_cache() {
        let mut handle = serve("127.0.0.1:0", small_config()).expect("bind");
        let mut client = Client::new(handle.addr(), test_policy());
        let spec = ScenarioSpec::baseline(0.5);
        let first = client.plan(QueryKind::Mep, &spec).expect("first answer");
        assert!(!first.cached);
        assert_eq!(first.attempts, 1);
        let second = client.plan(QueryKind::Mep, &spec).expect("second answer");
        assert!(second.cached, "identical resubmission lands on the cache");
        assert_eq!(first.result.render(), second.result.render());
        assert_eq!(client.retries(), 0);
        handle.shutdown();
    }

    #[test]
    fn reconnects_after_the_server_drops_the_connection() {
        let mut handle = serve("127.0.0.1:0", small_config()).expect("bind");
        let mut client = Client::new(handle.addr(), test_policy());
        let spec = ScenarioSpec::baseline(0.4);
        client.plan(QueryKind::Mep, &spec).expect("warm up");
        // Kill the client's current socket behind its back; the next call
        // sees EOF/reset and must transparently reconnect and retry.
        if let Some(reader) = client.conn.take() {
            drop(reader);
        }
        let answer = client.plan(QueryKind::Mep, &spec).expect("after reconnect");
        assert!(answer.cached);
        handle.shutdown();
    }

    #[test]
    fn invalid_scenarios_are_rejected_without_retries() {
        let mut handle = serve("127.0.0.1:0", small_config()).expect("bind");
        let mut client = Client::new(handle.addr(), test_policy());
        let spec = ScenarioSpec::baseline(3.0); // out of range: build() fails
        match client.plan(QueryKind::Mep, &spec) {
            Err(ClientError::Rejected(_)) => {}
            other => panic!("expected Rejected, got {other:?}"),
        }
        assert_eq!(client.retries(), 0, "terminal errors burn no retries");
        handle.shutdown();
    }

    #[test]
    fn exhaustion_reports_the_last_failure() {
        // Nothing listens on this address (bound then dropped).
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr")
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            ..test_policy()
        };
        let mut client = Client::new(addr, policy);
        match client.plan(QueryKind::Mep, &ScenarioSpec::baseline(0.5)) {
            Err(ClientError::Exhausted { attempts: 3, .. }) => {}
            other => panic!("expected Exhausted, got {other:?}"),
        }
        assert_eq!(client.retries(), 2);
    }
}
