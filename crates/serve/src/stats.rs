//! Service counters and latency percentiles.
//!
//! Counters are lock-free atomics bumped on the request path; latencies
//! land in a fixed-size ring (last [`LATENCY_WINDOW`] samples) so the
//! percentile view tracks *recent* behaviour instead of averaging over the
//! process lifetime. Percentile math reuses `hems_bench::harness` — the
//! same interpolated-percentile code the offline benches report with, so
//! the `stats` query and `BENCH_serve.json` are directly comparable.

use crate::json::Value;
use crate::sync::relock;
use hems_bench::harness::percentile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Latency samples kept for the percentile window.
pub const LATENCY_WINDOW: usize = 4096;

#[derive(Debug)]
struct LatencyRing {
    samples_ns: Vec<f64>,
    next: usize,
    filled: bool,
}

/// Counters plus a recent-latency window.
#[derive(Debug)]
pub struct ServeStats {
    /// Requests parsed (all kinds, including refused ones).
    pub requests: AtomicU64,
    /// Plan-cache hits.
    pub hits: AtomicU64,
    /// Plan-cache misses (accepted into the batch queue).
    pub misses: AtomicU64,
    /// Requests refused by admission control.
    pub overloaded: AtomicU64,
    /// Requests answered with `status: error`.
    pub errors: AtomicU64,
    /// Worker-pool panics answered with a retryable degraded response.
    pub faults: AtomicU64,
    /// Connections reaped by the read deadline (idle/slow-loris).
    pub reaped: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Jobs executed across all batches (after in-batch dedup).
    pub batched_jobs: AtomicU64,
    /// Largest batch observed.
    pub max_batch: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

impl ServeStats {
    /// Fresh zeroed stats.
    pub fn new() -> ServeStats {
        ServeStats {
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_jobs: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing {
                samples_ns: Vec::with_capacity(LATENCY_WINDOW),
                next: 0,
                filled: false,
            }),
        }
    }

    /// Records one batch's size (count + max).
    pub fn record_batch(&self, jobs: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_jobs.fetch_add(jobs as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(jobs as u64, Ordering::Relaxed);
    }

    /// Records one request's service latency (receipt → response write).
    pub fn record_latency_ns(&self, ns: f64) {
        let mut ring = relock(&self.latencies);
        if ring.samples_ns.len() < LATENCY_WINDOW {
            ring.samples_ns.push(ns);
        } else {
            let slot = ring.next;
            if let Some(sample) = ring.samples_ns.get_mut(slot) {
                *sample = ns;
            }
            ring.filled = true;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// The recent-latency percentiles `(p50, p95)` in nanoseconds, `None`
    /// with no samples yet.
    pub fn latency_percentiles(&self) -> Option<(f64, f64)> {
        let ring = relock(&self.latencies);
        if ring.samples_ns.is_empty() {
            return None;
        }
        let mut sorted = ring.samples_ns.clone();
        sorted.sort_by(f64::total_cmp);
        Some((percentile(&sorted, 50.0), percentile(&sorted, 95.0)))
    }

    /// The stats snapshot served to a `stats` query. `queue_depth` and
    /// `cache_entries` are sampled by the caller (they live outside this
    /// struct).
    pub fn snapshot(&self, queue_depth: usize, cache_entries: usize, workers: usize) -> Value {
        let load = |c: &AtomicU64| Value::Num(c.load(Ordering::Relaxed) as f64);
        let (p50, p95) = self
            .latency_percentiles()
            .map_or((Value::Null, Value::Null), |(p50, p95)| {
                (Value::Num(p50), Value::Num(p95))
            });
        Value::obj(vec![
            ("requests", load(&self.requests)),
            ("hits", load(&self.hits)),
            ("misses", load(&self.misses)),
            ("overloaded", load(&self.overloaded)),
            ("errors", load(&self.errors)),
            ("faults", load(&self.faults)),
            ("reaped", load(&self.reaped)),
            ("batches", load(&self.batches)),
            ("batched_jobs", load(&self.batched_jobs)),
            ("max_batch", load(&self.max_batch)),
            ("queue_depth", Value::Num(queue_depth as f64)),
            ("cache_entries", Value::Num(cache_entries as f64)),
            ("workers", Value::Num(workers as f64)),
            ("latency_p50_ns", p50),
            ("latency_p95_ns", p95),
        ])
    }
}

impl Default for ServeStats {
    fn default() -> ServeStats {
        ServeStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_recorded_latencies() {
        let stats = ServeStats::new();
        assert_eq!(stats.latency_percentiles(), None);
        for i in 1..=100 {
            stats.record_latency_ns(i as f64 * 1000.0);
        }
        let (p50, p95) = stats.latency_percentiles().unwrap();
        assert!((p50 - 50_500.0).abs() < 1_000.0, "p50 = {p50}");
        assert!(p95 > 90_000.0 && p95 <= 100_000.0, "p95 = {p95}");
    }

    #[test]
    fn ring_overwrites_oldest_beyond_the_window() {
        let stats = ServeStats::new();
        for _ in 0..LATENCY_WINDOW {
            stats.record_latency_ns(1.0);
        }
        for _ in 0..LATENCY_WINDOW / 2 {
            stats.record_latency_ns(1_000_000.0);
        }
        let (p50, _) = stats.latency_percentiles().unwrap();
        assert!(p50 > 1.0, "newer samples displaced old ones: p50 = {p50}");
    }

    #[test]
    fn snapshot_renders_every_counter() {
        let stats = ServeStats::new();
        stats.requests.fetch_add(3, Ordering::Relaxed);
        stats.record_batch(5);
        stats.record_latency_ns(42.0);
        let snap = stats.snapshot(2, 7, 4);
        assert_eq!(snap.get("requests").and_then(Value::as_f64), Some(3.0));
        assert_eq!(snap.get("max_batch").and_then(Value::as_f64), Some(5.0));
        assert_eq!(snap.get("queue_depth").and_then(Value::as_f64), Some(2.0));
        assert_eq!(snap.get("cache_entries").and_then(Value::as_f64), Some(7.0));
        assert_eq!(snap.get("workers").and_then(Value::as_f64), Some(4.0));
        assert!(snap.get("latency_p50_ns").unwrap().as_f64().is_some());
    }
}
