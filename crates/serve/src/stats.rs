//! Service counters and latency percentiles, on the shared telemetry
//! core.
//!
//! Every number here is a `hems_obs` metric registered in a per-server
//! [`Registry`] (named `serve.*`), so the same values power three views:
//! the legacy `stats` query (flat JSON, shape unchanged), the `metrics`
//! query (full registry snapshot, merged with the process-global
//! registry), and in-process assertions in tests. The registry is
//! per-server — not global — because test suites run several servers in
//! one process and assert exact per-server counts.
//!
//! Latency percentiles come from the `serve.latency_ns` histogram
//! (log-spaced buckets, ~19 % worst-case relative error) instead of the
//! old sort-the-window ring: recording is lock-free and constant-time,
//! and the histogram composes with snapshot diffing for interval rates.
//! A parity test below keeps the histogram quantiles honest against the
//! exact sort-based percentile the offline benches report with.

use crate::json::Value;
use hems_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Counters plus the service-latency histogram, all backed by a
/// per-server [`Registry`].
#[derive(Debug, Clone)]
pub struct ServeStats {
    registry: Arc<Registry>,
    /// Requests parsed (all kinds, including refused ones).
    pub requests: Counter,
    /// Plan-cache hits.
    pub hits: Counter,
    /// Plan-cache misses (accepted into the batch queue).
    pub misses: Counter,
    /// Requests refused by admission control.
    pub overloaded: Counter,
    /// Requests answered with `status: error`.
    pub errors: Counter,
    /// Worker-pool panics answered with a retryable degraded response.
    pub faults: Counter,
    /// Connections reaped by the read deadline (idle/slow-loris).
    pub reaped: Counter,
    /// Batches executed.
    pub batches: Counter,
    /// Jobs executed across all batches (after in-batch dedup).
    pub batched_jobs: Counter,
    /// Largest batch observed.
    pub max_batch: Gauge,
    latency: Histogram,
}

impl ServeStats {
    /// Fresh zeroed stats over a fresh per-server registry.
    pub fn new() -> ServeStats {
        let registry = Arc::new(Registry::new());
        ServeStats {
            requests: registry.counter("serve.requests"),
            hits: registry.counter("serve.hits"),
            misses: registry.counter("serve.misses"),
            overloaded: registry.counter("serve.overloaded"),
            errors: registry.counter("serve.errors"),
            faults: registry.counter("serve.faults"),
            reaped: registry.counter("serve.reaped"),
            batches: registry.counter("serve.batches"),
            batched_jobs: registry.counter("serve.batched_jobs"),
            max_batch: registry.gauge("serve.max_batch"),
            latency: registry.histogram("serve.latency_ns"),
            registry,
        }
    }

    /// The per-server registry backing these stats — the `metrics` query
    /// snapshots it, and the plan cache registers its counters in it.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one batch's size (count + max).
    pub fn record_batch(&self, jobs: usize) {
        self.batches.inc();
        self.batched_jobs.add(jobs as u64);
        self.max_batch.set_max(jobs as i64);
    }

    /// Records one request's service latency (receipt → response write).
    pub fn record_latency_ns(&self, ns: f64) {
        self.latency.record(ns.max(0.0) as u64);
    }

    /// The latency percentiles `(p50, p95)` in nanoseconds from the
    /// histogram, `None` with no samples yet.
    pub fn latency_percentiles(&self) -> Option<(f64, f64)> {
        let snap = self.latency.snapshot();
        if snap.count == 0 {
            return None;
        }
        Some((snap.quantile(0.50), snap.quantile(0.95)))
    }

    /// The stats snapshot served to a `stats` query. `queue_depth` and
    /// `cache_entries` are sampled by the caller (they live outside this
    /// struct).
    pub fn snapshot(&self, queue_depth: usize, cache_entries: usize, workers: usize) -> Value {
        let load = |c: &Counter| Value::Num(c.total() as f64);
        let (p50, p95) = self
            .latency_percentiles()
            .map_or((Value::Null, Value::Null), |(p50, p95)| {
                (Value::Num(p50), Value::Num(p95))
            });
        Value::obj(vec![
            ("requests", load(&self.requests)),
            ("hits", load(&self.hits)),
            ("misses", load(&self.misses)),
            ("overloaded", load(&self.overloaded)),
            ("errors", load(&self.errors)),
            ("faults", load(&self.faults)),
            ("reaped", load(&self.reaped)),
            ("batches", load(&self.batches)),
            ("batched_jobs", load(&self.batched_jobs)),
            ("max_batch", Value::Num(self.max_batch.value() as f64)),
            ("queue_depth", Value::Num(queue_depth as f64)),
            ("cache_entries", Value::Num(cache_entries as f64)),
            ("workers", Value::Num(workers as f64)),
            ("latency_p50_ns", p50),
            ("latency_p95_ns", p95),
        ])
    }
}

impl Default for ServeStats {
    fn default() -> ServeStats {
        ServeStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hems_bench::harness::percentile;

    #[test]
    fn percentiles_track_recorded_latencies() {
        let stats = ServeStats::new();
        assert_eq!(stats.latency_percentiles(), None);
        for i in 1..=100 {
            stats.record_latency_ns(i as f64 * 1000.0);
        }
        let (p50, p95) = stats.latency_percentiles().unwrap();
        assert!((p50 - 50_500.0).abs() < 1_000.0, "p50 = {p50}");
        assert!(p95 > 90_000.0 && p95 <= 100_000.0, "p95 = {p95}");
    }

    #[test]
    fn histogram_percentiles_match_the_sorted_reference() {
        // Parity with the pre-histogram implementation: the old path
        // sorted the samples and called `hems_bench::harness::percentile`.
        // The histogram answers from log-spaced buckets (ratio 2^(1/4)),
        // so it must agree within one bucket's relative width (~19 %).
        let stats = ServeStats::new();
        let mut samples = Vec::new();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..4096 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let ns = 200.0 + (state % 2_000_000) as f64;
            samples.push(ns);
            stats.record_latency_ns(ns);
        }
        samples.sort_by(f64::total_cmp);
        let (p50, p95) = stats.latency_percentiles().unwrap();
        let exact50 = percentile(&samples, 50.0);
        let exact95 = percentile(&samples, 95.0);
        assert!(
            (p50 - exact50).abs() <= 0.19 * exact50,
            "p50 = {p50}, exact = {exact50}"
        );
        assert!(
            (p95 - exact95).abs() <= 0.19 * exact95,
            "p95 = {p95}, exact = {exact95}"
        );
    }

    #[test]
    fn latency_is_a_lifetime_histogram_not_a_window() {
        // The old ring forgot samples past LATENCY_WINDOW; the histogram
        // keeps the full distribution, so early outliers stay visible.
        let stats = ServeStats::new();
        stats.record_latency_ns(1_000_000_000.0);
        for _ in 0..8192 {
            stats.record_latency_ns(1_000.0);
        }
        let snap = stats.registry().snapshot();
        let hist = snap.histogram("serve.latency_ns").unwrap();
        assert_eq!(hist.count, 8193);
        assert!(hist.max >= 1_000_000_000, "outlier retained: {}", hist.max);
    }

    #[test]
    fn snapshot_renders_every_counter() {
        let stats = ServeStats::new();
        stats.requests.add(3);
        stats.record_batch(5);
        stats.record_latency_ns(42.0);
        let snap = stats.snapshot(2, 7, 4);
        assert_eq!(snap.get("requests").and_then(Value::as_f64), Some(3.0));
        assert_eq!(snap.get("max_batch").and_then(Value::as_f64), Some(5.0));
        assert_eq!(snap.get("queue_depth").and_then(Value::as_f64), Some(2.0));
        assert_eq!(snap.get("cache_entries").and_then(Value::as_f64), Some(7.0));
        assert_eq!(snap.get("workers").and_then(Value::as_f64), Some(4.0));
        assert!(snap.get("latency_p50_ns").unwrap().as_f64().is_some());
    }

    #[test]
    fn two_servers_have_independent_registries() {
        let a = ServeStats::new();
        let b = ServeStats::new();
        a.requests.inc();
        assert_eq!(a.requests.total(), 1);
        assert_eq!(b.requests.total(), 0);
    }
}
