//! `hems-serve`: a batched, cached scenario-planning service.
//!
//! The offline story so far answers "what should this node do?" by
//! rebuilding devices and re-running solvers per question. This crate
//! turns that into a long-lived service: a TCP endpoint speaking
//! newline-delimited JSON where a fleet-management client names a
//! scenario (irradiance, storage capacitance, regulator topology, control
//! policy, optional deadline) and a query kind — the holistic optimal
//! operating point, the system MEP, the bypass decision, a sprint plan,
//! or a full transient-sweep summary — and the server
//!
//! 1. canonicalizes the request into a 64-bit cache key
//!    (`hems_core::cachekey`),
//! 2. serves repeats from a sharded LRU plan cache ([`cache`]), and
//! 3. micro-batches concurrent misses across a shared worker pool
//!    ([`server`], `hems_sim::WorkerPool`), so N clients asking related
//!    questions cost one fan-out, not N solver runs.
//!
//! Admission control keeps the service honest under load: the miss queue
//! is bounded and a full queue answers `overloaded` instead of queueing
//! without limit. A `stats` query exposes counters and latency
//! percentiles; a `metrics` query returns the full `hems_obs` telemetry
//! snapshot (the process-global sweep/pool/LUT series merged with this
//! server's `serve.*` series — see `DESIGN.md` §12); `shutdown` drains
//! in-flight batches before stopping.
//!
//! Everything is `std`-only — the wire format lives in [`json`] (a small
//! recursive-descent parser and compact encoder), the protocol in
//! [`proto`], query execution in [`planner`].
//!
//! ## Quick start
//!
//! ```no_run
//! use hems_serve::{serve, ServeConfig};
//! let mut handle = serve("127.0.0.1:7878", ServeConfig::default()).unwrap();
//! println!("listening on {}", handle.addr());
//! handle.wait(); // until a wire `shutdown` query
//! ```
//!
//! See `examples/serve_client.rs` at the workspace root for a loopback
//! client exercising every query kind.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod json;
pub mod planner;
pub mod proto;
pub mod server;
pub mod stats;
mod sync;
pub mod wire;

pub use cache::PlanCache;
pub use client::{Client, ClientError, PlanAnswer, RetryPolicy};
pub use json::Value;
pub use proto::{QueryKind, Request, ScenarioSpec};
pub use server::{serve, ServeConfig, ServerHandle};
pub use stats::ServeStats;
