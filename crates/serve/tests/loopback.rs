//! End-to-end loopback tests: concurrent clients, admission control, and
//! graceful shutdown against a real TCP server.
//!
//! These are the acceptance tests for the service's three promises:
//!
//! 1. **Throughput without corruption** — 4 concurrent clients issuing
//!    1200+ pipelined mixed queries get exactly one well-formed response
//!    per request (correlated by id), with zero errors and a busy cache.
//! 2. **Admission control** — a saturated miss queue refuses with
//!    explicit `overloaded` responses instead of hanging or dropping.
//! 3. **Graceful shutdown** — every request accepted before a `shutdown`
//!    is answered before the server exits.

use hems_serve::json::{parse, Value};
use hems_serve::proto::{PolicySpec, QueryKind, Request, ScenarioSpec};
use hems_serve::{serve, ServeConfig};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Value {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "server closed mid-conversation");
    parse(&line).expect("response is JSON")
}

/// ~12 distinct scenarios spanning light levels, topologies, policies,
/// and storage sizes — enough key diversity to exercise the cache's
/// shards without making every request a miss.
fn scenario_mix() -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    // Levels where every query kind is feasible — below ~0.15 sun the
    // joint plan correctly reports infeasibility, which is its own test
    // (`planner::tests::dark_scenarios_answer_with_errors_not_panics`).
    for &g in &[1.0, 0.75, 0.5, 0.25] {
        let mut a = ScenarioSpec::baseline(g);
        a.duration = 0.005;
        specs.push(a.clone());
        let mut b = a.clone();
        b.capacitance = Some(6.6e-5);
        specs.push(b);
        let mut c = a.clone();
        c.policy = PolicySpec::Duty {
            v_run: 1.0,
            v_stop: 0.8,
            vdd: 0.55,
        };
        specs.push(c);
    }
    specs
}

const KINDS: [QueryKind; 5] = [
    QueryKind::OptimalPoint,
    QueryKind::Mep,
    QueryKind::Bypass,
    QueryKind::Sprint,
    QueryKind::SweepSummary,
];

#[test]
fn four_concurrent_clients_thousand_plus_mixed_queries_no_errors() {
    let mut handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            threads: Some(4),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let specs = scenario_mix();
    let clients = 4usize;
    let per_client = 300usize;
    let chunk = 10usize;

    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let specs = specs.clone();
            std::thread::spawn(move || {
                let (mut stream, mut reader) = connect(addr);
                let mut answered = 0usize;
                for base in (0..per_client).step_by(chunk) {
                    // Pipeline a chunk, then collect its responses by id —
                    // responses legitimately arrive out of order (hits
                    // overtake batched misses).
                    let mut outstanding = HashSet::new();
                    for i in base..(base + chunk).min(per_client) {
                        let id = (client * 1_000_000 + i) as i64;
                        let spec = &specs[(client * 7 + i) % specs.len()];
                        let mut spec = spec.clone();
                        if KINDS[i % KINDS.len()] == QueryKind::Sprint {
                            spec.deadline = Some(0.004);
                        }
                        let line = Request::render_line(id, KINDS[i % KINDS.len()], Some(&spec));
                        stream
                            .write_all(format!("{line}\n").as_bytes())
                            .expect("write");
                        outstanding.insert(id);
                    }
                    while !outstanding.is_empty() {
                        let response = read_response(&mut reader);
                        let id = response
                            .get("id")
                            .and_then(Value::as_f64)
                            .expect("response carries the id")
                            as i64;
                        assert!(outstanding.remove(&id), "unexpected or duplicate id {id}");
                        assert_eq!(
                            response.get("status").and_then(Value::as_str),
                            Some("ok"),
                            "request {id} failed: {response:?}"
                        );
                        assert!(
                            response.get("result").is_some(),
                            "ok response without a result"
                        );
                        answered += 1;
                    }
                }
                answered
            })
        })
        .collect();

    let total: usize = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .sum();
    assert_eq!(total, clients * per_client);

    // The mix repeats scenarios across clients, so the cache must have
    // served a large share of the load.
    let stats = handle.stats_snapshot();
    let hits = stats.get("hits").and_then(Value::as_f64).unwrap();
    let misses = stats.get("misses").and_then(Value::as_f64).unwrap();
    assert!(hits > 0.0, "repeated queries never hit the cache");
    assert!(
        hits + misses >= (clients * per_client) as f64,
        "every plan query is a hit or a miss"
    );
    assert!(
        hits > misses,
        "a 12-scenario x 5-kind mix under 1200 requests must be hit-dominated \
         (hits {hits}, misses {misses})"
    );
    assert_eq!(
        stats.get("errors").and_then(Value::as_f64),
        Some(0.0),
        "no request may error"
    );
    assert_eq!(
        stats.get("overloaded").and_then(Value::as_f64),
        Some(0.0),
        "the default queue must absorb this load"
    );
    handle.shutdown();
}

#[test]
fn saturated_queue_answers_overloaded_instead_of_hanging() {
    // One worker, a 2-deep queue, 2-wide batches: a burst of 16 distinct
    // slow queries outruns the drain by construction.
    let mut handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            threads: Some(1),
            cache_capacity: 64,
            max_queue: 2,
            max_batch: 2,
            max_line_bytes: 16 * 1024,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let (mut stream, mut reader) = connect(handle.addr());

    let burst = 16usize;
    for i in 0..burst {
        // Distinct irradiances → distinct keys → no dedup relief; a
        // 20 ms transient each keeps the lone worker busy.
        let mut spec = ScenarioSpec::baseline(0.90 - 0.05 * i as f64);
        spec.duration = 0.02;
        let line = Request::render_line(i as i64, QueryKind::SweepSummary, Some(&spec));
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
    }

    let mut ok = 0usize;
    let mut overloaded = 0usize;
    let mut seen = HashSet::new();
    for _ in 0..burst {
        let response = read_response(&mut reader);
        let id = response.get("id").and_then(Value::as_f64).unwrap() as i64;
        assert!(seen.insert(id), "duplicate response for {id}");
        match response.get("status").and_then(Value::as_str) {
            Some("ok") => ok += 1,
            Some("overloaded") => {
                assert!(
                    response.get("error").and_then(Value::as_str).is_some(),
                    "overloaded responses explain themselves"
                );
                overloaded += 1;
            }
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert_eq!(
        ok + overloaded,
        burst,
        "every request is answered exactly once"
    );
    assert!(
        overloaded >= 1,
        "a 16-burst against a 2-deep queue must refuse some work"
    );
    assert!(ok >= 1, "admission control must not refuse everything");
    let stats = handle.stats_snapshot();
    assert_eq!(
        stats.get("overloaded").and_then(Value::as_f64),
        Some(overloaded as f64)
    );
    handle.shutdown();
}

#[test]
fn metrics_query_returns_the_merged_telemetry_snapshot() {
    let mut handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            threads: Some(2),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let (mut stream, mut reader) = connect(handle.addr());

    // A mixed workload first: a sweep (drives the sweep/pool series on the
    // global registry), a plan miss, and the same plan again for a cache
    // hit (drives the serve.* series on the server's registry).
    let mut sweep_spec = ScenarioSpec::baseline(0.8);
    sweep_spec.duration = 0.005;
    let plan_spec = ScenarioSpec::baseline(0.6);
    let lines = [
        Request::render_line(1, QueryKind::SweepSummary, Some(&sweep_spec)),
        Request::render_line(2, QueryKind::Mep, Some(&plan_spec)),
        Request::render_line(3, QueryKind::Mep, Some(&plan_spec)),
    ];
    for line in &lines {
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let response = read_response(&mut reader);
        assert_eq!(
            response.get("status").and_then(Value::as_str),
            Some("ok"),
            "workload request failed: {response:?}"
        );
    }

    let metrics = Request::render_line(99, QueryKind::Metrics, None);
    stream
        .write_all(format!("{metrics}\n").as_bytes())
        .expect("write metrics");
    let response = read_response(&mut reader);
    assert_eq!(
        response.get("status").and_then(Value::as_str),
        Some("ok"),
        "metrics must succeed: {response:?}"
    );
    let result = response.get("result").expect("metrics result");
    assert!(
        result.get("at_ns").and_then(Value::as_f64).is_some(),
        "snapshot carries its timestamp"
    );
    let series = result.get("series").expect("series object");

    let counter = |name: &str| {
        series
            .get(name)
            .unwrap_or_else(|| panic!("series '{name}' missing"))
            .get("value")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("series '{name}' has no value"))
    };
    // Sweep series (global registry, driven by sweep_summary).
    assert!(counter("sweep.scenarios") >= 1.0, "sweep ran");
    // Pool series (global registry, driven by the batcher's fan-out).
    assert!(counter("pool.jobs") >= 2.0, "pool executed the misses");
    // Cache series (per-server registry).
    assert!(counter("serve.cache.hits") >= 1.0, "repeat plan hit");
    assert!(counter("serve.cache.misses") >= 2.0, "first queries missed");
    // Admission + service series (per-server registry).
    assert_eq!(counter("serve.overloaded"), 0.0, "nothing refused");
    assert!(counter("serve.requests") >= 4.0, "all requests counted");
    let latency = series.get("serve.latency_ns").expect("latency histogram");
    assert_eq!(
        latency.get("kind").and_then(Value::as_str),
        Some("histogram")
    );
    assert!(
        latency.get("count").and_then(Value::as_f64).unwrap() >= 3.0,
        "latency recorded per answered request"
    );
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_accepted_requests() {
    let mut handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            threads: Some(2),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let (mut stream, mut reader) = connect(handle.addr());

    // Pipeline 8 distinct misses and then a shutdown on the same
    // connection: all 8 were accepted before the shutdown is parsed, so
    // all 8 must be answered even though the server is stopping.
    let accepted = 8usize;
    for i in 0..accepted {
        let mut spec = ScenarioSpec::baseline(0.95 - 0.1 * i as f64);
        spec.duration = 0.01;
        let line = Request::render_line(i as i64, QueryKind::SweepSummary, Some(&spec));
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
    }
    let bye = Request::render_line(999, QueryKind::Shutdown, None);
    stream
        .write_all(format!("{bye}\n").as_bytes())
        .expect("write shutdown");

    let mut answered = HashSet::new();
    let mut shutdown_acked = false;
    for _ in 0..=accepted {
        let response = read_response(&mut reader);
        let id = response.get("id").and_then(Value::as_f64).unwrap() as i64;
        assert_eq!(
            response.get("status").and_then(Value::as_str),
            Some("ok"),
            "draining must answer accepted work: {response:?}"
        );
        if id == 999 {
            shutdown_acked = true;
        } else {
            answered.insert(id);
        }
    }
    assert!(shutdown_acked, "shutdown query acknowledged");
    assert_eq!(answered.len(), accepted, "every accepted request drained");

    // wait() must return promptly now that the drain finished.
    handle.wait();
}
