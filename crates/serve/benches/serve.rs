//! The service benchmark: cold (cache-miss) vs warm (cache-hit) request
//! latency and concurrent warm throughput over a loopback connection,
//! written to `BENCH_serve.json` at the repo root.
//!
//! Unlike the solver benches this measures the *service* — parse, cache,
//! batch, pool, render, socket — so the numbers are end-to-end request
//! latencies as a client sees them:
//!
//! 1. **Cold pass** — a set of distinct scenarios (every plan query kind,
//!    several light levels), each a guaranteed cache miss that pays a
//!    batched solver run.
//! 2. **Warm pass** — the identical requests again; every one must hit
//!    the plan cache. Outside smoke mode the report asserts warm p95 <
//!    cold p95 — the cache earning its keep is the crate's headline
//!    claim, so the bench fails loudly if it regresses.
//! 3. **Concurrent warm throughput** — 4 client threads replaying the
//!    warm set; reported as requests/second.
//!
//! The written JSON is re-read and re-parsed with the crate's own parser
//! before the bench exits, so a malformed report can never land on disk
//! silently. Smoke mode (`HEMS_BENCH_SMOKE=1`) shrinks the scenario set
//! and skips the warm<cold assertion (one sample proves nothing).

use hems_bench::harness::{percentile, Json};
use hems_obs::clock::monotonic_ns;
use hems_serve::json::{parse, Value};
use hems_serve::proto::{QueryKind, Request, ScenarioSpec};
use hems_serve::{serve, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Distinct plan requests: every cacheable query kind at several light
/// levels (and a couple of off-baseline scenarios so the canonicalizer
/// earns its keep).
fn request_set(smoke: bool) -> Vec<(i64, QueryKind, ScenarioSpec)> {
    let kinds = [
        QueryKind::OptimalPoint,
        QueryKind::Mep,
        QueryKind::Bypass,
        QueryKind::Sprint,
        QueryKind::SweepSummary,
    ];
    let levels: &[f64] = if smoke {
        &[1.0]
    } else {
        // All in the regime where every query kind is feasible — below
        // ~0.15 sun the joint plan correctly errors, which belongs to the
        // planner tests, not a latency benchmark.
        &[1.0, 0.75, 0.5, 0.35, 0.25]
    };
    let mut out = Vec::new();
    let mut id = 0i64;
    for &g in levels {
        for kind in kinds {
            let mut spec = ScenarioSpec::baseline(g);
            spec.duration = 0.01;
            if kind == QueryKind::Sprint {
                spec.deadline = Some(0.01);
            }
            // Every other scenario doubles the storage cap so the key
            // space isn't irradiance-only.
            if id % 2 == 1 {
                spec.capacitance = Some(6.6e-5);
            }
            id += 1;
            out.push((id, kind, spec));
        }
    }
    out
}

/// Sends one request and waits for its response; returns the latency in
/// nanoseconds and the parsed response.
fn round_trip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> (f64, Value) {
    let started = monotonic_ns();
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write request");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    let ns = monotonic_ns().saturating_sub(started) as f64;
    (ns, parse(&response).expect("response parses"))
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// Runs the full request set once on one connection; returns sorted
/// per-request latencies and the observed `cached` flags.
fn run_pass(
    addr: std::net::SocketAddr,
    requests: &[(i64, QueryKind, ScenarioSpec)],
) -> (Vec<f64>, usize) {
    let (mut stream, mut reader) = connect(addr);
    let mut latencies = Vec::with_capacity(requests.len());
    let mut cached = 0usize;
    for (id, kind, spec) in requests {
        let line = Request::render_line(*id, *kind, Some(spec));
        let (ns, response) = round_trip(&mut stream, &mut reader, &line);
        assert_eq!(
            response.get("status").and_then(Value::as_str),
            Some("ok"),
            "bench request failed: {response:?}"
        );
        if response.get("cached").and_then(Value::as_bool) == Some(true) {
            cached += 1;
        }
        latencies.push(ns);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (latencies, cached)
}

fn pass_json(sorted_ns: &[f64]) -> (f64, Json) {
    let p50 = percentile(sorted_ns, 50.0);
    let p95 = percentile(sorted_ns, 95.0);
    let mean = sorted_ns.iter().sum::<f64>() / sorted_ns.len() as f64;
    let json = Json::Obj(vec![
        ("requests".into(), Json::Int(sorted_ns.len() as i64)),
        ("p50_ns".into(), Json::Num(p50)),
        ("p95_ns".into(), Json::Num(p95)),
        ("mean_ns".into(), Json::Num(mean)),
        ("throughput_per_sec".into(), Json::Num(1e9 / mean)),
    ]);
    (p95, json)
}

fn main() {
    let smoke = std::env::var("HEMS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let requests = request_set(smoke);
    let warm_rounds = if smoke { 1 } else { 8 };
    let mut handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind loopback");
    let addr = handle.addr();
    println!(
        "[serve bench] {} distinct requests against {addr}{}",
        requests.len(),
        if smoke { " (smoke mode)" } else { "" }
    );

    // --- 1. Cold pass: all distinct, all misses. ---
    let (cold, cold_hits) = run_pass(addr, &requests);
    assert_eq!(cold_hits, 0, "cold pass must not hit the cache");
    let (cold_p95, cold_json) = pass_json(&cold);

    // --- 2. Warm passes: identical requests, all hits. ---
    let mut warm = Vec::new();
    for _ in 0..warm_rounds {
        let (mut pass, hits) = run_pass(addr, &requests);
        assert_eq!(hits, requests.len(), "warm pass must hit on every request");
        warm.append(&mut pass);
    }
    warm.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let (warm_p95, warm_json) = pass_json(&warm);
    println!(
        "[serve bench] cold p95 {:.0} µs, warm p95 {:.2} µs ({:.0}x)",
        cold_p95 / 1e3,
        warm_p95 / 1e3,
        cold_p95 / warm_p95.max(1.0)
    );
    if !smoke {
        assert!(
            warm_p95 < cold_p95,
            "cache regression: warm p95 ({warm_p95} ns) not below cold p95 ({cold_p95} ns)"
        );
    }

    // --- 3. Concurrent warm throughput: 4 clients replay the set. ---
    let clients = 4usize;
    let started = monotonic_ns();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let requests = requests.clone();
            std::thread::spawn(move || run_pass(addr, &requests))
        })
        .collect();
    let mut concurrent_requests = 0usize;
    for t in threads {
        let (pass, _) = t.join().expect("client thread");
        concurrent_requests += pass.len();
    }
    let concurrent_secs = monotonic_ns().saturating_sub(started) as f64 / 1e9;
    let concurrent_rps = concurrent_requests as f64 / concurrent_secs;
    println!(
        "[serve bench] {clients} clients: {concurrent_requests} warm requests \
         in {concurrent_secs:.3} s = {concurrent_rps:.0}/s"
    );

    // --- Service counters for the report. ---
    let stats = handle.stats_snapshot();
    let counter =
        |name: &str| Json::Int(stats.get(name).and_then(Value::as_f64).unwrap_or(0.0) as i64);
    handle.shutdown();

    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("hems-bench-serve/1".into())),
        ("smoke".into(), Json::Bool(smoke)),
        ("distinct_requests".into(), Json::Int(requests.len() as i64)),
        ("warm_rounds".into(), Json::Int(warm_rounds as i64)),
        ("cold".into(), cold_json),
        ("warm".into(), warm_json),
        (
            "warm_speedup_p95".into(),
            Json::Num(cold_p95 / warm_p95.max(1.0)),
        ),
        (
            "concurrent".into(),
            Json::Obj(vec![
                ("clients".into(), Json::Int(clients as i64)),
                ("requests".into(), Json::Int(concurrent_requests as i64)),
                ("elapsed_s".into(), Json::Num(concurrent_secs)),
                ("throughput_per_sec".into(), Json::Num(concurrent_rps)),
            ]),
        ),
        (
            "server".into(),
            Json::Obj(vec![
                ("requests".into(), counter("requests")),
                ("hits".into(), counter("hits")),
                ("misses".into(), counter("misses")),
                ("batches".into(), counter("batches")),
                ("batched_jobs".into(), counter("batched_jobs")),
                ("max_batch".into(), counter("max_batch")),
                ("workers".into(), counter("workers")),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, report.render() + "\n").expect("write BENCH_serve.json");

    // Self-validation: the file on disk must be well-formed JSON with the
    // headline fields present (the verify script relies on this).
    let written = std::fs::read_to_string(path).expect("re-read BENCH_serve.json");
    let parsed = parse(&written).expect("BENCH_serve.json is valid JSON");
    for field in ["schema", "cold", "warm", "concurrent", "server"] {
        assert!(parsed.get(field).is_some(), "report is missing '{field}'");
    }
    println!("[serve bench] wrote {path}");
}
