//! Fig. 9 — (a) energy required vs available as a function of completion
//! time (eqs. 8–11), and (b) the sprinting operation's extra solar intake
//! (eqs. 12–13).

use hems_bench::harness::Harness;
use hems_bench::{f3, pct, print_series};
use hems_core::deadline::DeadlineSolver;
use hems_core::SprintPlan;
use hems_cpu::Microprocessor;
use hems_pv::{Irradiance, SolarCell};
use hems_regulator::ScRegulator;
use hems_storage::Capacitor;
use hems_units::{Cycles, Seconds, Volts, Watts};
use std::hint::black_box;

fn regenerate() {
    // Fig. 9a: the two energy curves and their intersection.
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    let sc = ScRegulator::paper_65nm();
    let cpu = Microprocessor::paper_65nm();
    let mut cap = Capacitor::paper_board();
    cap.set_voltage(Volts::new(1.2)).unwrap();
    let solver = DeadlineSolver::new(&cell, &sc, &cpu, &cap, Volts::new(0.5));
    let n = Cycles::new(10.0e6);
    let mut rows = Vec::new();
    for i in 1..=12 {
        let t = Seconds::from_milli(10.0 * i as f64);
        let e_in = solver
            .required_energy(n, t)
            .map(|e| format!("{:.1}", e.to_micro()))
            .unwrap_or_else(|_| "-".into());
        let e_avail = solver
            .available_energy(t)
            .map(|e| format!("{:.1}", e.to_micro()))
            .unwrap_or_else(|_| "-".into());
        rows.push(vec![format!("{:.0}", t.to_milli()), e_in, e_avail]);
    }
    print_series(
        "Fig. 9a: energy required vs available (10 Mcycle job, full sun)",
        &["T (ms)", "E_in (uJ)", "E_avail (uJ)"],
        &rows,
    );
    if let Ok(plan) = solver.solve(n) {
        println!(
            "[fig9a] intersection: T* = {:.1} ms at Vdd = {:.3} V ({:.1} MHz)",
            plan.completion_time.to_milli(),
            plan.vdd.volts(),
            plan.frequency.to_mega()
        );
    }

    // Fig. 9b: sprint factor sweep on the dimmed-light transient.
    let dim_cell = SolarCell::kxob22(Irradiance::QUARTER_SUN);
    let mut cap = Capacitor::paper_board();
    cap.set_voltage(Volts::new(1.2)).unwrap();
    let mut rows = Vec::new();
    for beta in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let plan =
            SprintPlan::new(beta, Seconds::from_milli(30.0), Watts::from_milli(6.0)).unwrap();
        let cmp = plan.compare_against_constant(&dim_cell, &cap, Seconds::from_micro(20.0));
        rows.push(vec![
            f3(beta),
            format!("{:.1}", cmp.e_solar_constant.to_micro()),
            format!("{:.1}", cmp.e_solar_sprint.to_micro()),
            pct(cmp.extra_energy_fraction()),
            f3(cmp.v_end_sprint.volts()),
        ]);
    }
    print_series(
        "Fig. 9b: sprinting extra solar energy vs beta (paper: ~10% at beta=0.2)",
        &["beta", "E_const (uJ)", "E_sprint (uJ)", "gain", "V_end (V)"],
        &rows,
    );
}

fn main() {
    let mut c = Harness::from_env();
    regenerate();
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    let sc = ScRegulator::paper_65nm();
    let cpu = Microprocessor::paper_65nm();
    let mut cap = Capacitor::paper_board();
    cap.set_voltage(Volts::new(1.2)).unwrap();
    let solver = DeadlineSolver::new(&cell, &sc, &cpu, &cap, Volts::new(0.5));
    c.bench_function("fig9/deadline_solve", || {
        black_box(solver.solve(Cycles::new(10.0e6)).unwrap())
    });
    let dim_cell = SolarCell::kxob22(Irradiance::QUARTER_SUN);
    let plan =
        SprintPlan::paper_20_percent(Seconds::from_milli(30.0), Watts::from_milli(6.0)).unwrap();
    c.bench_function("fig9/sprint_comparison", || {
        black_box(plan.compare_against_constant(&dim_cell, &cap, Seconds::from_micro(50.0)))
    });
}
