//! The telemetry-overhead benchmark: what `hems_obs` costs the code it
//! instruments, written to `BENCH_obs.json` at the repo root.
//!
//! Two comparisons:
//!
//! 1. **Warm-sweep overhead** — the same scenario grid through the
//!    parallel sweep engine with telemetry enabled vs globally disabled
//!    (`hems_obs::set_enabled(false)`, which turns every record call
//!    into one relaxed atomic load). The sweep path carries spans and
//!    counters per scenario, so this is the end-to-end price of leaving
//!    telemetry on. The two configurations are sampled *interleaved*
//!    (disabled/enabled alternating within one loop, order swapped every
//!    other pair) — back-to-back blocks would charge clock-frequency and
//!    thermal drift entirely to whichever config ran second, which on a
//!    shared box is far larger than the effect being measured. The
//!    headline number is the median of *per-pair* ratios: the two passes
//!    of a pair share machine state, so the ratio cancels drift that
//!    still jitters independent medians by ~1 %. Outside smoke mode the
//!    report asserts that paired overhead is <= 2 %.
//! 2. **Record costs** — per-call nanoseconds for the primitives:
//!    counter inc, histogram record, span guard, and the disabled
//!    counter inc (the kill-switch fast path).
//!
//! Smoke mode (`HEMS_BENCH_SMOKE=1`): one iteration of everything, no
//! overhead assertion (one sample proves nothing).

use hems_bench::harness::{measurement_json, percentile, Harness, Json, Measurement};
use hems_obs::clock::monotonic_ns;
use hems_pv::Irradiance;
use hems_sim::sweep::{self, SweepGrid};
use hems_units::Seconds;
use std::hint::black_box;

/// A modest grid: big enough that one pass dwarfs timer noise, small
/// enough that the comparison pair stays in CI budget.
fn bench_grid() -> SweepGrid {
    let mut grid = SweepGrid::paper_baseline().expect("baseline grid");
    grid.irradiances = vec![Irradiance::FULL_SUN, Irradiance::HALF_SUN];
    grid.duration = Seconds::from_milli(25.0);
    grid
}

fn main() {
    let mut c = Harness::from_env();
    let cores = sweep::resolved_threads(None);
    let grid = bench_grid();
    println!(
        "[obs bench] {} scenarios on {} workers{}",
        grid.len(),
        cores,
        if c.is_smoke() { " (smoke mode)" } else { "" }
    );

    // --- 1. Warm-sweep overhead, interleaved sampling. ---
    // Warm passes so LUTs/allocators are in steady state before either
    // timed configuration runs.
    for _ in 0..if c.is_smoke() { 1 } else { 4 } {
        black_box(sweep::run_parallel(&grid, cores).expect("grid expands"));
    }
    let timed_pass = |enabled: bool| -> f64 {
        hems_obs::set_enabled(enabled);
        let t = monotonic_ns();
        black_box(sweep::run_parallel(&grid, cores).expect("grid expands"));
        monotonic_ns().saturating_sub(t) as f64
    };
    let pairs = if c.is_smoke() { 1 } else { 60 };
    let mut disabled_ns = Vec::with_capacity(pairs);
    let mut enabled_ns = Vec::with_capacity(pairs);
    for i in 0..pairs {
        // Swap within-pair order every other pair so neither config
        // systematically runs on a warmer cache or a later clock ramp.
        if i % 2 == 0 {
            disabled_ns.push(timed_pass(false));
            enabled_ns.push(timed_pass(true));
        } else {
            enabled_ns.push(timed_pass(true));
            disabled_ns.push(timed_pass(false));
        }
    }
    hems_obs::set_enabled(true);
    let summarize = |name: &str, samples: &mut Vec<f64>| -> Measurement {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        Measurement {
            name: name.to_string(),
            samples: samples.len(),
            batch: 1,
            median_ns: percentile(samples, 50.0),
            p95_ns: percentile(samples, 95.0),
            min_ns: samples[0],
            mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
        }
    };
    // Paired estimator: each pair's two passes ran back-to-back on the
    // same machine state, so the per-pair ratio cancels slow drift that
    // still jitters the independent medians by ~1% on a shared box. The
    // median of those ratios is the headline overhead.
    let mut ratios: Vec<f64> = enabled_ns
        .iter()
        .zip(&disabled_ns)
        .map(|(e, d)| e / d)
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let overhead_paired = percentile(&ratios, 50.0) - 1.0;
    let disabled = summarize("obs/sweep_telemetry_disabled", &mut disabled_ns);
    let enabled = summarize("obs/sweep_telemetry_enabled", &mut enabled_ns);
    let overhead_median = enabled.median_ns / disabled.median_ns - 1.0;
    println!(
        "[obs bench] enabled-vs-disabled overhead: {:+.3}% paired, {:+.3}% of medians",
        overhead_paired * 100.0,
        overhead_median * 100.0
    );
    if !c.is_smoke() {
        assert!(
            overhead_paired <= 0.02,
            "telemetry overhead regression: enabled sweep is {:.2}% slower than disabled \
             (budget: 2%)",
            overhead_paired * 100.0
        );
    }

    // --- 2. Primitive record costs. ---
    let registry = hems_obs::Registry::new();
    let counter = registry.counter("bench.counter");
    let histogram = registry.histogram("bench.histogram_ns");
    let counter_inc = c
        .bench_function("obs/counter_inc", || {
            counter.inc();
            black_box(())
        })
        .clone();
    let mut v = 1u64;
    let histogram_record = c
        .bench_function("obs/histogram_record", || {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record(black_box(v >> 40));
            black_box(())
        })
        .clone();
    let span_guard = c
        .bench_function("obs/span_guard", || {
            black_box(registry.span("bench.span_ns"));
        })
        .clone();
    hems_obs::set_enabled(false);
    let disabled_inc = c
        .bench_function("obs/counter_inc_disabled", || {
            counter.inc();
            black_box(())
        })
        .clone();
    hems_obs::set_enabled(true);

    // --- JSON report at the repo root. ---
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("hems-bench-obs/1".into())),
        ("smoke".into(), Json::Bool(c.is_smoke())),
        ("threads_resolved".into(), Json::Int(cores as i64)),
        ("scenario_count".into(), Json::Int(grid.len() as i64)),
        (
            "sweep_overhead".into(),
            Json::Obj(vec![
                ("disabled".into(), measurement_json(&disabled)),
                ("enabled".into(), measurement_json(&enabled)),
                ("overhead_paired".into(), Json::Num(overhead_paired)),
                ("overhead_median".into(), Json::Num(overhead_median)),
                ("budget".into(), Json::Num(0.02)),
            ]),
        ),
        (
            "record_cost".into(),
            Json::Obj(vec![
                ("counter_inc".into(), measurement_json(&counter_inc)),
                (
                    "histogram_record".into(),
                    measurement_json(&histogram_record),
                ),
                ("span_guard".into(), measurement_json(&span_guard)),
                (
                    "counter_inc_disabled".into(),
                    measurement_json(&disabled_inc),
                ),
            ]),
        ),
        (
            "all_measurements".into(),
            Json::Arr(
                [&disabled, &enabled]
                    .into_iter()
                    .chain(c.results())
                    .map(measurement_json)
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, report.render() + "\n").expect("write BENCH_obs.json");

    // Self-validation: the file on disk must carry the headline fields
    // (the verify script relies on the report existing and being sane).
    let written = std::fs::read_to_string(path).expect("re-read BENCH_obs.json");
    for field in ["schema", "sweep_overhead", "record_cost", "overhead_paired"] {
        assert!(
            written.contains(&format!("\"{field}\"")),
            "report is missing '{field}'"
        );
    }
    println!("[obs bench] wrote {path}");
}
