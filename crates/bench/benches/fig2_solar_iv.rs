//! Fig. 2 — solar cell I-V curves under variable light conditions.
//!
//! The paper measures the IXYS cell outdoors and indoors; we regenerate the
//! same family of curves from the calibrated single-diode model: outdoor
//! strong sun, 50 %, 25 %, overcast and indoor light.

use hems_bench::harness::Harness;
use hems_bench::{f3, print_series};
use hems_pv::{Irradiance, SolarCell};
use hems_units::Volts;
use std::hint::black_box;

fn regenerate() -> Vec<Vec<String>> {
    let conditions = [
        ("full sun", Irradiance::FULL_SUN),
        ("half sun", Irradiance::HALF_SUN),
        ("quarter sun", Irradiance::QUARTER_SUN),
        ("overcast", Irradiance::OVERCAST),
        ("indoor", Irradiance::INDOOR),
    ];
    let mut rows = Vec::new();
    for (name, g) in conditions {
        let cell = SolarCell::kxob22(g);
        let voc = cell.open_circuit_voltage();
        let isc = cell.short_circuit_current();
        let mpp = cell.mpp().ok();
        for i in 0..=14 {
            let v = Volts::new(voc.volts() * i as f64 / 14.0);
            let iv = cell.current_at(v);
            rows.push(vec![
                name.to_string(),
                f3(v.volts()),
                format!("{:.2}", iv.to_milli()),
            ]);
        }
        let (v_mpp, p_mpp) = mpp
            .map(|m| (f3(m.voltage.volts()), format!("{:.2}", m.power.to_milli())))
            .unwrap_or(("-".into(), "-".into()));
        println!(
            "[fig2] {name}: Voc={:.3} V, Isc={:.2} mA, MPP=({v_mpp} V, {p_mpp} mW)",
            voc.volts(),
            isc.to_milli()
        );
    }
    rows
}

fn main() {
    let mut c = Harness::from_env();
    let rows = regenerate();
    print_series(
        "Fig. 2: I-V curves vs light",
        &["condition", "V (V)", "I (mA)"],
        &rows,
    );
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    c.bench_function("fig2/iv_curve_sampling", || black_box(cell.iv_curve(128)));
    c.bench_function("fig2/mpp_search", || black_box(cell.mpp().unwrap()));
}
