//! Fig. 8 — the proposed time-based MPP tracking scheme.
//!
//! Reproduces the Virtuoso transient of the paper: the light dims suddenly,
//! the solar node discharges through the comparator thresholds `V1 = 1.0 V`
//! and `V2 = 0.9 V`, and the tracker infers the new input power from the
//! crossing time (eq. 7), then retargets the MPP via the lookup table.

use hems_bench::harness::Harness;
use hems_bench::{f3, print_series};
use hems_mppt::{MppTracker, Observation, TimeBasedTracker};
use hems_pv::{Irradiance, SolarCell};
use hems_storage::{Capacitor, ComparatorBank};
use hems_units::{Efficiency, Seconds, Volts, Watts};
use std::hint::black_box;

struct StepOutcome {
    estimate_mw: f64,
    truth_mw: f64,
    target_v: f64,
    true_mpp_v: f64,
    waveform: Vec<(f64, f64)>,
}

fn run_step(g_after: Irradiance, p_drawn_mw: f64) -> StepOutcome {
    let mut cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    let mut cap = Capacitor::paper_board();
    cap.set_voltage(Volts::new(1.1)).unwrap();
    let mut bank =
        ComparatorBank::new(&[Volts::new(1.0), Volts::new(0.9)], Volts::from_milli(2.0)).unwrap();
    let mut tracker = TimeBasedTracker::paper_default();
    let p_drawn = Watts::from_milli(p_drawn_mw);
    let dt = Seconds::from_micro(50.0);
    cell.set_irradiance(g_after);
    let mut waveform = Vec::new();
    let mut first_estimate = None;
    for i in 0..20_000u64 {
        let now = Seconds::new(i as f64 * dt.seconds());
        let v = cap.voltage();
        if i % 40 == 0 {
            waveform.push((now.to_milli(), v.volts()));
        }
        let p_harvest = cell.power_at(v);
        cap.step_power(p_harvest - p_drawn, dt);
        let crossings = bank.update(cap.voltage(), now);
        let mut obs = Observation::basic(now, cap.voltage(), p_drawn, Efficiency::UNITY);
        obs.crossings = crossings;
        tracker.update(&obs);
        if let Some(est) = tracker.last_estimate() {
            first_estimate = Some(est);
            break;
        }
    }
    let estimate = first_estimate.expect("discharge should complete");
    let truth = SolarCell::kxob22(g_after).power_at(Volts::new(0.95));
    let mpp = SolarCell::kxob22(g_after).mpp().unwrap();
    StepOutcome {
        estimate_mw: estimate.to_milli(),
        truth_mw: truth.to_milli(),
        target_v: tracker.target().volts(),
        true_mpp_v: mpp.voltage.volts(),
        waveform,
    }
}

fn regenerate() {
    let mut rows = Vec::new();
    for (name, g, p) in [
        ("-> half sun", Irradiance::HALF_SUN, 10.0),
        ("-> quarter sun", Irradiance::QUARTER_SUN, 8.0),
        ("-> overcast", Irradiance::OVERCAST, 6.0),
    ] {
        let out = run_step(g, p);
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", out.estimate_mw),
            format!("{:.2}", out.truth_mw),
            format!(
                "{:.1}%",
                (out.estimate_mw / out.truth_mw - 1.0).abs() * 100.0
            ),
            f3(out.target_v),
            f3(out.true_mpp_v),
        ]);
    }
    print_series(
        "Fig. 8: time-based Pin estimation after a light step (eq. 7)",
        &[
            "step",
            "est Pin (mW)",
            "true Pin (mW)",
            "err",
            "LUT target (V)",
            "true MPP (V)",
        ],
        &rows,
    );
    // Fig. 8c-style waveform of the quarter-sun step.
    let out = run_step(Irradiance::QUARTER_SUN, 8.0);
    let rows: Vec<Vec<String>> = out
        .waveform
        .iter()
        .map(|(t, v)| vec![format!("{t:.1}"), f3(*v)])
        .collect();
    print_series(
        "Fig. 8c: solar node discharge waveform (quarter-sun step)",
        &["t (ms)", "V_solar (V)"],
        &rows,
    );
}

fn main() {
    let mut c = Harness::from_env();
    regenerate();
    c.bench_function("fig8/light_step_tracking", || {
        black_box(run_step(Irradiance::QUARTER_SUN, 8.0).estimate_mw)
    });
}
