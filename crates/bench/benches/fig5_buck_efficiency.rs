//! Fig. 5 — buck regulator efficiency at full and half load
//! (63 % / 58 % @ 0.55 V), plus the SC-vs-buck load crossover the text of
//! Section III describes.

use hems_bench::harness::Harness;
use hems_bench::{f3, print_series};
use hems_regulator::{BuckRegulator, EfficiencySweep, Regulator, ScRegulator};
use hems_units::{Volts, Watts};
use std::hint::black_box;

fn regenerate() -> Vec<Vec<String>> {
    let buck = BuckRegulator::paper_65nm();
    let mut rows = Vec::new();
    for (name, p) in [("full (10 mW)", 10.0), ("half (5 mW)", 5.0)] {
        let sweep = EfficiencySweep::sample(
            &buck,
            Volts::new(1.2),
            Volts::new(0.25),
            Volts::new(0.85),
            Watts::from_milli(p),
            13,
        )
        .expect("valid sweep");
        for point in sweep.points() {
            rows.push(vec![
                name.to_string(),
                f3(point.v_out.volts()),
                point
                    .efficiency
                    .map(|e| format!("{:.1}", e * 100.0))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        let anchor = buck
            .efficiency(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(p))
            .unwrap();
        println!(
            "[fig5] buck at 0.55 V / {name}: {:.1}% (paper: {})",
            anchor.percent(),
            if p == 10.0 { "63%" } else { "58%" }
        );
    }
    // Section III trend: buck overtakes SC at high output power.
    let sc = ScRegulator::paper_65nm();
    for p_mw in [3.0, 10.0, 20.0, 40.0] {
        let eta = |r: &dyn Regulator| {
            r.efficiency(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(p_mw))
                .unwrap()
                .percent()
        };
        println!(
            "[fig5] load {p_mw:>5.1} mW: SC {:.1}% vs buck {:.1}% -> {}",
            eta(&sc),
            eta(&buck),
            if eta(&buck) > eta(&sc) {
                "buck wins"
            } else {
                "SC wins"
            }
        );
    }
    rows
}

fn main() {
    let mut c = Harness::from_env();
    let rows = regenerate();
    print_series(
        "Fig. 5: buck regulator efficiency",
        &["load", "Vout (V)", "eta (%)"],
        &rows,
    );
    let buck = BuckRegulator::paper_65nm();
    c.bench_function("fig5/buck_convert", || {
        black_box(
            buck.convert(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(10.0))
                .unwrap(),
        )
    });
}
