//! The scenario-sweep benchmark: serial vs parallel vs batch engine
//! throughput, batch-kernel microbenches, and LUT vs exact solver speed,
//! written to `BENCH_sweep.json` at the repo root (plus the usual stdout
//! report).
//!
//! Four comparisons, matching the performance claims this repo makes:
//!
//! 1. **Sweep engine** — the same scenario grid through
//!    `run_scenarios_serial`, `run_scenarios_parallel(available cores)`,
//!    and the SoA batch engine `run_scenarios_batch` (shared device
//!    tables, 8-lane lockstep chunks). The JSON records all three medians
//!    plus the parallel and batch speedups; the parallel speedup is only
//!    meaningful on multi-core machines — single-core CI verifies the
//!    adaptive serial cutover keeps it at parity instead.
//! 2. **Scaling** — the engine trio at 8, 32, and 128 scenarios, so the
//!    adaptive cutover (`parallel ≥ serial` at every count) and the batch
//!    engine's scaling behaviour are both on record.
//! 3. **Batch kernels** — one slab through `PvLut::power_at_many` /
//!    `CpuLut::total_power_many` vs the same slab through a scalar
//!    `power_at` / `total_power` loop: the gather-free sorted-cursor
//!    interpolation vs per-element binary search.
//! 4. **Solvers** — the full Fig. 6/7 analysis per light level on the
//!    exact device models vs the `PvLut`/`CpuLut` fast path (warm tables,
//!    cold rebuild variant, build cost, worst relative deviation).
//!
//! Smoke mode (`HEMS_BENCH_SMOKE=1`): one iteration of the solver and
//! kernel benches, but a short multi-sample run for the engine series —
//! `scripts/verify.sh` asserts on the engine speedups, and a single
//! unwarmed sample is too noisy to compare two identical code paths.
//!
//! Engine methodology: the serial/parallel/batch trio at each scenario
//! count is sampled *interleaved* (serial → parallel → batch, round-robin
//! per sample) rather than bench-after-bench. Sequential sampling bakes
//! clock/thermal drift into whichever entry runs later — on the original
//! harness the parallel entry measured several percent slower than serial
//! at the cutover even though both run the same machine code.
//! Interleaving lands drift on all three paths equally, and the speedups
//! are paired estimators (median of per-round ratios). When the adaptive
//! cutover collapses the worker count to one, the recorded parallel
//! speedup is 1.0 by construction — both entries run the same machine
//! code — with the measured parity ratio recorded alongside. Speedup
//! fields are rounded to two decimals — the resolution speedup claims
//! are made at; the raw measurements keep full precision.

use hems_bench::harness::{fmt_ns, measurement_json, percentile, Harness, Json, Measurement};
use hems_core::{frontier, mep, operating_point, optimal_voltage, CpuEvalBatch, PvSourceBatch};
use hems_cpu::{CpuLut, Microprocessor};
use hems_obs::clock::monotonic_ns;
use hems_pv::{Irradiance, PvLut, SolarCell};
use hems_regulator::{BuckRegulator, Ldo, Regulator, ScRegulator};
use hems_sim::sweep::{self, SweepGrid};
use hems_units::{Farads, Hertz, Seconds, Volts};
use std::hint::black_box;

/// The headline grid both engine paths run: 4 light levels x 2 capacitors
/// x 2 regulators x 2 policies = 32 scenarios of 40 simulated ms each.
fn bench_grid() -> SweepGrid {
    grid_with(4, 2)
}

/// A grid of `lights x caps x 2 regulators x 2 policies` scenarios of
/// 40 simulated ms each — the scaling series runs (2,1) → 8, (4,2) → 32,
/// and (8,4) → 128 scenarios through the same base configuration.
fn grid_with(lights: usize, caps: usize) -> SweepGrid {
    let mut grid = SweepGrid::paper_baseline().expect("baseline grid");
    let levels = [1.0, 0.5, 0.25, 0.1, 0.75, 0.35, 0.2, 0.15];
    grid.irradiances = levels
        .iter()
        .take(lights)
        .map(|&g| Irradiance::new(g).expect("in range"))
        .collect();
    let c0 = grid.base.capacitor.capacitance();
    let scales = [1.0, 4.0, 2.0, 8.0];
    grid.capacitances = scales
        .iter()
        .take(caps)
        .map(|&s| Farads::new(c0.farads() * s))
        .collect();
    grid.duration = Seconds::from_milli(40.0);
    grid
}

fn light_levels() -> Vec<Irradiance> {
    [1.0, 0.75, 0.5, 0.25, 0.1]
        .into_iter()
        .map(|g| Irradiance::new(g).expect("in range"))
        .collect()
}

/// The per-light-level Fig. 6/7 workload, generic over the model path:
/// the unregulated intersection (Fig. 6a), the regulated optimum for all
/// three topologies (Fig. 6b), the joint rail/supply optimization, the
/// sustainable frontier, and the system-MEP search (Fig. 7b). Returns an
/// accumulator so nothing is optimized away.
fn figure_workload(
    cell: &impl PvSourceBatch,
    cpu: &impl CpuEvalBatch,
    regs: &[&dyn Regulator],
) -> f64 {
    let mut acc = 0.0;
    if let Ok(u) = operating_point::unregulated_point(cell, cpu) {
        acc += u.power.watts();
    }
    for reg in regs {
        if let Ok(plan) = optimal_voltage::optimal_regulated_plan(cell, *reg, cpu) {
            acc += plan.p_cpu.watts();
        }
    }
    if let Some(first) = regs.first() {
        if let Ok(plan) = optimal_voltage::optimal_joint_plan(cell, *first, cpu) {
            acc += plan.p_cpu.watts();
        }
        if let Ok(points) = frontier::sustainable_frontier(cell, *first, cpu, 33) {
            acc += points.len() as f64;
        }
        if let Ok(m) = mep::system_mep(cpu, *first, Volts::new(1.1)) {
            acc += m.energy_per_cycle.joules();
        }
    }
    acc
}

/// The figure sweep on the exact models: every solver call re-solves the
/// implicit PV curve (MPP searches, intersection bisections) from scratch.
fn solver_sweep_exact(cpu: &Microprocessor, regs: &[&dyn Regulator]) -> f64 {
    light_levels()
        .into_iter()
        .map(|g| figure_workload(&SolarCell::kxob22(g), cpu, regs))
        .sum()
}

/// The same sweep on warm tables — prebuilt `PvLut`s (one per light
/// level, the cache's steady state) and a prebuilt `CpuLut`
/// (light-independent).
fn solver_sweep_lut(pv_luts: &[PvLut], cpu_lut: &CpuLut, regs: &[&dyn Regulator]) -> f64 {
    pv_luts
        .iter()
        .map(|pv_lut| figure_workload(pv_lut, cpu_lut, regs))
        .sum()
}

/// The cold variant: every pass pays the per-light-level `PvLut` build
/// before the workload — the worst case where the cache is rebuilt for
/// every figure instead of once per irradiance change.
fn solver_sweep_lut_cold(cpu_lut: &CpuLut, regs: &[&dyn Regulator]) -> f64 {
    light_levels()
        .into_iter()
        .filter_map(|g| PvLut::build_default(SolarCell::kxob22(g)).ok())
        .map(|pv_lut| figure_workload(&pv_lut, cpu_lut, regs))
        .sum()
}

/// Worst relative deviation between the two paths across the sweep's
/// headline outputs (plan power and MEP energy per light level).
fn solver_deviation(cpu: &Microprocessor, cpu_lut: &CpuLut, sc: &ScRegulator) -> f64 {
    let mut worst: f64 = 0.0;
    let mut dev = |fast: f64, exact: f64| {
        worst = worst.max((fast - exact).abs() / exact.abs().max(1e-12));
    };
    for g in light_levels() {
        let cell = SolarCell::kxob22(g);
        let pv_lut = PvLut::build_default(cell.clone()).expect("lit cell builds");
        if let (Ok(e), Ok(f)) = (
            optimal_voltage::optimal_joint_plan(&cell, sc, cpu),
            optimal_voltage::optimal_joint_plan(&pv_lut, sc, cpu_lut),
        ) {
            dev(f.p_cpu.watts(), e.p_cpu.watts());
        }
    }
    if let (Ok(e), Ok(f)) = (
        mep::system_mep(cpu, sc, Volts::new(1.1)),
        mep::system_mep(cpu_lut, sc, Volts::new(1.1)),
    ) {
        dev(f.energy_per_cycle.joules(), e.energy_per_cycle.joules());
    }
    worst
}

/// Rounds a speedup ratio to the two decimals it is claimed at.
fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Interleaved paired sampling: one warmup round, then `samples` rounds
/// of every case back-to-back, so slow drift (thermal, clock migration)
/// is shared by all cases instead of penalising whichever one a
/// sequential harness happens to run last. The starting case *rotates*
/// each round — with a fixed order, ramp-shaped drift inside a round
/// systematically favours whichever case always runs first. Runs are
/// milliseconds-scale, so one call per sample is already far above timer
/// overhead.
fn bench_interleaved(
    samples: usize,
    cases: &mut [(String, &mut dyn FnMut())],
) -> Vec<(Measurement, Vec<f64>)> {
    let k = cases.len().max(1);
    let mut per_case: Vec<Vec<f64>> = cases.iter().map(|_| Vec::with_capacity(samples)).collect();
    for (_, f) in cases.iter_mut() {
        f();
    }
    for round in 0..samples.max(1) {
        for slot in 0..k {
            let idx = (round + slot) % k;
            let Some(((_, f), times)) = cases.get_mut(idx).zip(per_case.get_mut(idx)) else {
                continue;
            };
            let t = monotonic_ns();
            f();
            times.push(monotonic_ns().saturating_sub(t) as f64);
        }
    }
    cases
        .iter()
        .zip(per_case)
        .map(|((name, _), raw)| {
            let mut times = raw.clone();
            times.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
            let first = times.first().copied().unwrap_or(0.0);
            let m = Measurement {
                name: name.clone(),
                samples: times.len(),
                batch: 1,
                median_ns: percentile(&times, 50.0),
                p95_ns: percentile(&times, 95.0),
                min_ns: first,
                mean_ns: times.iter().sum::<f64>() / times.len() as f64,
            };
            println!(
                "[bench] {:<44} median {:>10}  p95 {:>10}  {:>12.0}/s  ({} samples interleaved)",
                m.name,
                fmt_ns(m.median_ns),
                fmt_ns(m.p95_ns),
                m.throughput_per_sec(),
                m.samples,
            );
            (m, raw)
        })
        .collect()
}

/// Median of per-round time ratios `a[i] / b[i]` — the paired estimator.
/// Each ratio compares two samples taken back-to-back inside one round,
/// so drift slower than a round cancels exactly; the median then rejects
/// rounds where a scheduler spike hit one side of the pair.
fn paired_ratio(a: &[f64], b: &[f64]) -> f64 {
    let mut ratios: Vec<f64> = a
        .iter()
        .zip(b)
        .filter(|&(_, &d)| d > 0.0)
        .map(|(&n, &d)| n / d)
        .collect();
    ratios.sort_by(|x, y| x.partial_cmp(y).expect("timings are finite"));
    if ratios.is_empty() {
        1.0
    } else {
        percentile(&ratios, 50.0)
    }
}

/// One engine scaling point: the serial/parallel/batch trio at one
/// scenario count (summary statistics plus round-ordered raw samples),
/// with both speedups derived via the paired estimator.
struct ScalePoint {
    scenarios: usize,
    /// Worker count the parallel entry actually resolves to at this
    /// scenario count, after the adaptive serial cutover.
    effective_threads: usize,
    serial: Measurement,
    parallel: Measurement,
    batch: Measurement,
    serial_raw: Vec<f64>,
    parallel_raw: Vec<f64>,
    batch_raw: Vec<f64>,
}

impl ScalePoint {
    /// Parallel-vs-serial. When the cutover collapses the worker count to
    /// one, the parallel entry dispatches straight into the serial loop —
    /// the two series time the same machine code, so the true ratio is
    /// 1.0 *by construction*, and reporting the paired noise ratio would
    /// randomly report a regression that cannot exist. The measured
    /// parity ratio is still recorded (`parallel_parity_measured`) so the
    /// construction is checkable. With two or more workers the measured
    /// paired ratio is the speedup.
    fn parallel_speedup(&self) -> f64 {
        if self.effective_threads == 1 {
            1.0
        } else {
            self.parallel_parity_measured()
        }
    }

    /// The raw paired serial/parallel ratio, whatever the thread count.
    fn parallel_parity_measured(&self) -> f64 {
        round2(paired_ratio(&self.serial_raw, &self.parallel_raw))
    }

    /// Batch-vs-serial, paired per round.
    fn batch_speedup(&self) -> f64 {
        round2(paired_ratio(&self.serial_raw, &self.batch_raw))
    }

    fn json(&self) -> Json {
        Json::Obj(vec![
            ("scenarios".into(), Json::Int(self.scenarios as i64)),
            (
                "effective_threads".into(),
                Json::Int(self.effective_threads as i64),
            ),
            ("serial".into(), measurement_json(&self.serial)),
            ("parallel".into(), measurement_json(&self.parallel)),
            ("batch".into(), measurement_json(&self.batch)),
            (
                "parallel_speedup".into(),
                Json::Num(self.parallel_speedup()),
            ),
            (
                "parallel_parity_measured".into(),
                Json::Num(self.parallel_parity_measured()),
            ),
            ("batch_speedup".into(), Json::Num(self.batch_speedup())),
        ])
    }
}

fn main() {
    let mut c = Harness::from_env();
    // The engine series keeps a short multi-sample run even in smoke mode:
    // verify.sh asserts on its speedups, and one unwarmed sample cannot
    // distinguish two identical code paths from scheduler noise.
    let engine_samples = if c.is_smoke() { 9 } else { 15 };
    // `resolved_threads(None)` honours an `HEMS_THREADS` override before
    // falling back to the machine's parallelism, so a pinned CI box can
    // force the worker count the numbers were taken at.
    let cores = sweep::resolved_threads(None);
    println!(
        "[sweep bench] {} worker threads resolved (HEMS_THREADS {}){}",
        cores,
        std::env::var(sweep::THREADS_ENV)
            .map_or_else(|_| "unset".to_string(), |v| format!("= {v}")),
        if c.is_smoke() { " (smoke mode)" } else { "" }
    );

    // --- 1+2. Sweep engine: serial vs parallel vs batch, at 8/32/128. ---
    // Each grid expands exactly once (`ExpandedGrid`); the timed region is
    // pure engine work on a borrowed scenario list.
    let mut scaling: Vec<ScalePoint> = Vec::new();
    for (lights, caps) in [(2, 1), (4, 2), (8, 4)] {
        let expanded = grid_with(lights, caps).expanded().expect("grid expands");
        let scenarios = expanded.scenarios();
        let n = scenarios.len();
        let mut serial_fn = || {
            black_box(sweep::run_scenarios_serial(scenarios));
        };
        let mut parallel_fn = || {
            black_box(sweep::run_scenarios_parallel(scenarios, cores));
        };
        let mut batch_fn = || {
            black_box(sweep::run_scenarios_batch(scenarios, cores));
        };
        let mut trio = bench_interleaved(
            engine_samples,
            &mut [
                (format!("sweep/engine_serial_{n}"), &mut serial_fn),
                (format!("sweep/engine_parallel_{n}"), &mut parallel_fn),
                (format!("sweep/engine_batch_{n}"), &mut batch_fn),
            ],
        )
        .into_iter();
        let (Some(serial), Some(parallel), Some(batch)) = (trio.next(), trio.next(), trio.next())
        else {
            unreachable!("three cases in, three measurements out");
        };
        // Mirror of the engine's adaptive cutover: with fewer than
        // MIN_SCENARIOS_PER_WORKER scenarios per worker the parallel
        // entry degrades to the serial loop (no threads spawned).
        let effective = cores
            .max(1)
            .min((n / sweep::MIN_SCENARIOS_PER_WORKER).max(1));
        scaling.push(ScalePoint {
            scenarios: n,
            effective_threads: effective,
            serial: serial.0,
            parallel: parallel.0,
            batch: batch.0,
            serial_raw: serial.1,
            parallel_raw: parallel.1,
            batch_raw: batch.1,
        });
    }
    let headline = scaling
        .iter()
        .find(|p| p.scenarios == 32)
        .expect("the 32-scenario grid is in the scaling series");
    let workers_actual = cores.clamp(1, headline.scenarios);
    println!(
        "[sweep bench] engine parallel {:.2}x / batch {:.2}x on {} cores ({} scenarios)",
        headline.parallel_speedup(),
        headline.batch_speedup(),
        cores,
        headline.scenarios,
    );

    // Determinism spot checks alongside the timing (the sim crate's test
    // suite owns the full contracts): parallel is bit-identical to serial;
    // batch is deterministic across thread counts.
    let grid = bench_grid();
    let a = sweep::run_serial(&grid).expect("grid expands");
    let b = sweep::run_parallel(&grid, cores).expect("grid expands");
    assert_eq!(a, b, "parallel sweep must be bit-identical to serial");
    let c1 = sweep::run_batch(&grid, 1).expect("grid expands");
    let c2 = sweep::run_batch(&grid, cores.max(2)).expect("grid expands");
    assert_eq!(c1, c2, "batch sweep must be thread-count deterministic");

    // --- 3. Batch kernels: one slab vs the same slab element-wise. ---
    // 512 lanes ≈ 64 sweep chunks' worth of gathers; the slab is ascending
    // so `power_at_many` runs its sorted-cursor fast path, exactly like
    // the engine's gathered voltage slabs (monotone charge trajectories).
    const SLAB: usize = 512;
    let half_sun =
        PvLut::build_default(SolarCell::kxob22(Irradiance::HALF_SUN)).expect("lit cell builds");
    let voc = half_sun.open_circuit_voltage().volts();
    let volts_slab: Vec<f64> = (0..SLAB)
        .map(|i| voc * i as f64 / (SLAB - 1) as f64)
        .collect();
    let mut watts_slab = vec![0.0_f64; SLAB];
    let pv_scalar = c
        .bench_function("kernels/pv_lut_scalar", || {
            volts_slab
                .iter()
                .map(|&v| half_sun.power_at(Volts::new(v)).watts())
                .sum::<f64>()
        })
        .clone();
    let pv_batch = c
        .bench_function("kernels/pv_lut_batch", || {
            half_sun.power_at_many(&volts_slab, &mut watts_slab);
            watts_slab.iter().sum::<f64>()
        })
        .clone();
    let cpu = Microprocessor::paper_65nm();
    let cpu_lut = CpuLut::build_default(cpu.clone());
    let vdd_slab: Vec<f64> = (0..SLAB)
        .map(|i| 0.45 + (1.05 - 0.45) * i as f64 / (SLAB - 1) as f64)
        .collect();
    let mut freq_slab = vec![0.0_f64; SLAB];
    cpu_lut.max_frequency_many(&vdd_slab, &mut freq_slab);
    let mut power_slab = vec![0.0_f64; SLAB];
    let cpu_scalar = c
        .bench_function("kernels/cpu_lut_scalar", || {
            vdd_slab
                .iter()
                .zip(&freq_slab)
                .map(|(&v, &f)| cpu_lut.total_power(Volts::new(v), Hertz::new(f)).watts())
                .sum::<f64>()
        })
        .clone();
    let cpu_batch = c
        .bench_function("kernels/cpu_lut_batch", || {
            cpu_lut.total_power_many(&vdd_slab, &freq_slab, &mut power_slab);
            power_slab.iter().sum::<f64>()
        })
        .clone();
    let pv_kernel_ratio = pv_scalar.median_ns / pv_batch.median_ns;
    let cpu_kernel_ratio = cpu_scalar.median_ns / cpu_batch.median_ns;
    println!(
        "[sweep bench] kernel slab ratios: pv {pv_kernel_ratio:.2}x, cpu {cpu_kernel_ratio:.2}x \
         ({SLAB} lanes)"
    );

    // --- 4. Solvers: exact vs LUT on Fig. 6/7-style sweeps. ---
    let sc = ScRegulator::paper_65nm();
    let buck = BuckRegulator::paper_65nm();
    let ldo = Ldo::paper_65nm();
    let regs: [&dyn Regulator; 3] = [&sc, &buck, &ldo];
    let pv_luts: Vec<PvLut> = light_levels()
        .into_iter()
        .map(|g| PvLut::build_default(SolarCell::kxob22(g)).expect("lit cell builds"))
        .collect();
    let exact = c
        .bench_function("solvers/fig67_sweep_exact", || {
            black_box(solver_sweep_exact(&cpu, &regs))
        })
        .clone();
    let lut = c
        .bench_function("solvers/fig67_sweep_lut", || {
            black_box(solver_sweep_lut(&pv_luts, &cpu_lut, &regs))
        })
        .clone();
    let lut_cold = c
        .bench_function("solvers/fig67_sweep_lut_cold", || {
            black_box(solver_sweep_lut_cold(&cpu_lut, &regs))
        })
        .clone();
    let build = c
        .bench_function("solvers/pv_lut_build", || {
            black_box(PvLut::build_default(SolarCell::kxob22(
                Irradiance::HALF_SUN,
            )))
        })
        .clone();
    let solver_speedup = exact.median_ns / lut.median_ns;
    let cold_speedup = exact.median_ns / lut_cold.median_ns;
    let deviation = solver_deviation(&cpu, &cpu_lut, &sc);
    println!(
        "[sweep bench] solver speedup {solver_speedup:.2}x warm / {cold_speedup:.2}x cold, \
         worst deviation {:.4}%",
        deviation * 100.0
    );

    // --- JSON report at the repo root. ---
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("hems-bench-sweep/2".into())),
        ("smoke".into(), Json::Bool(c.is_smoke())),
        ("threads_resolved".into(), Json::Int(cores as i64)),
        ("workers_actual".into(), Json::Int(workers_actual as i64)),
        (
            "threads_env".into(),
            match std::env::var(sweep::THREADS_ENV) {
                Ok(v) => Json::Str(v),
                Err(_) => Json::Str("unset".into()),
            },
        ),
        (
            "scenario_count".into(),
            Json::Int(headline.scenarios as i64),
        ),
        (
            "engine".into(),
            Json::Obj(vec![
                ("serial".into(), measurement_json(&headline.serial)),
                ("parallel".into(), measurement_json(&headline.parallel)),
                ("batch".into(), measurement_json(&headline.batch)),
                ("speedup".into(), Json::Num(headline.parallel_speedup())),
                ("batch_speedup".into(), Json::Num(headline.batch_speedup())),
                ("batch_lanes".into(), Json::Int(sweep::BATCH_LANES as i64)),
            ]),
        ),
        (
            "scaling".into(),
            Json::Arr(scaling.iter().map(ScalePoint::json).collect()),
        ),
        (
            "kernels".into(),
            Json::Obj(vec![
                ("slab_len".into(), Json::Int(SLAB as i64)),
                ("pv_lut_scalar".into(), measurement_json(&pv_scalar)),
                ("pv_lut_batch".into(), measurement_json(&pv_batch)),
                ("pv_ratio".into(), Json::Num(pv_kernel_ratio)),
                ("cpu_lut_scalar".into(), measurement_json(&cpu_scalar)),
                ("cpu_lut_batch".into(), measurement_json(&cpu_batch)),
                ("cpu_ratio".into(), Json::Num(cpu_kernel_ratio)),
            ]),
        ),
        (
            "solvers".into(),
            Json::Obj(vec![
                ("exact".into(), measurement_json(&exact)),
                ("lut".into(), measurement_json(&lut)),
                ("lut_cold".into(), measurement_json(&lut_cold)),
                ("pv_lut_build".into(), measurement_json(&build)),
                ("speedup".into(), Json::Num(solver_speedup)),
                ("cold_speedup".into(), Json::Num(cold_speedup)),
                ("worst_relative_deviation".into(), Json::Num(deviation)),
            ]),
        ),
        (
            "peak_rss_bytes".into(),
            match hems_bench::harness::peak_rss_bytes() {
                Some(rss) => Json::Int(rss as i64),
                None => Json::Num(f64::NAN),
            },
        ),
        (
            "all_measurements".into(),
            Json::Arr(
                scaling
                    .iter()
                    .flat_map(|p| [&p.serial, &p.parallel, &p.batch])
                    .chain(c.results())
                    .map(measurement_json)
                    .collect(),
            ),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, report.render() + "\n").expect("write BENCH_sweep.json");
    println!("[sweep bench] wrote {path}");
}
