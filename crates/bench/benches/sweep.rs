//! The scenario-sweep benchmark: serial vs parallel engine throughput and
//! LUT vs exact solver speed, written to `BENCH_sweep.json` at the repo
//! root (plus the usual stdout report).
//!
//! Two comparisons, matching the performance claims this repo makes:
//!
//! 1. **Sweep engine** — the same scenario grid through
//!    `hems_sim::sweep::run_serial` and `run_parallel(available cores)`.
//!    The JSON records both medians, the speedup, and the core count (the
//!    speedup is only meaningful on multi-core machines; single-core CI
//!    still verifies determinism and overhead).
//! 2. **Solvers** — the full Fig. 6/7 analysis per light level (the
//!    unregulated intersection, the regulated optimum for all three
//!    topologies, the joint rail/supply optimization, the sustainable
//!    frontier, and the system-MEP search) on the exact device models vs
//!    the `PvLut`/`CpuLut` fast path. The headline comparison runs with
//!    *warm* tables — the steady-state a cache earns after one build per
//!    irradiance change — and the build cost is measured separately, along
//!    with a *cold* variant that rebuilds every table per pass and the
//!    worst relative deviation between the two paths' answers.
//!
//! Smoke mode (`HEMS_BENCH_SMOKE=1`): one iteration of everything, so CI
//! exercises every code path and still writes the JSON in seconds.

use hems_bench::harness::{measurement_json, Harness, Json};
use hems_core::{frontier, mep, operating_point, optimal_voltage, CpuEval, PvSource};
use hems_cpu::{CpuLut, Microprocessor};
use hems_pv::{Irradiance, PvLut, SolarCell};
use hems_regulator::{BuckRegulator, Ldo, Regulator, ScRegulator};
use hems_sim::sweep::{self, SweepGrid};
use hems_units::{Farads, Seconds, Volts};
use std::hint::black_box;

/// The grid both engine paths run: 4 light levels x 2 capacitors x
/// 2 regulators x 2 policies = 32 scenarios of 40 simulated ms each.
fn bench_grid() -> SweepGrid {
    let mut grid = SweepGrid::paper_baseline().expect("baseline grid");
    grid.irradiances = vec![
        Irradiance::FULL_SUN,
        Irradiance::HALF_SUN,
        Irradiance::QUARTER_SUN,
        Irradiance::new(0.1).expect("in range"),
    ];
    let c0 = grid.base.capacitor.capacitance();
    grid.capacitances = vec![c0, Farads::new(c0.farads() * 4.0)];
    grid.duration = Seconds::from_milli(40.0);
    grid
}

fn light_levels() -> Vec<Irradiance> {
    [1.0, 0.75, 0.5, 0.25, 0.1]
        .into_iter()
        .map(|g| Irradiance::new(g).expect("in range"))
        .collect()
}

/// The per-light-level Fig. 6/7 workload, generic over the model path:
/// the unregulated intersection (Fig. 6a), the regulated optimum for all
/// three topologies (Fig. 6b), the joint rail/supply optimization, the
/// sustainable frontier, and the system-MEP search (Fig. 7b). Returns an
/// accumulator so nothing is optimized away.
fn figure_workload(cell: &impl PvSource, cpu: &impl CpuEval, regs: &[&dyn Regulator]) -> f64 {
    let mut acc = 0.0;
    if let Ok(u) = operating_point::unregulated_point(cell, cpu) {
        acc += u.power.watts();
    }
    for reg in regs {
        if let Ok(plan) = optimal_voltage::optimal_regulated_plan(cell, *reg, cpu) {
            acc += plan.p_cpu.watts();
        }
    }
    if let Ok(plan) = optimal_voltage::optimal_joint_plan(cell, regs[0], cpu) {
        acc += plan.p_cpu.watts();
    }
    if let Ok(points) = frontier::sustainable_frontier(cell, regs[0], cpu, 33) {
        acc += points.len() as f64;
    }
    if let Ok(m) = mep::system_mep(cpu, regs[0], Volts::new(1.1)) {
        acc += m.energy_per_cycle.joules();
    }
    acc
}

/// The figure sweep on the exact models: every solver call re-solves the
/// implicit PV curve (MPP searches, intersection bisections) from scratch.
fn solver_sweep_exact(cpu: &Microprocessor, regs: &[&dyn Regulator]) -> f64 {
    light_levels()
        .into_iter()
        .map(|g| figure_workload(&SolarCell::kxob22(g), cpu, regs))
        .sum()
}

/// The same sweep on warm tables — prebuilt `PvLut`s (one per light
/// level, the cache's steady state) and a prebuilt `CpuLut`
/// (light-independent).
fn solver_sweep_lut(pv_luts: &[PvLut], cpu_lut: &CpuLut, regs: &[&dyn Regulator]) -> f64 {
    pv_luts
        .iter()
        .map(|pv_lut| figure_workload(pv_lut, cpu_lut, regs))
        .sum()
}

/// The cold variant: every pass pays the per-light-level `PvLut` build
/// before the workload — the worst case where the cache is rebuilt for
/// every figure instead of once per irradiance change.
fn solver_sweep_lut_cold(cpu_lut: &CpuLut, regs: &[&dyn Regulator]) -> f64 {
    light_levels()
        .into_iter()
        .filter_map(|g| PvLut::build_default(SolarCell::kxob22(g)).ok())
        .map(|pv_lut| figure_workload(&pv_lut, cpu_lut, regs))
        .sum()
}

/// Worst relative deviation between the two paths across the sweep's
/// headline outputs (plan power and MEP energy per light level).
fn solver_deviation(cpu: &Microprocessor, cpu_lut: &CpuLut, sc: &ScRegulator) -> f64 {
    let mut worst: f64 = 0.0;
    let mut dev = |fast: f64, exact: f64| {
        worst = worst.max((fast - exact).abs() / exact.abs().max(1e-12));
    };
    for g in light_levels() {
        let cell = SolarCell::kxob22(g);
        let pv_lut = PvLut::build_default(cell.clone()).expect("lit cell builds");
        if let (Ok(e), Ok(f)) = (
            optimal_voltage::optimal_joint_plan(&cell, sc, cpu),
            optimal_voltage::optimal_joint_plan(&pv_lut, sc, cpu_lut),
        ) {
            dev(f.p_cpu.watts(), e.p_cpu.watts());
        }
    }
    if let (Ok(e), Ok(f)) = (
        mep::system_mep(cpu, sc, Volts::new(1.1)),
        mep::system_mep(cpu_lut, sc, Volts::new(1.1)),
    ) {
        dev(f.energy_per_cycle.joules(), e.energy_per_cycle.joules());
    }
    worst
}

fn main() {
    let mut c = Harness::from_env();
    // `resolved_threads(None)` honours an `HEMS_THREADS` override before
    // falling back to the machine's parallelism, so a pinned CI box can
    // force the worker count the numbers were taken at.
    let cores = sweep::resolved_threads(None);
    println!(
        "[sweep bench] {} worker threads resolved (HEMS_THREADS {}){}",
        cores,
        std::env::var(sweep::THREADS_ENV)
            .map_or_else(|_| "unset".to_string(), |v| format!("= {v}")),
        if c.is_smoke() { " (smoke mode)" } else { "" }
    );

    // --- 1. Sweep engine: serial vs parallel over the same grid. ---
    let grid = bench_grid();
    // The engine clamps workers to the scenario count; report what ran.
    let workers_actual = cores.clamp(1, grid.len());
    let scenario_count = grid.len();
    let serial = c
        .bench_function("sweep/engine_serial", || {
            black_box(sweep::run_serial(&grid).expect("grid expands"))
        })
        .clone();
    let parallel = c
        .bench_function("sweep/engine_parallel", || {
            black_box(sweep::run_parallel(&grid, cores).expect("grid expands"))
        })
        .clone();
    let engine_speedup = serial.median_ns / parallel.median_ns;
    println!(
        "[sweep bench] engine speedup {engine_speedup:.2}x on {cores} cores \
         ({scenario_count} scenarios)"
    );

    // Determinism spot check alongside the timing (the sim crate's test
    // suite owns the full contract).
    let a = sweep::run_serial(&grid).expect("grid expands");
    let b = sweep::run_parallel(&grid, cores).expect("grid expands");
    assert_eq!(a, b, "parallel sweep must be bit-identical to serial");

    // --- 2. Solvers: exact vs LUT on Fig. 6/7-style sweeps. ---
    let cpu = Microprocessor::paper_65nm();
    let sc = ScRegulator::paper_65nm();
    let buck = BuckRegulator::paper_65nm();
    let ldo = Ldo::paper_65nm();
    let regs: [&dyn Regulator; 3] = [&sc, &buck, &ldo];
    let cpu_lut = CpuLut::build_default(cpu.clone());
    let pv_luts: Vec<PvLut> = light_levels()
        .into_iter()
        .map(|g| PvLut::build_default(SolarCell::kxob22(g)).expect("lit cell builds"))
        .collect();
    let exact = c
        .bench_function("solvers/fig67_sweep_exact", || {
            black_box(solver_sweep_exact(&cpu, &regs))
        })
        .clone();
    let lut = c
        .bench_function("solvers/fig67_sweep_lut", || {
            black_box(solver_sweep_lut(&pv_luts, &cpu_lut, &regs))
        })
        .clone();
    let lut_cold = c
        .bench_function("solvers/fig67_sweep_lut_cold", || {
            black_box(solver_sweep_lut_cold(&cpu_lut, &regs))
        })
        .clone();
    let build = c
        .bench_function("solvers/pv_lut_build", || {
            black_box(PvLut::build_default(SolarCell::kxob22(
                Irradiance::HALF_SUN,
            )))
        })
        .clone();
    let solver_speedup = exact.median_ns / lut.median_ns;
    let cold_speedup = exact.median_ns / lut_cold.median_ns;
    let deviation = solver_deviation(&cpu, &cpu_lut, &sc);
    println!(
        "[sweep bench] solver speedup {solver_speedup:.2}x warm / {cold_speedup:.2}x cold, \
         worst deviation {:.4}%",
        deviation * 100.0
    );

    // --- JSON report at the repo root. ---
    let report = Json::Obj(vec![
        ("schema".into(), Json::Str("hems-bench-sweep/1".into())),
        ("smoke".into(), Json::Bool(c.is_smoke())),
        ("threads_resolved".into(), Json::Int(cores as i64)),
        ("workers_actual".into(), Json::Int(workers_actual as i64)),
        (
            "threads_env".into(),
            match std::env::var(sweep::THREADS_ENV) {
                Ok(v) => Json::Str(v),
                Err(_) => Json::Str("unset".into()),
            },
        ),
        ("scenario_count".into(), Json::Int(scenario_count as i64)),
        (
            "engine".into(),
            Json::Obj(vec![
                ("serial".into(), measurement_json(&serial)),
                ("parallel".into(), measurement_json(&parallel)),
                ("speedup".into(), Json::Num(engine_speedup)),
            ]),
        ),
        (
            "solvers".into(),
            Json::Obj(vec![
                ("exact".into(), measurement_json(&exact)),
                ("lut".into(), measurement_json(&lut)),
                ("lut_cold".into(), measurement_json(&lut_cold)),
                ("pv_lut_build".into(), measurement_json(&build)),
                ("speedup".into(), Json::Num(solver_speedup)),
                ("cold_speedup".into(), Json::Num(cold_speedup)),
                ("worst_relative_deviation".into(), Json::Num(deviation)),
            ]),
        ),
        (
            "all_measurements".into(),
            Json::Arr(c.results().iter().map(measurement_json).collect()),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, report.render() + "\n").expect("write BENCH_sweep.json");
    println!("[sweep bench] wrote {path}");
}
