//! Fig. 11 — the end-to-end system demonstration.
//!
//! (a) The measured speed and energy-contributor curves of the test chip:
//!     frequency, dynamic/leakage energy per cycle, and the two MEP markers.
//! (b) The measured sprint-and-bypass waveform: light dims mid-job, the
//!     controller slows, sprints, then bypasses the regulator to extend
//!     operation (paper: +3 ms / +20 % operation, +10 % solar energy at a
//!     20 % sprint rate).

use hems_bench::harness::Harness;
use hems_bench::{f3, pct, print_series};
use hems_core::{mep, HolisticController, Mode};
use hems_cpu::Microprocessor;
use hems_pv::Irradiance;
use hems_regulator::ScRegulator;
use hems_sim::{Controller, FixedVoltageController, Job, LightProfile, Simulation, SystemConfig};
use hems_units::{Cycles, Seconds, Volts};
use std::hint::black_box;

fn fig11a() {
    let cpu = Microprocessor::paper_65nm();
    let sc = ScRegulator::paper_65nm();
    let v_in = Volts::new(1.1);
    let mut rows = Vec::new();
    for i in 0..=22 {
        let v = Volts::new(0.45 + (1.0 - 0.45) * i as f64 / 22.0);
        let f = cpu.max_frequency(v);
        let (e_dyn, e_leak) = cpu
            .energy_breakdown(v)
            .map(|b| (b.dynamic.value() * 1e12, b.leakage.value() * 1e12))
            .unwrap_or((f64::NAN, f64::NAN));
        let e_sys = mep::system_energy_per_cycle(&cpu, &sc, v_in, v)
            .map(|e| format!("{:.1}", e.value() * 1e12))
            .unwrap_or_else(|| "-".into());
        rows.push(vec![
            f3(v.volts()),
            format!("{:.2}", f.hertz() / 1e9),
            format!("{e_dyn:.1}"),
            format!("{e_leak:.1}"),
            e_sys,
        ]);
    }
    print_series(
        "Fig. 11a: speed and energy contributors vs Vdd",
        &[
            "Vdd (V)",
            "f (GHz)",
            "E_dyn (pJ)",
            "E_leak (pJ)",
            "E_sys (pJ)",
        ],
        &rows,
    );
    let conv = cpu.conventional_mep().unwrap();
    let holistic = mep::system_mep(&cpu, &sc, v_in).unwrap();
    println!(
        "[fig11a] conventional MEP {:.3} V; MEP w/ regulator {:.3} V (paper shows the regulated MEP above the conventional one)",
        conv.vdd.volts(),
        holistic.vdd.volts()
    );
}

struct DemoOutcome {
    active_ms: f64,
    harvested_uj: f64,
    completed: usize,
}

fn run_demo(controller: &mut dyn Controller, beta_note: &str) -> DemoOutcome {
    let config = SystemConfig::paper_sc_system().expect("valid config");
    let light = LightProfile::step(
        Irradiance::FULL_SUN,
        Irradiance::QUARTER_SUN,
        Seconds::from_milli(2.0),
    );
    // Start just below the dimmed cell's MPP so the discharge transit runs
    // through the region where harvested power rises with node voltage —
    // the regime Fig. 11b's measured waveform shows (1.2 V down to 0.5 V,
    // mostly below the new MPP).
    let mut sim = Simulation::new(config, light, Volts::new(1.0)).expect("valid sim");
    sim.enqueue(Job::new(Cycles::new(8.0e6)));
    let summary = sim.run(controller, Seconds::from_milli(60.0));
    let _ = beta_note;
    DemoOutcome {
        active_ms: summary.ledger.active_time.to_milli(),
        harvested_uj: summary.ledger.harvested.to_micro(),
        completed: summary.completed_jobs,
    }
}

fn fig11b() {
    let deadline = Seconds::from_milli(60.0);
    // Conventional: fixed 0.55 V through the regulator, no bypass, no sprint.
    let mut conventional = FixedVoltageController::new(Volts::new(0.55));
    let conv = run_demo(&mut conventional, "conventional");
    // Holistic without sprinting (beta = 0): bypass only.
    let mut no_sprint = HolisticController::paper_default(Mode::Deadline {
        deadline,
        beta: 0.0,
    });
    let flat = run_demo(&mut no_sprint, "bypass only");
    // Full holistic: sprint at 20 % + bypass.
    let mut holistic = HolisticController::paper_default(Mode::Deadline {
        deadline,
        beta: 0.2,
    });
    let full = run_demo(&mut holistic, "sprint+bypass");

    let rows = vec![
        vec![
            "conventional (fixed 0.55 V)".to_string(),
            format!("{:.1}", conv.active_ms),
            format!("{:.1}", conv.harvested_uj),
            conv.completed.to_string(),
        ],
        vec![
            "holistic, bypass only".to_string(),
            format!("{:.1}", flat.active_ms),
            format!("{:.1}", flat.harvested_uj),
            flat.completed.to_string(),
        ],
        vec![
            "holistic, sprint 20% + bypass".to_string(),
            format!("{:.1}", full.active_ms),
            format!("{:.1}", full.harvested_uj),
            full.completed.to_string(),
        ],
    ];
    print_series(
        "Fig. 11b: dimming-light operation (paper: bypass extends operation ~20%, sprint absorbs ~10% more solar)",
        &["controller", "active (ms)", "harvested (uJ)", "jobs done"],
        &rows,
    );
    println!(
        "[fig11b] operation extension vs conventional: {} | extra solar vs bypass-only: {}",
        pct(full.active_ms / conv.active_ms - 1.0),
        pct(full.harvested_uj / flat.harvested_uj - 1.0),
    );
}

fn main() {
    let mut c = Harness::from_env();
    fig11a();
    fig11b();
    c.bench_function("fig11/system_demo_run", || {
        let mut ctl = HolisticController::paper_default(Mode::Deadline {
            deadline: Seconds::from_milli(60.0),
            beta: 0.2,
        });
        black_box(run_demo(&mut ctl, "bench").active_ms)
    });
}
