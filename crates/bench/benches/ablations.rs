//! Ablation studies called out in DESIGN.md.
//!
//! * regulator choice at each light level (extends Figs. 6–7);
//! * comparator threshold spacing vs Pin-estimate accuracy (Fig. 8 design
//!   knob);
//! * MPPT algorithm shoot-out (P&O vs fractional-Voc vs time-based) on a
//!   cloudy trace;
//! * simulator timestep convergence.

use hems_bench::harness::Harness;
use hems_bench::{f3, print_series};
use hems_core::analysis;
use hems_cpu::{DvfsLadder, Microprocessor};
use hems_mppt::{
    FractionalVoc, MppLookupTable, MppTracker, Observation, PerturbObserve, TimeBasedTracker,
};
use hems_pv::{Irradiance, SolarCell};
use hems_sim::{LightProfile, MpptDvfsController, OcSampling, Simulation, SystemConfig};
use hems_storage::{Capacitor, ComparatorBank};
use hems_units::{Efficiency, Farads, Seconds, Volts, Watts};
use std::hint::black_box;

fn regulator_choice_by_light() {
    let cpu = Microprocessor::paper_65nm();
    let mut rows = Vec::new();
    for g in [
        Irradiance::FULL_SUN,
        Irradiance::HALF_SUN,
        Irradiance::QUARTER_SUN,
    ] {
        let cell = SolarCell::kxob22(g);
        if let Ok(a) = analysis::fig6(&cell, &cpu) {
            let mut best: Option<(String, f64)> = None;
            for (kind, plan) in &a.plans {
                let mhz = plan.frequency.to_mega();
                if best.as_ref().is_none_or(|(_, b)| mhz > *b) {
                    best = Some((kind.to_string(), mhz));
                }
            }
            let unreg = a.unregulated.frequency.to_mega();
            if unreg > best.as_ref().map_or(0.0, |(_, b)| *b) {
                best = Some(("bypass".into(), unreg));
            }
            let (winner, mhz) = best.expect("some path is feasible");
            rows.push(vec![g.to_string(), winner, format!("{mhz:.1}")]);
        }
    }
    print_series(
        "Ablation: best power path per light level",
        &["light", "winner", "f (MHz)"],
        &rows,
    );
}

fn threshold_spacing_accuracy() {
    // How does the V1-V2 spacing affect the eq. 7 estimate's accuracy?
    let mut rows = Vec::new();
    for spacing_mv in [25.0, 50.0, 100.0, 200.0] {
        let v1 = Volts::new(1.0);
        let v2 = v1 - Volts::from_milli(spacing_mv);
        let mut cell = SolarCell::kxob22(Irradiance::FULL_SUN);
        let mut cap = Capacitor::paper_board();
        cap.set_voltage(Volts::new(1.05)).unwrap();
        let mut bank = ComparatorBank::new(&[v1, v2], Volts::from_milli(2.0)).expect("valid bank");
        let mut tracker = TimeBasedTracker::new(
            Farads::from_micro(100.0),
            v1,
            v2,
            MppLookupTable::paper_default(),
            Volts::new(1.1),
        )
        .expect("valid tracker");
        cell.set_irradiance(Irradiance::QUARTER_SUN);
        let p_drawn = Watts::from_milli(8.0);
        let dt = Seconds::from_micro(50.0);
        let mut estimate = None;
        for i in 0..40_000u64 {
            let now = Seconds::new(i as f64 * dt.seconds());
            let p_harvest = cell.power_at(cap.voltage());
            cap.step_power(p_harvest - p_drawn, dt);
            let mut obs = Observation::basic(now, cap.voltage(), p_drawn, Efficiency::UNITY);
            obs.crossings = bank.update(cap.voltage(), now);
            tracker.update(&obs);
            if let Some(est) = tracker.last_estimate() {
                estimate = Some(est);
                break;
            }
        }
        let mid = (v1 + v2) * 0.5;
        let truth = SolarCell::kxob22(Irradiance::QUARTER_SUN).power_at(mid);
        let err = estimate
            .map(|e| format!("{:.1}%", ((e / truth) - 1.0).abs() * 100.0))
            .unwrap_or_else(|| "no estimate".into());
        rows.push(vec![format!("{spacing_mv:.0} mV"), err]);
    }
    print_series(
        "Ablation: comparator spacing vs Pin estimate error",
        &["V1-V2 spacing", "estimate error"],
        &rows,
    );
}

fn mppt_shootout() {
    // Cloudy-day harvest comparison across tracking algorithms.
    let run = |mk: &dyn Fn() -> MpptDvfsController| {
        let config = SystemConfig::paper_sc_system().expect("valid");
        let light = LightProfile::clouds(
            Irradiance::QUARTER_SUN,
            Irradiance::FULL_SUN,
            Seconds::from_milli(300.0),
            Seconds::new(5.0),
            2024,
        );
        let mut sim = Simulation::new(config, light, Volts::new(1.1)).expect("valid");
        let mut ctl = mk();
        let summary = sim.run(&mut ctl, Seconds::new(5.0));
        (
            summary.ledger.harvested.to_milli(),
            summary.total_cycles.count() / 1e6,
        )
    };
    let ladder = DvfsLadder::paper_65nm();
    let period = Seconds::from_milli(1.0);
    let mut rows = Vec::new();
    let (h, cyc) = run(&|| {
        MpptDvfsController::new(
            Box::new(PerturbObserve::paper_default()),
            ladder.clone(),
            period,
        )
        .with_power_sensor()
    });
    rows.push(vec!["perturb-observe".into(), f3(h), f3(cyc)]);
    let (h, cyc) = run(&|| {
        MpptDvfsController::new(
            Box::new(FractionalVoc::paper_default()),
            ladder.clone(),
            period,
        )
        .with_oc_sampling(OcSampling {
            period: Seconds::from_milli(500.0),
            duration: Seconds::from_milli(20.0),
        })
    });
    rows.push(vec!["fractional-voc".into(), f3(h), f3(cyc)]);
    let (h, cyc) = run(&|| {
        MpptDvfsController::new(
            Box::new(TimeBasedTracker::paper_default()),
            ladder.clone(),
            period,
        )
    });
    rows.push(vec!["time-based (paper)".into(), f3(h), f3(cyc)]);
    print_series(
        "Ablation: MPPT algorithms on a 5 s cloudy trace",
        &["tracker", "harvested (mJ)", "cycles (M)"],
        &rows,
    );
}

fn joint_rail_optimization() {
    // Beyond the paper: jointly choosing the solar-node voltage and the
    // supply voltage (optimal_joint_plan) vs pinning the rail at the cell
    // MPP (eqs. 1-4). With a continuous Vdd the two coincide; the table
    // also shows the quantized-Vdd efficiency cliff that makes the rail
    // choice decisive at runtime (see DESIGN.md section 7).
    let cpu = Microprocessor::paper_65nm();
    let sc = hems_regulator::ScRegulator::paper_65nm();
    let mut rows = Vec::new();
    for g in [
        Irradiance::FULL_SUN,
        Irradiance::HALF_SUN,
        Irradiance::new(0.35).unwrap(),
    ] {
        let cell = SolarCell::kxob22(g);
        let (Ok(pinned), Ok(joint)) = (
            hems_core::optimal_voltage::optimal_regulated_plan(&cell, &sc, &cpu),
            hems_core::optimal_voltage::optimal_joint_plan(&cell, &sc, &cpu),
        ) else {
            continue;
        };
        rows.push(vec![
            g.to_string(),
            f3(pinned.v_solar.volts()),
            format!("{:.1}", pinned.frequency.to_mega()),
            f3(joint.v_solar.volts()),
            format!("{:.1}", joint.frequency.to_mega()),
        ]);
    }
    print_series(
        "Ablation: MPP-pinned (eqs. 1-4) vs joint rail+supply optimization",
        &[
            "light",
            "pinned rail (V)",
            "f (MHz)",
            "joint rail (V)",
            "f (MHz)",
        ],
        &rows,
    );
    // The quantized-Vdd cliff itself.
    use hems_regulator::Regulator;
    let eta = |rail: f64| {
        sc.efficiency(
            Volts::new(rail),
            Volts::new(0.5),
            hems_units::Watts::from_milli(5.0),
        )
        .unwrap()
        .percent()
    };
    println!(
        "[joint] quantized 0.5 V rung at half sun: rail 0.998 V -> {:.1}% vs rail 1.010 V -> {:.1}%",
        eta(0.998),
        eta(1.010)
    );
}

fn holistic_vs_oracle() {
    // Upper bound: an "oracle" that knows the (constant) light level can
    // precompute the eqs. 1-4 optimum and pin it. How close does the
    // runtime controller — which must discover everything through the
    // comparators — get?
    let cpu = Microprocessor::paper_65nm();
    let mut rows = Vec::new();
    for g in [Irradiance::FULL_SUN, Irradiance::HALF_SUN] {
        let cell = SolarCell::kxob22(g);
        let sc = hems_regulator::ScRegulator::paper_65nm();
        let plan =
            hems_core::optimal_voltage::optimal_regulated_plan(&cell, &sc, &cpu).expect("feasible");
        let run = |ctl: &mut dyn hems_sim::Controller| {
            let mut config = SystemConfig::paper_sc_system().expect("valid");
            config.cell = cell.clone();
            let mut sim =
                Simulation::new(config, LightProfile::constant(g), Volts::new(1.1)).expect("valid");
            sim.run(ctl, Seconds::new(2.0)).total_cycles.count() / 1e6
        };
        let mut oracle = hems_sim::FixedVoltageController::with_clock_fraction(
            plan.vdd,
            plan.clock_fraction.min(1.0) * 0.99, // a hair of margin to avoid drift
        );
        let oracle_cycles = run(&mut oracle);
        let mut holistic =
            hems_core::HolisticController::paper_default(hems_core::Mode::MaxPerformance);
        let holistic_cycles = run(&mut holistic);
        rows.push(vec![
            g.to_string(),
            f3(oracle_cycles),
            f3(holistic_cycles),
            format!("{:.1}%", holistic_cycles / oracle_cycles * 100.0),
        ]);
    }
    print_series(
        "Ablation: runtime holistic controller vs light-omniscient oracle (2 s)",
        &[
            "light",
            "oracle (Mcyc)",
            "holistic (Mcyc)",
            "fraction of oracle",
        ],
        &rows,
    );
}

fn energy_performance_frontier() {
    // The frontier connecting Section IV (max performance) and Section V
    // (min energy): Pareto-optimal sustainable operating points.
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    let sc = hems_regulator::ScRegulator::paper_65nm();
    let cpu = Microprocessor::paper_65nm();
    let sweep = hems_core::frontier::sustainable_frontier(&cell, &sc, &cpu, 48).expect("feasible");
    let front = hems_core::frontier::pareto_front(&sweep);
    let rows: Vec<Vec<String>> = front
        .iter()
        .map(|p| {
            vec![
                f3(p.vdd.volts()),
                format!("{:.1}", p.frequency.to_mega()),
                f3(p.clock_fraction),
                format!("{:.1}", p.energy_per_cycle.value() * 1e12),
            ]
        })
        .collect();
    print_series(
        "Ablation: Pareto frontier of sustainable operating points (full sun, SC)",
        &["Vdd (V)", "f (MHz)", "clock frac", "E/cyc (pJ)"],
        &rows,
    );
}

fn dvfs_transition_sensitivity() {
    // How much does a real (non-ideal) DVFS transition cost the trackers?
    let run = |transition: Option<hems_sim::DvfsTransition>| {
        let mut config = SystemConfig::paper_sc_system().expect("valid");
        config.dvfs_transition = transition;
        let light = LightProfile::clouds(
            Irradiance::QUARTER_SUN,
            Irradiance::FULL_SUN,
            Seconds::from_milli(300.0),
            Seconds::new(3.0),
            2024,
        );
        let mut sim = Simulation::new(config, light, Volts::new(1.1)).expect("valid");
        let mut ctl = MpptDvfsController::new(
            Box::new(TimeBasedTracker::paper_default()),
            DvfsLadder::paper_65nm(),
            Seconds::from_milli(1.0),
        );
        let summary = sim.run(&mut ctl, Seconds::new(3.0));
        summary.total_cycles.count() / 1e6
    };
    let ideal = run(None);
    let real = run(Some(hems_sim::DvfsTransition::paper_integrated()));
    let slow = run(Some(hems_sim::DvfsTransition {
        latency: Seconds::from_micro(500.0),
        energy: hems_units::Joules::new(2e-6),
    }));
    print_series(
        "Ablation: DVFS transition cost (time-based MPPT, 3 s clouds)",
        &["transition model", "cycles (M)"],
        &[
            vec!["ideal (instant)".into(), f3(ideal)],
            vec!["integrated (20 us / 50 nJ)".into(), f3(real)],
            vec!["discrete-module (500 us / 2 uJ)".into(), f3(slow)],
        ],
    );
}

fn timestep_convergence() {
    let mut rows = Vec::new();
    for dt_us in [200.0, 100.0, 50.0, 25.0, 10.0] {
        let mut config = SystemConfig::paper_sc_system().expect("valid");
        config.dt = Seconds::from_micro(dt_us);
        let light = LightProfile::constant(Irradiance::HALF_SUN);
        let mut sim = Simulation::new(config, light, Volts::new(1.1)).expect("valid");
        let mut ctl = hems_sim::FixedVoltageController::new(Volts::new(0.55));
        let summary = sim.run(&mut ctl, Seconds::from_milli(100.0));
        rows.push(vec![
            format!("{dt_us:.0} us"),
            f3(summary.final_v_solar.volts()),
            format!("{:.2}", summary.ledger.harvested.to_micro()),
        ]);
    }
    print_series(
        "Ablation: timestep convergence (100 ms run, half sun)",
        &["dt", "final V (V)", "harvested (uJ)"],
        &rows,
    );
}

fn main() {
    let mut c = Harness::from_env();
    regulator_choice_by_light();
    threshold_spacing_accuracy();
    mppt_shootout();
    joint_rail_optimization();
    holistic_vs_oracle();
    energy_performance_frontier();
    dvfs_transition_sensitivity();
    timestep_convergence();
    let config = SystemConfig::paper_sc_system().expect("valid");
    let light = LightProfile::constant(Irradiance::FULL_SUN);
    c.bench_function("ablations/sim_throughput_steps_per_sec", || {
        let mut sim =
            Simulation::new(config.clone(), light.clone(), Volts::new(1.1)).expect("valid");
        let mut ctl = hems_sim::FixedVoltageController::new(Volts::new(0.55));
        black_box(sim.run(&mut ctl, Seconds::from_milli(50.0)))
    });
}
