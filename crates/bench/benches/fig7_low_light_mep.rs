//! Fig. 7 — (a) regulated vs bypass deliverable power across light levels,
//! (b) conventional vs holistic minimum-energy point.

use hems_bench::harness::Harness;
use hems_bench::{f3, mw, pct, print_series};
use hems_core::{analysis, mep, BypassPolicy};
use hems_cpu::Microprocessor;
use hems_pv::{Irradiance, SolarCellModel};
use hems_regulator::ScRegulator;
use hems_units::Volts;
use std::hint::black_box;

fn regenerate() {
    let model = SolarCellModel::kxob22();
    let cpu = Microprocessor::paper_65nm();
    let sc = ScRegulator::paper_65nm();

    // Fig. 7a: path comparison across light.
    let lights = [
        Irradiance::FULL_SUN,
        Irradiance::new(0.75).unwrap(),
        Irradiance::HALF_SUN,
        Irradiance::new(0.375).unwrap(),
        Irradiance::QUARTER_SUN,
        Irradiance::new(0.15).unwrap(),
        Irradiance::OVERCAST,
    ];
    let rows: Vec<Vec<String>> = analysis::fig7a(&model, &sc, &cpu, &lights)
        .iter()
        .map(|cmp| {
            vec![
                cmp.irradiance.to_string(),
                mw(cmp.regulated),
                mw(cmp.bypassed),
                if cmp.bypass_wins() {
                    "bypass"
                } else {
                    "regulated"
                }
                .to_string(),
            ]
        })
        .collect();
    print_series(
        "Fig. 7a: deliverable CPU power per path (paper: bypass wins under ~25% light)",
        &["light", "regulated (mW)", "bypassed (mW)", "winner"],
        &rows,
    );
    if let Ok(policy) = BypassPolicy::calibrate(
        &model,
        &sc,
        &cpu,
        Irradiance::new(0.05).unwrap(),
        Irradiance::FULL_SUN,
    ) {
        println!(
            "[fig7a] calibrated bypass crossover: {}",
            policy.crossover()
        );
    }

    // Fig. 7b: MEP comparison per regulator.
    let v_in = Volts::new(1.1); // full-sun MPP rail
    let rows: Vec<Vec<String>> = analysis::fig7b(&cpu, v_in)
        .iter()
        .map(|(kind, cmp)| {
            vec![
                kind.to_string(),
                f3(cmp.conventional.vdd.volts()),
                f3(cmp.holistic.vdd.volts()),
                format!("{:+.0} mV", cmp.voltage_shift().to_milli()),
                pct(cmp.energy_savings()),
            ]
        })
        .collect();
    print_series(
        "Fig. 7b: conventional vs holistic MEP (paper: +0.1 V shift, 31% savings)",
        &[
            "regulator",
            "conv MEP (V)",
            "holistic MEP (V)",
            "shift",
            "savings",
        ],
        &rows,
    );
}

fn main() {
    let mut c = Harness::from_env();
    regenerate();
    let cpu = Microprocessor::paper_65nm();
    let sc = ScRegulator::paper_65nm();
    c.bench_function("fig7/mep_comparison", || {
        black_box(mep::compare_meps(&cpu, &sc, Volts::new(1.1)).unwrap())
    });
    // The LUT fast path (processor transcendentals tabulated).
    let cpu_lut = hems_cpu::CpuLut::build_default(cpu.clone());
    c.bench_function("fig7/mep_comparison_lut", || {
        black_box(mep::compare_meps(&cpu_lut, &sc, Volts::new(1.1)).unwrap())
    });
    let model = SolarCellModel::kxob22();
    c.bench_function("fig7/bypass_compare_quarter_sun", || {
        black_box(BypassPolicy::compare_at(
            &model,
            &sc,
            &cpu,
            Irradiance::QUARTER_SUN,
        ))
    });
}
