//! Fig. 4 — switched-capacitor regulator efficiency at full and half load
//! (67 % / 64 % @ 0.55 V).

use hems_bench::harness::Harness;
use hems_bench::{f3, print_series};
use hems_regulator::{EfficiencySweep, Regulator, ScRegulator};
use hems_units::{Volts, Watts};
use std::hint::black_box;

fn regenerate() -> Vec<Vec<String>> {
    let sc = ScRegulator::paper_65nm();
    let mut rows = Vec::new();
    for (name, p) in [("full (10 mW)", 10.0), ("half (5 mW)", 5.0)] {
        let sweep = EfficiencySweep::sample(
            &sc,
            Volts::new(1.2),
            Volts::new(0.15),
            Volts::new(1.0),
            Watts::from_milli(p),
            18,
        )
        .expect("valid sweep");
        for point in sweep.points() {
            rows.push(vec![
                name.to_string(),
                f3(point.v_out.volts()),
                point
                    .efficiency
                    .map(|e| format!("{:.1}", e * 100.0))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        let anchor = sc
            .efficiency(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(p))
            .unwrap();
        println!(
            "[fig4] SC at 0.55 V / {name}: {:.1}% (paper: {})",
            anchor.percent(),
            if p == 10.0 { "67%" } else { "64%" }
        );
    }
    rows
}

fn main() {
    let mut c = Harness::from_env();
    let rows = regenerate();
    print_series(
        "Fig. 4: SC regulator efficiency",
        &["load", "Vout (V)", "eta (%)"],
        &rows,
    );
    let sc = ScRegulator::paper_65nm();
    c.bench_function("fig4/sc_convert", || {
        black_box(
            sc.convert(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(10.0))
                .unwrap(),
        )
    });
}
