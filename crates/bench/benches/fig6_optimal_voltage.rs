//! Fig. 6 — the holistic optimal voltage point (eqs. 1–4).
//!
//! (a) The solar P-V curve vs the processor's max-speed P-V curve and
//!     their unregulated intersection.
//! (b) The regulated optimum per regulator, with the headline "+31 %
//!     power / +18 % speed" SC numbers.

use hems_bench::harness::Harness;
use hems_bench::{f3, mw, print_series};
use hems_core::analysis;
use hems_cpu::{CpuLut, Microprocessor};
use hems_pv::{Irradiance, PvLut, SolarCell};
use hems_units::Volts;
use std::hint::black_box;

fn regenerate() {
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    let cpu = Microprocessor::paper_65nm();

    // Fig. 6a: the two power-voltage curves.
    let mut rows = Vec::new();
    for i in 0..=20 {
        let v = Volts::new(0.45 + (1.45 - 0.45) * i as f64 / 20.0);
        let p_solar = cell.power_at(v);
        let p_cpu = cpu
            .power_at_max_speed(v)
            .map(mw)
            .unwrap_or_else(|_| "-".into());
        rows.push(vec![f3(v.volts()), mw(p_solar), p_cpu]);
    }
    print_series(
        "Fig. 6a: power-voltage curves (full sun)",
        &["V (V)", "P_solar (mW)", "P_cpu@max (mW)"],
        &rows,
    );

    // Fig. 6b: per-regulator optimum vs the unregulated intersection.
    let analysis = analysis::fig6(&cell, &cpu).expect("full sun is feasible");
    let u = analysis.unregulated;
    println!(
        "[fig6] unregulated: {:.3} V, {:.1} MHz, {:.2} mW",
        u.vdd.volts(),
        u.frequency.to_mega(),
        u.power.to_milli()
    );
    let mut rows = Vec::new();
    for (kind, plan) in &analysis.plans {
        rows.push(vec![
            kind.to_string(),
            f3(plan.vdd.volts()),
            format!("{:.1}", plan.frequency.to_mega()),
            mw(plan.p_cpu),
            format!("{:+.1}%", (plan.power_gain_vs(&u) - 1.0) * 100.0),
            format!("{:+.1}%", (plan.speedup_vs(&u) - 1.0) * 100.0),
        ]);
    }
    print_series(
        "Fig. 6b: optimal regulated plans vs unregulated (paper: SC +31% power, +18% speed)",
        &[
            "regulator",
            "Vdd (V)",
            "f (MHz)",
            "P_cpu (mW)",
            "power",
            "speed",
        ],
        &rows,
    );
}

fn main() {
    let mut c = Harness::from_env();
    regenerate();
    let cell = SolarCell::kxob22(Irradiance::FULL_SUN);
    let cpu = Microprocessor::paper_65nm();
    c.bench_function("fig6/full_analysis", || {
        black_box(analysis::fig6(&cell, &cpu).unwrap())
    });
    let sc = hems_regulator::ScRegulator::paper_65nm();
    c.bench_function("fig6/optimal_plan_sc", || {
        black_box(hems_core::optimal_voltage::optimal_regulated_plan(&cell, &sc, &cpu).unwrap())
    });
    // The LUT fast path the sweep engine runs on (build cost excluded:
    // tables amortize over a whole scenario sweep).
    let pv_lut = PvLut::build_default(cell.clone()).expect("full sun builds");
    let cpu_lut = CpuLut::build_default(cpu.clone());
    c.bench_function("fig6/optimal_plan_sc_lut", || {
        black_box(
            hems_core::optimal_voltage::optimal_regulated_plan(&pv_lut, &sc, &cpu_lut).unwrap(),
        )
    });
}
