//! Extension ablation: checkpoint policy × NVM technology under the
//! brownouts the holistic system still experiences.
//!
//! Not a paper figure — the paper's Section I cites the intermittent-
//! computing line of work (Hibernus, Alpaca) as the software context of
//! battery-less operation; this bench quantifies how the checkpointing
//! design space interacts with the energy-management layer built here.

use hems_bench::harness::Harness;
use hems_bench::{f3, print_series};
use hems_core::{HolisticController, Mode};
use hems_intermittent::{CheckpointPolicy, IntermittentRuntime, NvmModel, Task, TaskChain};
use hems_pv::Irradiance;
use hems_sim::{LightProfile, Simulation, SystemConfig};
use hems_units::{Cycles, Seconds, Volts};
use std::hint::black_box;

fn batch_chain() -> TaskChain {
    let mut tasks = Vec::new();
    for i in 0..8 {
        tasks.push(Task::new(
            format!("scan-{i}"),
            Cycles::new(170_000.0),
            2_048,
        ));
        tasks.push(Task::new(
            format!("process-{i}"),
            Cycles::new(875_000.0),
            512,
        ));
    }
    tasks.push(Task::new("report", Cycles::new(10_000.0), 16));
    TaskChain::new(tasks).expect("valid chain")
}

fn run_policy(policy: CheckpointPolicy, nvm: NvmModel) -> hems_intermittent::ForwardProgress {
    let mut runtime = IntermittentRuntime::new(batch_chain(), policy, nvm);
    let config = SystemConfig::paper_sc_system().expect("valid config");
    let light = LightProfile::clouds(
        Irradiance::DARK,
        Irradiance::FULL_SUN,
        Seconds::from_milli(400.0),
        Seconds::new(4.0),
        31,
    );
    let mut sim = Simulation::new(config, light, Volts::new(1.0)).expect("valid sim");
    let mut ctl = HolisticController::paper_default(Mode::MaxPerformance);
    runtime.run(&mut sim, &mut ctl, Seconds::new(4.0))
}

fn regenerate() {
    let mut rows = Vec::new();
    let policies: [(&str, CheckpointPolicy); 4] = [
        ("every task", CheckpointPolicy::EveryTask),
        ("every 4 tasks", CheckpointPolicy::EveryNTasks(4)),
        (
            "below 0.8 V",
            CheckpointPolicy::OnLowVoltage {
                threshold: Volts::new(0.8),
            },
        ),
        ("chain restart", CheckpointPolicy::ChainBoundary),
    ];
    for (nvm_name, nvm) in [("FRAM", NvmModel::fram()), ("flash", NvmModel::flash())] {
        for (name, policy) in policies {
            let r = run_policy(policy, nvm);
            rows.push(vec![
                nvm_name.to_string(),
                name.to_string(),
                r.chain_completions.to_string(),
                f3(r.goodput()),
                format!("{:.2}", r.wasted_cycles.count() / 1e6),
                format!("{:.2}", r.checkpoint_cycles.count() / 1e6),
                r.rollbacks.to_string(),
            ]);
        }
    }
    print_series(
        "Intermittency ablation: checkpoint policy x NVM under cloud-driven brownouts",
        &[
            "NVM",
            "policy",
            "batches",
            "goodput",
            "wasted (Mcyc)",
            "ckpt (Mcyc)",
            "rollbacks",
        ],
        &rows,
    );
}

fn main() {
    let mut c = Harness::from_env();
    regenerate();
    c.bench_function("intermittency/every_task_fram", || {
        black_box(run_policy(CheckpointPolicy::EveryTask, NvmModel::fram()))
    });
}
