//! Fig. 3 — LDO efficiency vs output voltage (45 % @ 0.55 V).

use hems_bench::harness::Harness;
use hems_bench::{f3, print_series};
use hems_regulator::{EfficiencySweep, Ldo, Regulator};
use hems_units::{Volts, Watts};
use std::hint::black_box;

fn regenerate() -> Vec<Vec<String>> {
    let ldo = Ldo::paper_65nm();
    let sweep = EfficiencySweep::sample(
        &ldo,
        Volts::new(1.2),
        Volts::new(0.1),
        Volts::new(1.1),
        Watts::from_milli(10.0),
        21,
    )
    .expect("valid sweep");
    let anchor = ldo
        .efficiency(Volts::new(1.2), Volts::new(0.55), Watts::from_milli(10.0))
        .unwrap();
    println!(
        "[fig3] LDO at 0.55 V / 10 mW: {:.1}% (paper: 45%)",
        anchor.percent()
    );
    sweep
        .points()
        .iter()
        .map(|p| {
            vec![
                f3(p.v_out.volts()),
                p.efficiency
                    .map(|e| format!("{:.1}", e * 100.0))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect()
}

fn main() {
    let mut c = Harness::from_env();
    let rows = regenerate();
    print_series("Fig. 3: LDO efficiency", &["Vout (V)", "eta (%)"], &rows);
    let ldo = Ldo::paper_65nm();
    c.bench_function("fig3/ldo_sweep", || {
        black_box(
            EfficiencySweep::sample(
                &ldo,
                Volts::new(1.2),
                Volts::new(0.1),
                Volts::new(1.1),
                Watts::from_milli(10.0),
                64,
            )
            .unwrap(),
        )
    });
}
