//! Shared helpers for the figure-regeneration benches.
//!
//! Every `benches/figN_*.rs` target regenerates the data series of one
//! figure from the paper's evaluation, prints the rows (so `cargo bench`
//! output doubles as the reproduction record collected in EXPERIMENTS.md),
//! and measures the computation that produced them on the in-repo
//! [`harness`] (wall-clock median/p95 + throughput, no external crates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

/// Prints a titled data series as aligned columns.
///
/// `header` names the columns; each row must have the same arity.
///
/// # Panics
///
/// Panics if a row's arity differs from the header's.
pub fn print_series(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    for row in rows {
        assert_eq!(row.len(), header.len(), "row arity mismatch");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: Vec<&str>| {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header.to_vec()));
    for row in rows {
        println!("{}", fmt_row(row.iter().map(|s| s.as_str()).collect()));
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats watts as milliwatts with 2 decimals.
pub fn mw(w: hems_units::Watts) -> String {
    format!("{:.2}", w.to_milli())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.314), "31.4%");
        assert_eq!(mw(hems_units::Watts::from_milli(9.876)), "9.88");
    }

    #[test]
    fn print_series_accepts_matching_rows() {
        print_series(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["30".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn print_series_rejects_ragged_rows() {
        print_series("demo", &["a", "b"], &[vec!["1".into()]]);
    }
}
