//! A self-contained wall-clock micro-benchmark harness.
//!
//! The figure benches previously rode on Criterion; that dependency cannot
//! resolve offline, so this module provides the small slice of it the repo
//! actually needs: warmup, repeated timed samples, median/p95/min/mean
//! statistics, and a throughput figure — ~150 lines, `std`-only.
//!
//! Methodology: each *sample* times a batch of `batch` calls, where
//! `batch` is auto-calibrated during warmup so one batch spans at least
//! ~1 ms (per-call timer overhead would otherwise dominate fast
//! functions like table lookups). Timestamps come from
//! `hems_obs::clock::monotonic_ns` — the workspace's single wall-clock
//! choke point (enforced by the `clock` lint rule), so the bench numbers
//! and the telemetry spans share one clock. Statistics are computed over per-call
//! times (`batch_elapsed / batch`); the median is the headline number —
//! robust to the occasional scheduler hiccup a p95 exists to expose.
//!
//! **Smoke mode** (`HEMS_BENCH_SMOKE=1`, or [`Harness::smoke`]): one
//! sample of one call, no warmup — CI checks that every bench *runs*
//! without paying for statistics.

use hems_obs::clock::monotonic_ns;
use std::hint::black_box;

/// Target minimum duration of one timed batch, in nanoseconds.
const MIN_BATCH_NS: f64 = 1e6;
/// Hard cap on batch growth during calibration.
const MAX_BATCH: usize = 1 << 22;

/// Statistics of one benchmarked function.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The benchmark's name (`group/case` by convention).
    pub name: String,
    /// Timed samples taken.
    pub samples: usize,
    /// Calls per sample.
    pub batch: usize,
    /// Median per-call time, nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-call time, nanoseconds.
    pub p95_ns: f64,
    /// Fastest per-call time, nanoseconds.
    pub min_ns: f64,
    /// Mean per-call time, nanoseconds.
    pub mean_ns: f64,
}

impl Measurement {
    /// Calls per second at the median time.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.median_ns > 0.0 {
            1e9 / self.median_ns
        } else {
            f64::INFINITY
        }
    }
}

/// Formats a nanosecond count with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark runner: collects [`Measurement`]s and prints one summary
/// line per bench as it completes.
#[derive(Debug)]
pub struct Harness {
    warmup_samples: usize,
    samples: usize,
    smoke: bool,
    results: Vec<Measurement>,
}

impl Harness {
    /// A harness with explicit warmup/sample counts.
    pub fn new(warmup_samples: usize, samples: usize) -> Harness {
        Harness {
            warmup_samples,
            samples: samples.max(1),
            smoke: false,
            results: Vec::new(),
        }
    }

    /// Smoke mode: one un-warmed sample of one call per bench.
    pub fn smoke() -> Harness {
        Harness {
            warmup_samples: 0,
            samples: 1,
            smoke: true,
            results: Vec::new(),
        }
    }

    /// The default harness — or smoke mode when `HEMS_BENCH_SMOKE=1` is
    /// set (the contract `scripts/verify.sh` relies on).
    pub fn from_env() -> Harness {
        if std::env::var("HEMS_BENCH_SMOKE").is_ok_and(|v| v == "1") {
            Harness::smoke()
        } else {
            Harness::new(3, 30)
        }
    }

    /// `true` when running in smoke mode.
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }

    /// Times `f`, records the measurement, prints a summary line, and
    /// returns a reference to the recorded stats.
    pub fn bench_function<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &Measurement {
        let mut batch = 1usize;
        if !self.smoke {
            // Calibrate the batch so one sample spans >= MIN_BATCH_NS.
            loop {
                let t = monotonic_ns();
                for _ in 0..batch {
                    black_box(f());
                }
                let ns = monotonic_ns().saturating_sub(t) as f64;
                if ns >= MIN_BATCH_NS || batch >= MAX_BATCH {
                    break;
                }
                // Aim past the threshold in one step, at least doubling.
                let scale = (MIN_BATCH_NS / ns.max(1.0)).ceil() as usize;
                batch = (batch * scale.max(2)).min(MAX_BATCH);
            }
            for _ in 0..self.warmup_samples {
                let t = monotonic_ns();
                for _ in 0..batch {
                    black_box(f());
                }
                black_box(monotonic_ns().saturating_sub(t));
            }
        }
        let mut per_call: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = monotonic_ns();
                for _ in 0..batch {
                    black_box(f());
                }
                monotonic_ns().saturating_sub(t) as f64 / batch as f64
            })
            .collect();
        per_call.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let measurement = Measurement {
            name: name.to_string(),
            samples: self.samples,
            batch,
            median_ns: percentile(&per_call, 50.0),
            p95_ns: percentile(&per_call, 95.0),
            min_ns: per_call[0],
            mean_ns: per_call.iter().sum::<f64>() / per_call.len() as f64,
        };
        println!(
            "[bench] {:<44} median {:>10}  p95 {:>10}  {:>12.0}/s  ({} samples x {} calls)",
            measurement.name,
            fmt_ns(measurement.median_ns),
            fmt_ns(measurement.p95_ns),
            measurement.throughput_per_sec(),
            measurement.samples,
            measurement.batch,
        );
        self.results.push(measurement);
        self.results.last().expect("just pushed")
    }

    /// All measurements recorded so far, in run order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// Interpolated percentile of an ascending-sorted slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of nothing");
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// A minimal JSON value for the bench reports — hand-rolled so the
/// harness stays dependency-free. Numbers render with enough precision
/// to round-trip; non-finite numbers render as `null`.
#[derive(Debug, Clone)]
pub enum Json {
    /// A number.
    Num(f64),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Renders with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = |n: usize| "  ".repeat(n);
        match self {
            Json::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Json::Num(_) => out.push_str("null"),
            Json::Int(i) => out.push_str(&format!("{i}")),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad(depth + 1));
                    item.write(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad(depth));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad(depth + 1));
                    Json::Str(k.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad(depth));
                out.push('}');
            }
        }
    }
}

/// Peak resident set size of this process in bytes, read from the
/// kernel's `VmHWM` high-water mark in `/proc/self/status` — `std`-only,
/// no syscall bindings. Returns `None` off Linux or if the field is
/// missing, so callers degrade to omitting the figure rather than
/// failing the bench.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib * 1024);
        }
    }
    None
}

/// A [`Measurement`] as a JSON object.
pub fn measurement_json(m: &Measurement) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(m.name.clone())),
        ("samples".into(), Json::Int(m.samples as i64)),
        ("batch".into(), Json::Int(m.batch as i64)),
        ("median_ns".into(), Json::Num(m.median_ns)),
        ("p95_ns".into(), Json::Num(m.p95_ns)),
        ("min_ns".into(), Json::Num(m.min_ns)),
        ("mean_ns".into(), Json::Num(m.mean_ns)),
        (
            "throughput_per_sec".into(),
            Json::Num(m.throughput_per_sec()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_takes_exactly_one_sample() {
        let mut h = Harness::smoke();
        let mut calls = 0u32;
        h.bench_function("t/one", || calls += 1);
        assert_eq!(calls, 1);
        let m = &h.results()[0];
        assert_eq!((m.samples, m.batch), (1, 1));
        assert!(m.median_ns > 0.0);
    }

    #[test]
    fn statistics_are_ordered_and_batches_calibrate() {
        let mut h = Harness::new(1, 10);
        let m = h
            .bench_function("t/fast", || black_box(3u64).wrapping_mul(7))
            .clone();
        assert!(m.batch > 1, "ns-scale work must be batched");
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.p95_ns);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn json_renders_and_escapes() {
        let j = Json::Obj(vec![
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Str("x\"y\n".into())),
            ("c".into(), Json::Arr(vec![Json::Int(1), Json::Bool(false)])),
            ("d".into(), Json::Num(f64::NAN)),
        ]);
        let s = j.render();
        assert!(s.contains("\"a\": 1.5"));
        assert!(s.contains("\\\"y\\n"));
        assert!(s.contains("\"d\": null"));
        assert!(s.contains("[\n"));
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        // The kernel reports KiB; anything under a page or over a
        // terabyte would mean the parse walked off the field.
        if let Some(rss) = peak_rss_bytes() {
            assert!(rss >= 4096, "rss = {rss}");
            assert!(rss < 1 << 40, "rss = {rss}");
            assert_eq!(rss % 1024, 0, "VmHWM is KiB-granular");
        }
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
    }
}
