//! The `hems-chaos` bin: run a seeded fault-injection campaign.
//!
//! ```text
//! hems-chaos [--seed N] [--smoke] [--out PATH]
//! ```
//!
//! Prints one JSON line per injected fault (each validated through the
//! serve crate's own parser), writes the survival summary to `--out`
//! (default `BENCH_chaos.json`), and exits nonzero if any fault went
//! unrecovered — the CI contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hems_chaos::{run_campaign, CampaignConfig, ChaosError};
use std::process::ExitCode;

struct Args {
    seed: u64,
    smoke: bool,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 7,
        smoke: false,
        out: "BENCH_chaos.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let value = it.next().ok_or("--seed needs a value")?;
                args.seed = value.parse().map_err(|e| format!("--seed {value}: {e}"))?;
            }
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().ok_or("--out needs a path")?,
            "--help" | "-h" => {
                return Err("usage: hems-chaos [--seed N] [--smoke] [--out PATH]".to_string())
            }
            other => return Err(format!("unknown argument '{other}' (see --help)")),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<u64, ChaosError> {
    let config = if args.smoke {
        CampaignConfig::smoke(args.seed)
    } else {
        CampaignConfig::full(args.seed)
    };
    let campaign = run_campaign(&config)?;
    print!("{}", campaign.render_lines()?);
    std::fs::write(&args.out, format!("{}\n", campaign.summary.render()))
        .map_err(|e| ChaosError::new("write summary", e.to_string()))?;
    eprintln!(
        "chaos: seed {} injected {} recovered {} -> {}",
        config.seed, campaign.injected, campaign.recovered, args.out
    );
    Ok(campaign.unrecovered())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(unrecovered) => {
            eprintln!(
                "chaos: {unrecovered} unrecovered fault(s) — replay with --seed {}",
                args.seed
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("chaos: {e}");
            ExitCode::FAILURE
        }
    }
}
