//! The crate's error type.

/// Why a campaign could not run (distinct from a fault the campaign
/// *injected* — those are results, not errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosError {
    context: String,
    message: String,
}

impl ChaosError {
    /// An error tagged with the campaign stage it happened in.
    pub fn new(context: &str, message: impl Into<String>) -> ChaosError {
        ChaosError {
            context: context.to_string(),
            message: message.into(),
        }
    }

    /// The stage that failed.
    pub fn context(&self) -> &str {
        &self.context
    }
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.context, self.message)
    }
}

impl std::error::Error for ChaosError {}
