//! Campaign orchestration and reporting.
//!
//! A campaign runs all four surfaces, collects one JSON line per
//! injected fault, and validates every line through the serve crate's own
//! parser before it is emitted — the report exercises the same wire
//! machinery the chaos proxy attacks. The summary becomes
//! `BENCH_chaos.json`: per-surface injected/recovered counts and survival
//! rates, keyed by the seed so any failure is replayable.

use crate::error::ChaosError;
use crate::plan::CampaignConfig;
use crate::{compute, fleet, net, power, router};
use hems_obs::{ManualClock, Registry};
use hems_serve::json::{parse, Value};
use std::sync::Arc;

/// A finished campaign.
#[derive(Debug)]
pub struct Campaign {
    /// Every report line, in emission order.
    pub lines: Vec<Value>,
    /// The `BENCH_chaos.json` summary object.
    pub summary: Value,
    /// Faults injected across all surfaces.
    pub injected: u64,
    /// Faults recovered across all surfaces.
    pub recovered: u64,
}

impl Campaign {
    /// Faults that were injected but not absorbed. A healthy stack
    /// reports zero.
    pub fn unrecovered(&self) -> u64 {
        self.injected.saturating_sub(self.recovered)
    }

    /// Renders the JSON-lines report, round-tripping every line through
    /// the serve crate's parser.
    ///
    /// # Errors
    ///
    /// Errors if any line fails to re-parse or re-render identically —
    /// that would mean the reporter emits frames the service stack
    /// itself could not read.
    pub fn render_lines(&self) -> Result<String, ChaosError> {
        let mut out = String::new();
        for line in &self.lines {
            let rendered = line.render();
            let reparsed = parse(&rendered)
                .map_err(|e| ChaosError::new("report: line round-trip", e.to_string()))?;
            if reparsed.render() != rendered {
                return Err(ChaosError::new(
                    "report: line round-trip",
                    "re-render differs from the original line",
                ));
            }
            out.push_str(&rendered);
            out.push('\n');
        }
        Ok(out)
    }
}

fn rate(recovered: u64, injected: u64) -> f64 {
    if injected == 0 {
        1.0
    } else {
        recovered as f64 / injected as f64
    }
}

fn surface_summary(name: &str, injected: u64, recovered: u64) -> Value {
    Value::obj(vec![
        ("surface", Value::str(name)),
        ("injected", Value::Num(injected as f64)),
        ("recovered", Value::Num(recovered as f64)),
        ("survival_rate", Value::Num(rate(recovered, injected))),
    ])
}

/// Runs the full seeded campaign: power, compute, I/O, then fleet.
///
/// # Errors
///
/// Errors when a campaign harness cannot start; injected faults that
/// fail to recover are *results* (see [`Campaign::unrecovered`]), not
/// errors.
pub fn run_campaign(config: &CampaignConfig) -> Result<Campaign, ChaosError> {
    // Quietens the intentionally injected panics (and counts any genuine
    // server-side ones) for every surface, not just net.
    net::install_panic_probe();
    // One fresh registry per campaign, on a manual clock pinned to zero:
    // fault counters accumulate here (not in the process-global registry,
    // which would double-count across same-seed runs in one process), and
    // the snapshot's `at_ns` stays byte-identical under a fixed seed.
    let registry = Registry::with_clock(Arc::new(ManualClock::new(0)));
    let power = power::run(config, &registry)?;
    let compute = compute::run(config, &registry)?;
    let net = net::run(config, &registry)?;
    let fleet = fleet::run(config, &registry)?;
    let router = router::run(config, &registry)?;

    // The summary's fault counts come from the shared registry, not the
    // per-surface structs — the snapshot below *is* the ledger.
    let obs = registry.snapshot();
    let count = |name: &str| obs.counter(name).unwrap_or(0);
    let surfaces: Vec<Value> = ["power", "compute", "net", "fleet", "router"]
        .iter()
        .map(|surface| {
            surface_summary(
                surface,
                count(&format!("chaos.{surface}.injected")),
                count(&format!("chaos.{surface}.recovered")),
            )
        })
        .collect();
    let injected: u64 = ["power", "compute", "net", "fleet", "router"]
        .iter()
        .map(|s| count(&format!("chaos.{s}.injected")))
        .sum();
    let recovered: u64 = ["power", "compute", "net", "fleet", "router"]
        .iter()
        .map(|s| count(&format!("chaos.{s}.recovered")))
        .sum();
    let obs_value = parse(&obs.render())
        .map_err(|e| ChaosError::new("report: obs snapshot round-trip", e.to_string()))?;
    let mut lines = Vec::new();
    lines.extend(power.lines);
    lines.extend(compute.lines);
    lines.extend(net.lines);
    lines.extend(fleet.lines);
    lines.extend(router.lines);

    let summary = Value::obj(vec![
        ("bench", Value::str("chaos")),
        ("seed", Value::Num(config.seed as f64)),
        ("surfaces", Value::Arr(surfaces)),
        ("injected", Value::Num(injected as f64)),
        ("recovered", Value::Num(recovered as f64)),
        (
            "unrecovered",
            Value::Num(injected.saturating_sub(recovered) as f64),
        ),
        ("survival_rate", Value::Num(rate(recovered, injected))),
        ("serve_panics", Value::Num(net.serve_panics as f64)),
        ("obs", obs_value),
    ]);
    lines.push(Value::obj(vec![
        ("surface", Value::str("campaign")),
        ("summary", summary.clone()),
    ]));

    Ok(Campaign {
        lines,
        summary,
        injected,
        recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_recovers_everything_and_reproduces_byte_for_byte() {
        // The headline acceptance check: two runs with the same seed emit
        // the identical report, and nothing goes unrecovered.
        let config = CampaignConfig::smoke(7);
        let first = run_campaign(&config).expect("first run");
        assert_eq!(first.unrecovered(), 0, "{}", first.summary.render());
        // The summary embeds the campaign's obs snapshot, and its counts
        // agree with the headline numbers (they are the same ledger).
        let obs = first.summary.get("obs").expect("obs snapshot in summary");
        let series = obs.get("series").expect("series object");
        let injected_sum: f64 = ["power", "compute", "net", "fleet", "router"]
            .iter()
            .map(|s| {
                series
                    .get(&format!("chaos.{s}.injected"))
                    .and_then(|v| v.get("value"))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0)
            })
            .sum();
        assert_eq!(injected_sum, first.injected as f64);
        let text_a = first.render_lines().expect("render");
        let second = run_campaign(&config).expect("second run");
        let text_b = second.render_lines().expect("render");
        assert_eq!(text_a, text_b, "same seed, same bytes");
        // A different seed must actually change the faults.
        let other = run_campaign(&CampaignConfig::smoke(8)).expect("third run");
        assert_eq!(other.unrecovered(), 0);
        assert_ne!(
            text_a,
            other.render_lines().expect("render"),
            "the seed reaches the injected faults"
        );
    }

    #[test]
    fn survival_rate_handles_zero_injection() {
        assert_eq!(rate(0, 0), 1.0);
        assert_eq!(rate(1, 2), 0.5);
    }
}
