//! The I/O surface: a chaos proxy and direct attackers against a live
//! `hems-serve` instance.
//!
//! Topology:
//!
//! ```text
//! retrying Client ──► ChaosProxy ──► hems-serve (worker-panic injection on)
//! attackers ─────────────────────────────────────┘ (direct connections)
//! ```
//!
//! The proxy assigns each accepted connection a scripted fault — tear the
//! request mid-byte, tear the response mid-byte, delay the response, or
//! pass a few frames through then hang up — in a seed-deterministic
//! sequence. The attackers hit the server directly with torn frames,
//! disconnects mid-response, and a slow-loris drip that only the read
//! deadline can clear. Meanwhile every *healthy* request goes through the
//! retrying [`hems_serve::Client`], and the campaign demands all of them
//! get answered.
//!
//! A process-wide panic probe counts panics on threads named
//! `hems-serve-*` (acceptor, readers, batcher). The worker pool's
//! threads are named `hems-pool-*`, so the panics the campaign injects
//! *into jobs* don't count — only a genuine server-side crash does, and
//! the campaign requires zero.
//!
//! Determinism: all traffic is sequential (one phase at a time, one
//! request in flight), so connection order, proxy fault order, worker
//! fault order, retry counts, and every counter in the report are pure
//! functions of the seed. Wall-clock quantities are deliberately kept out
//! of the report.

use crate::error::ChaosError;
use crate::plan::CampaignConfig;
use hems_obs::Registry;
use hems_serve::client::{Client, RetryPolicy};
use hems_serve::json::Value;
use hems_serve::proto::{QueryKind, Request, ScenarioSpec};
use hems_serve::server::{serve, ServeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

/// Panics observed on `hems-serve-*` threads since process start.
static SERVE_PANICS: AtomicU64 = AtomicU64::new(0);
static PROBE: OnceLock<()> = OnceLock::new();

/// Installs the process-wide panic probe (idempotent). Counts panics on
/// server threads; intentionally injected faults (payloads tagged
/// `chaos:`) skip the default backtrace printer to keep reports clean.
pub fn install_panic_probe() {
    PROBE.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // hems-lint: allow(taint, reason = "thread *name* only, to classify hems-serve-* panics into a counter; names are fixed strings, no os id reaches report bytes")
            let current = thread::current();
            let name = current.name().unwrap_or("");
            if name.starts_with("hems-serve-") {
                SERVE_PANICS.fetch_add(1, Ordering::SeqCst);
            }
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.starts_with("chaos:"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// What the proxy does to one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnFault {
    /// Relay this many request/response frames, then hang up cleanly.
    PassThen(u32),
    /// Forward only a prefix of the first request line, then close both
    /// sides — the server sees a frame torn mid-byte.
    TearRequest,
    /// Relay the request, then forward only a prefix of the response —
    /// the client sees a frame torn mid-byte.
    TearResponse,
    /// Relay frames but sit on each response briefly first.
    Delay(u64),
}

/// Reads one line, polling through read-deadline wakeups until `stop`.
/// `Ok(None)` is EOF.
fn read_line_patient(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(line)),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Partial bytes stay buffered in `line`; keep waiting
                // unless the proxy is shutting down.
                if stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// One proxied connection, relayed frame-by-frame on a single thread
/// (the protocol is one request in flight per connection).
fn relay(client: TcpStream, upstream_addr: SocketAddr, fault: ConnFault, stop: Arc<AtomicBool>) {
    let run = || -> std::io::Result<()> {
        let upstream = TcpStream::connect(upstream_addr)?;
        let poll = Some(Duration::from_millis(50));
        client.set_read_timeout(poll)?;
        upstream.set_read_timeout(poll)?;
        let mut from_client = BufReader::new(client.try_clone()?);
        let mut from_upstream = BufReader::new(upstream.try_clone()?);
        let mut to_client = client;
        let mut to_upstream = upstream;
        let mut frames = 0u32;
        loop {
            let Some(request) = read_line_patient(&mut from_client, &stop)? else {
                return Ok(());
            };
            if fault == ConnFault::TearRequest {
                let cut = request.len().saturating_sub(request.len() / 3).max(1);
                to_upstream.write_all(request.as_bytes().get(..cut).unwrap_or(b"{"))?;
                to_upstream.flush()?;
                // Close both directions: the server sees EOF mid-frame.
                return Ok(());
            }
            to_upstream.write_all(request.as_bytes())?;
            to_upstream.flush()?;
            let Some(response) = read_line_patient(&mut from_upstream, &stop)? else {
                return Ok(());
            };
            match fault {
                ConnFault::TearResponse => {
                    let cut = (response.len() / 2).max(1);
                    to_client.write_all(response.as_bytes().get(..cut).unwrap_or(b"{"))?;
                    to_client.flush()?;
                    return Ok(());
                }
                ConnFault::Delay(ms) => {
                    thread::sleep(Duration::from_millis(ms));
                    to_client.write_all(response.as_bytes())?;
                    to_client.flush()?;
                }
                _ => {
                    to_client.write_all(response.as_bytes())?;
                    to_client.flush()?;
                }
            }
            frames += 1;
            // Rotate connections: close after a few frames so the client
            // reconnects and consumes the next scripted fault.
            let frame_cap = match fault {
                ConnFault::PassThen(n) => n,
                ConnFault::Delay(_) => 2,
                _ => u32::MAX,
            };
            if frames >= frame_cap {
                return Ok(());
            }
        }
    };
    // A relay error just ends this connection; the client retries.
    let _ = run();
}

/// A TCP proxy that injects one scripted fault per connection.
pub(crate) struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<thread::JoinHandle<()>>,
    faulted: Arc<AtomicU64>,
}

impl ChaosProxy {
    pub(crate) fn start(
        upstream: SocketAddr,
        script: Vec<ConnFault>,
    ) -> Result<ChaosProxy, ChaosError> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ChaosError::new("net: proxy bind", e.to_string()))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ChaosError::new("net: proxy addr", e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ChaosError::new("net: proxy nonblocking", e.to_string()))?;
        let stop = Arc::new(AtomicBool::new(false));
        let faulted = Arc::new(AtomicU64::new(0));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let faulted = Arc::clone(&faulted);
            thread::Builder::new()
                .name("hems-chaos-proxy".to_string())
                .spawn(move || {
                    let mut next = 0usize;
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((conn, _)) => {
                                let fault =
                                    script.get(next).copied().unwrap_or(ConnFault::PassThen(4));
                                next += 1;
                                if !matches!(fault, ConnFault::PassThen(_)) {
                                    faulted.fetch_add(1, Ordering::SeqCst);
                                }
                                let stop = Arc::clone(&stop);
                                let _ = thread::Builder::new()
                                    .name("hems-chaos-relay".to_string())
                                    .spawn(move || relay(conn, upstream, fault, stop));
                            }
                            Err(_) => thread::sleep(Duration::from_millis(5)),
                        }
                    }
                })
                .map_err(|e| ChaosError::new("net: proxy spawn", e.to_string()))?
        };
        Ok(ChaosProxy {
            addr,
            stop,
            acceptor: Some(acceptor),
            faulted,
        })
    }

    pub(crate) fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn faults(&self) -> u64 {
        self.faulted.load(Ordering::SeqCst)
    }

    pub(crate) fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The scenario healthy request `i` asks about — a small rotation so some
/// requests repeat (cache hits) and some are fresh (solves).
fn scenario_for(i: usize) -> (QueryKind, ScenarioSpec) {
    let kinds = [QueryKind::Mep, QueryKind::OptimalPoint, QueryKind::Bypass];
    let kind = kinds
        .get(i % kinds.len())
        .copied()
        .unwrap_or(QueryKind::Mep);
    let spec = ScenarioSpec::baseline(0.30 + 0.05 * ((i % 5) as f64));
    (kind, spec)
}

fn healthy_phase(
    proxy_addr: SocketAddr,
    phase: &str,
    count: usize,
    start_at: usize,
    jitter_seed: u64,
    lines: &mut Vec<Value>,
) -> (u64, u64) {
    let mut client = Client::new(
        proxy_addr,
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            request_timeout: Duration::from_secs(5),
            jitter_seed,
        },
    );
    let mut answered = 0u64;
    let mut failed = 0u64;
    for i in start_at..start_at + count {
        let (kind, spec) = scenario_for(i);
        match client.plan(kind, &spec) {
            Ok(answer) => {
                answered += 1;
                lines.push(Value::obj(vec![
                    ("surface", Value::str("net")),
                    ("phase", Value::str(phase)),
                    ("request", Value::Num(i as f64)),
                    ("query", Value::str(kind.as_wire())),
                    ("attempts", Value::Num(answer.attempts as f64)),
                    ("cached", Value::Bool(answer.cached)),
                    ("answered", Value::Bool(true)),
                ]));
            }
            Err(e) => {
                failed += 1;
                lines.push(Value::obj(vec![
                    ("surface", Value::str("net")),
                    ("phase", Value::str(phase)),
                    ("request", Value::Num(i as f64)),
                    ("query", Value::str(kind.as_wire())),
                    ("answered", Value::Bool(false)),
                    ("error", Value::str(e.to_string())),
                ]));
            }
        }
    }
    (answered, failed)
}

/// The direct attackers: each returns whether the server behaved.
fn attack_wave(
    server_addr: SocketAddr,
    read_timeout: Duration,
    lines: &mut Vec<Value>,
) -> (u64, u64) {
    let mut injected = 0u64;
    let mut recovered = 0u64;
    let mut record = |attack: &str, ok: bool, lines: &mut Vec<Value>| {
        injected += 1;
        if ok {
            recovered += 1;
        }
        lines.push(Value::obj(vec![
            ("surface", Value::str("net")),
            ("phase", Value::str("attack")),
            ("attack", Value::str(attack)),
            ("survived", Value::Bool(ok)),
        ]));
    };

    // 1. Torn frame then hangup: a half request with no newline.
    let torn_close = TcpStream::connect(server_addr)
        .and_then(|mut s| s.write_all(br#"{"id":1,"query":"me"#))
        .is_ok();
    record("torn_frame_close", torn_close, lines);

    // 2. Torn frame with a newline: must be answered with an error frame,
    // and the connection must survive for a follow-up request.
    let torn_newline = (|| -> std::io::Result<bool> {
        let mut s = TcpStream::connect(server_addr)?;
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        s.write_all(b"{\"id\":2,\"query\":\"mep\",\"scenario\":{\"irr\n")?;
        let mut reader = BufReader::new(s.try_clone()?);
        let mut response = String::new();
        reader.read_line(&mut response)?;
        let errored = hems_serve::json::parse(&response)
            .ok()
            .and_then(|v| v.get("status").and_then(Value::as_str).map(str::to_string))
            == Some("error".to_string());
        s.write_all(b"{\"id\":3,\"query\":\"stats\"}\n")?;
        let mut second = String::new();
        reader.read_line(&mut second)?;
        let answered = hems_serve::json::parse(&second)
            .ok()
            .and_then(|v| v.get("status").and_then(Value::as_str).map(str::to_string))
            == Some("ok".to_string());
        Ok(errored && answered)
    })()
    .unwrap_or(false);
    record("torn_frame_newline", torn_newline, lines);

    // 3. Disconnect mid-response: ask for an already-cached plan and slam
    // the connection before reading the answer.
    let mid_response = (|| -> std::io::Result<()> {
        let mut s = TcpStream::connect(server_addr)?;
        let (kind, spec) = scenario_for(0); // cached by the first phase
        let line = Request::render_line(4, kind, Some(&spec));
        s.write_all(line.as_bytes())?;
        s.write_all(b"\n")?;
        s.flush()
        // Dropped here: the server's response hits a closed socket.
    })()
    .is_ok();
    record("disconnect_mid_response", mid_response, lines);

    // 4. Slow loris: drip a few bytes, then stall past the read deadline.
    // Recovery = the server hangs up on us (the reaper worked).
    let loris = (|| -> std::io::Result<bool> {
        let mut s = TcpStream::connect(server_addr)?;
        s.write_all(b"{\"id\":5,")?;
        s.flush()?;
        thread::sleep(read_timeout * 2 + Duration::from_millis(100));
        s.set_read_timeout(Some(Duration::from_secs(5)))?;
        let mut buf = [0u8; 32];
        // A reaped connection reads EOF (or a reset, on some stacks).
        Ok(matches!(s.read(&mut buf), Ok(0) | Err(_)))
    })()
    .unwrap_or(false);
    record("slow_loris", loris, lines);

    (injected, recovered)
}

/// Outcome of the I/O campaign.
#[derive(Debug)]
pub struct NetReport {
    /// One JSON line per request/attack plus a summary line.
    pub lines: Vec<Value>,
    /// Faults injected (proxy tears + attacks + worker panics).
    pub injected: u64,
    /// Faults the stack absorbed (healthy requests all answered, attacks
    /// survived, panics contained).
    pub recovered: u64,
    /// Panics observed on `hems-serve-*` threads (must be zero).
    pub serve_panics: u64,
}

/// Runs the I/O campaign. Fault tallies are double-entried into
/// `registry` (`chaos.net.injected` / `chaos.net.recovered`).
///
/// # Errors
///
/// Errors when the harness itself cannot start (bind/spawn failures) —
/// not when injected faults bite.
pub fn run(config: &CampaignConfig, registry: &Registry) -> Result<NetReport, ChaosError> {
    install_panic_probe();
    let panics_before = SERVE_PANICS.load(Ordering::SeqCst);
    let read_timeout = Duration::from_millis(config.net_read_timeout_ms);

    let mut handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            threads: Some(2),
            cache_capacity: 256,
            max_queue: 64,
            max_batch: 8,
            max_line_bytes: 16 * 1024,
            read_timeout: Some(read_timeout),
            write_timeout: Some(Duration::from_secs(2)),
            inject_panic_one_in: Some(3),
            shard_id: None,
        },
    )
    .map_err(|e| ChaosError::new("net: server bind", e.to_string()))?;

    // Script the proxy: every even connection gets a seeded fault, every
    // odd one passes a few frames so the retrying client always converges.
    let mut rng = config.plan().stream("net");
    let script: Vec<ConnFault> = (0..96)
        .map(|i| {
            if i % 2 == 0 {
                match rng.below_u32(3) {
                    0 => ConnFault::TearRequest,
                    1 => ConnFault::TearResponse,
                    _ => ConnFault::Delay(20 + rng.below_u32(40) as u64),
                }
            } else {
                ConnFault::PassThen(2 + rng.below_u32(3))
            }
        })
        .collect();
    let mut proxy = ChaosProxy::start(handle.addr(), script)?;

    let mut lines = Vec::new();
    // Phase 1: healthy traffic through the fault-injecting proxy.
    let (answered_a, failed_a) = healthy_phase(
        proxy.addr,
        "traffic",
        config.net_requests,
        0,
        config.seed ^ 0xA11CE,
        &mut lines,
    );
    // Phase 2: the attack wave, hitting the server directly.
    let (attacks, attacks_survived) = attack_wave(handle.addr(), read_timeout, &mut lines);
    // Phase 3: prove the service still answers after the abuse.
    let (answered_b, failed_b) = healthy_phase(
        proxy.addr,
        "aftermath",
        config.net_requests_after,
        config.net_requests,
        config.seed ^ 0xB0B,
        &mut lines,
    );
    proxy.shutdown();

    // Deterministic service counters, straight from the server.
    let stats = handle.stats_snapshot();
    let counter = |name: &str| stats.get(name).and_then(Value::as_f64).unwrap_or(-1.0);
    let worker_faults = counter("faults").max(0.0) as u64;
    handle.shutdown(); // graceful drain must complete
    let serve_panics = SERVE_PANICS.load(Ordering::SeqCst) - panics_before;

    let answered = answered_a + answered_b;
    let failed = failed_a + failed_b;
    let injected = proxy.faults() + attacks + worker_faults;
    let recovered = injected
        .saturating_sub(failed)
        .saturating_sub(attacks - attacks_survived)
        .saturating_sub(serve_panics);
    registry.counter("chaos.net.injected").add(injected);
    registry.counter("chaos.net.recovered").add(recovered);
    lines.push(Value::obj(vec![
        ("surface", Value::str("net")),
        ("phase", Value::str("summary")),
        ("answered", Value::Num(answered as f64)),
        ("failed", Value::Num(failed as f64)),
        ("proxy_faults", Value::Num(proxy.faults() as f64)),
        ("worker_faults", Value::Num(worker_faults as f64)),
        ("attacks", Value::Num(attacks as f64)),
        ("attacks_survived", Value::Num(attacks_survived as f64)),
        ("serve_panics", Value::Num(serve_panics as f64)),
        // `errors` is deliberately absent: the disconnect-mid-response
        // attack races FIN against RST on the server's dead-socket write,
        // so that one counter is not seed-deterministic.
        ("requests", Value::Num(counter("requests"))),
        ("hits", Value::Num(counter("hits"))),
        ("misses", Value::Num(counter("misses"))),
        // Likewise the raw reap *count* is load-sensitive — on a
        // saturated box an idle-but-healthy connection can trip the read
        // deadline alongside the slow loris — so the report keeps only
        // the seed-deterministic fact: at least one socket was reaped.
        ("loris_reaped", Value::Bool(counter("reaped") >= 1.0)),
        ("overloaded", Value::Num(counter("overloaded"))),
        ("drained", Value::Bool(true)),
    ]));

    Ok(NetReport {
        lines,
        injected,
        recovered,
        serve_panics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_campaign_converges_with_zero_server_panics() {
        let report = run(&CampaignConfig::smoke(7), &Registry::new()).expect("campaign runs");
        assert_eq!(report.serve_panics, 0, "{:?}", report.lines);
        assert_eq!(
            report.injected, report.recovered,
            "unrecovered faults: {:?}",
            report.lines
        );
        let summary = report.lines.last().expect("summary line");
        assert_eq!(
            summary.get("failed").and_then(Value::as_f64),
            Some(0.0),
            "every healthy request answered"
        );
        assert_eq!(
            summary.get("loris_reaped").and_then(Value::as_bool),
            Some(true),
            "the slow loris was reaped"
        );
    }
}
