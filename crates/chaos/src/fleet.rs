//! The fleet surface: regional brownout storms across a digital twin.
//!
//! The other surfaces fault one node, one pool, one socket. This one
//! faults a *deployment*: a seeded [`hems_fleet::Fleet`] campaign whose
//! weather field injects regional brownout storms — correlated harvest
//! collapses that kill every node inside a moving rectangle of sky at
//! once — while sampled nodes accumulate commit-stream prefix digests.
//!
//! A storm counts as recovered only if the sampled cohort demonstrably
//! made progress through it (commits, or rollbacks in the Sisyphus
//! regime where every burst dies mid-task) *and* the campaign ends with
//! zero crash-consistency violations: every sampled digest must equal
//! the digest of the contiguous stream `0..committed` recomputed from
//! scratch. A single lost, repeated, or reordered commit anywhere in
//! the fleet forfeits every storm.
//!
//! The fleet's own seed is drawn from this surface's RNG stream, so the
//! campaign seed reaches the storms through the same funnel as every
//! other injected fault.

use crate::error::ChaosError;
use crate::plan::CampaignConfig;
use hems_fleet::{AnalyticPlans, Fleet, FleetConfig};
use hems_obs::Registry;
use hems_serve::json::Value;

/// Outcome of the fleet campaign.
#[derive(Debug)]
pub struct FleetReport {
    /// One JSON line per storm, plus the campaign line.
    pub lines: Vec<Value>,
    /// Regional brownout storms injected.
    pub injected: u64,
    /// Storms survived with clean sampled digests fleet-wide.
    pub recovered: u64,
}

fn fleet_config(config: &CampaignConfig) -> FleetConfig {
    // 52 bits keeps the seed exact through the report's f64 JSON numbers.
    let seed = config.plan().stream("fleet").next_u64() >> 12;
    let mut fc = FleetConfig::new(seed, config.fleet_nodes);
    fc.days = 1;
    fc.grid_w = config.fleet_grid;
    fc.grid_h = config.fleet_grid;
    fc.storms_per_day = config.fleet_storms;
    fc.sampled = config.fleet_nodes.min(8);
    fc
}

/// Runs the fleet campaign. Fault tallies are double-entried into
/// `registry` (`chaos.fleet.injected` / `chaos.fleet.recovered`) so the
/// campaign summary reads its counts back from the shared telemetry
/// registry.
///
/// # Errors
///
/// Errors only when the fleet itself cannot be built or run (an invalid
/// derived config); storms that fail to recover are reported in the
/// returned lines, not as errors.
pub fn run(config: &CampaignConfig, registry: &Registry) -> Result<FleetReport, ChaosError> {
    let injected_counter = registry.counter("chaos.fleet.injected");
    let recovered_counter = registry.counter("chaos.fleet.recovered");
    let fc = fleet_config(config);
    let fleet = Fleet::new(fc).map_err(|e| ChaosError::new("fleet: build", e.to_string()))?;
    let mut source = AnalyticPlans::new();
    let report = fleet
        .run(&mut source)
        .map_err(|e| ChaosError::new("fleet: campaign", e.to_string()))?;

    let injected = report.storms;
    // Violations are fleet-wide: one broken digest forfeits every storm.
    let clean = report.violations == 0;
    let recovered = if clean { report.storms_recovered } else { 0 };
    injected_counter.add(injected);
    recovered_counter.add(recovered);

    let mut lines = Vec::new();
    for line in &report.lines {
        if line.get("event").and_then(Value::as_str) != Some("storm") {
            continue;
        }
        lines.push(Value::obj(vec![
            ("surface", Value::str("fleet")),
            ("run", Value::str("storm")),
            ("storm", line.clone()),
            ("violations_clean", Value::Bool(clean)),
        ]));
    }
    lines.push(Value::obj(vec![
        ("surface", Value::str("fleet")),
        ("run", Value::str("campaign")),
        ("fleet_seed", Value::Num(fc.seed as f64)),
        ("nodes", Value::Num(fc.nodes as f64)),
        ("grid", Value::Num(fc.grid_w as f64)),
        ("storms", Value::Num(injected as f64)),
        ("recovered", Value::Num(recovered as f64)),
        ("violations", Value::Num(report.violations as f64)),
        ("committed", Value::Num(report.committed as f64)),
    ]));

    Ok(FleetReport {
        lines,
        injected,
        recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regional_storms_leave_zero_crash_consistency_violations() {
        let config = CampaignConfig::smoke(7);
        let registry = Registry::new();
        let report = run(&config, &registry).expect("campaign runs");
        assert!(report.injected >= 1, "a storm must actually be injected");
        assert_eq!(report.injected, report.recovered, "{:?}", report.lines);
        let campaign = report.lines.last().expect("campaign line");
        assert_eq!(
            campaign.get("violations").and_then(Value::as_f64),
            Some(0.0)
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("chaos.fleet.injected"), Some(report.injected));
        assert_eq!(
            snap.counter("chaos.fleet.recovered"),
            Some(report.recovered)
        );
    }

    #[test]
    fn fleet_seed_derives_from_the_campaign_seed() {
        let a = fleet_config(&CampaignConfig::smoke(7));
        let b = fleet_config(&CampaignConfig::smoke(7));
        let c = fleet_config(&CampaignConfig::smoke(8));
        assert_eq!(a.seed, b.seed, "same campaign seed, same fleet seed");
        assert_ne!(a.seed, c.seed, "the campaign seed reaches the fleet");
        assert!(a.seed < (1 << 52), "seed stays exact as an f64");
    }
}
