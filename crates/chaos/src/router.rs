//! The router surface: backend crashes, restarts, and slow backends
//! under live routed load.
//!
//! A 3-shard `hems-serve` set behind a live `hems-router` takes a
//! seeded fault sequence:
//!
//! * **backend_crash** — a seeded victim shard's process goes away
//!   mid-campaign; the retrying client's whole request set must keep
//!   answering (the router ejects the dead slot and walks its keys to
//!   the next shard on the ring), then the shard restarts on a *fresh
//!   port* and is repointed via hot reconfiguration, after which the
//!   router must report it healthy again;
//! * **slow_backend** — a victim shard is fronted by the net surface's
//!   chaos proxy in delay mode, sitting on every response; requests
//!   keep flowing and every answer must still be correct, then the slot
//!   is repointed back at the direct address.
//!
//! Recovery is judged against a warm **expected table**: every fault
//! episode replays the same plan set and every response must render
//! byte-identically to its pre-fault answer. One wrong plan — a stale
//! shard answering for a key it no longer owns, a half-open slot
//! leaking a bad response — forfeits the episode. Wall-clock jitter
//! (which shard ejects first, how many retries fire) never reaches the
//! report: lines carry only seeded choices and deterministic counts.

use crate::error::ChaosError;
use crate::net::{ChaosProxy, ConnFault};
use crate::plan::CampaignConfig;
use hems_obs::Registry;
use hems_router::{route, HealthPolicy, RouterConfig, RouterHandle};
use hems_serve::json::Value;
use hems_serve::{
    serve, Client, ClientError, QueryKind, RetryPolicy, ScenarioSpec, ServeConfig, ServerHandle,
};
use std::time::Duration;

/// Outcome of the router campaign.
#[derive(Debug)]
pub struct RouterReport {
    /// One JSON line per fault episode.
    pub lines: Vec<Value>,
    /// Fault episodes injected (crashes + slow backends).
    pub injected: u64,
    /// Episodes fully recovered: every response correct, slot healthy.
    pub recovered: u64,
}

const SHARDS: usize = 3;

fn spawn_shard(shard: usize) -> Result<ServerHandle, ChaosError> {
    serve(
        "127.0.0.1:0",
        ServeConfig {
            threads: Some(1),
            cache_capacity: 256,
            shard_id: Some(shard as u64),
            ..ServeConfig::default()
        },
    )
    .map_err(|e| ChaosError::new("router: spawn shard", e.to_string()))
}

/// The fixed plan set every episode replays: kinds rotate over the
/// cheap solver paths, irradiance walks the valid band.
fn plan_set(requests: usize) -> Vec<(QueryKind, ScenarioSpec)> {
    let kinds = [QueryKind::Mep, QueryKind::OptimalPoint, QueryKind::Sprint];
    (0..requests)
        .map(|i| {
            let kind = kinds
                .get(i % kinds.len())
                .copied()
                .unwrap_or(QueryKind::Mep);
            let spec = ScenarioSpec::baseline(0.25 + 0.1 * (i % 14) as f64);
            (kind, spec)
        })
        .collect()
}

/// Replays the plan set; returns how many answers matched `expected`.
fn replay(client: &mut Client, plans: &[(QueryKind, ScenarioSpec)], expected: &[String]) -> u64 {
    let mut matched = 0u64;
    for ((kind, spec), want) in plans.iter().zip(expected) {
        match client.plan(*kind, spec) {
            Ok(answer) if answer.result.render() == *want => matched += 1,
            _ => {}
        }
    }
    matched
}

/// Spin-waits (bounded) for a shard slot to report `state`.
fn await_state(router: &RouterHandle, shard: usize, state: &str, budget: Duration) -> bool {
    let tries = (budget.as_millis() / 10).max(1);
    for _ in 0..tries {
        if router.shard_state(shard) == Some(state) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    router.shard_state(shard) == Some(state)
}

/// Runs the router campaign. Fault tallies are double-entried into
/// `registry` (`chaos.router.injected` / `chaos.router.recovered`).
///
/// # Errors
///
/// Errors only when the tier itself cannot be started or the expected
/// table cannot be warmed; episodes that fail to recover are reported
/// in the returned lines, not as errors.
pub fn run(config: &CampaignConfig, registry: &Registry) -> Result<RouterReport, ChaosError> {
    let injected_counter = registry.counter("chaos.router.injected");
    let recovered_counter = registry.counter("chaos.router.recovered");
    let mut rng = config.plan().stream("router");

    let mut backends = Vec::with_capacity(SHARDS);
    for shard in 0..SHARDS {
        backends.push(spawn_shard(shard)?);
    }
    let mut router = route(
        "127.0.0.1:0",
        RouterConfig {
            backends: backends.iter().map(ServerHandle::addr).collect(),
            verify_shard_ids: true,
            probe_interval: Duration::from_millis(20),
            health: HealthPolicy {
                eject_after: 2,
                rejoin_after: 1,
            },
            connect_timeout: Duration::from_millis(300),
            request_timeout: Duration::from_secs(2),
            seed: rng.next_u64(),
            ..RouterConfig::default()
        },
    )
    .map_err(|e| ChaosError::new("router: start router", e.to_string()))?;
    let mut client = Client::new(
        router.addr(),
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            request_timeout: Duration::from_secs(2),
            jitter_seed: rng.next_u64(),
        },
    );

    // Warm every shard and pin the expected answer for each plan.
    let plans = plan_set(config.router_requests);
    let mut expected = Vec::with_capacity(plans.len());
    for (kind, spec) in &plans {
        match client.plan(*kind, spec) {
            Ok(answer) => expected.push(answer.result.render()),
            Err(ClientError::Rejected(message)) => {
                return Err(ChaosError::new("router: warm plan rejected", message))
            }
            Err(e) => return Err(ChaosError::new("router: warm plan", e.to_string())),
        }
    }

    let mut lines = Vec::new();
    let mut injected = 0u64;
    let mut recovered = 0u64;

    // -------- backend crash / restart episodes --------
    for episode in 0..config.router_crashes {
        let victim = rng.below_u32(SHARDS as u32) as usize;
        if let Some(backend) = backends.get_mut(victim) {
            backend.shutdown();
        }
        // Live load against the now 2-shard tier: the router must eject
        // the dead slot and reroute its keys with zero wrong answers.
        let matched_during = replay(&mut client, &plans, &expected);
        // Restart on a fresh port and hot-repoint the slot.
        let fresh = spawn_shard(victim)?;
        let fresh_addr = fresh.addr();
        if let Some(slot) = backends.get_mut(victim) {
            *slot = fresh;
        }
        let repointed = router.set_backend(victim, fresh_addr);
        let healthy_after =
            repointed && await_state(&router, victim, "healthy", Duration::from_secs(5));
        let matched_after = replay(&mut client, &plans, &expected);
        let total = plans.len() as u64;
        let ok = matched_during == total && matched_after == total && healthy_after;
        injected += 1;
        if ok {
            recovered += 1;
        }
        lines.push(Value::obj(vec![
            ("surface", Value::str("router")),
            ("fault", Value::str("backend_crash")),
            ("episode", Value::Num(episode as f64)),
            ("shard", Value::Num(victim as f64)),
            ("requests", Value::Num(total as f64)),
            ("matched_during", Value::Num(matched_during as f64)),
            ("matched_after", Value::Num(matched_after as f64)),
            ("healthy_after", Value::Bool(healthy_after)),
            ("recovered", Value::Bool(ok)),
        ]));
    }

    // -------- slow backend episodes --------
    for episode in 0..config.router_slow {
        let victim = rng.below_u32(SHARDS as u32) as usize;
        let delay_ms = u64::from(rng.range_u32(80, 160));
        let upstream = backends
            .get(victim)
            .map(ServerHandle::addr)
            .ok_or_else(|| ChaosError::new("router: slow victim", "shard index out of range"))?;
        let mut proxy = ChaosProxy::start(upstream, vec![ConnFault::Delay(delay_ms); 64])?;
        let through_proxy = router.set_backend(victim, proxy.addr());
        // The delayed slot answers slowly but correctly; the client's
        // per-attempt deadline (2 s) comfortably covers the delay, so
        // every response must still match the warm table.
        let matched_during = replay(&mut client, &plans, &expected);
        let restored = router.set_backend(victim, upstream);
        let healthy_after =
            restored && await_state(&router, victim, "healthy", Duration::from_secs(5));
        let matched_after = replay(&mut client, &plans, &expected);
        proxy.shutdown();
        let total = plans.len() as u64;
        let ok =
            through_proxy && matched_during == total && matched_after == total && healthy_after;
        injected += 1;
        if ok {
            recovered += 1;
        }
        lines.push(Value::obj(vec![
            ("surface", Value::str("router")),
            ("fault", Value::str("slow_backend")),
            ("episode", Value::Num(episode as f64)),
            ("shard", Value::Num(victim as f64)),
            ("delay_ms", Value::Num(delay_ms as f64)),
            ("requests", Value::Num(total as f64)),
            ("matched_during", Value::Num(matched_during as f64)),
            ("matched_after", Value::Num(matched_after as f64)),
            ("healthy_after", Value::Bool(healthy_after)),
            ("recovered", Value::Bool(ok)),
        ]));
    }

    injected_counter.add(injected);
    recovered_counter.add(recovered);
    router.shutdown();
    for backend in &mut backends {
        backend.shutdown();
    }
    Ok(RouterReport {
        lines,
        injected,
        recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_and_slow_episodes_recover_with_correct_answers() {
        let config = CampaignConfig::smoke(11);
        let registry = Registry::new();
        let report = run(&config, &registry).expect("router campaign");
        assert!(report.injected >= 2, "crash + slow episodes injected");
        assert_eq!(
            report.injected,
            report.recovered,
            "unrecovered router faults: {:?}",
            report.lines.iter().map(Value::render).collect::<Vec<_>>()
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("chaos.router.injected"), Some(report.injected));
        assert_eq!(
            snap.counter("chaos.router.recovered"),
            Some(report.recovered)
        );
    }
}
