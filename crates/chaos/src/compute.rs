//! The compute surface: panics and latency inside the worker pool.
//!
//! Each round fans a seeded mix of jobs across a [`hems_sim::WorkerPool`]:
//! some compute a deterministic value, some stall first (artificial
//! latency — a slot that finishes late must not corrupt its neighbours'
//! slots), and some panic outright. `run_jobs_result` must hand back an
//! `Err` for exactly the panicking slots and the *correct* value for
//! every other slot, round after round, on the same pool — the
//! catch_unwind isolation holding under repeated, concurrent failure.

use crate::error::ChaosError;
use crate::plan::CampaignConfig;
use hems_core::cachekey::KeyHasher;
use hems_obs::Registry;
use hems_serve::json::Value;
use hems_sim::WorkerPool;
use std::thread;
use std::time::Duration;

/// Outcome of the compute campaign.
#[derive(Debug)]
pub struct ComputeReport {
    /// One JSON line per round.
    pub lines: Vec<Value>,
    /// Panics injected.
    pub injected: u64,
    /// Panics that were isolated to their slot with every healthy slot
    /// answering correctly.
    pub recovered: u64,
}

/// What one job is scripted to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobFault {
    /// Compute the expected value.
    None,
    /// Sleep this many milliseconds first, then compute.
    Latency(u64),
    /// Panic instead of computing.
    Panic,
}

/// The value a healthy job `(round, slot)` must return.
fn expected(round: u64, slot: u64) -> u64 {
    let mut hasher = KeyHasher::new();
    hasher.write_tag("compute-job");
    hasher.write_u64(round);
    hasher.write_u64(slot);
    hasher.finish()
}

/// Runs the compute campaign. Fault tallies are double-entried into
/// `registry` (`chaos.compute.injected` / `chaos.compute.recovered`).
///
/// # Errors
///
/// Errors only if the pool cannot be built; isolation failures are
/// reported in the lines.
pub fn run(config: &CampaignConfig, registry: &Registry) -> Result<ComputeReport, ChaosError> {
    let injected_counter = registry.counter("chaos.compute.injected");
    let recovered_counter = registry.counter("chaos.compute.recovered");
    let pool = WorkerPool::with_default_threads(Some(4));
    let mut rng = config.plan().stream("compute");
    let mut lines = Vec::new();
    let mut injected = 0u64;
    let mut recovered = 0u64;
    for round in 0..config.compute_rounds as u64 {
        let faults: Vec<JobFault> = (0..config.compute_jobs)
            .map(|_| match rng.below_u32(4) {
                0 => JobFault::Panic,
                1 => JobFault::Latency(1 + rng.below_u32(4) as u64),
                _ => JobFault::None,
            })
            .collect();
        let jobs: Vec<_> = faults
            .iter()
            .enumerate()
            .map(|(slot, fault)| {
                let fault = *fault;
                let slot = slot as u64;
                move || {
                    match fault {
                        JobFault::None => {}
                        JobFault::Latency(ms) => thread::sleep(Duration::from_millis(ms)),
                        JobFault::Panic => {
                            // hems-lint: allow(panic, reason = "chaos campaign: the injected fault under test, caught by run_jobs_result")
                            panic!("chaos: injected compute fault r{round} s{slot}");
                        }
                    }
                    expected(round, slot)
                }
            })
            .collect();
        let outcomes = pool.run_jobs_result(jobs);

        let mut panics = 0u64;
        let mut caught = 0u64;
        let mut correct = 0u64;
        let mut wrong = 0u64;
        for (slot, (fault, outcome)) in faults.iter().zip(&outcomes).enumerate() {
            match (fault, outcome) {
                (JobFault::Panic, Err(e)) if e.message().contains("chaos:") => {
                    panics += 1;
                    caught += 1;
                }
                (JobFault::Panic, _) => panics += 1,
                (_, Ok(v)) if *v == expected(round, slot as u64) => correct += 1,
                _ => wrong += 1,
            }
        }
        injected += panics;
        injected_counter.add(panics);
        let isolated = caught == panics && wrong == 0 && outcomes.len() == faults.len();
        if isolated {
            recovered += panics;
            recovered_counter.add(panics);
        }
        lines.push(Value::obj(vec![
            ("surface", Value::str("compute")),
            ("round", Value::Num(round as f64)),
            ("jobs", Value::Num(faults.len() as f64)),
            ("panics", Value::Num(panics as f64)),
            ("caught", Value::Num(caught as f64)),
            ("correct", Value::Num(correct as f64)),
            ("isolated", Value::Bool(isolated)),
        ]));
    }
    Ok(ComputeReport {
        lines,
        injected,
        recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_concurrent_panics_stay_isolated() {
        let registry = Registry::new();
        let report = run(&CampaignConfig::smoke(7), &registry).expect("campaign runs");
        assert!(report.injected > 0, "the seed must inject at least once");
        assert_eq!(report.injected, report.recovered, "{:?}", report.lines);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("chaos.compute.injected"),
            Some(report.injected)
        );
    }

    #[test]
    fn expected_values_differ_per_slot() {
        assert_ne!(expected(0, 1), expected(0, 2));
        assert_ne!(expected(0, 1), expected(1, 1));
        assert_eq!(expected(3, 4), expected(3, 4));
    }
}
