//! Campaign seeds and sizing.
//!
//! One master seed fans out into independent per-surface RNG streams by
//! mixing the seed with the surface's name through the canonical FNV-1a
//! key hasher — so the power campaign's draws never perturb the net
//! campaign's, and each surface is reproducible in isolation.

use hems_core::cachekey::KeyHasher;
use hems_units::XorShiftRng;

/// The seeded source of every fault a campaign injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// A plan from a master seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed }
    }

    /// The master seed (printed in reports so a failure is replayable).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// An independent, deterministic RNG stream for one surface.
    pub fn stream(&self, surface: &str) -> XorShiftRng {
        let mut hasher = KeyHasher::new();
        hasher.write_tag("chaos-stream");
        hasher.write_tag(surface);
        hasher.write_u64(self.seed);
        XorShiftRng::seed_from_u64(hasher.finish())
    }
}

/// How big a campaign to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed for every injected fault.
    pub seed: u64,
    /// Most checkpoint boundaries to brown out at (power surface). The
    /// reference chain's boundaries are covered evenly up to this cap.
    pub power_boundaries: usize,
    /// Rounds of concurrent worker-pool faulting (compute surface).
    pub compute_rounds: usize,
    /// Jobs per compute round.
    pub compute_jobs: usize,
    /// Healthy plan requests through the chaos proxy, first pass.
    pub net_requests: usize,
    /// Healthy plan requests after the attack wave, proving recovery.
    pub net_requests_after: usize,
    /// Server read deadline in milliseconds (kept short so the slow-loris
    /// attacker is reaped quickly).
    pub net_read_timeout_ms: u64,
    /// Fleet-twin nodes to co-simulate under regional brownout storms
    /// (fleet surface).
    pub fleet_nodes: u32,
    /// Square weather-grid side for the fleet surface.
    pub fleet_grid: u32,
    /// Seeded regional brownout storms injected into the fleet's day.
    pub fleet_storms: u32,
    /// Backend crash/restart episodes against the routed tier (router
    /// surface).
    pub router_crashes: usize,
    /// Slow-backend (delaying proxy) episodes against the routed tier.
    pub router_slow: usize,
    /// Plans replayed per router episode against the warm expected
    /// table.
    pub router_requests: usize,
}

impl CampaignConfig {
    /// The full campaign for a seed.
    pub fn full(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            power_boundaries: 12,
            compute_rounds: 6,
            compute_jobs: 24,
            net_requests: 18,
            net_requests_after: 8,
            net_read_timeout_ms: 250,
            fleet_nodes: 1024,
            fleet_grid: 32,
            fleet_storms: 2,
            router_crashes: 2,
            router_slow: 1,
            router_requests: 10,
        }
    }

    /// A small plan for CI smoke runs: same shape, minutes less wall time.
    pub fn smoke(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            power_boundaries: 3,
            compute_rounds: 2,
            compute_jobs: 8,
            net_requests: 8,
            net_requests_after: 4,
            net_read_timeout_ms: 200,
            fleet_nodes: 48,
            fleet_grid: 8,
            fleet_storms: 1,
            router_crashes: 1,
            router_slow: 1,
            router_requests: 6,
        }
    }

    /// The fault plan this campaign draws from.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_surface_independent() {
        let plan = FaultPlan::new(7);
        let mut a = plan.stream("power");
        let mut b = plan.stream("power");
        let mut c = plan.stream("net");
        let first_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let first_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let first_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(first_a, first_b, "same surface, same stream");
        assert_ne!(first_a, first_c, "different surfaces diverge");
        let mut other_seed = FaultPlan::new(8).stream("power");
        assert_ne!(first_a.first().copied(), Some(other_seed.next_u64()));
    }
}
