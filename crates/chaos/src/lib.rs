//! `hems-chaos`: seed-deterministic fault injection for the whole stack.
//!
//! The paper's premise is surviving hostile conditions: a battery-less
//! node browns out mid-computation and must resume correctly. This crate
//! *proves* the repo does, by injecting faults into its five planes and
//! asserting recovery:
//!
//! * **power** ([`power`]) — scheduled irradiance collapses drive the sim
//!   into brownouts at every checkpoint boundary of a reference task
//!   chain; the [`hems_intermittent::IntermittentRuntime`] commit stream
//!   of each faulted run must be prefix-identical (by FNV-1a digest) to
//!   the fault-free run, and commits must resume after the outage;
//! * **compute** ([`compute`]) — forced panics and artificial latency in
//!   [`hems_sim::WorkerPool`] jobs, verifying `run_jobs_result` isolates
//!   every failing slot under repeated, concurrent failure;
//! * **I/O** ([`net`]) — a chaos proxy in front of a live `hems-serve`
//!   instance tears NDJSON frames mid-byte, drops connections
//!   mid-response, and runs slow-loris clients, while the retrying
//!   [`hems_serve::Client`] must still get every healthy request
//!   answered and the server must finish with zero panics on its own
//!   threads;
//! * **router** ([`router`]) — seeded backend crashes/restarts and
//!   slow-backend (delaying proxy) episodes against a live 3-shard
//!   `hems-router` tier under retrying-client load: every replayed plan
//!   must answer byte-identically to its warm pre-fault result, and
//!   crashed shards must rejoin healthy after hot repointing;
//! * **fleet** ([`fleet`]) — regional brownout storms swept across an
//!   [`hems_fleet::Fleet`] digital twin: correlated harvest collapses
//!   kill whole neighbourhoods of nodes at once, and every storm must
//!   end with demonstrable sampled progress and zero commit-stream
//!   prefix-digest violations fleet-wide.
//!
//! Everything is driven by a [`FaultPlan`] seeded through the vendored
//! xorshift RNG ([`hems_units::XorShiftRng`]): the same seed yields the
//! same faults, the same retry schedules, and a byte-identical report.
//! The `hems-chaos` bin runs a campaign and emits one JSON line per
//! injected fault (validated through the serve crate's own parser) plus a
//! `BENCH_chaos.json` summary of survival/recovery rates.
//!
//! To reproduce a failing campaign, re-run with the seed it printed:
//! `cargo run -p hems-chaos -- --seed <N>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute;
mod error;
pub mod fleet;
pub mod net;
pub mod plan;
pub mod power;
pub mod report;
pub mod router;

pub use error::ChaosError;
pub use plan::{CampaignConfig, FaultPlan};
pub use report::{run_campaign, Campaign};
